#!/usr/bin/env python3
"""Guard against combination-engine performance regressions.

Two checks:

1. Compares a freshly measured benchmark run against the committed
   BENCH_results.json and fails if any fully-optimised (s1+s2+s3+s4)
   row of the B-SCALE or B-DIV experiments at scale <= 2 got more than
   3x slower.  The generous factor absorbs CI machine noise; the point
   is to catch the combination phase falling back to quadratic padding,
   which shows up as a 100x+ cliff, not a 2x wobble.  When both the
   baseline row and the new row carry a wall_ms_p95 column (bucketed
   latency histograms in the bench harness), the p95 is held to the
   same 3x / absolute-bound rules — a tail-latency cliff fails the
   gate even if the median survived.

2. The B-PREP experiment of the NEW run alone: for every (query, scale)
   pair, the prepared row (one Session.prepare, N plan-cache-hit
   executions) must be strictly cheaper than the cold row (N one-shot
   runs, each re-entering the full planning pipeline).  Both sides are
   medians of several passes measured back to back in one process, so
   machine speed cancels out of the comparison.

3. The B-PAR experiment of the NEW run alone: for every (query, scale)
   pair, no jobs>1 row may be more than 1.2x slower than the jobs=1
   row.  Parallel execution is allowed to not help (CI runners may
   expose a single core, where chunking is pure overhead), but it must
   never be catastrophically slower than the serial engine it wraps.
   Rows whose serial median is under 5 ms are skipped as timer noise.

4. The B-VEC experiment of the NEW run alone: for every (query, scale)
   pair, the batched (vectorized kernels) row must not be slower than
   the scalar row.  Both arms are medians measured back to back in one
   process, so machine speed cancels out; rows whose scalar median is
   under 5 ms are skipped as timer noise.

5. The B-INDEX experiment of the NEW run alone: for every (query,
   scale) pair, the indexed leg (secondary-index probes) must not be
   slower than the scan leg (heap scans, use_index=false); rows whose
   scan median is under 5 ms are held only to an absolute 5 ms bound
   (timer noise).  At the largest scale clearing the noise floor, the
   scan must cost at least 3x the probe — the selective restriction is
   exactly where access-path selection must win.  Percentile columns
   are optional everywhere: the harness omits wall_ms_p95/p99 when a
   cell was measured with a single pass, and every p95 guard here
   compares only when both sides carry the column.

6. B-TRAFFIC, baseline vs new, only when BOTH runs carry rows (older
   baselines predate the traffic experiment).  Rows are keyed by
   (strategy, pass) — the A-B-A-B interleave records two closed-loop
   and two open-loop passes.  Each new row's achieved throughput must
   stay above a third of the baseline's, and its p95 latency is held
   to the shared 3x / absolute-bound rule.  Thirds, not tenths: the
   traffic driver multiplexes client domains over whatever cores the
   CI runner exposes, so absolute throughput is machine-relative and
   only a cliff — scheduler convoy, lost concurrency, accidental
   serialization — should fail the gate.

Usage: check_bench_regression.py BASELINE.json NEW.json
"""

import json
import sys

EXPERIMENTS = {"B-SCALE", "B-DIV"}
STRATEGY = "s1+s2+s3+s4"
MAX_SCALE = 2
FACTOR = 3.0


def key_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", doc if isinstance(doc, list) else []):
        if (
            r.get("experiment") in EXPERIMENTS
            and r.get("strategy") == STRATEGY
            and r.get("scale", 0) <= MAX_SCALE
        ):
            rows[(r["experiment"], r.get("query", ""), r["scale"])] = (
                r["wall_ms"],
                r.get("wall_ms_p95"),
            )
    return rows


def exceeds(base_ms, new_ms):
    """The shared 3x rule: sub-millisecond baselines are timer noise and
    are held to an absolute bound instead of a ratio."""
    if base_ms < 1.0:
        return new_ms > FACTOR * max(base_ms, 1.0)
    return new_ms > FACTOR * base_ms


def prep_rows(path):
    """B-PREP rows of one run: {(query, scale): {strategy: wall_ms}}."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", doc if isinstance(doc, list) else []):
        if r.get("experiment") == "B-PREP":
            rows.setdefault((r.get("query", ""), r.get("scale", 0)), {})[
                r.get("strategy")
            ] = r["wall_ms"]
    return rows


def check_prepared(path):
    """Prepared executions must beat cold runs, within the new run."""
    rows = prep_rows(path)
    if not rows:
        print("B-PREP: no rows in the new run, skipping the prepared check")
        return []
    failed = []
    for (query, scale), cells in sorted(rows.items()):
        if "cold" not in cells or "prepared" not in cells:
            failed.append((query, scale))
            print(f"B-PREP   {query:22s} scale={scale}  missing cold/prepared row")
            continue
        cold, prepared = cells["cold"], cells["prepared"]
        ok = prepared < cold
        print(
            f"B-PREP   {query:22s} scale={scale}  "
            f"cold={cold:9.2f}ms  prepared={prepared:9.2f}ms  "
            f"{'ok' if ok else 'NOT CHEAPER'}"
        )
        if not ok:
            failed.append((query, scale))
    return failed


PAR_FACTOR = 1.2
PAR_NOISE_FLOOR_MS = 5.0


def par_rows(path):
    """B-PAR rows of one run: {(query, scale): {jobs: wall_ms}}."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", doc if isinstance(doc, list) else []):
        if r.get("experiment") == "B-PAR":
            rows.setdefault((r.get("query", ""), r.get("scale", 0)), {})[
                r.get("jobs", 1)
            ] = r["wall_ms"]
    return rows


def check_parallel(path):
    """jobs>1 must stay within PAR_FACTOR of jobs=1, within the new run."""
    rows = par_rows(path)
    if not rows:
        print("B-PAR: no rows in the new run, skipping the parallel check")
        return []
    failed = []
    for (query, scale), cells in sorted(rows.items()):
        if 1 not in cells:
            failed.append((query, scale))
            print(f"B-PAR    {query:22s} scale={scale}  missing jobs=1 row")
            continue
        serial = cells[1]
        if serial < PAR_NOISE_FLOOR_MS:
            print(
                f"B-PAR    {query:22s} scale={scale}  "
                f"serial={serial:9.2f}ms  below noise floor, skipped"
            )
            continue
        for jobs, ms in sorted(cells.items()):
            if jobs == 1:
                continue
            ok = ms <= PAR_FACTOR * serial
            print(
                f"B-PAR    {query:22s} scale={scale}  jobs={jobs}  "
                f"serial={serial:9.2f}ms  parallel={ms:9.2f}ms  "
                f"{'ok' if ok else 'TOO SLOW'}"
            )
            if not ok:
                failed.append((query, scale, jobs))
    return failed


VEC_NOISE_FLOOR_MS = 5.0


def vec_rows(path):
    """B-VEC rows of one run: {(query, scale): {engine: wall_ms}}.

    The engine label rides the strategy column ("scalar" vs "batched");
    both arms run the same strategy preset within a row pair."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", doc if isinstance(doc, list) else []):
        if r.get("experiment") == "B-VEC":
            rows.setdefault((r.get("query", ""), r.get("scale", 0)), {})[
                r.get("strategy")
            ] = r["wall_ms"]
    return rows


def check_vectorized(path):
    """Batched execution must not lose to the scalar engine, within the
    new run.  Both arms are medians measured back to back in one
    process, so machine speed cancels out; rows whose scalar median is
    under the noise floor are skipped as timer noise."""
    rows = vec_rows(path)
    if not rows:
        print("B-VEC: no rows in the new run, skipping the vectorized check")
        return []
    failed = []
    for (query, scale), cells in sorted(rows.items()):
        if "scalar" not in cells or "batched" not in cells:
            failed.append((query, scale))
            print(f"B-VEC    {query:22s} scale={scale}  missing scalar/batched row")
            continue
        scalar, batched = cells["scalar"], cells["batched"]
        if scalar < VEC_NOISE_FLOOR_MS:
            print(
                f"B-VEC    {query:22s} scale={scale}  "
                f"scalar={scalar:9.2f}ms  below noise floor, skipped"
            )
            continue
        ok = batched <= scalar
        print(
            f"B-VEC    {query:22s} scale={scale}  "
            f"scalar={scalar:9.2f}ms  batched={batched:9.2f}ms  "
            f"({scalar / batched:4.2f}x)  {'ok' if ok else 'SLOWER THAN SCALAR'}"
        )
        if not ok:
            failed.append((query, scale))
    return failed


INDEX_NOISE_FLOOR_MS = 5.0
INDEX_FACTOR = 3.0


def index_rows(path):
    """B-INDEX rows of one run: {(query, scale): {strategy: wall_ms}}."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", doc if isinstance(doc, list) else []):
        if r.get("experiment") == "B-INDEX":
            rows.setdefault((r.get("query", ""), r.get("scale", 0)), {})[
                r.get("strategy")
            ] = r["wall_ms"]
    return rows


def check_index(path):
    """Secondary-index probes must beat heap scans, within the new run.

    Two rules over the indexed/scan leg pairs, both legs prepared
    executions of the same plan against the same database so machine
    speed cancels out: (1) at every scale the indexed leg must not
    lose to the scan leg (5 ms noise floor on the scan side — tiny
    relations are timer noise); (2) at the largest scale whose scan
    clears the noise floor, the scan must cost at least INDEX_FACTOR
    times the probe — the selective restriction is the index's home
    ground, and losing the 3x there means access-path selection broke."""
    rows = index_rows(path)
    if not rows:
        print("B-INDEX: no rows in the new run, skipping the index check")
        return []
    failed = []
    by_query = {}
    for (query, scale), cells in sorted(rows.items()):
        if "indexed" not in cells or "scan" not in cells:
            failed.append((query, scale))
            print(f"B-INDEX  {query:22s} scale={scale}  missing indexed/scan row")
            continue
        indexed, scan = cells["indexed"], cells["scan"]
        if scan < INDEX_NOISE_FLOOR_MS:
            ok = indexed <= scan + INDEX_NOISE_FLOOR_MS
            print(
                f"B-INDEX  {query:22s} scale={scale}  "
                f"scan={scan:9.3f}ms  indexed={indexed:9.3f}ms  "
                f"{'ok (below noise floor)' if ok else 'SLOWER THAN SCAN'}"
            )
            if not ok:
                failed.append((query, scale))
            continue
        by_query.setdefault(query, []).append((scale, indexed, scan))
        ok = indexed <= scan
        print(
            f"B-INDEX  {query:22s} scale={scale}  "
            f"scan={scan:9.3f}ms  indexed={indexed:9.3f}ms  "
            f"({scan / max(indexed, 0.001):6.1f}x)  "
            f"{'ok' if ok else 'SLOWER THAN SCAN'}"
        )
        if not ok:
            failed.append((query, scale))
    for query, points in sorted(by_query.items()):
        scale, indexed, scan = max(points)
        ok = scan >= INDEX_FACTOR * indexed
        print(
            f"B-INDEX  {query:22s} largest scale={scale}  "
            f"probe wins {scan / max(indexed, 0.001):6.1f}x  "
            f"{'ok' if ok else f'BELOW {INDEX_FACTOR}x'}"
        )
        if not ok:
            failed.append((query, scale, "factor"))
    return failed


TRAFFIC_THROUGHPUT_FLOOR = 3.0


def traffic_rows(path):
    """B-TRAFFIC rows of one run: {(query, strategy, pass): row dict}."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", doc if isinstance(doc, list) else []):
        if r.get("experiment") == "B-TRAFFIC":
            rows[(r.get("query", ""), r.get("strategy", ""), r.get("pass", 0))] = r
    return rows


def check_traffic(baseline_path, new_path):
    """Achieved-throughput floor and p95 ceiling, baseline vs new.

    Applies only when both runs carry B-TRAFFIC rows; a baseline that
    predates the traffic experiment silently passes."""
    baseline = traffic_rows(baseline_path)
    new = traffic_rows(new_path)
    if not baseline or not new:
        print("B-TRAFFIC: rows missing on one side, skipping the traffic check")
        return []
    failed = []
    for key, base in sorted(baseline.items()):
        if key not in new:
            continue
        query, strategy, pass_ = key
        row = new[key]
        base_rps = base.get("achieved_rps")
        new_rps = row.get("achieved_rps")
        status = "ok"
        if base_rps is not None and new_rps is not None:
            if new_rps < base_rps / TRAFFIC_THROUGHPUT_FLOOR:
                status = "THROUGHPUT CLIFF"
        base_p95, new_p95 = base.get("wall_ms_p95"), row.get("wall_ms_p95")
        p95_note = ""
        if base_p95 is not None and new_p95 is not None:
            p95_note = f"  p95={base_p95:7.2f}->{new_p95:7.2f}ms"
            if exceeds(base_p95, new_p95):
                status = "P95 REGRESSION" if status == "ok" else status
        print(
            f"B-TRAFFIC {query:16s} {strategy:7s} pass={pass_}  "
            f"rps={base_rps:7.1f}->{new_rps:7.1f}{p95_note}  {status}"
        )
        if status != "ok":
            failed.append(key)
    return failed


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    baseline = key_rows(sys.argv[1])
    new = key_rows(sys.argv[2])
    compared = 0
    failed = []
    for key, (base_ms, base_p95) in sorted(baseline.items()):
        if key not in new:
            continue
        compared += 1
        new_ms, new_p95 = new[key]
        status = "ok"
        if exceeds(base_ms, new_ms):
            status = "REGRESSION"
        # Tail latency, when both runs recorded it (older baselines
        # predate the percentile columns).
        p95_note = ""
        if base_p95 is not None and new_p95 is not None:
            p95_note = f"  p95={base_p95:8.2f}->{new_p95:8.2f}ms"
            if exceeds(base_p95, new_p95):
                status = "P95 REGRESSION" if status == "ok" else status
        exp, query, scale = key
        print(
            f"{exp:8s} {query:16s} scale={scale}  "
            f"baseline={base_ms:9.2f}ms  new={new_ms:9.2f}ms{p95_note}  {status}"
        )
        if status != "ok":
            failed.append(key)
    if compared == 0 and new:
        sys.exit("no comparable benchmark rows found -- wrong files?")
    if compared == 0:
        # A run restricted to the within-run experiments (e.g. --only
        # B-PAR) carries no baseline-comparable rows; that is fine.
        print("B-SCALE/B-DIV: no rows in the new run, skipping the baseline comparison")
    prep_failed = check_prepared(sys.argv[2])
    par_failed = check_parallel(sys.argv[2])
    vec_failed = check_vectorized(sys.argv[2])
    index_failed = check_index(sys.argv[2])
    traffic_failed = check_traffic(sys.argv[1], sys.argv[2])
    if failed:
        sys.exit(f"{len(failed)}/{compared} rows regressed beyond {FACTOR}x")
    if prep_failed:
        sys.exit(
            f"{len(prep_failed)} B-PREP rows where prepared execution "
            "was not cheaper than cold runs"
        )
    if par_failed:
        sys.exit(
            f"{len(par_failed)} B-PAR rows where jobs>1 was more than "
            f"{PAR_FACTOR}x slower than the serial engine"
        )
    if vec_failed:
        sys.exit(
            f"{len(vec_failed)} B-VEC rows where batched execution "
            "was slower than the scalar engine"
        )
    if index_failed:
        sys.exit(
            f"{len(index_failed)} B-INDEX rows where the secondary-index "
            "probe did not beat the heap scan"
        )
    if traffic_failed:
        sys.exit(
            f"{len(traffic_failed)} B-TRAFFIC rows lost more than "
            f"{TRAFFIC_THROUGHPUT_FLOOR}x throughput or regressed p95"
        )
    if compared:
        print(f"all {compared} rows within {FACTOR}x of baseline")


if __name__ == "__main__":
    main()
