(* pascalr — command-line driver for the PASCAL/R query processor.

   Subcommands:
     run       evaluate a query against a generated sample database
     analyze   EXPLAIN ANALYZE: evaluate under the span tracer and
               report measured per-phase cost (text or --json)
     stats     run a workload and report cumulative per-query
               statistics and the execution flight recorder
     traffic   drive a concurrent-client workload (closed or open
               loop) and report throughput + latency percentiles
     explain   show the transformation pipeline and evaluation plan
     plan      show the cost-based planner's decision
     normalize show the standard form (prenex + DNF) of a query
     script    execute a statement-level PASCAL/R program

   Queries are given in the paper's concrete syntax, either inline
   (--query), from a file (--file), or one of the named built-ins
   (--example).  Databases are the generated university or
   suppliers-parts instances. *)

open Relalg
open Pascalr
open Cmdliner

(* ----------------------------------------------------------------- *)
(* Database selection *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(* --schema declarations.pas [--load rel=data.csv ...] *)
let make_custom_db schema_path loads =
  let db = Pascalr_lang.Elaborate.database_of_string (read_file schema_path) in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None -> failwith ("--load expects REL=PATH, got " ^ spec)
      | Some i ->
        let rel_name = String.sub spec 0 i in
        let path = String.sub spec (i + 1) (String.length spec - i - 1) in
        let target = Database.find_relation db rel_name in
        let loaded =
          Csv_io.of_string ~name:(rel_name ^ "_csv")
            (Relation.schema target) (read_file path)
        in
        Relation.iter (Relation.insert target) loaded)
    loads;
  db

let make_db kind scale seed =
  match kind with
  | "university" ->
    Workload.University.generate
      { (Workload.University.scaled scale) with Workload.University.seed = seed }
  | "suppliers" ->
    Workload.Suppliers.generate
      { (Workload.Suppliers.scaled scale) with Workload.Suppliers.seed = seed }
  | other -> failwith ("unknown database kind: " ^ other)

let named_query db = function
  | "running" | "example-2.1" -> Workload.Queries.running_query db
  | "example-4.5" -> Workload.Queries.example_4_5 db
  | "example-4.7" -> Workload.Queries.example_4_7 db
  | "existential" -> Workload.Queries.existential_query db
  | "universal" -> Workload.Queries.universal_query db
  | "ships-all-parts" -> Workload.Suppliers.ships_all_parts db
  | "ships-all-red" -> Workload.Suppliers.ships_all_red_parts db
  | "no-red-part" -> Workload.Suppliers.ships_no_red_part db
  | other -> failwith ("unknown example query: " ^ other)

let resolve_query db ~query ~file ~example =
  match query, file, example with
  | Some src, None, None -> Pascalr_lang.Elaborate.query_of_string db src
  | None, Some path, None ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Pascalr_lang.Elaborate.query_of_string db src
  | None, None, Some name -> named_query db name
  | None, None, None -> named_query db "running"
  | _ -> failwith "give at most one of --query, --file, --example"

let strategy_of_string = function
  | "palermo" -> Strategy.palermo
  | "s1" -> Strategy.s1
  | "s12" | "s1+s2" -> Strategy.s12
  | "s123" | "s1+s2+s3" -> Strategy.s123
  | "s1234" | "s1+s2+s3+s4" | "full" -> Strategy.full
  | "s123c" | "s1+s2+s3cnf" -> Strategy.s123c
  | "full-cnf" | "s1+s2+s3cnf+s4" -> Strategy.full_cnf
  | other -> failwith ("unknown strategy: " ^ other)

let join_order_of_flag = function
  | None -> Combination.Cost_ordered
  | Some s -> (
    match Exec_opts.join_order_of_string s with
    | Some jo -> jo
    | None -> failwith ("unknown join order: " ^ s))

(* --param NAME=VAL: VAL is an integer, true/false, a unique enumeration
   label of the database, or (otherwise) a string. *)
let param_value db s =
  match int_of_string_opt s with
  | Some n -> Value.VInt n
  | None -> (
    match s with
    | "true" -> Value.VBool true
    | "false" -> Value.VBool false
    | _ -> (
      let hits =
        List.filter
          (fun info -> Array.exists (String.equal s) info.Value.labels)
          (Database.enums db)
      in
      match hits with
      | [ info ] -> Value.enum info s
      | _ -> Value.VStr s))

let parse_params db specs =
  List.map
    (fun spec ->
      match String.index_opt spec '=' with
      | None -> failwith ("--param expects NAME=VAL, got " ^ spec)
      | Some i ->
        ( String.sub spec 0 i,
          param_value db (String.sub spec (i + 1) (String.length spec - i - 1))
        ))
    specs

(* ----------------------------------------------------------------- *)
(* Logs wiring.  The library's [pascalr.eval] source has debug-level
   messages for every pipeline transformation; without a reporter they
   are unreachable.  --verbosity installs one writing to stderr. *)

let log_reporter =
  {
    Logs.report =
      (fun src level ~over k msgf ->
        let k _ =
          over ();
          k ()
        in
        msgf (fun ?header ?tags fmt ->
            ignore header;
            ignore tags;
            Format.kfprintf k Format.err_formatter
              ("%s: [%s] " ^^ fmt ^^ "@.") (Logs.Src.name src)
              (match level with
              | Logs.App -> "app"
              | Logs.Error -> "error"
              | Logs.Warning -> "warning"
              | Logs.Info -> "info"
              | Logs.Debug -> "debug")));
  }

let setup_logs = function
  | None -> ()
  | Some level ->
    Logs.set_level level;
    Logs.set_reporter log_reporter

let verbosity_arg =
  (* [Some None] = reporter installed, all logging off. *)
  let levels =
    [
      ("quiet", Some None);
      ("error", Some (Some Logs.Error));
      ("warn", Some (Some Logs.Warning));
      ("warning", Some (Some Logs.Warning));
      ("info", Some (Some Logs.Info));
      ("debug", Some (Some Logs.Debug));
    ]
  in
  Arg.(
    value
    & opt (enum levels) None
    & info [ "verbosity" ] ~docv:"LEVEL"
        ~doc:
          "Install a Logs reporter at this level (quiet, error, warn, \
           info, debug).  $(b,debug) surfaces the pipeline's \
           transformation log (pascalr.eval source).")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print the span trace (timing tree with metric deltas).")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Arm slow-query capture: an execution taking at least MS wall \
           milliseconds arms its query digest, and the digest's next \
           execution is captured under a full span trace (exported with \
           $(b,--trace-out), listed by $(b,pascalr stats)).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the execution's span trace as Chrome trace-event JSON \
           to FILE (loadable in chrome://tracing and Perfetto).")

let write_chrome_trace path span =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string (Obs.Trace.to_chrome span));
  output_char oc '\n';
  close_out oc;
  (* stderr: stdout may be the --json document. *)
  Fmt.epr "wrote Chrome trace to %s@." path

(* --failpoint SITE=TRIGGER: arm storage-layer fault-injection sites
   before evaluating, e.g. --failpoint heap.read.short=nth:2. *)
let failpoint_arg =
  Arg.(
    value & opt_all string []
    & info [ "failpoint" ] ~docv:"SITE=TRIGGER"
        ~doc:
          "Arm a fault-injection site before evaluating (repeatable).  \
           Sites: heap.write.partial, heap.read.short, pool.evict.io, \
           codec.decode.corrupt, db.save.crash.  Triggers: $(b,nth:N), \
           $(b,every:K), $(b,prob:P:SEED).")

(* Called outside [with_setup]'s recovery, so report bad specs directly
   with the usual prefix and exit code instead of an uncaught escape. *)
let arm_failpoints specs =
  List.iter
    (fun spec ->
      try Relalg.Failpoint.arm_spec spec
      with Invalid_argument msg ->
        Fmt.epr "pascalr: %s@." msg;
        exit 1)
    specs

(* ----------------------------------------------------------------- *)
(* Common options *)

let db_arg =
  Arg.(
    value
    & opt string "university"
    & info [ "d"; "db"; "database" ] ~docv:"KIND"
        ~doc:"Sample database: university or suppliers.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Database scale factor.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"SRC" ~doc:"Query in PASCAL/R syntax.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"PATH" ~doc:"Read the query from a file.")

let example_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "example" ] ~docv:"NAME"
        ~doc:
          "Built-in query: running, example-4.5, example-4.7, existential, \
           universal, ships-all-parts, ships-all-red, no-red-part.")

let strategy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "strategy" ] ~docv:"S"
        ~doc:
          "Evaluation strategy: palermo, s1, s12, s123, s1234/full.  Default: \
           let the planner choose.")

let join_order_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "join-order" ] ~docv:"ORDER"
        ~doc:
          "Combination-phase join order: $(b,ordered) (greedy cost order, \
           default) or $(b,declaration) (the paper's literal baseline).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Domains executing the query, caller included.  $(b,1) forces \
           the serial engine; the default comes from PASCALR_JOBS or the \
           core count.")

let batch_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "batch-size" ] ~docv:"N"
        ~doc:
          "Row window of the vectorized stream kernels.  $(b,1) forces \
           the scalar per-tuple engine; the default comes from \
           PASCALR_BATCH_SIZE or 2048.")

let param_arg =
  Arg.(
    value & opt_all string []
    & info [ "param" ] ~docv:"NAME=VAL"
        ~doc:
          "Bind the query's \\$NAME placeholder (repeatable).  VAL is an \
           integer, true/false, or an enumeration label.")

(* --index REL:ATTR[,ATTR..][:KIND]: declare persistent secondary
   indexes before evaluating, so the collection phase can serve
   restrictions by probe/range scan instead of heap scans. *)
let index_arg =
  Arg.(
    value & opt_all string []
    & info [ "index" ] ~docv:"REL:ATTR[:KIND]"
        ~doc:
          "Declare a secondary index on relation REL's component ATTR \
           before evaluating (repeatable; ATTR may be a comma-separated \
           component list).  KIND is $(b,hash) (default; equality \
           probes) or $(b,sorted) (equality and range scans).")

let no_index_arg =
  Arg.(
    value & flag
    & info [ "no-index" ]
        ~doc:
          "Force heap scans: ignore declared secondary indexes when \
           choosing collection-phase access paths (the environment \
           variable PASCALR_NO_INDEX=1 has the same effect).")

let declare_indexes db specs =
  List.iter
    (fun spec ->
      let fail () =
        failwith
          (Fmt.str
             "bad --index spec %S (expected REL:ATTR[,ATTR..][:hash|sorted])"
             spec)
      in
      let rel, on, kind =
        match String.split_on_char ':' spec with
        | [ rel; attrs ] -> (rel, attrs, Relalg.Secondary_index.Hash)
        | [ rel; attrs; kind ] -> (
          ( rel,
            attrs,
            match String.lowercase_ascii kind with
            | "hash" -> Relalg.Secondary_index.Hash
            | "sorted" -> Relalg.Secondary_index.Sorted
            | _ -> fail () ))
        | _ -> fail ()
      in
      let on =
        List.filter (fun a -> a <> "") (String.split_on_char ',' on)
      in
      if rel = "" || on = [] then fail ();
      try ignore (Database.declare_index ~kind db rel ~on : Secondary_index.t)
      with
      | Errors.Unknown_relation m -> failwith ("--index: unknown relation " ^ m)
      | Errors.Unknown_attribute m -> failwith ("--index: unknown component " ^ m)
      | Errors.Schema_error m -> failwith ("--index: " ^ m))
    specs

(* ----------------------------------------------------------------- *)
(* Subcommands *)

let schema_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schema" ] ~docv:"PATH"
        ~doc:"Use a PASCAL/R declaration file instead of a sample database.")

let load_arg =
  Arg.(
    value & opt_all string []
    & info [ "load" ] ~docv:"REL=CSV"
        ~doc:"Load a CSV file into a declared relation (with --schema).")

let with_setup kind scale seed schema loads query file example k =
  try
    let db =
      match schema with
      | Some path -> make_custom_db path loads
      | None ->
        if loads <> [] then failwith "--load requires --schema";
        make_db kind scale seed
    in
    let q = resolve_query db ~query ~file ~example in
    (match Wellformed.check_query db q with
    | Ok () -> ()
    | Error e -> failwith ("ill-formed query: " ^ e.Wellformed.message));
    k db q;
    0
  with
  | Failure msg
  | Pascalr_lang.Elaborate.Elab_error msg ->
    Fmt.epr "pascalr: %s@." msg;
    1
  | Pascalr_lang.Parser.Parse_error (msg, pos) ->
    Fmt.epr "pascalr: parse error at line %d, column %d: %s@."
      pos.Pascalr_lang.Token.line pos.Pascalr_lang.Token.column msg;
    1
  | Pascalr_lang.Lexer.Lex_error (msg, pos) ->
    Fmt.epr "pascalr: lexical error at line %d, column %d: %s@."
      pos.Pascalr_lang.Token.line pos.Pascalr_lang.Token.column msg;
    1
  | Errors.Io_error msg ->
    Fmt.epr "pascalr: I/O fault: %s@." msg;
    1
  | Errors.Corruption msg ->
    Fmt.epr "pascalr: corruption detected: %s@." msg;
    1
  | Prepared.Unbound_parameter p ->
    Fmt.epr "pascalr: parameter $%s is not bound (use --param %s=VAL)@." p p;
    1
  | Prepared.Unknown_parameter p ->
    Fmt.epr "pascalr: the query has no parameter $%s@." p;
    1

let pool_pages_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pool-pages" ] ~docv:"N"
        ~doc:
          "Attach paged storage with a shared buffer pool of N pages \
           before evaluating, so the run includes simulated page I/O \
           (and fault-injection sites at the storage layer).")

let run_cmd =
  let go kind scale seed schema loads query file example strategy join_order
      jobs batch_size indexes no_index params verbose trace slow_ms trace_out
      pool_pages verbosity failpoints =
    setup_logs verbosity;
    arm_failpoints failpoints;
    Obs.Flight_recorder.set_slow_ms slow_ms;
    with_setup kind scale seed schema loads query file example (fun db q ->
        (match pool_pages with
        | Some n when n <= 0 -> failwith "--pool-pages must be positive"
        | Some n -> ignore (Database.attach_storage db ~pool_pages:n)
        | None -> ());
        declare_indexes db indexes;
        Fmt.pr "query: %a@.@." Calculus.pp_query q;
        let t0 = Unix.gettimeofday () in
        let decision, st =
          match strategy with
          | Some s -> (None, strategy_of_string s)
          | None ->
            let d = Planner.choose db q in
            (Some d, d.Planner.d_strategy)
        in
        let opts =
          Exec_opts.make ~strategy:st
            ~join_order:(join_order_of_flag join_order) ?jobs ?batch_size
            ~use_index:(Exec_opts.default_use_index && not no_index) ()
        in
        let params = parse_params db params in
        let session = Session.create db in
        let report, span =
          (* --trace-out needs the span even without --trace. *)
          if trace || trace_out <> None then
            let report, span = Session.exec_traced ~opts ~params session q in
            (report, Some span)
          else (Session.exec_report ~opts ~params session q, None)
        in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        (match span, trace_out with
        | Some span, Some path -> write_chrome_trace path span
        | _ -> ());
        (match decision with
        | Some d -> Fmt.pr "planner: %a@.@." Strategy.pp d.Planner.d_strategy
        | None -> ());
        Fmt.pr "%a@.@." Relation.pp report.Exec_result.result;
        Fmt.pr "%d elements in %.2f ms; %d scans, %d probes, max n-tuple %d@."
          (Relation.cardinality report.Exec_result.result)
          ms report.Exec_result.scans report.Exec_result.probes
          report.Exec_result.max_ntuple;
        if verbose then begin
          Fmt.pr "@.intermediate structures:@.";
          List.iter
            (fun (key, size) -> Fmt.pr "  %6d  %s@." size key)
            report.Exec_result.intermediates
        end;
        match span with
        | Some span when trace -> Fmt.pr "@.%a" Obs.Trace.pp span
        | Some _ | None -> ())
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show intermediates.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Evaluate a query")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg $ strategy_arg $ join_order_arg
      $ jobs_arg $ batch_size_arg $ index_arg $ no_index_arg $ param_arg
      $ verbose $ trace_arg $ slow_ms_arg
      $ trace_out_arg $ pool_pages_arg $ verbosity_arg $ failpoint_arg)

(* ----------------------------------------------------------------- *)
(* analyze: EXPLAIN ANALYZE for the three-phase pipeline.  The report
   assembly (per-phase rows, JSON document) lives in {!Pascalr.Analyze}
   so its schema is pinned by the golden-file test; this command only
   prints it. *)

let analyze_cmd =
  let go kind scale seed schema loads query file example strategy join_order
      jobs batch_size indexes no_index params repeat json show_trace slow_ms
      trace_out pool_pages verbosity failpoints =
    setup_logs verbosity;
    arm_failpoints failpoints;
    Obs.Flight_recorder.set_slow_ms slow_ms;
    with_setup kind scale seed schema loads query file example (fun db q ->
        declare_indexes db indexes;
        let st =
          match strategy with
          | Some s -> strategy_of_string s
          | None -> (Planner.choose db q).Planner.d_strategy
        in
        let opts =
          Exec_opts.make ~strategy:st
            ~join_order:(join_order_of_flag join_order) ?jobs ?batch_size
            ~use_index:(Exec_opts.default_use_index && not no_index) ()
        in
        let params = parse_params db params in
        let a =
          try Analyze.run ?pool_pages ~repeat ~opts ~params db q
          with Invalid_argument _ ->
            failwith "--pool-pages and --repeat must be positive"
        in
        (match trace_out with
        | Some path -> write_chrome_trace path a.Analyze.a_root
        | None -> ());
        let rows = a.Analyze.a_rows in
        let total_ms = a.Analyze.a_root.Obs.Trace.sp_elapsed_ms in
        let report = a.Analyze.a_report in
        if json then
          Fmt.pr "%a@." Obs.Json.pp_pretty
            (Analyze.to_json ~database:kind ~scale db q a)
        else begin
          Fmt.pr "query: %a@.@." Calculus.pp_query q;
          Fmt.pr "%s@." (Explain.explain ~strategy:st db q);
          Fmt.pr "measured (wall clock, metric deltas per pipeline step):@.";
          Fmt.pr "%-16s %10s %8s %8s %12s %10s@." "step" "wall ms" "scans"
            "probes" "max-ntuple" "tuples";
          List.iter
            (fun r ->
              Fmt.pr "%-16s %10.3f %8d %8d %12d %10d@." r.Analyze.ph_name
                r.Analyze.ph_ms r.Analyze.ph_scans r.Analyze.ph_probes
                r.Analyze.ph_max_ntuple r.Analyze.ph_tuples)
            rows;
          Fmt.pr "%-16s %10.3f %8d %8d %12d@." "total" total_ms
            report.Exec_result.scans report.Exec_result.probes
            report.Exec_result.max_ntuple;
          (match Database.pool_stats db with
          | Some s -> Fmt.pr "buffer pool: %a@." Buffer_pool.pp_stats s
          | None -> ());
          (match Failpoint.armed_sites () with
          | [] -> ()
          | armed ->
            Fmt.pr "failpoints: %a@."
              (Fmt.list ~sep:Fmt.comma (fun ppf (site, trig) ->
                   Fmt.pf ppf "%s=%s" site (Failpoint.trigger_to_string trig)))
              armed);
          Fmt.pr "@.%d elements in the result.@."
            (Relation.cardinality report.Exec_result.result);
          if show_trace then Fmt.pr "@.%a" Obs.Trace.pp a.Analyze.a_root
        end)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the full report as machine-readable JSON.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Execute the query N times through one session; the report \
             describes the last execution, so with N > 1 the trace shows \
             the plan-cache hit (no planning spans).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Evaluate a query under the span tracer and report measured \
          per-phase cost (EXPLAIN ANALYZE)")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg $ strategy_arg $ join_order_arg
      $ jobs_arg $ batch_size_arg $ index_arg $ no_index_arg $ param_arg
      $ repeat_arg $ json_arg $ trace_arg
      $ slow_ms_arg $ trace_out_arg $ pool_pages_arg $ verbosity_arg
      $ failpoint_arg)

(* ----------------------------------------------------------------- *)
(* stats: run a workload through one session, then report the
   cumulative per-digest statistics and the flight recorder.  The
   registries are in-process, so the command executes the workload
   itself: by default a built-in mix of three queries against the
   chosen sample database (repeated, so later rounds demonstrate
   plan-cache hits), or a single query given the usual --query / --file
   / --example. *)

let stats_cmd =
  let go kind scale seed schema loads query file example strategy join_order
      jobs batch_size params repeat json slow_ms trace_out verbosity =
    setup_logs verbosity;
    Obs.Flight_recorder.set_slow_ms slow_ms;
    if repeat < 1 then begin
      Fmt.epr "pascalr: --repeat must be positive@.";
      exit 1
    end;
    let explicit =
      query <> None || file <> None || example <> None || schema <> None
    in
    (* with_setup's fallback query is the university running example,
       which does not elaborate against other databases; when the
       built-in workload mix will be used anyway, resolve a query that
       matches the chosen database. *)
    let example =
      if explicit then example
      else Some (if kind = "suppliers" then "ships-all-parts" else "running")
    in
    with_setup kind scale seed schema loads query file example (fun db q ->
        let workload =
          if explicit then [ q ]
          else
            match kind with
            | "suppliers" ->
              [
                Workload.Suppliers.ships_all_parts db;
                Workload.Suppliers.ships_all_red_parts db;
                Workload.Suppliers.ships_no_red_part db;
              ]
            | _ ->
              [
                Workload.Queries.running_query db;
                Workload.Queries.existential_query db;
                Workload.Queries.universal_query db;
              ]
        in
        let opts_of qq =
          let st =
            match strategy with
            | Some s -> strategy_of_string s
            | None -> (Planner.choose db qq).Planner.d_strategy
          in
          Exec_opts.make ~strategy:st
            ~join_order:(join_order_of_flag join_order) ?jobs ?batch_size ()
        in
        let params = parse_params db params in
        let workload = List.map (fun qq -> (qq, opts_of qq)) workload in
        let session = Session.create db in
        for _ = 1 to repeat do
          List.iter
            (fun (qq, opts) ->
              ignore (Session.exec ~opts ~params session qq : Relation.t))
            workload
        done;
        (match trace_out with
        | None -> ()
        | Some path ->
          (* Prefer a captured slow-query trace; otherwise trace one
             more execution of the workload's first query. *)
          let span =
            match Obs.Flight_recorder.slow_traces () with
            | (_, span) :: _ -> span
            | [] ->
              let qq, opts = List.hd workload in
              snd (Session.exec_traced ~opts ~params session qq)
          in
          write_chrome_trace path span);
        if json then
          Fmt.pr "%a@." Obs.Json.pp_pretty
            (Obs.Json.Obj
               [
                 ("schema_version", Obs.Json.Int Analyze.schema_version);
                 ("database", Obs.Json.Str kind);
                 ("scale", Obs.Json.Int scale);
                 ("repeat", Obs.Json.Int repeat);
                 ("queries", Obs.Query_stats.to_json ());
                 ("flight_recorder", Obs.Flight_recorder.to_json ~n:16 ());
               ])
        else begin
          Fmt.pr "%a@." Obs.Query_stats.pp ();
          Fmt.pr "@.flight recorder: %d recorded, %d dropped (capacity %d)@."
            (Obs.Flight_recorder.total_recorded ())
            (Obs.Flight_recorder.dropped ())
            (Obs.Flight_recorder.capacity ());
          List.iter
            (fun r -> Fmt.pr "  %a@." Obs.Flight_recorder.pp_record r)
            (Obs.Flight_recorder.recent ~n:8 ());
          match Obs.Flight_recorder.slow_traces () with
          | [] -> ()
          | slow ->
            Fmt.pr "@.slow-query traces captured:@.";
            List.iter (fun (d, _) -> Fmt.pr "  %s@." d) slow
        end)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the statistics as machine-readable JSON.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 5
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Rounds through the workload (default 5): the first round \
             plans, later rounds hit the plan cache, so the report shows \
             both calls and cache hits per digest.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload and report cumulative per-query statistics \
          (calls, cache hits, rows, latency percentiles, phase split) \
          and the execution flight recorder")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg $ strategy_arg $ join_order_arg
      $ jobs_arg $ batch_size_arg $ param_arg $ repeat_arg $ json_arg
      $ slow_ms_arg
      $ trace_out_arg $ verbosity_arg)

(* ----------------------------------------------------------------- *)
(* traffic: the open-loop workload driver.  N client domains, each with
   a private session over one shared read-only database, replay a
   seeded scenario mix (ad-hoc / prepared-sweep / replan) — either
   closed loop (back to back) or open loop at a target offered rate —
   and report offered vs achieved throughput plus latency percentiles
   per scenario class. *)

let traffic_cmd =
  let go kind scale seed clients rate duration requests warmup jobs write_pct
      json verbosity =
    setup_logs verbosity;
    try
      if clients < 1 then failwith "--clients must be positive";
      if warmup < 0 then failwith "--warmup must be non-negative";
      (match rate with
      | Some r when not (r > 0.0) -> failwith "--rate must be positive"
      | _ -> ());
      let mode =
        match rate with
        | Some r -> Workload.Driver.Open r
        | None -> Workload.Driver.Closed
      in
      let requests =
        match duration, rate with
        | Some _, None -> failwith "--duration requires --rate (open loop)"
        | Some d, _ when not (d > 0.0) -> failwith "--duration must be positive"
        | Some d, Some r -> max (warmup + 1) (int_of_float (d *. r))
        | None, _ -> requests
      in
      if requests <= warmup then
        failwith "--requests must exceed --warmup";
      let db = make_db kind scale seed in
      let mix = Workload.Driver.mix_for ~write_pct db ~kind in
      (* Unlike run/analyze, the default is jobs=1: the driver
         parallelizes across clients, not inside queries, so client
         domains do not contend for the worker pool. *)
      let opts = Exec_opts.make ~jobs:(Option.value jobs ~default:1) () in
      let cfg =
        Workload.Driver.config ~clients ~mode ~requests ~warmup ~seed ~opts ()
      in
      let report = Workload.Driver.run cfg db mix in
      if json then
        Fmt.pr "%a@." Obs.Json.pp_pretty
          (Obs.Json.Obj
             (match Workload.Driver.report_to_json report with
             | Obs.Json.Obj fields ->
               ("database", Obs.Json.Str kind)
               :: ("scale", Obs.Json.Int scale)
               :: fields
             | other -> [ ("report", other) ]))
      else Fmt.pr "%a@." Workload.Driver.pp_report report;
      0
    with Failure msg ->
      Fmt.epr "pascalr: %s@." msg;
      1
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N"
          ~doc:"Concurrent client domains, each with a private session.")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Open-loop offered rate in requests/second (Poisson \
             arrivals).  Without $(b,--rate) the driver runs closed \
             loop: every client fires its next request on completion.")
  in
  let duration_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"SEC"
          ~doc:
            "With $(b,--rate): offer traffic for SEC seconds \
             (requests = rate * duration) instead of $(b,--requests).")
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N"
          ~doc:"Total requests to schedule, warmup included.")
  in
  let warmup_arg =
    Arg.(
      value & opt int 20
      & info [ "warmup" ] ~docv:"N"
          ~doc:
            "Leading requests executed but excluded from the reported \
             histograms and result multiset.")
  in
  let write_pct_arg =
    Arg.(
      value & opt int 0
      & info [ "write-pct" ] ~docv:"N"
          ~doc:
            "Make roughly N percent of requests committed write \
             transactions into the dedicated traffic_log relation \
             (uniquely keyed, so answers stay identical to a serial \
             run at any client count).  0-90; default 0 (read-only).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Drive a concurrent-client workload (closed or open loop) and \
          report throughput and latency percentiles per scenario class")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ clients_arg $ rate_arg
      $ duration_arg $ requests_arg $ warmup_arg $ jobs_arg $ write_pct_arg
      $ json_arg $ verbosity_arg)

let explain_cmd =
  let go kind scale seed schema loads query file example strategy =
    with_setup kind scale seed schema loads query file example (fun db q ->
        let st =
          match strategy with
          | Some s -> strategy_of_string s
          | None -> (Planner.choose db q).Planner.d_strategy
        in
        Fmt.pr "%s@." (Explain.explain ~strategy:st db q))
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the evaluation plan")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg $ strategy_arg)

let plan_cmd =
  let go kind scale seed schema loads query file example =
    with_setup kind scale seed schema loads query file example (fun db q ->
        let d = Planner.choose db q in
        Fmt.pr "%a@." Planner.pp_decision d)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show the planner's strategy decision")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg)

let normalize_cmd =
  let go kind scale seed schema loads query file example =
    with_setup kind scale seed schema loads query file example (fun db q ->
        Fmt.pr "=== as written ===@.%a@.@." Calculus.pp_query q;
        let sf = Standard_form.compile db q in
        Fmt.pr "=== standard form (adapted, prenex + DNF) ===@.%a@.@."
          Standard_form.pp sf;
        let sf3 = Range_ext.apply db sf in
        Fmt.pr "=== with extended range expressions (S3) ===@.%a@.@."
          Standard_form.pp sf3;
        let plan = Quant_push.apply db (Plan.of_standard_form sf3) in
        Fmt.pr "=== with pushed quantifiers (S4) ===@.%a@." Plan.pp plan)
  in
  Cmd.v
    (Cmd.info "normalize" ~doc:"Show the transformation pipeline")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg)

(* Execute a statement-level PASCAL/R program (declarations + BEGIN ...
   END), e.g. the paper's Example 4.3; prints the named relations
   afterwards. *)
let script_cmd =
  let go path show verbosity =
    setup_logs verbosity;
    try
      let db = Pascalr_lang.Interp.run_string (read_file path) in
      (match show with
      | [] ->
        Fmt.pr "relations after execution: %a@."
          (Fmt.list ~sep:Fmt.comma Fmt.string)
          (Database.relation_names db)
      | names ->
        List.iter
          (fun n -> Fmt.pr "%a@." Relation.pp (Database.find_relation db n))
          names);
      0
    with
    | Failure msg
    | Pascalr_lang.Elaborate.Elab_error msg
    | Pascalr_lang.Interp.Runtime_error msg ->
      Fmt.epr "pascalr: %s@." msg;
      1
    | Pascalr_lang.Parser.Parse_error (msg, pos) ->
      Fmt.epr "pascalr: parse error at line %d, column %d: %s@."
        pos.Pascalr_lang.Token.line pos.Pascalr_lang.Token.column msg;
      1
    | Relalg.Errors.Unknown_relation r ->
      Fmt.epr "pascalr: unknown relation %s@." r;
      1
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"PASCAL/R program file.")
  in
  let show =
    Arg.(
      value & opt_all string []
      & info [ "show" ] ~docv:"REL" ~doc:"Print this relation afterwards.")
  in
  Cmd.v
    (Cmd.info "script" ~doc:"Execute a statement-level PASCAL/R program")
    Term.(const go $ path $ show $ verbosity_arg)

(* ----------------------------------------------------------------- *)
(* serve / client: a line-oriented query and statement server over a
   Unix-domain socket, one domain per connection.  Each connection owns
   a private Session (plan cache) and PREPARE/EXECUTE table over the
   one shared database; queries run inside read transactions (pinned
   snapshots), statements inside write transactions, so concurrent
   clients always see committed states and mutations land atomically.

   Protocol: one request per line; the response is zero or more lines
   followed by a line containing a single ".".  "quit" closes the
   connection. *)

let serve_request db session prepared line =
  match Pascalr_lang.Elaborate.query_of_string db line with
  | q ->
    let rel = Session.read session (fun txn -> Session.Txn.exec txn q) in
    Fmt.str "%a@?" Relation.pp rel
  | exception
      ( Pascalr_lang.Parser.Parse_error _ | Pascalr_lang.Lexer.Lex_error _
      | Pascalr_lang.Elaborate.Elab_error _ ) ->
    (* Not a query: execute as a statement inside a write transaction,
       retrying first-committer-wins conflicts a few times. *)
    let stmt = Pascalr_lang.Parser.stmt_of_string line in
    let rec attempt n =
      try
        Session.write session (fun txn ->
            Pascalr_lang.Interp.exec
              (Pascalr_lang.Interp.txn_env ~prepared txn)
              stmt);
        "ok"
      with Errors.Txn_conflict _ when n < 100 -> attempt (n + 1)
    in
    attempt 0

let handle_conn db fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session = Session.create db in
  let prepared = Hashtbl.create 8 in
  let respond text =
    String.split_on_char '\n' text
    |> List.iter (fun l -> if l <> "" then output_string oc (l ^ "\n"));
    output_string oc ".\n";
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      if line = "quit" then ()
      else begin
        if line <> "" then begin
          (try respond (serve_request db session prepared line) with
          | Pascalr_lang.Parser.Parse_error (msg, _) ->
            respond ("error: parse: " ^ msg)
          | Pascalr_lang.Lexer.Lex_error (msg, _) ->
            respond ("error: lex: " ^ msg)
          | Pascalr_lang.Elaborate.Elab_error msg
          | Pascalr_lang.Interp.Runtime_error msg
          | Failure msg ->
            respond ("error: " ^ msg)
          | Errors.Txn_conflict msg -> respond ("error: conflict: " ^ msg)
          | Errors.Unknown_relation r ->
            respond ("error: unknown relation " ^ r))
        end;
        loop ()
      end
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) loop

let serve_cmd =
  let go kind scale seed file socket max_conns verbosity =
    setup_logs verbosity;
    try
      let db =
        match file with
        | Some path when Sys.file_exists path -> Database.open_durable ~path
        | Some path ->
          let db = make_db kind scale seed in
          Database.attach_wal db ~path;
          db
        | None -> make_db kind scale seed
      in
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX socket);
      Unix.listen sock 16;
      Fmt.pr "pascalr: serving on %s (%s)@." socket
        (if Database.durable db then "durable" else "in-memory");
      Fmt.flush Fmt.stdout ();
      let rec accept_loop n doms =
        if match max_conns with Some m -> n >= m | None -> false then doms
        else begin
          let fd, _ = Unix.accept sock in
          let d = Domain.spawn (fun () -> handle_conn db fd) in
          accept_loop (n + 1) (d :: doms)
        end
      in
      let doms = accept_loop 0 [] in
      List.iter Domain.join doms;
      Unix.close sock;
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      if Database.durable db then Database.close db;
      0
    with
    | Failure msg ->
      Fmt.epr "pascalr: %s@." msg;
      1
    | Errors.Io_error msg ->
      Fmt.epr "pascalr: I/O fault: %s@." msg;
      1
    | Errors.Corruption msg ->
      Fmt.epr "pascalr: corruption detected: %s@." msg;
      1
    | Unix.Unix_error (e, op, arg) ->
      Fmt.epr "pascalr: %s %s: %s@." op arg (Unix.error_message e);
      1
  in
  let file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"PATH"
          ~doc:
            "Serve a durable database: open PATH (snapshot + \
             write-ahead log, replaying the log if the last run \
             crashed) if it exists, otherwise seed it from the sample \
             database and attach a WAL.  Without $(b,--file) the \
             database is in-memory.")
  in
  let socket_arg =
    Arg.(
      value
      & opt string "/tmp/pascalr.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let max_conns_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Exit after serving N connections (smoke tests); default: \
             serve until killed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve queries and statements over a Unix-domain socket, one \
          domain per connection, with snapshot-isolated transactions")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ file_arg $ socket_arg
      $ max_conns_arg $ verbosity_arg)

let client_cmd =
  let go socket =
    try
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect sock (Unix.ADDR_UNIX socket);
      let ic = Unix.in_channel_of_descr sock in
      let oc = Unix.out_channel_of_descr sock in
      let rec read_response () =
        match input_line ic with
        | "." -> ()
        | line ->
          print_endline line;
          read_response ()
        | exception End_of_file -> ()
      in
      (try
         while true do
           let line = input_line stdin in
           output_string oc (line ^ "\n");
           flush oc;
           if String.trim line <> "" && String.trim line <> "quit" then
             read_response ()
         done
       with End_of_file -> ());
      (try
         output_string oc "quit\n";
         flush oc
       with Sys_error _ -> ());
      Unix.close sock;
      0
    with Unix.Unix_error (e, op, arg) ->
      Fmt.epr "pascalr: %s %s: %s@." op arg (Unix.error_message e);
      1
  in
  let socket_arg =
    Arg.(
      value
      & opt string "/tmp/pascalr.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send stdin lines to a pascalr serve socket and print each \
          response")
    Term.(const go $ socket_arg)

let () =
  (* Quiesce pool workers on every exit path (including subcommand
     failures), so no idle domain taxes final GC sections. *)
  at_exit Relalg.Domain_pool.shutdown;
  let info =
    Cmd.info "pascalr" ~version:"1.0.0"
      ~doc:"PASCAL/R relational query processing strategies (SIGMOD 1982)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_cmd;
            analyze_cmd;
            stats_cmd;
            traffic_cmd;
            serve_cmd;
            client_cmd;
            explain_cmd;
            plan_cmd;
            normalize_cmd;
            script_cmd;
          ]))
