(* Benchmark harness: regenerates every experiment of DESIGN.md
   (Section 4, "Experiment index").  The paper (SIGMOD 1982) reports no
   measured tables — its evaluation is the worked Examples 2.1-4.7 — so
   each experiment materializes one of the paper's qualitative claims as
   a measured table: who wins, by what factor, and where the effect
   comes from (scans, intermediate sizes, value-list storage).

     dune exec bench/main.exe [-- --only B-SCALE,B-DIV --max-scale 2 --out F]

   --only LIST     run only the named experiments (comma-separated ids)
   --max-scale N   skip scale points above N in the scale-parametric
                   experiments (B-SCALE, B-DIV, B-ORDER) — the CI
                   regression gate runs at scale <= 2
   --out FILE      where to write the machine-readable results *)

open Relalg
open Pascalr

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q
let exec_q_report ?opts db q = Session.exec_report ?opts (Session.create db) q


let only : string list option ref = ref None
let max_scale : int option ref = ref None
let out_path = ref "BENCH_results.json"

let scales l =
  match !max_scale with None -> l | Some m -> List.filter (fun s -> s <= m) l

let section id title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s — %s@." id title;
  Fmt.pr "============================================================@."

(* Wall-clock timing; result of [f] is returned alongside milliseconds. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let time_median ?(repeat = 3) f =
  let times = List.init repeat (fun _ -> snd (time f)) in
  match List.sort compare times with
  | [] -> 0.0
  | ts -> List.nth ts (List.length ts / 2)

(* Repeat [f], feeding each pass's wall time into a bucketed histogram.
   Returns [f]'s first result, the exact median (kept as the wall_ms
   figure so every existing comparison — including the regression
   guard's prepared-vs-cold check — stays on the same estimator), and
   the histogram's (p50, p95, p99) — [None] when there is only one
   sample: a single pass has no tail, and duplicating its time into
   p95/p99 would hand the regression gate a percentile that was never
   measured. *)
let time_percentiles ?(repeat = 3) f =
  let h = Obs.Histogram.create () in
  let r0, ms0 = time f in
  let times = ms0 :: List.init (repeat - 1) (fun _ -> snd (time f)) in
  List.iter (Obs.Histogram.observe h) times;
  let median =
    match List.sort compare times with
    | [] -> 0.0
    | ts -> List.nth ts (List.length ts / 2)
  in
  let percentiles =
    if List.length times < 2 then None
    else
      Some
        ( Obs.Histogram.quantile h 0.5,
          Obs.Histogram.quantile h 0.95,
          Obs.Histogram.quantile h 0.99 )
  in
  (r0, median, percentiles)

(* ------------------------------------------------------------------ *)
(* Machine-readable results.  Selected experiments record one row per
   measured cell; everything accumulated here is written to
   BENCH_results.json when the harness finishes, so runs can be diffed
   or plotted without scraping the printed tables. *)

let results : Obs.Json.t list ref = ref []

let record ~experiment ~query ~strategy ~scale ~wall_ms ~scans ~probes
    ~max_ntuple ?pool_hit_rate ?percentiles ?(extra = []) () =
  let open Obs.Json in
  results :=
    Obj
      ([
         ("experiment", Str experiment);
         ("query", Str query);
         ("strategy", Str strategy);
         ("scale", Int scale);
         ("wall_ms", Float wall_ms);
         ("scans", Int scans);
         ("probes", Int probes);
         ("max_ntuple", Int max_ntuple);
         ( "pool_hit_rate",
           match pool_hit_rate with Some r -> Float r | None -> Null );
       ]
      @ (match percentiles with
        | None -> []
        | Some (p50, p95, p99) ->
          [
            ("wall_ms_p50", Float p50);
            ("wall_ms_p95", Float p95);
            ("wall_ms_p99", Float p99);
          ])
      @ extra)
    :: !results

let write_results path =
  let doc =
    Obs.Json.Obj
      [
        ("harness", Obs.Json.Str "pascalr-bench");
        ("results", Obs.Json.List (List.rev !results));
      ]
  in
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Fmt.pf ppf "%a@." Obs.Json.pp_pretty doc;
  close_out oc

(* University database scaled so the unoptimized combination phase stays
   tractable at the largest scale it is asked to run. *)
let uni_params s =
  {
    Workload.University.default_params with
    Workload.University.n_employees = 10 * s;
    n_papers = 15 * s;
    n_courses = 6 * s;
    n_timetable = 20 * s;
    seed = 42 + s;
  }

let strategies =
  [
    ("palermo", Strategy.palermo);
    ("s1", Strategy.s1);
    ("s1+s2", Strategy.s12);
    ("s1+s2+s3", Strategy.s123);
    ("s1+s2+s3+s4", Strategy.s1234);
  ]

let sum_sizes_with_prefix prefix intermediates =
  List.fold_left
    (fun acc (key, size) ->
      if String.length key >= String.length prefix
         && String.sub key 0 (String.length prefix) = prefix
      then acc + size
      else acc)
    0 intermediates

(* ------------------------------------------------------------------ *)
(* B-SCALE: the headline — all strategies vs. naive across database
   scale on the running query (Example 2.1). *)

let bench_scale () =
  section "B-SCALE" "running query: all strategies across scale";
  Fmt.pr
    "(the paper's cost model is relation READS: the scans columns; wall@.";
  Fmt.pr " time of the in-memory substrate is reported alongside)@.";
  Fmt.pr "%-6s %-6s | %10s %8s | %10s %10s %10s %10s %10s | %8s@." "scale"
    "|emp|" "naive(ms)" "scans" "palermo" "s1" "s1+2" "s1+2+3" "s1+2+3+4"
    "scans4";
  let max_palermo_scale = 2 in
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      let q = Workload.Queries.running_query db in
      (* Page the relations through a buffer pool so every row carries a
         real hit rate (the pool is generous: the effect measured here
         is strategy wall time, not pool thrash — that is B-PAGE). *)
      let pool = Database.attach_storage db ~pool_pages:64 in
      let hit_rate () = Buffer_pool.hit_rate (Buffer_pool.stats pool) in
      Database.reset_counters db;
      Buffer_pool.reset_stats pool;
      let naive_ms = time_median ~repeat:1 (fun () -> Naive_eval.run db q) in
      let naive_scans = Database.total_scans db in
      record ~experiment:"B-SCALE" ~query:"running" ~strategy:"naive" ~scale:s
        ~wall_ms:naive_ms ~scans:naive_scans
        ~probes:(Database.total_probes db) ~max_ntuple:0
        ~pool_hit_rate:(hit_rate ()) ();
      let cell (sname, st) =
        let feasible =
          s <= max_palermo_scale
          || (st.Strategy.range_extension && s <= 4)
          || st.Strategy.quantifier_push
        in
        if feasible then begin
          Buffer_pool.reset_stats pool;
          let report, ms, percentiles =
            time_percentiles (fun () ->
                exec_q_report ~opts:(Exec_opts.make ~strategy:st ()) db q)
          in
          record ~experiment:"B-SCALE" ~query:"running" ~strategy:sname
            ~scale:s ~wall_ms:ms ~scans:report.Exec_result.scans
            ~probes:report.Exec_result.probes
            ~max_ntuple:report.Exec_result.max_ntuple
            ~pool_hit_rate:(hit_rate ()) ?percentiles ();
          Some (ms, report.Exec_result.scans)
        end
        else None
      in
      let cells = List.map cell strategies in
      (* s1234 is the last strategy and always feasible; its scans
         figure was just measured in the loop — reuse it instead of
         running the query a second time. *)
      let full_scans =
        match List.rev cells with
        | Some (_, scans) :: _ -> scans
        | _ -> 0
      in
      Fmt.pr "%-6d %-6d | %10.2f %8d |" s
        (Relation.cardinality (Database.find_relation db "employees"))
        naive_ms naive_scans;
      List.iter
        (function
          | Some (ms, _) -> Fmt.pr " %10.2f" ms
          | None -> Fmt.pr " %10s" "-")
        cells;
      Fmt.pr " | %8d@." full_scans)
    (scales [ 1; 2; 4; 8 ]);
  Fmt.pr "(palermo/s1/s1+2 omitted beyond scale %d: their padded n-tuple@." 2;
  Fmt.pr " products grow with the full Cartesian volume)@."

(* ------------------------------------------------------------------ *)
(* B-S1: strategy 1's claim — "each range relation is read no more than
   once".  Scan counts per database relation, Palermo vs S1. *)

let bench_s1 () =
  section "B-S1" "scan counts per relation (Example 4.3)";
  let db = Workload.University.generate (uni_params 2) in
  Fmt.pr "%-12s | %-12s | %8s %8s@." "query" "relation" "palermo" "s1";
  List.iter
    (fun (qname, q) ->
      let counts strategy =
        let _ = exec_q_report ~opts:(Exec_opts.make ~strategy ()) db q in
        List.map
          (fun r -> (Relation.name r, Relation.scan_count r))
          (Database.relations db)
      in
      let palermo = counts Strategy.palermo in
      let s1 = counts Strategy.s1 in
      List.iter
        (fun (rel, c_palermo) ->
          let c_s1 = List.assoc rel s1 in
          if c_palermo > 0 || c_s1 > 0 then
            Fmt.pr "%-12s | %-12s | %8d %8d@." qname rel c_palermo c_s1)
        palermo)
    [
      ("running", Workload.Queries.running_query db);
      ("existential", Workload.Queries.existential_query db);
      ("universal", Workload.Queries.universal_query db);
    ]

(* ------------------------------------------------------------------ *)
(* B-S2: monadic terms restrict indirect joins while reading the
   relation (Example 4.2): total indirect-join entries with and without
   the restriction. *)

let bench_s2 () =
  section "B-S2" "indirect join sizes, unrestricted vs monadically restricted";
  Fmt.pr "%-6s | %14s %16s | %12s@." "scale" "ij entries(s1)"
    "ij entries(s1+2)" "reduction";
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      let q = Workload.Queries.running_query db in
      let pair_volume strategy =
        let report = exec_q_report ~opts:(Exec_opts.make ~strategy ()) db q in
        sum_sizes_with_prefix "pair:" report.Exec_result.intermediates
      in
      let unrestricted = pair_volume Strategy.s1 in
      let restricted = pair_volume Strategy.s12 in
      Fmt.pr "%-6d | %14d %16d | %11.1f%%@." s unrestricted restricted
        (100.0
        *. (1.0 -. (float_of_int restricted /. float_of_int (max 1 unrestricted)))))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* B-S3: extended range expressions (Example 4.5): conjunction count,
   combination volume and time across the professor selectivity. *)

let bench_s3 () =
  section "B-S3" "range extension vs selectivity of estatus=professor";
  Fmt.pr "%-6s | %6s %6s | %12s %12s | %10s %10s@." "prof%" "conj" "conj3"
    "max-ntuple" "max-ntuple3" "ms(s1+2)" "ms(s1+2+3)";
  List.iter
    (fun prob ->
      let params =
        { (uni_params 2) with Workload.University.prob_professor = prob }
      in
      let db = Workload.University.generate params in
      let q = Workload.Queries.running_query db in
      let report2 = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s12 ()) db q in
      let ms2 =
        time_median ~repeat:1 (fun () -> exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s12 ()) db q)
      in
      let report3 = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s123 ()) db q in
      let ms3 =
        time_median ~repeat:1 (fun () ->
            exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s123 ()) db q)
      in
      Fmt.pr "%-6.0f | %6d %6d | %12d %12d | %10.2f %10.2f@." (100.0 *. prob)
        (List.length report2.Exec_result.plan.Plan.conjs)
        (List.length report3.Exec_result.plan.Plan.conjs)
        report2.Exec_result.max_ntuple report3.Exec_result.max_ntuple ms2 ms3)
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

(* ------------------------------------------------------------------ *)
(* B-S4: quantifier evaluation in the collection phase (Example 4.7):
   the combination phase's n-tuple volume collapses. *)

let bench_s4 () =
  section "B-S4" "quantifier pushing (Example 4.7): combination collapse";
  Fmt.pr "%-6s | %8s %8s | %12s %12s | %10s %10s@." "scale" "prefix3"
    "prefix4" "max-ntuple3" "max-ntuple4" "ms(s123)" "ms(s1234)";
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      let q = Workload.Queries.running_query db in
      let r3 = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s123 ()) db q in
      let ms3 =
        if s <= 4 then
          Fmt.str "%10.2f"
            (time_median ~repeat:1 (fun () ->
                 exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s123 ()) db q))
        else Fmt.str "%10s" "-"
      in
      let r4 = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q in
      let ms4 =
        time_median (fun () -> exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q)
      in
      Fmt.pr "%-6d | %8d %8d | %12d %12d | %s %10.2f@." s
        (List.length r3.Exec_result.plan.Plan.prefix)
        (List.length r4.Exec_result.plan.Plan.prefix)
        r3.Exec_result.max_ntuple r4.Exec_result.max_ntuple ms3 ms4)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* B-MM: the < <= > >= special case — only min/max of the value list is
   stored (Section 4.4). *)

let bench_minmax () =
  section "B-MM" "order-comparison value lists store only min/max";
  Fmt.pr "%-14s | %10s | %12s %12s | %10s@." "query" "|papers|" "full-list"
    "stored" "ms(s1234)";
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      List.iter
        (fun (qname, q) ->
          let report = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q in
          let stored =
            sum_sizes_with_prefix "vlist:" report.Exec_result.intermediates
          in
          let papers = Database.find_relation db "papers" in
          let full =
            Value_list.stored_size (Value_list.of_column papers "penr")
          in
          let ms =
            time_median (fun () ->
                exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q)
          in
          Fmt.pr "%-14s | %10d | %12d %12d | %10.3f@." qname
            (Relation.cardinality papers)
            full stored ms)
        [
          ("minmax some", Workload.Queries.minmax_some_query db);
          ("minmax all", Workload.Queries.minmax_all_query db);
        ])
    [ 2; 8 ]

(* ------------------------------------------------------------------ *)
(* B-EQ: ALL-with-= and SOME-with-<> store at most one value. *)

let bench_eq_ne () =
  section "B-EQ" "ALL-= / SOME-<> value lists store at most one value";
  Fmt.pr "%-14s | %10s | %12s | %8s@." "query" "|papers|" "stored" "answer";
  let db = Workload.University.generate (uni_params 4) in
  List.iter
    (fun (qname, q) ->
      let report = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q in
      let stored =
        sum_sizes_with_prefix "vlist:" report.Exec_result.intermediates
      in
      Fmt.pr "%-14s | %10d | %12d | %8d@." qname
        (Relation.cardinality (Database.find_relation db "papers"))
        stored
        (Relation.cardinality report.Exec_result.result))
    [
      ("all eq", Workload.Queries.all_eq_query db);
      ("some ne", Workload.Queries.some_ne_query db);
    ]

(* ------------------------------------------------------------------ *)
(* B-EMPTY: runtime adaptation of the standard form (Example 2.2). *)

let bench_empty () =
  section "B-EMPTY" "empty-range adaptation: correctness and overhead";
  Fmt.pr "%-10s | %10s %12s | %12s %12s@." "papers" "answer" "agree-naive"
    "ms(s1234)" "ms(naive)";
  List.iter
    (fun empty ->
      let db = Workload.University.generate (uni_params 4) in
      if empty then Relation.clear (Database.find_relation db "papers");
      let q = Workload.Queries.running_query db in
      let naive, naive_ms = time (fun () -> Naive_eval.run db q) in
      let result, ms =
        time (fun () -> exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q)
      in
      Fmt.pr "%-10s | %10d %12b | %12.2f %12.2f@."
        (if empty then "empty" else "populated")
        (Relation.cardinality result)
        (Relation.equal_set result naive)
        ms naive_ms)
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* B-DIV: universal quantification on suppliers-parts — division in the
   combination phase vs the transformed evaluation. *)

let bench_division () =
  section "B-DIV" "division queries (suppliers-parts)";
  Fmt.pr "%-6s | %-20s | %10s %10s %10s %10s@." "scale" "query" "naive"
    "palermo" "s1+2+3" "s1+2+3+4";
  List.iter
    (fun s ->
      let db =
        Workload.Suppliers.generate (Workload.Suppliers.scaled ~seed:(7 + s) s)
      in
      List.iter
        (fun (qname, q) ->
          Database.reset_counters db;
          let naive_ms = time_median ~repeat:1 (fun () -> Naive_eval.run db q) in
          record ~experiment:"B-DIV" ~query:qname ~strategy:"naive" ~scale:s
            ~wall_ms:naive_ms ~scans:(Database.total_scans db)
            ~probes:(Database.total_probes db) ~max_ntuple:0 ();
          let run sname st =
            let report, ms, percentiles =
              time_percentiles (fun () ->
                  exec_q_report ~opts:(Exec_opts.make ~strategy:st ()) db q)
            in
            record ~experiment:"B-DIV" ~query:qname ~strategy:sname ~scale:s
              ~wall_ms:ms ~scans:report.Exec_result.scans
              ~probes:report.Exec_result.probes
              ~max_ntuple:report.Exec_result.max_ntuple ?percentiles ();
            ms
          in
          let palermo =
            if s <= 2 then Fmt.str "%10.2f" (run "palermo" Strategy.palermo)
            else Fmt.str "%10s" "-"
          in
          Fmt.pr "%-6d | %-20s | %10.2f %s %10.2f %10.2f@." s qname naive_ms
            palermo
            (run "s1+s2+s3" Strategy.s123)
            (run "s1+s2+s3+s4" Strategy.s1234))
        [
          ("ships all parts", Workload.Suppliers.ships_all_parts db);
          ("ships all red", Workload.Suppliers.ships_all_red_parts db);
          ("no red part", Workload.Suppliers.ships_no_red_part db);
        ])
    (scales [ 1; 2; 4 ])

(* ------------------------------------------------------------------ *)
(* B-ORDER: the streaming combination engine (cost-ordered joins, eager
   quantifier elimination) against the declaration-order baseline that
   pads every conjunction to the full variable order.  Same plans, same
   collection structures — the gap is pure combination-phase execution,
   visible in the intermediate volume (max_ntuple) and the join traffic
   through the engine. *)

let bench_order () =
  section "B-ORDER" "cost-ordered streaming combination vs declaration order";
  Fmt.pr "%-14s %-6s %-12s | %10s %12s %12s %12s@." "query" "scale" "engine"
    "wall_ms" "max_ntuple" "join_in" "join_out";
  let engines =
    [ ("ordered", Combination.Cost_ordered); ("declaration", Combination.Declaration) ]
  in
  let case qname scale strategy db q =
    let pool = Database.attach_storage db ~pool_pages:64 in
    List.iter
      (fun (ename, join_order) ->
        let repeat = 3 in
        Buffer_pool.reset_stats pool;
        let in0 = Obs.Metrics.counter_value "combination.join_rows_in" in
        let out0 = Obs.Metrics.counter_value "combination.join_rows_out" in
        let report, ms, percentiles =
          time_percentiles ~repeat (fun () ->
              exec_q_report
                ~opts:(Exec_opts.make ~strategy ~join_order ())
                db q)
        in
        (* The deterministic evaluation repeats identically, so the
           per-execution join traffic is the delta over all passes
           divided by the pass count. *)
        let join_in =
          (Obs.Metrics.counter_value "combination.join_rows_in" - in0)
          / repeat
        in
        let join_out =
          (Obs.Metrics.counter_value "combination.join_rows_out" - out0)
          / repeat
        in
        record ~experiment:"B-ORDER" ~query:qname ~strategy:ename ~scale
          ~wall_ms:ms ~scans:report.Exec_result.scans
          ~probes:report.Exec_result.probes
          ~max_ntuple:report.Exec_result.max_ntuple
          ~pool_hit_rate:(Buffer_pool.hit_rate (Buffer_pool.stats pool))
          ?percentiles
          ~extra:
            [
              ("join_rows_in", Obs.Json.Int join_in);
              ("join_rows_out", Obs.Json.Int join_out);
            ]
          ();
        Fmt.pr "%-14s %-6d %-12s | %10.2f %12d %12d %12d@." qname scale ename
          ms report.Exec_result.max_ntuple join_in join_out)
      engines
  in
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      case "running" s Strategy.s12 db (Workload.Queries.running_query db))
    (scales [ 1; 2 ]);
  List.iter
    (fun s ->
      let db =
        Workload.Suppliers.generate (Workload.Suppliers.scaled ~seed:(7 + s) s)
      in
      case "no red part" s Strategy.s123 db
        (Workload.Suppliers.ships_no_red_part db))
    (scales [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* B-PAGE: the 1982 cost model made real — page reads through a buffer
   pool over the paged storage substrate.  The naive evaluator's
   repeated scans thrash a small pool; the collected evaluation reads
   each relation once. *)

let bench_page_io () =
  section "B-PAGE" "page I/O through the buffer pool (running query, scale 2)";
  Fmt.pr "%-12s | %13s %8s | %14s %8s@." "evaluator" "reads(pool 4)"
    "fetches" "reads(pool 32)" "fetches";
  let run_with pool_pages name eval =
    let db = Workload.University.generate (uni_params 2) in
    let q = Workload.Queries.running_query db in
    let pool = Database.attach_storage db ~pool_pages in
    Database.reset_counters db;
    let _, ms = time (fun () -> eval db q) in
    let s = Buffer_pool.stats pool in
    record ~experiment:"B-PAGE" ~query:"running" ~strategy:name ~scale:2
      ~wall_ms:ms ~scans:(Database.total_scans db)
      ~probes:(Database.total_probes db) ~max_ntuple:0
      ~pool_hit_rate:(Buffer_pool.hit_rate s)
      ~extra:
        [
          ("pool_pages", Obs.Json.Int pool_pages);
          ("page_reads", Obs.Json.Int s.Buffer_pool.misses);
        ]
      ();
    (s.Buffer_pool.misses, s.Buffer_pool.fetches)
  in
  let row name eval =
    let m4, f4 = run_with 4 name eval in
    let m32, f32 = run_with 32 name eval in
    Fmt.pr "%-12s | %13d %8d | %14d %8d@." name m4 f4 m32 f32
  in
  row "naive" (fun db q -> ignore (Naive_eval.run db q));
  List.iter
    (fun (name, st) ->
      row name (fun db q -> ignore (exec_q ~opts:(Exec_opts.make ~strategy:st ()) db q)))
    strategies;
  (* The gap widens with scale: naive re-reads relations per enclosing
     binding. *)
  Fmt.pr "@.scale 8, pool 6 pages (database ~16 pages):@.";
  let run4 eval =
    let db = Workload.University.generate (uni_params 8) in
    let q = Workload.Queries.running_query db in
    let pool = Database.attach_storage db ~pool_pages:6 in
    eval db q;
    (Buffer_pool.stats pool).Buffer_pool.misses
  in
  Fmt.pr "%-12s | %8d page reads@." "naive"
    (run4 (fun db q -> ignore (Naive_eval.run db q)));
  Fmt.pr "%-12s | %8d page reads@." "s1+s2+s3+s4"
    (run4 (fun db q ->
         ignore (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q)))

(* ------------------------------------------------------------------ *)
(* B-IDX: permanent indexes (Section 3.2: "The first step can be
   omitted, if permanent indexes exist"). *)

let bench_permanent_indexes () =
  section "B-IDX" "permanent indexes omit index-building scans";
  Fmt.pr "(indexes registered: timetable.tcnr, timetable.tenr, papers.penr)@.";
  Fmt.pr "%-12s | %-8s | %8s %8s@." "query" "strategy" "scans" "scans+ix";
  List.iter
    (fun (qname, make_q) ->
      List.iter
        (fun (sname, strategy) ->
          let db = Workload.University.generate (uni_params 4) in
          let q = make_q db in
          let r0 = exec_q_report ~opts:(Exec_opts.make ~strategy ()) db q in
          ignore (Database.register_index db "timetable" ~on:"tcnr");
          ignore (Database.register_index db "timetable" ~on:"tenr");
          ignore (Database.register_index db "papers" ~on:"penr");
          let r1 = exec_q_report ~opts:(Exec_opts.make ~strategy ()) db q in
          Fmt.pr "%-12s | %-8s | %8d %8d@." qname sname r0.Exec_result.scans
            r1.Exec_result.scans)
        [ ("palermo", Strategy.palermo); ("s1+2", Strategy.s12) ])
    [
      ("existential", Workload.Queries.existential_query);
      ("universal", Workload.Queries.universal_query);
    ]

(* ------------------------------------------------------------------ *)
(* B-CNF: range extensions in conjunctive normal form (Section 4.3's
   future-work remark) on a query whose ALL variable carries a
   two-atom pure-monadic conjunction. *)

let cnf_query db =
  ignore db;
  let open Calculus in
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "enr") ];
    body =
      f_all "p" (base "papers")
        (f_or
           (f_and
              (ne (attr "p" "pyear") (cint 1977))
              (gt (attr "p" "penr") (cint 5)))
           (eq (attr "p" "penr") (attr "e" "enr")));
  }

let bench_cnf () =
  section "B-CNF" "CNF range extensions: conjunction count and volume";
  Fmt.pr "%-6s | %6s %6s | %12s %12s | %10s %10s@." "scale" "conj" "conjC"
    "max-ntuple" "max-ntupleC" "ms(s123)" "ms(s123c)";
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      let q = cnf_query db in
      let r3 = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s123 ()) db q in
      let ms3 =
        time_median ~repeat:1 (fun () ->
            exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s123 ()) db q)
      in
      let rc = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s123c ()) db q in
      let msc =
        time_median ~repeat:1 (fun () ->
            exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s123c ()) db q)
      in
      Fmt.pr "%-6d | %6d %6d | %12d %12d | %10.2f %10.2f@." s
        (List.length r3.Exec_result.plan.Plan.conjs)
        (List.length rc.Exec_result.plan.Plan.conjs)
        r3.Exec_result.max_ntuple rc.Exec_result.max_ntuple ms3 msc)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* B-JOIN: the combination phase's join operation, three ways (the
   paper's references [6,9]): hash vs sort-merge vs nested loop on
   reference-relation-shaped inputs. *)

let bench_joins () =
  section "B-JOIN" "join algorithms for the combination phase";
  Fmt.pr "%-8s | %10s %10s %12s@." "rows" "hash(ms)" "merge(ms)" "nested(ms)";
  let schema_l =
    Schema.make
      [ Schema.attr "a" Vtype.int_full; Schema.attr "x" Vtype.int_full ]
      ~key:[]
  in
  let schema_r =
    Schema.make
      [ Schema.attr "b" Vtype.int_full; Schema.attr "y" Vtype.int_full ]
      ~key:[]
  in
  List.iter
    (fun n ->
      let rng = Workload.Prng.create (n + 17) in
      let mk schema =
        let rel = Relation.create schema in
        for i = 1 to n do
          Relation.insert rel
            (Tuple.of_list
               [ Value.int (Workload.Prng.in_range rng 1 (n / 4)); Value.int i ])
        done;
        rel
      in
      let a = mk schema_l and b = mk schema_r in
      let t name f = (name, time_median ~repeat:1 f) in
      let results =
        [
          t "hash" (fun () -> Algebra.equi_join ~on:[ ("a", "b") ] a b);
          t "merge" (fun () -> Algebra.merge_join ~on:[ ("a", "b") ] a b);
          t "nested" (fun () ->
              Algebra.nested_loop_join ~on:[ ("a", "b") ] a b);
        ]
      in
      Fmt.pr "%-8d | %10.2f %10.2f %12.2f@." n
        (List.assoc "hash" results)
        (List.assoc "merge" results)
        (List.assoc "nested" results))
    [ 200; 800; 2000 ]

(* ------------------------------------------------------------------ *)
(* B-PAR: partitioned parallel execution across the domain pool, on the
   two largest B-ORDER scenarios.  jobs=1 is the untouched serial
   engine; higher settings fan the collection builds and the partition
   chunks across (jobs - 1) pooled helper domains plus the caller.
   par_threshold is forced to 0 so the benchmark databases partition at
   every operator — the speedup (or, on a single hardware core, the
   overhead) of the parallel machinery itself is what is measured.
   Recorded per cell: jobs and the pool tasks the run spawned, so the
   regression guard can confirm the parallel path actually ran. *)

let bench_parallel () =
  section "B-PAR" "partitioned parallel execution: jobs 1 vs 2 vs max";
  let jobs_list =
    List.sort_uniq compare
      [ 1; 2; max 4 (Domain.recommended_domain_count ()) ]
  in
  Fmt.pr "(hardware cores: %d; par_threshold 0; median of 5 passes)@."
    (Domain.recommended_domain_count ());
  Fmt.pr "%-14s %-6s %-5s | %10s %9s %10s@." "query" "scale" "jobs" "wall_ms"
    "speedup" "par_tasks";
  let case qname scale strategy db q =
    let serial_ms = ref 0.0 in
    List.iter
      (fun jobs ->
        let opts = Exec_opts.make ~strategy ~jobs ~par_threshold:0 () in
        (* Warmup: spawn the pool workers (a one-off cost amortized
           across queries in a real process) and touch the caches. *)
        let report = exec_q_report ~opts db q in
        let t0 = Obs.Metrics.counter_value "parallel.tasks" in
        let (), ms, percentiles =
          time_percentiles ~repeat:5 (fun () ->
              ignore (exec_q ~opts db q : Relation.t))
        in
        let tasks =
          (Obs.Metrics.counter_value "parallel.tasks" - t0) / 5
        in
        if jobs = 1 then serial_ms := ms;
        record ~experiment:"B-PAR" ~query:qname
          ~strategy:(Fmt.str "jobs=%d" jobs) ~scale ~wall_ms:ms
          ~scans:report.Exec_result.scans ~probes:report.Exec_result.probes
          ~max_ntuple:report.Exec_result.max_ntuple ?percentiles
          ~extra:
            [
              ("jobs", Obs.Json.Int jobs);
              ("par_tasks", Obs.Json.Int tasks);
            ]
          ();
        Fmt.pr "%-14s %-6d %-5d | %10.2f %8.2fx %10d@." qname scale jobs ms
          (!serial_ms /. Float.max ms 0.001)
          tasks)
      jobs_list
  in
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      case "running" s Strategy.s12 db (Workload.Queries.running_query db))
    (scales [ 2 ]);
  List.iter
    (fun s ->
      let db =
        Workload.Suppliers.generate (Workload.Suppliers.scaled ~seed:(7 + s) s)
      in
      case "no red part" s Strategy.s123 db
        (Workload.Suppliers.ships_no_red_part db))
    (scales [ 4 ]);
  (* Join the pool workers: idle parked domains tax every later
     stop-the-world section, and nothing after B-PAR needs the pool. *)
  Domain_pool.shutdown ()

(* B-PREP: the Session plan cache — prepared re-execution vs cold
   one-shot runs.  A cold run (exec_q, one throwaway session
   per call) re-enters the whole planning pipeline every time: adapt,
   standard form, range extension, quantifier pushing.  A prepared
   query pays for planning once; each further execution costs one
   cache probe plus the collection / combination / construction phases.
   The parameterized row grounds a fresh $minqty binding per execution
   — substitution into the one cached plan, no re-planning. *)

let param_shipments_query =
  let open Calculus in
  {
    free = [ ("s", base "suppliers") ];
    select = [ ("s", "sname") ];
    body =
      f_some "h" (base "shipments")
        (f_and
           (eq (attr "h" "hsnr") (attr "s" "snr"))
           (mk_atom (attr "h" "hqty") Value.Ge (param "minqty")));
  }

let bench_prepared () =
  section "B-PREP" "prepared re-execution vs cold one-shot runs";
  let repeats = 40 in
  Fmt.pr
    "(each cell: wall ms of %d executions, median of 5 passes; prepare@."
    repeats;
  Fmt.pr " is the one-off planning cost the prepared column no longer pays)@.";
  Fmt.pr "%-22s %-6s | %10s %10s %9s | %10s | %5s %6s@." "query" "scale"
    "cold" "prepared" "speedup" "prepare" "hits" "misses";
  let case qname scale strategy db q bindings_of_i =
    let opts = Exec_opts.make ~strategy () in
    let ground i =
      match bindings_of_i with
      | None -> q
      | Some f ->
        let b =
          List.fold_left
            (fun m (k, v) -> Calculus.Var_map.add k v m)
            Calculus.Var_map.empty (f i)
        in
        Calculus.subst_query b q
    in
    (* One untimed execution of each path first: module initialisation,
       tracer setup and heap growth land on the warmup, not the race. *)
    ignore (exec_q ~opts db (ground 0) : Relation.t);
    let (), cold_ms, cold_percentiles =
      time_percentiles ~repeat:5 (fun () ->
          for i = 1 to repeats do
            ignore (exec_q ~opts db (ground i) : Relation.t)
          done)
    in
    ignore
      (Session.exec ~opts
         ?params:(Option.map (fun f -> f 0) bindings_of_i)
         (Session.create db) q
        : Relation.t);
    let session = Session.create db in
    let prep, prepare_ms = time (fun () -> Session.prepare ~opts session q) in
    let (), prep_ms, prep_percentiles =
      time_percentiles ~repeat:5 (fun () ->
          for i = 1 to repeats do
            let params = Option.map (fun f -> f i) bindings_of_i in
            ignore (Prepared.exec ?params prep : Relation.t)
          done)
    in
    let stats = Session.cache_stats session in
    let extra =
      [
        ("repeats", Obs.Json.Int repeats);
        ("prepare_ms", Obs.Json.Float prepare_ms);
        ("cache_hits", Obs.Json.Int stats.Plan_cache.hits);
        ("cache_misses", Obs.Json.Int stats.Plan_cache.misses);
      ]
    in
    record ~experiment:"B-PREP" ~query:qname ~strategy:"cold" ~scale
      ~wall_ms:cold_ms ~scans:0 ~probes:0 ~max_ntuple:0
      ?percentiles:cold_percentiles
      ~extra:[ ("repeats", Obs.Json.Int repeats) ]
      ();
    record ~experiment:"B-PREP" ~query:qname ~strategy:"prepared" ~scale
      ~wall_ms:prep_ms ~scans:0 ~probes:0 ~max_ntuple:0
      ?percentiles:prep_percentiles ~extra ();
    Fmt.pr "%-22s %-6d | %10.2f %10.2f %8.1fx | %10.2f | %5d %6d@." qname
      scale cold_ms prep_ms
      (cold_ms /. Float.max prep_ms 0.001)
      prepare_ms stats.Plan_cache.hits stats.Plan_cache.misses
  in
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      case "running" s Strategy.s1234 db (Workload.Queries.running_query db)
        None)
    (scales [ 1; 2 ]);
  List.iter
    (fun s ->
      let db =
        Workload.Suppliers.generate (Workload.Suppliers.scaled ~seed:(7 + s) s)
      in
      case "ships all parts" s Strategy.s1234 db
        (Workload.Suppliers.ships_all_parts db)
        None;
      case "heavy shipments($q)" s Strategy.s1234 db param_shipments_query
        (Some (fun i -> [ ("minqty", Value.int (100 + (i * 17 mod 800))) ])))
    (scales [ 1 ])

(* ------------------------------------------------------------------ *)
(* B-VEC: the vectorized combination engine against the scalar
   per-tuple emit, on the two largest B-ORDER scenarios.  Same plans,
   same collection structures, tuple-for-tuple identical results (the
   QCheck differential in the test suite proves it) — the gap is pure
   kernel execution: column encode once per query, selection vectors,
   integer-keyed join tables.  Median of 5, with the histogram
   percentiles of the pass latencies. *)

let bench_vec () =
  section "B-VEC" "vectorized batch kernels vs scalar streaming emit";
  let batched = Exec_opts.default_batch_size in
  Fmt.pr "(batched arm uses batch_size %d)@." batched;
  Fmt.pr "%-14s %-6s %-12s | %10s %10s %10s %10s@." "query" "scale" "engine"
    "wall_ms" "p50" "p95" "p99";
  let case qname scale strategy db q =
    List.iter
      (fun (ename, batch_size) ->
        let report, ms, percentiles =
          time_percentiles ~repeat:5 (fun () ->
              exec_q_report
                ~opts:(Exec_opts.make ~strategy ~batch_size ())
                db q)
        in
        let p50, p95, p99 =
          match percentiles with Some p -> p | None -> (ms, ms, ms)
        in
        record ~experiment:"B-VEC" ~query:qname ~strategy:ename ~scale
          ~wall_ms:ms ~scans:report.Exec_result.scans
          ~probes:report.Exec_result.probes
          ~max_ntuple:report.Exec_result.max_ntuple ?percentiles
          ~extra:[ ("batch_size", Obs.Json.Int batch_size) ]
          ();
        Fmt.pr "%-14s %-6d %-12s | %10.2f %10.2f %10.2f %10.2f@." qname scale
          ename ms p50 p95 p99)
      [ ("scalar", 1); ("batched", batched) ]
  in
  List.iter
    (fun s ->
      let db = Workload.University.generate (uni_params s) in
      case "running" s Strategy.s12 db (Workload.Queries.running_query db))
    (scales [ 2 ]);
  List.iter
    (fun s ->
      let db =
        Workload.Suppliers.generate (Workload.Suppliers.scaled ~seed:(7 + s) s)
      in
      case "no red part" s Strategy.s123 db
        (Workload.Suppliers.ships_no_red_part db))
    (scales [ 4 ])

(* ------------------------------------------------------------------ *)
(* B-INDEX: persistent secondary indexes as collection access paths.
   An equality restriction selecting ~1/1000 of shipments, executed
   prepared (the plan cache pays planning once, so the cells compare
   access paths, not planners): the "indexed" leg drives the range from
   a declared secondary hash index on hqty — one bucket probe per
   execution — while the "scan" leg (use_index=false) walks the whole
   heap.  Same database, same plan, identical results (the QCheck
   differential in the test suite proves it); the gap is the access
   path, and it widens linearly with the relation. *)

let selective_shipments_query =
  let open Calculus in
  {
    free = [ ("h", base "shipments") ];
    select = [ ("h", "hsnr"); ("h", "hpnr") ];
    body = eq (attr "h" "hqty") (cint 500);
  }

let bench_index () =
  section "B-INDEX" "secondary-index probe vs heap scan (hqty = 500)";
  Fmt.pr "(secondary hash index on shipments.hqty; median of 5 passes)@.";
  Fmt.pr "%-6s %-10s | %-6s | %10s %8s %8s %6s | %8s@." "scale" "|ship|"
    "leg" "wall_ms" "scans" "probes" "rows" "speedup";
  List.iter
    (fun s ->
      let db =
        Workload.Suppliers.generate
          (Workload.Suppliers.scaled ~seed:(11 + s) s)
      in
      ignore
        (Database.declare_index db "shipments" ~on:[ "hqty" ]
          : Secondary_index.t);
      let n_ship =
        Relation.cardinality (Database.find_relation db "shipments")
      in
      let leg name use_index =
        let opts = Exec_opts.make ~strategy:Strategy.s1234 ~use_index () in
        let report = exec_q_report ~opts db selective_shipments_query in
        let session = Session.create db in
        let prep = Session.prepare ~opts session selective_shipments_query in
        ignore (Prepared.exec prep : Relation.t);
        let (), ms, percentiles =
          time_percentiles ~repeat:5 (fun () ->
              ignore (Prepared.exec prep : Relation.t))
        in
        let access =
          match report.Exec_result.access_paths with
          | (_, p) :: _ -> p
          | [] -> "-"
        in
        record ~experiment:"B-INDEX" ~query:"hqty=500" ~strategy:name ~scale:s
          ~wall_ms:ms ~scans:report.Exec_result.scans
          ~probes:report.Exec_result.probes
          ~max_ntuple:report.Exec_result.max_ntuple ?percentiles
          ~extra:
            [
              ("rows", Obs.Json.Int report.Exec_result.rows);
              ("access_path", Obs.Json.Str access);
              ("shipments", Obs.Json.Int n_ship);
            ]
          ();
        (ms, report)
      in
      let scan_ms, scan_r = leg "scan" false in
      let indexed_ms, indexed_r = leg "indexed" true in
      let row name ms (r : Exec_result.t) speedup =
        Fmt.pr "%-6d %-10d | %-6s | %10.3f %8d %8d %6d | %8s@." s n_ship name
          ms r.Exec_result.scans r.Exec_result.probes r.Exec_result.rows
          speedup
      in
      row "scan" scan_ms scan_r "-";
      row "indexed" indexed_ms indexed_r
        (Fmt.str "%.1fx" (scan_ms /. Float.max indexed_ms 0.001)))
    (scales [ 1; 2; 64; 512 ])

(* ------------------------------------------------------------------ *)
(* B-TRAFFIC: the workload driver under concurrent clients — the same
   seeded university mix driven closed-loop (back-to-back, measures
   capacity) and open-loop (Poisson arrivals at a fixed offered rate;
   latency from *scheduled* arrival, so queueing delay is charged and
   coordinated omission cannot hide).  Passes interleave A-B-A-B so
   drift — heap growth, cache warmth — lands on both modes equally.
   One row per pass; the regression guard keys on (strategy, pass) and
   checks the achieved-throughput floor and the p95 ceiling. *)

let bench_traffic () =
  section "B-TRAFFIC" "concurrent-client traffic: closed vs open loop (A-B-A-B)";
  let module D = Workload.Driver in
  let scale = 2 and clients = 4 and requests = 120 and warmup = 20 in
  let rate = 50.0 and seed = 42 in
  let db = Workload.University.generate (uni_params scale) in
  let mix = D.university_mix db in
  Fmt.pr
    "(university scale %d, %d clients, %d requests, warmup %d, seed %d)@."
    scale clients requests warmup seed;
  Fmt.pr "%-4s %-12s | %8s %9s | %9s %9s %9s@." "pass" "mode" "offered"
    "achieved" "p50(ms)" "p95(ms)" "p99(ms)";
  (* One A-B-A-B round per mix: read-only, then a 30%-write mix whose
     commits go through snapshot transactions into traffic_log (the
     suffix keeps the regression-guard keys disjoint). *)
  let round ~query ~suffix mix =
    List.iteri
      (fun pass mode ->
        let cfg = D.config ~clients ~mode ~requests ~warmup ~seed () in
        let r = D.run cfg db mix in
        let p q = Obs.Histogram.quantile r.D.r_latency q in
        let p50 = p 0.5 and p95 = p 0.95 and p99 = p 0.99 in
        let strategy, offered =
          match mode with
          | D.Closed -> ("closed" ^ suffix, Obs.Json.Null)
          | D.Open rps -> ("open" ^ suffix, Obs.Json.Float rps)
        in
        record ~experiment:"B-TRAFFIC" ~query ~strategy ~scale
          ~wall_ms:r.D.r_wall_ms ~scans:0 ~probes:0 ~max_ntuple:0
          ~percentiles:(p50, p95, p99)
          ~extra:
            [
              ("pass", Obs.Json.Int pass);
              ("clients", Obs.Json.Int clients);
              ("requests", Obs.Json.Int requests);
              ("warmup", Obs.Json.Int warmup);
              ("offered_rps", offered);
              ("achieved_rps", Obs.Json.Float r.D.r_achieved_rps);
            ]
          ();
        Fmt.pr "%-4d %-12s | %8s %9.1f | %9.2f %9.2f %9.2f@." pass strategy
          (match mode with
          | D.Closed -> "-"
          | D.Open rps -> Fmt.str "%.1f" rps)
          r.D.r_achieved_rps p50 p95 p99)
      [ D.Closed; D.Open rate; D.Closed; D.Open rate ]
  in
  round ~query:"university-mix" ~suffix:"" mix;
  round ~query:"university-mix-rw" ~suffix:"-rw"
    (D.mix_for ~write_pct:30 db ~kind:"university")

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmark of the headline comparison at one scale. *)

let bench_bechamel () =
  section "B-MICRO" "bechamel estimates (ns/run), running query, scale 1";
  let open Bechamel in
  let open Toolkit in
  let db = Workload.University.generate (uni_params 1) in
  let q = Workload.Queries.running_query db in
  let tests =
    Test.make_grouped ~name:"running-query"
      (Test.make ~name:"naive" (Staged.stage (fun () -> Naive_eval.run db q))
      :: List.map
           (fun (name, st) ->
             Test.make ~name
               (Staged.stage (fun () -> exec_q ~opts:(Exec_opts.make ~strategy:st ()) db q)))
           strategies)
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      Fmt.pr "%-32s %14.0f ns/run (%8.3f ms)@." name ns (ns /. 1e6))
    (List.sort (fun (_, a) (_, b) -> compare a b) rows)

let experiments =
  [
    ("B-SCALE", bench_scale);
    ("B-S1", bench_s1);
    ("B-S2", bench_s2);
    ("B-S3", bench_s3);
    ("B-S4", bench_s4);
    ("B-MM", bench_minmax);
    ("B-EQ", bench_eq_ne);
    ("B-EMPTY", bench_empty);
    ("B-DIV", bench_division);
    ("B-ORDER", bench_order);
    ("B-PREP", bench_prepared);
    ("B-PAGE", bench_page_io);
    ("B-IDX", bench_permanent_indexes);
    ("B-CNF", bench_cnf);
    ("B-JOIN", bench_joins);
    ("B-VEC", bench_vec);
    ("B-INDEX", bench_index);
    ("B-MICRO", bench_bechamel);
    (* The two multi-domain experiments run last: the serial experiments
       must not share their process phase with extra domains, which tax
       every stop-the-world GC section.  B-TRAFFIC's client domains are
       joined when each pass ends; B-PAR's pool workers are joined by the
       Domain_pool.shutdown at its end. *)
    ("B-TRAFFIC", bench_traffic);
    ("B-PAR", bench_parallel);
  ]

let () =
  let spec =
    [
      ( "--only",
        Arg.String
          (fun s ->
            let ids = String.split_on_char ',' s |> List.map String.trim in
            List.iter
              (fun id ->
                if not (List.mem_assoc id experiments) then
                  raise (Arg.Bad ("unknown experiment " ^ id)))
              ids;
            only := Some ids),
        "LIST run only the named experiments (comma-separated ids)" );
      ( "--max-scale",
        Arg.Int (fun n -> max_scale := Some n),
        "N skip scale points above N (B-SCALE, B-DIV, B-ORDER, B-PAR)" );
      ("--out", Arg.Set_string out_path, "FILE results path");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--only LIST] [--max-scale N] [--out FILE]";
  Fmt.pr "PASCAL/R query processing strategies — experiment harness@.";
  Fmt.pr "(Jarke & Schmidt, SIGMOD 1982; see DESIGN.md section 4)@.";
  let enabled name =
    match !only with None -> true | Some ids -> List.mem name ids
  in
  List.iter (fun (name, f) -> if enabled name then f ()) experiments;
  write_results !out_path;
  Fmt.pr "@.machine-readable results written to %s@." !out_path;
  Fmt.pr "@.done.@."
