(* pascalr — command-line driver for the PASCAL/R query processor.

   Subcommands:
     run       evaluate a query against a generated sample database
     explain   show the transformation pipeline and evaluation plan
     plan      show the cost-based planner's decision
     normalize show the standard form (prenex + DNF) of a query
     script    execute a statement-level PASCAL/R program

   Queries are given in the paper's concrete syntax, either inline
   (--query), from a file (--file), or one of the named built-ins
   (--example).  Databases are the generated university or
   suppliers-parts instances. *)

open Relalg
open Pascalr
open Cmdliner

(* ----------------------------------------------------------------- *)
(* Database selection *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

(* --schema declarations.pas [--load rel=data.csv ...] *)
let make_custom_db schema_path loads =
  let db = Pascalr_lang.Elaborate.database_of_string (read_file schema_path) in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | None -> failwith ("--load expects REL=PATH, got " ^ spec)
      | Some i ->
        let rel_name = String.sub spec 0 i in
        let path = String.sub spec (i + 1) (String.length spec - i - 1) in
        let target = Database.find_relation db rel_name in
        let loaded =
          Csv_io.of_string ~name:(rel_name ^ "_csv")
            (Relation.schema target) (read_file path)
        in
        Relation.iter (Relation.insert target) loaded)
    loads;
  db

let make_db kind scale seed =
  match kind with
  | "university" ->
    Workload.University.generate
      { (Workload.University.scaled scale) with Workload.University.seed = seed }
  | "suppliers" ->
    Workload.Suppliers.generate
      { (Workload.Suppliers.scaled scale) with Workload.Suppliers.seed = seed }
  | other -> failwith ("unknown database kind: " ^ other)

let named_query db = function
  | "running" | "example-2.1" -> Workload.Queries.running_query db
  | "example-4.5" -> Workload.Queries.example_4_5 db
  | "example-4.7" -> Workload.Queries.example_4_7 db
  | "existential" -> Workload.Queries.existential_query db
  | "universal" -> Workload.Queries.universal_query db
  | "ships-all-parts" -> Workload.Suppliers.ships_all_parts db
  | "ships-all-red" -> Workload.Suppliers.ships_all_red_parts db
  | "no-red-part" -> Workload.Suppliers.ships_no_red_part db
  | other -> failwith ("unknown example query: " ^ other)

let resolve_query db ~query ~file ~example =
  match query, file, example with
  | Some src, None, None -> Pascalr_lang.Elaborate.query_of_string db src
  | None, Some path, None ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Pascalr_lang.Elaborate.query_of_string db src
  | None, None, Some name -> named_query db name
  | None, None, None -> named_query db "running"
  | _ -> failwith "give at most one of --query, --file, --example"

let strategy_of_string = function
  | "palermo" -> Strategy.palermo
  | "s1" -> Strategy.s1
  | "s12" -> Strategy.s12
  | "s123" -> Strategy.s123
  | "s1234" | "full" -> Strategy.full
  | other -> failwith ("unknown strategy: " ^ other)

(* ----------------------------------------------------------------- *)
(* Common options *)

let db_arg =
  Arg.(
    value
    & opt string "university"
    & info [ "d"; "database" ] ~docv:"KIND"
        ~doc:"Sample database: university or suppliers.")

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Database scale factor.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"SRC" ~doc:"Query in PASCAL/R syntax.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"PATH" ~doc:"Read the query from a file.")

let example_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "example" ] ~docv:"NAME"
        ~doc:
          "Built-in query: running, example-4.5, example-4.7, existential, \
           universal, ships-all-parts, ships-all-red, no-red-part.")

let strategy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "strategy" ] ~docv:"S"
        ~doc:
          "Evaluation strategy: palermo, s1, s12, s123, s1234/full.  Default: \
           let the planner choose.")

(* ----------------------------------------------------------------- *)
(* Subcommands *)

let schema_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "schema" ] ~docv:"PATH"
        ~doc:"Use a PASCAL/R declaration file instead of a sample database.")

let load_arg =
  Arg.(
    value & opt_all string []
    & info [ "load" ] ~docv:"REL=CSV"
        ~doc:"Load a CSV file into a declared relation (with --schema).")

let with_setup kind scale seed schema loads query file example k =
  try
    let db =
      match schema with
      | Some path -> make_custom_db path loads
      | None ->
        if loads <> [] then failwith "--load requires --schema";
        make_db kind scale seed
    in
    let q = resolve_query db ~query ~file ~example in
    (match Wellformed.check_query db q with
    | Ok () -> ()
    | Error e -> failwith ("ill-formed query: " ^ e.Wellformed.message));
    k db q;
    0
  with
  | Failure msg
  | Pascalr_lang.Elaborate.Elab_error msg ->
    Fmt.epr "pascalr: %s@." msg;
    1
  | Pascalr_lang.Parser.Parse_error (msg, pos) ->
    Fmt.epr "pascalr: parse error at line %d, column %d: %s@."
      pos.Pascalr_lang.Token.line pos.Pascalr_lang.Token.column msg;
    1
  | Pascalr_lang.Lexer.Lex_error (msg, pos) ->
    Fmt.epr "pascalr: lexical error at line %d, column %d: %s@."
      pos.Pascalr_lang.Token.line pos.Pascalr_lang.Token.column msg;
    1

let run_cmd =
  let go kind scale seed schema loads query file example strategy verbose =
    with_setup kind scale seed schema loads query file example (fun db q ->
        Fmt.pr "query: %a@.@." Calculus.pp_query q;
        let t0 = Unix.gettimeofday () in
        let decision, report =
          match strategy with
          | Some s ->
            let st = strategy_of_string s in
            (None, Phased_eval.run_report ~strategy:st db q)
          | None ->
            let d = Planner.choose db q in
            (Some d, Phased_eval.run_report ~strategy:d.Planner.d_strategy db q)
        in
        let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
        (match decision with
        | Some d -> Fmt.pr "planner: %a@.@." Strategy.pp d.Planner.d_strategy
        | None -> ());
        Fmt.pr "%a@.@." Relation.pp report.Phased_eval.result;
        Fmt.pr "%d elements in %.2f ms; %d scans, %d probes, max n-tuple %d@."
          (Relation.cardinality report.Phased_eval.result)
          ms report.Phased_eval.scans report.Phased_eval.probes
          report.Phased_eval.max_ntuple;
        if verbose then begin
          Fmt.pr "@.intermediate structures:@.";
          List.iter
            (fun (key, size) -> Fmt.pr "  %6d  %s@." size key)
            report.Phased_eval.intermediates
        end)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show intermediates.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Evaluate a query")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg $ strategy_arg $ verbose)

let explain_cmd =
  let go kind scale seed schema loads query file example strategy =
    with_setup kind scale seed schema loads query file example (fun db q ->
        let st =
          match strategy with
          | Some s -> strategy_of_string s
          | None -> (Planner.choose db q).Planner.d_strategy
        in
        Fmt.pr "%s@." (Explain.explain ~strategy:st db q))
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the evaluation plan")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg $ strategy_arg)

let plan_cmd =
  let go kind scale seed schema loads query file example =
    with_setup kind scale seed schema loads query file example (fun db q ->
        let d = Planner.choose db q in
        Fmt.pr "%a@." Planner.pp_decision d)
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show the planner's strategy decision")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg)

let normalize_cmd =
  let go kind scale seed schema loads query file example =
    with_setup kind scale seed schema loads query file example (fun db q ->
        Fmt.pr "=== as written ===@.%a@.@." Calculus.pp_query q;
        let sf = Standard_form.compile db q in
        Fmt.pr "=== standard form (adapted, prenex + DNF) ===@.%a@.@."
          Standard_form.pp sf;
        let sf3 = Range_ext.apply db sf in
        Fmt.pr "=== with extended range expressions (S3) ===@.%a@.@."
          Standard_form.pp sf3;
        let plan = Quant_push.apply db (Plan.of_standard_form sf3) in
        Fmt.pr "=== with pushed quantifiers (S4) ===@.%a@." Plan.pp plan)
  in
  Cmd.v
    (Cmd.info "normalize" ~doc:"Show the transformation pipeline")
    Term.(
      const go $ db_arg $ scale_arg $ seed_arg $ schema_arg $ load_arg
      $ query_arg $ file_arg $ example_arg)

(* Execute a statement-level PASCAL/R program (declarations + BEGIN ...
   END), e.g. the paper's Example 4.3; prints the named relations
   afterwards. *)
let script_cmd =
  let go path show =
    try
      let db = Pascalr_lang.Interp.run_string (read_file path) in
      (match show with
      | [] ->
        Fmt.pr "relations after execution: %a@."
          (Fmt.list ~sep:Fmt.comma Fmt.string)
          (Database.relation_names db)
      | names ->
        List.iter
          (fun n -> Fmt.pr "%a@." Relation.pp (Database.find_relation db n))
          names);
      0
    with
    | Failure msg
    | Pascalr_lang.Elaborate.Elab_error msg
    | Pascalr_lang.Interp.Runtime_error msg ->
      Fmt.epr "pascalr: %s@." msg;
      1
    | Pascalr_lang.Parser.Parse_error (msg, pos) ->
      Fmt.epr "pascalr: parse error at line %d, column %d: %s@."
        pos.Pascalr_lang.Token.line pos.Pascalr_lang.Token.column msg;
      1
    | Relalg.Errors.Unknown_relation r ->
      Fmt.epr "pascalr: unknown relation %s@." r;
      1
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROGRAM" ~doc:"PASCAL/R program file.")
  in
  let show =
    Arg.(
      value & opt_all string []
      & info [ "show" ] ~docv:"REL" ~doc:"Print this relation afterwards.")
  in
  Cmd.v
    (Cmd.info "script" ~doc:"Execute a statement-level PASCAL/R program")
    Term.(const go $ path $ show)

let () =
  let info =
    Cmd.info "pascalr" ~version:"1.0.0"
      ~doc:"PASCAL/R relational query processing strategies (SIGMOD 1982)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ run_cmd; explain_cmd; plan_cmd; normalize_cmd; script_cmd ]))
