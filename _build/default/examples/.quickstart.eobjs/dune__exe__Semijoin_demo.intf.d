examples/semijoin_demo.mli:
