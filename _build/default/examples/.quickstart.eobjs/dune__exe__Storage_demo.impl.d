examples/storage_demo.ml: Buffer_pool Csv_io Database Fmt List Naive_eval Pascalr Phased_eval Relalg Relation Schema Strategy Vtype Workload
