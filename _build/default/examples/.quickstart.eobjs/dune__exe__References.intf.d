examples/references.mli:
