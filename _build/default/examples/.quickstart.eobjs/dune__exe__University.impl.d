examples/university.ml: Calculus Database Explain Fmt List Naive_eval Pascalr Pascalr_lang Phased_eval Plan Quant_push Range_ext Relalg Relation Standard_form Strategy Workload
