examples/suppliers.mli:
