examples/empty_relations.mli:
