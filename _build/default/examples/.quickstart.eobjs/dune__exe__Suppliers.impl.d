examples/suppliers.ml: Algebra Calculus Database Fmt List Naive_eval Pascalr Phased_eval Relalg Relation Strategy Tuple Value Workload
