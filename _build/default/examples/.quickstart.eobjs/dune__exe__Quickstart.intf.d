examples/quickstart.mli:
