examples/strategy_tour.ml: Database Fmt List Naive_eval Pascalr Phased_eval Planner Relalg Relation Strategy Unix Workload
