examples/university.mli:
