examples/quickstart.ml: Database Fmt List Pascalr Pascalr_lang Relalg Relation Tuple Value
