examples/semijoin_demo.ml: Database Fmt List Pascalr Phased_eval Relalg Relation Semijoin Strategy Value Workload
