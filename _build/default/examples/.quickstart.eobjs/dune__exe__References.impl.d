examples/references.ml: Database Errors Fmt Index Reference Relalg Relation Schema Tuple Value Vtype Workload
