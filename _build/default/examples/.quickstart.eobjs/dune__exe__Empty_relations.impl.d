examples/empty_relations.ml: Database Fmt Lemma1 List Naive_eval Pascalr Phased_eval Relalg Relation Standard_form Strategy Workload
