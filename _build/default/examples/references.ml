(* Selected variables and references (paper Section 3.1, Example 3.1):
   rel[keyval] element access, @rel[keyval] reference values, regaining
   the selected variable from a reference, and a primary index
   maintained alongside insertions — exactly Example 3.1's enrindex.

     dune exec examples/references.exe *)

open Relalg

let () =
  let db = Database.create () in
  let s = Workload.University.declare db ~max_enr:99 ~max_cnr:99 in
  let employees = Database.find_relation db "employees" in
  let status = s.Workload.University.status_type in

  (* Example 3.1's enrindex as a materialized PASCAL/R relation
     <enr, eref> — here we keep it both as a relation (faithful form)
     and as the registered permanent index the engine probes. *)
  let enrindex_schema =
    Schema.make
      [
        Schema.attr "enr" (Vtype.int_range 1 99);
        Schema.attr "eref" (Vtype.reference "employees");
      ]
      ~key:[ "enr" ]
  in
  let enrindex = Relation.create ~name:"enrindex" enrindex_schema in

  (* employees :+ [<20, technician, 'Highman'>];
     enrindex  :+ [<20, @employees[20]>]; *)
  let hire enr name st =
    let tuple = Tuple.of_list [ Value.int enr; Value.str name; Value.enum status st ] in
    Relation.insert employees tuple;
    Relation.insert enrindex
      (Tuple.of_list
         [ Value.int enr; Reference.value_of_tuple employees tuple ])
  in
  hire 20 "highman" "technician";
  hire 7 "codd" "professor";
  hire 13 "palermo" "assistant";

  Fmt.pr "employees:@.%a@.@." Relation.pp employees;
  Fmt.pr "enrindex (Example 3.1):@.%a@.@." Relation.pp enrindex;

  (* Selected variable: employees[7]. *)
  (match Relation.find_key employees [ Value.int 7 ] with
  | Some t -> Fmt.pr "employees[7] = %a@." Tuple.pp t
  | None -> Fmt.pr "employees[7] does not exist@.");

  (* Reference value @employees[13], stored and dereferenced. *)
  let r = Reference.make ~target:"employees" ~key:[ Value.int 13 ] in
  Fmt.pr "reference %a@." Reference.pp r;
  Fmt.pr "dereferenced: %a@.@." Tuple.pp (Database.deref db r);

  (* The index relation resolves key values to references, and the
     reference regains the element — the round trip of Section 3.1. *)
  (match Relation.find_key enrindex [ Value.int 20 ] with
  | Some entry ->
    let eref = Reference.of_value (Tuple.get entry 1) in
    Fmt.pr "enrindex[20].eref = %a -> %a@.@." Reference.pp eref Tuple.pp
      (Database.deref db eref)
  | None -> ());

  (* Dangling references are detected. *)
  Relation.delete_key employees [ Value.int 20 ];
  (match Database.deref db (Reference.make ~target:"employees" ~key:[ Value.int 20 ]) with
  | _ -> ()
  | exception Errors.Dangling_reference msg ->
    Fmt.pr "after deletion, dereferencing fails: %s@.@." msg);

  (* The engine-facing form: a registered permanent index lets the
     collection phase omit index-building scans (Section 3.2). *)
  let idx = Database.register_index db "employees" ~on:"enr" in
  Fmt.pr "permanent index on employees.enr: %d entries@."
    (Index.entry_count idx)
