(* The statement-level PASCAL/R interpreter, exercised on the paper's
   own program fragments: Example 3.1 (reference maintenance), Example
   4.3 (parallel evaluation of join terms) and Example 4.7 (the
   cset/tset/pset program), whose results are compared against the
   query engine. *)

open Relalg

(* ---------------------------------------------------------------- *)
(* Example 3.1: a primary index maintained alongside insertions. *)

let example_3_1 =
  {|
TYPE statustype = (student, technician, assistant, professor);

VAR employees : RELATION <enr> OF
      RECORD
        enr : 1..99;
        ename : PACKED ARRAY [1..10] OF char;
        estatus : statustype
      END;
    enrindex : RELATION <enr> OF
      RECORD
        enr : 1..99;
        eref : @employees
      END;

BEGIN
  employees :+ [<20, 'highman', technician>];
  enrindex :+ [<20, @employees[20]>];
  employees :+ [<7, 'codd', professor>];
  enrindex :+ [<7, @employees[7]>]
END.
|}

let test_example_3_1 () =
  let db = Pascalr_lang.Interp.run_string example_3_1 in
  let employees = Database.find_relation db "employees" in
  let enrindex = Database.find_relation db "enrindex" in
  Alcotest.(check int) "two employees" 2 (Relation.cardinality employees);
  Alcotest.(check int) "two index entries" 2 (Relation.cardinality enrindex);
  (* The index's reference dereferences to the employee. *)
  match Relation.find_key enrindex [ Value.int 20 ] with
  | None -> Alcotest.fail "enrindex[20] missing"
  | Some entry ->
    let tuple = Database.deref_value db (Tuple.get entry 1) in
    Alcotest.check Helpers.value "name through reference"
      (Value.str "highman")
      (Tuple.get_by_name (Relation.schema employees) tuple "ename")

(* ---------------------------------------------------------------- *)
(* Example 4.3: the parallel-evaluation program, against the fixture
   database.  Auxiliary structures are declared as in Figure 2. *)

let example_4_3_program =
  {|
BEGIN
  FOR EACH t IN timetable: true DO
  BEGIN
    ind_t_cnr :+ [<t.tcnr, @t>];
    ind_t_enr :+ [<t.tenr, @t>]
  END;
  FOR EACH c IN courses: true DO
    IF c.clevel <= sophomore THEN
      FOR EACH t IN ind_t_cnr: t.tcnr = c.cnr DO
        ij_c_t :+ [<@c, t.tref>];
  FOR EACH p IN papers: true DO
  BEGIN
    IF p.pyear <> 1977 THEN
      sl_p77 :+ [<@p>];
    ind_p_enr :+ [<p.penr, @p>]
  END;
  FOR EACH e IN employees: true DO
  BEGIN
    IF e.estatus = professor THEN
      sl_prof :+ [<@e>];
    IF e.estatus = professor THEN
      FOR EACH t IN ind_t_enr: t.tenr = e.enr DO
        ij_e_t :+ [<@e, t.tref>];
    IF e.estatus = professor THEN
      FOR EACH p IN ind_p_enr: p.penr <> e.enr DO
        ij_e_p :+ [<@e, p.pref>]
  END
END
|}

let figure_2_declarations =
  {|
VAR sl_prof : RELATION <eref> OF RECORD eref : @employees END;
    sl_p77 : RELATION <pref> OF RECORD pref : @papers END;
    ij_c_t : RELATION <cref, tref> OF
      RECORD cref : @courses; tref : @timetable END;
    ij_e_t : RELATION <eref, tref> OF
      RECORD eref : @employees; tref : @timetable END;
    ij_e_p : RELATION <eref, pref> OF
      RECORD eref : @employees; pref : @papers END;
    ind_t_enr : RELATION <tenr, tref> OF
      RECORD tenr : 1..99; tref : @timetable END;
    ind_t_cnr : RELATION <tcnr, tref> OF
      RECORD tcnr : 1..99; tref : @timetable END;
    ind_p_enr : RELATION <penr, pref> OF
      RECORD penr : 1..99; pref : @papers END;
|}

let run_example_4_3 db =
  let decls = Pascalr_lang.Parser.program_of_string figure_2_declarations in
  let db = Pascalr_lang.Elaborate.elaborate_program ~db decls in
  Pascalr_lang.Interp.exec_string db example_4_3_program;
  db

let test_example_4_3_structures () =
  let db = run_example_4_3 (Fixtures.make ()) in
  let card name = Relation.cardinality (Database.find_relation db name) in
  (* Fixture: 3 timetable entries, 3 professors, 3 papers (2 from 1977),
     courses 10 (freshman, taught twice) and 11 (senior, taught once). *)
  Alcotest.(check int) "ind_t_cnr" 3 (card "ind_t_cnr");
  Alcotest.(check int) "ind_t_enr" 3 (card "ind_t_enr");
  Alcotest.(check int) "ind_p_enr" 3 (card "ind_p_enr");
  Alcotest.(check int) "sl_prof" 3 (card "sl_prof");
  Alcotest.(check int) "sl_p77 (pyear <> 1977)" 1 (card "sl_p77");
  (* ij_c_t: course 10 (<= sophomore) matches its two timetable slots. *)
  Alcotest.(check int) "ij_c_t" 2 (card "ij_c_t");
  (* ij_e_t: professors smith(1) and lee(4) each teach one slot. *)
  Alcotest.(check int) "ij_e_t" 2 (card "ij_e_t");
  (* ij_e_p: professor x paper pairs with penr <> enr:
     smith vs papers 2,4; jones vs 1,4; lee vs 1,2 = 6. *)
  Alcotest.(check int) "ij_e_p" 6 (card "ij_e_p")

(* The interpreted Example 4.3 structures must agree with the engine's
   collection phase (strategy 2 restricted pairs) on a generated
   database. *)
let test_example_4_3_matches_engine () =
  let base = Workload.University.generate Workload.University.small_params in
  let db = run_example_4_3 base in
  (* Independent computation of ij_c_t's expected cardinality. *)
  let courses = Database.find_relation db "courses" in
  let timetable = Database.find_relation db "timetable" in
  let cs = Relation.schema courses and ts = Relation.schema timetable in
  let soph = Workload.Queries.sophomore db in
  let expected =
    Relation.fold
      (fun acc c ->
        if Value.apply Value.Le (Tuple.get_by_name cs c "clevel") soph then
          acc
          + Relation.fold
              (fun acc2 t ->
                if
                  Value.equal
                    (Tuple.get_by_name cs c "cnr")
                    (Tuple.get_by_name ts t "tcnr")
                then acc2 + 1
                else acc2)
              0 timetable
        else acc)
      0 courses
  in
  Alcotest.(check int) "ij_c_t matches direct computation" expected
    (Relation.cardinality (Database.find_relation db "ij_c_t"))

(* ---------------------------------------------------------------- *)
(* Example 4.7: the cset/tset/pset program computes the running query's
   answer. *)

let example_4_7_program =
  {|
BEGIN
  cset := [<c.cnr> OF EACH c IN [EACH c IN courses: c.clevel <= sophomore]: true];
  tset := [<t.tenr> OF EACH t IN timetable: SOME c IN cset (c.cnr = t.tcnr)];
  pset := [<p.penr> OF EACH p IN [EACH p IN papers: p.pyear = 1977]: true];
  enames := [<e.ename> OF EACH e IN [EACH e IN employees: e.estatus = professor]:
               SOME t IN tset (t.tenr = e.enr) OR ALL p IN pset (p.penr <> e.enr)]
END
|}

let test_example_4_7_program () =
  let db = Fixtures.make () in
  Pascalr_lang.Interp.exec_string db example_4_7_program;
  let enames = Database.find_relation db "enames" in
  Alcotest.(check (list string))
    "program computes the running query's answer"
    Fixtures.running_query_answer (Helpers.strings enames);
  (* And on a generated database, against the engine. *)
  let db2 = Workload.University.generate Workload.University.small_params in
  Pascalr_lang.Interp.exec_string db2 example_4_7_program;
  let expected = Pascalr.Naive_eval.run db2 (Workload.Queries.running_query db2) in
  Alcotest.(check bool) "matches the engine on a generated db" true
    (Relation.equal_set expected (Database.find_relation db2 "enames"))

(* ---------------------------------------------------------------- *)
(* Statement semantics details *)

let test_assignment_replaces () =
  let db = Fixtures.make () in
  Pascalr_lang.Interp.exec_string db
    "profs := [<e.ename> OF EACH e IN employees: e.estatus = professor]";
  Alcotest.(check int) "three professors" 3
    (Relation.cardinality (Database.find_relation db "profs"));
  Pascalr_lang.Interp.exec_string db
    "profs := [<e.ename> OF EACH e IN employees: e.estatus = student]";
  Alcotest.(check int) "reassignment replaces" 1
    (Relation.cardinality (Database.find_relation db "profs"))

let test_removal () =
  let db = Fixtures.make () in
  Pascalr_lang.Interp.exec_string db
    "employees :- [<3, 'kim', student>]";
  Alcotest.(check int) "one fewer employee" 3
    (Relation.cardinality (Database.find_relation db "employees"))

let test_runtime_errors () =
  let db = Fixtures.make () in
  (match Pascalr_lang.Interp.exec_string db "nope :+ [<1>]" with
  | () -> Alcotest.fail "expected Unknown_relation"
  | exception Errors.Unknown_relation _ -> ());
  match
    Pascalr_lang.Interp.exec_string db "employees :+ [<1, 'x'>]"
  with
  | () -> Alcotest.fail "expected arity error"
  | exception Pascalr_lang.Interp.Runtime_error _ -> ()

let suite =
  [
    ( "interp",
      [
        Alcotest.test_case "Example 3.1 (reference maintenance)" `Quick
          test_example_3_1;
        Alcotest.test_case "Example 4.3 structures (fixture)" `Quick
          test_example_4_3_structures;
        Alcotest.test_case "Example 4.3 vs direct computation" `Quick
          test_example_4_3_matches_engine;
        Alcotest.test_case "Example 4.7 program = running query" `Quick
          test_example_4_7_program;
        Alcotest.test_case "assignment replaces" `Quick test_assignment_replaces;
        Alcotest.test_case "removal (:-)" `Quick test_removal;
        Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      ] );
  ]
