open Relalg

let sched =
  Schema.make
    [ Schema.attr "x" Vtype.int_full; Schema.attr "y" Vtype.int_full ]
    ~key:[]

let pair a b = Tuple.of_list [ Value.int a; Value.int b ]

let rel name rows =
  Relation.of_list ~name sched (List.map (fun (a, b) -> pair a b) rows)

let unary name xs =
  Relation.of_list ~name
    (Schema.make [ Schema.attr "x" Vtype.int_full ] ~key:[])
    (List.map (fun a -> Tuple.of_list [ Value.int a ]) xs)

let test_select_project () =
  let r = rel "r" [ (1, 10); (2, 20); (3, 30) ] in
  let big = Algebra.select (fun t -> Value.compare (Tuple.get t 1) (Value.int 15) > 0) r in
  Alcotest.(check int) "selected" 2 (Relation.cardinality big);
  let xs = Algebra.project r [ "x" ] in
  Alcotest.(check (list int)) "projected" [ 1; 2; 3 ] (Helpers.ints xs)

let test_project_dedup () =
  let r = rel "r" [ (1, 10); (1, 20); (2, 30) ] in
  let xs = Algebra.project r [ "x" ] in
  Alcotest.(check (list int)) "duplicates collapse" [ 1; 2 ] (Helpers.ints xs)

let test_product () =
  let a = unary "a" [ 1; 2 ] in
  let b = Algebra.rename (unary "b" [ 10; 20; 30 ]) [ ("x", "z") ] in
  let p = Algebra.product a b in
  Alcotest.(check int) "2x3" 6 (Relation.cardinality p)

let test_equi_join () =
  let a = rel "a" [ (1, 100); (2, 200); (3, 300) ] in
  let b =
    Relation.of_list ~name:"b"
      (Schema.make
         [ Schema.attr "k" Vtype.int_full; Schema.attr "v" Vtype.int_full ]
         ~key:[])
      [ pair 1 7; pair 3 8; pair 3 9; pair 4 10 ]
  in
  let j = Algebra.equi_join ~on:[ ("x", "k") ] a b in
  Alcotest.(check int) "matches" 3 (Relation.cardinality j)

let test_theta_join () =
  let a = unary "a" [ 1; 5 ] in
  let b = Algebra.rename (unary "b" [ 3; 4; 6 ]) [ ("x", "z") ] in
  let j =
    Algebra.theta_join
      (fun ta tb -> Value.compare (Tuple.get ta 0) (Tuple.get tb 0) < 0)
      a b
  in
  (* 1 < 3,4,6; 5 < 6 *)
  Alcotest.(check int) "inequality join" 4 (Relation.cardinality j)

let test_set_operations () =
  let a = unary "a" [ 1; 2; 3 ] in
  let b = unary "b" [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Helpers.ints (Algebra.union a b));
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Helpers.ints (Algebra.inter a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Helpers.ints (Algebra.diff a b))

let test_semijoin_antijoin () =
  let a = rel "a" [ (1, 10); (2, 20); (3, 30) ] in
  let b = unary "b" [ 2; 3; 9 ] in
  let semi = Algebra.semijoin ~on:[ ("x", "x") ] a b in
  let anti = Algebra.antijoin ~on:[ ("x", "x") ] a b in
  Alcotest.(check int) "semijoin keeps matches" 2 (Relation.cardinality semi);
  Alcotest.(check int) "antijoin keeps rest" 1 (Relation.cardinality anti);
  Alcotest.(check (list int)) "antijoin content" [ 1 ]
    (Helpers.ints (Algebra.project anti [ "x" ]))

let test_division () =
  (* r: student x course; divisor: required courses. *)
  let r = rel "enrolled" [ (1, 101); (1, 102); (2, 101); (3, 101); (3, 102) ] in
  let required = Algebra.rename (unary "required" [ 101; 102 ]) [ ("x", "c") ] in
  let q = Algebra.divide ~on:[ ("y", "c") ] r required in
  Alcotest.(check (list int)) "students covering all" [ 1; 3 ] (Helpers.ints q)

let test_division_empty_divisor () =
  let r = rel "enrolled" [ (1, 101); (2, 102) ] in
  let empty = Algebra.rename (unary "required" []) [ ("x", "c") ] in
  let q = Algebra.divide ~on:[ ("y", "c") ] r empty in
  Alcotest.(check (list int)) "all quotients" [ 1; 2 ] (Helpers.ints q)

let test_division_identity_property =
  (* (r x s) / s = r for non-empty s. *)
  let gen = QCheck.Gen.(pair (list_size (int_range 1 8) (int_range 0 20))
                          (list_size (int_range 1 5) (int_range 0 20))) in
  QCheck.Test.make ~name:"division inverts product" ~count:100 (QCheck.make gen)
    (fun (xs, ys) ->
      let xs = List.sort_uniq compare xs and ys = List.sort_uniq compare ys in
      let a = unary "a" xs in
      let b = Algebra.rename (unary "b" ys) [ ("x", "z") ] in
      let prod = Algebra.product a b in
      let q = Algebra.divide ~on:[ ("z", "z") ] prod b in
      Relation.equal_set q a)

let test_union_shape_mismatch () =
  let a = unary "a" [ 1 ] in
  let b = rel "b" [ (1, 2) ] in
  match Algebra.union a b with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Errors.Schema_error _ -> ()

let suite =
  [
    ( "algebra",
      [
        Alcotest.test_case "select and project" `Quick test_select_project;
        Alcotest.test_case "projection deduplicates" `Quick test_project_dedup;
        Alcotest.test_case "product" `Quick test_product;
        Alcotest.test_case "equi join" `Quick test_equi_join;
        Alcotest.test_case "theta join" `Quick test_theta_join;
        Alcotest.test_case "set operations" `Quick test_set_operations;
        Alcotest.test_case "semijoin / antijoin" `Quick test_semijoin_antijoin;
        Alcotest.test_case "division" `Quick test_division;
        Alcotest.test_case "division by empty" `Quick test_division_empty_divisor;
        QCheck_alcotest.to_alcotest test_division_identity_property;
        Alcotest.test_case "union shape mismatch" `Quick
          test_union_shape_mismatch;
      ] );
  ]
