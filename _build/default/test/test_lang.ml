open Relalg
open Pascalr

(* Figure 1, transcribed. *)
let figure_1 =
  {|
TYPE statustype = (student, technician, assistant, professor);
     nametype = PACKED ARRAY [1..10] OF char;
     titletype = PACKED ARRAY [1..40] OF char;
     roomtype = PACKED ARRAY [1..5] OF char;
     yeartype = 1900..1999;
     timetype = 8000900..18002000;
     daytype = (monday, tuesday, wednesday, thursday, friday);
     leveltype = (freshman, sophomore, junior, senior);
     enumbertype = 1..99;
     cnumbertype = 1..99;

VAR employees : RELATION <enr> OF
      RECORD
        enr : enumbertype;
        ename : nametype;
        estatus : statustype
      END;
    papers : RELATION <ptitle, penr> OF
      RECORD
        penr : enumbertype;
        pyear : yeartype;
        ptitle : titletype
      END;
    courses : RELATION <cnr> OF
      RECORD
        cnr : cnumbertype;
        clevel : leveltype;
        ctitle : titletype
      END;
    timetable : RELATION <tenr, tcnr, tday> OF
      RECORD
        tenr : enumbertype;
        tcnr : cnumbertype;
        tday : daytype;
        ttime : timetype;
        troom : roomtype
      END;
|}

(* Example 2.1, transcribed. *)
let example_2_1 =
  {|
[<e.ename> OF EACH e IN employees:
  (e.estatus = professor)
  AND
  (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
   OR
   SOME c IN courses ((c.clevel <= sophomore)
     AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]
|}

let test_figure_1_parses () =
  let db = Pascalr_lang.Elaborate.database_of_string figure_1 in
  Alcotest.(check (list string))
    "relations"
    [ "courses"; "employees"; "papers"; "timetable" ]
    (Database.relation_names db);
  let timetable = Database.find_relation db "timetable" in
  Alcotest.(check (list string))
    "timetable key" [ "tenr"; "tcnr"; "tday" ]
    (Schema.key_names (Relation.schema timetable));
  let courses = Database.find_relation db "courses" in
  (match Schema.type_of (Relation.schema courses) "clevel" with
  | Vtype.TEnum info ->
    Alcotest.(check string) "clevel enum" "leveltype" info.Value.enum_name
  | _ -> Alcotest.fail "clevel should be an enumeration");
  match Schema.type_of (Relation.schema timetable) "ttime" with
  | Vtype.TInt { lo; hi } ->
    Alcotest.(check int) "ttime lo" 8000900 lo;
    Alcotest.(check int) "ttime hi" 18002000 hi
  | _ -> Alcotest.fail "ttime should be a subrange"

let test_example_2_1_parses_and_runs () =
  let db = Fixtures.make () in
  let q = Pascalr_lang.Elaborate.query_of_string db example_2_1 in
  (* Identical to the programmatic query... *)
  let reference = Workload.Queries.running_query db in
  Alcotest.(check bool) "same body" true
    (Calculus.equal_formula q.Calculus.body reference.Calculus.body);
  (* ... and the right answer. *)
  let result = Naive_eval.run db q in
  Alcotest.(check (list string))
    "answer" Fixtures.running_query_answer (Helpers.strings result)

let test_extended_range_parses () =
  let db = Fixtures.make () in
  let q =
    Pascalr_lang.Elaborate.query_of_string db
      {|[<e.ename> OF EACH e IN [EACH e IN employees: e.estatus = professor]:
          ALL p IN [EACH p IN papers: p.pyear = 1977] (p.penr <> e.enr)]|}
  in
  (match List.assoc "e" q.Calculus.free with
  | { Calculus.restriction = Some _; _ } -> ()
  | { Calculus.restriction = None; _ } -> Alcotest.fail "restriction expected");
  let result = Naive_eval.run db q in
  (* professors with no 1977 paper: jones. *)
  Alcotest.(check (list string)) "answer" [ "jones" ] (Helpers.strings result)

let test_pp_roundtrip () =
  let db = Fixtures.make () in
  List.iter
    (fun q ->
      let printed = Calculus.query_to_string q in
      let reparsed = Pascalr_lang.Elaborate.query_of_string db printed in
      Alcotest.(check bool)
        ("round trip: " ^ printed)
        true
        (Calculus.equal_formula q.Calculus.body reparsed.Calculus.body
        && q.Calculus.select = reparsed.Calculus.select))
    [
      Workload.Queries.running_query db;
      Workload.Queries.example_4_5 db;
      Workload.Queries.example_4_7 db;
      Workload.Queries.universal_query db;
    ]

let test_lexer_errors () =
  (match Pascalr_lang.Lexer.tokenize "e.enr # 3" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Pascalr_lang.Lexer.Lex_error (_, pos) ->
    Alcotest.(check int) "error line" 1 pos.Pascalr_lang.Token.line);
  match Pascalr_lang.Lexer.tokenize "'unterminated" with
  | _ -> Alcotest.fail "expected lex error"
  | exception Pascalr_lang.Lexer.Lex_error (_, _) -> ()

let test_parser_errors () =
  let db = Fixtures.make () in
  let expect_parse_error src =
    match Pascalr_lang.Elaborate.query_of_string db src with
    | _ -> Alcotest.failf "expected parse error for %s" src
    | exception Pascalr_lang.Parser.Parse_error (_, _) -> ()
  in
  expect_parse_error "[<e.ename> OF EACH e IN employees]";
  expect_parse_error "[<e.ename> OF EACH e IN employees: e.enr]";
  expect_parse_error "[<> OF EACH e IN employees: true]"

let test_elaboration_errors () =
  let db = Fixtures.make () in
  let expect_elab_error src =
    match Pascalr_lang.Elaborate.query_of_string db src with
    | _ -> Alcotest.failf "expected elaboration error for %s" src
    | exception Pascalr_lang.Elaborate.Elab_error _ -> ()
  in
  (* unknown enum label *)
  expect_elab_error "[<e.ename> OF EACH e IN employees: e.estatus = dean]";
  (* unknown attribute *)
  expect_elab_error "[<e.ename> OF EACH e IN employees: e.salary = 3]";
  (* unbound variable *)
  expect_elab_error "[<e.ename> OF EACH e IN employees: x.enr = 3]"

let test_comments_and_case () =
  let db = Fixtures.make () in
  let q =
    Pascalr_lang.Elaborate.query_of_string db
      "[<E.ENAME> of each E in EMPLOYEES: (* who? *) E.ESTATUS = PROFESSOR]"
  in
  Alcotest.(check int) "three professors" 3
    (Relation.cardinality (Naive_eval.run db q))

let suite =
  [
    ( "lang",
      [
        Alcotest.test_case "Figure 1 declarations parse" `Quick
          test_figure_1_parses;
        Alcotest.test_case "Example 2.1 parses and runs" `Quick
          test_example_2_1_parses_and_runs;
        Alcotest.test_case "extended ranges parse" `Quick
          test_extended_range_parses;
        Alcotest.test_case "pretty-printer round trip" `Quick test_pp_roundtrip;
        Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
        Alcotest.test_case "parser errors" `Quick test_parser_errors;
        Alcotest.test_case "elaboration errors" `Quick test_elaboration_errors;
        Alcotest.test_case "comments and case-insensitivity" `Quick
          test_comments_and_case;
      ] );
  ]
