test/test_algebra.ml: Alcotest Algebra Errors Helpers List QCheck QCheck_alcotest Relalg Relation Schema Tuple Value Vtype
