test/helpers.ml: Alcotest List Relalg Relation String Tuple Value
