test/test_substrate.ml: Alcotest Database Errors Fixtures Helpers Index List Printf Reference Relalg Relation Schema Tuple Value Value_list Vtype
