test/test_normalize.ml: Alcotest Database Fixtures Helpers List Naive_eval Normalize Pascalr Relalg Relation Standard_form String Value Workload
