test/test_quant_push.ml: Alcotest Fixtures List Naive_eval Normalize Pascalr Phased_eval Plan Printf Quant_push Relalg Relation Strategy String Value Var_set Workload
