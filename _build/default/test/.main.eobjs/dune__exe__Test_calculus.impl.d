test/test_calculus.ml: Alcotest Fixtures List Pascalr Relalg String Value Var_set Workload
