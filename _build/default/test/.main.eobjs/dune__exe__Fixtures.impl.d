test/fixtures.ml: Database Relalg Relation Tuple Value Workload
