test/test_properties.ml: Calculus Database Gen List Naive_eval Pascalr Phased_eval QCheck QCheck_alcotest Relalg Relation Standard_form Strategy Wellformed Workload
