test/test_interp.ml: Alcotest Database Errors Fixtures Helpers Pascalr Pascalr_lang Relalg Relation Tuple Value Workload
