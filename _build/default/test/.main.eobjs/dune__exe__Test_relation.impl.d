test/test_relation.ml: Alcotest Database Errors Helpers Reference Relalg Relation Schema Tuple Value Vtype
