test/test_planner.ml: Alcotest Cost Explain Fixtures Helpers List Naive_eval Pascalr Plan Planner Printf Range_ext Relalg Relation Standard_form Stats Strategy Value Workload
