test/test_joins.ml: Alcotest Algebra List QCheck QCheck_alcotest Relalg Relation Schema Tuple Value Vtype
