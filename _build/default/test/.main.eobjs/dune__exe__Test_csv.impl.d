test/test_csv.ml: Alcotest Csv_io Errors Filename List Relalg Relation Schema String Sys Tuple Value Vtype
