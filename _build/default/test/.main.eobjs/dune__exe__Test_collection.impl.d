test/test_collection.ml: Alcotest Collection Database Fixtures Helpers List Naive_eval Pascalr Phased_eval Plan Printf Relalg Relation Strategy Tuple Value Workload
