test/test_lang.ml: Alcotest Calculus Database Fixtures Helpers List Naive_eval Pascalr Pascalr_lang Relalg Relation Schema Value Vtype Workload
