test/test_storage.ml: Alcotest Buffer_pool Codec Database Heap_file Helpers List Pascalr Printf QCheck QCheck_alcotest Reference Relalg Relation Schema Tuple Value Vtype Workload
