test/test_lemma1.ml: Alcotest Database Fixtures Gen Lemma1 List Naive_eval Onesort Option Pascalr QCheck QCheck_alcotest Relalg Relation Workload
