test/test_naive.ml: Alcotest Algebra Database Fixtures Helpers Naive_eval Pascalr Relalg Relation Schema Value Wellformed Workload
