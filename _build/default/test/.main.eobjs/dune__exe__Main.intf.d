test/main.mli:
