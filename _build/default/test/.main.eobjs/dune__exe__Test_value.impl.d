test/test_value.ml: Alcotest Errors Helpers List QCheck QCheck_alcotest Reference Relalg Value
