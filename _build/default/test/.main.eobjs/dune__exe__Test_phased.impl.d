test/test_phased.ml: Alcotest Calculus Database Fixtures Helpers List Naive_eval Normalize Option Pascalr Phased_eval Plan Printf Range_ext Relalg Relation Standard_form Strategy String Workload
