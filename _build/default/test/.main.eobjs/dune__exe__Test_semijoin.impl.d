test/test_semijoin.ml: Alcotest Algebra Database Fixtures Helpers List Naive_eval Option Pascalr Printf Relalg Relation Semijoin Value Workload
