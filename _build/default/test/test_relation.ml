open Relalg

let schema =
  Schema.make
    [
      Schema.attr "id" (Vtype.int_range 1 1000);
      Schema.attr "name" Vtype.string_any;
    ]
    ~key:[ "id" ]

let t id name = Tuple.of_list [ Value.int id; Value.str name ]

let test_insert_and_lookup () =
  let r = Relation.create ~name:"r" schema in
  Relation.insert r (t 1 "a");
  Relation.insert r (t 2 "b");
  Alcotest.(check int) "cardinality" 2 (Relation.cardinality r);
  Alcotest.(check (option Helpers.tuple))
    "selected variable r[2]" (Some (t 2 "b"))
    (Relation.find_key r [ Value.int 2 ]);
  Alcotest.(check (option Helpers.tuple))
    "absent key" None
    (Relation.find_key r [ Value.int 9 ])

let test_insert_idempotent () =
  let r = Relation.create ~name:"r" schema in
  Relation.insert r (t 1 "a");
  Relation.insert r (t 1 "a");
  Alcotest.(check int) "still one element" 1 (Relation.cardinality r)

let test_key_violation () =
  let r = Relation.create ~name:"r" schema in
  Relation.insert r (t 1 "a");
  match Relation.insert r (t 1 "b") with
  | () -> Alcotest.fail "expected Duplicate_key"
  | exception Errors.Duplicate_key _ -> ()

let test_domain_violation () =
  let r = Relation.create ~name:"r" schema in
  match Relation.insert r (t 5000 "out-of-range") with
  | () -> Alcotest.fail "expected Type_error"
  | exception Errors.Type_error _ -> ()

let test_delete () =
  let r = Relation.create ~name:"r" schema in
  Relation.insert r (t 1 "a");
  Relation.delete_key r [ Value.int 1 ];
  Alcotest.(check bool) "empty after delete" true (Relation.is_empty r)

let test_set_equality () =
  let a = Relation.of_list ~name:"a" schema [ t 1 "x"; t 2 "y" ] in
  let b = Relation.of_list ~name:"b" schema [ t 2 "y"; t 1 "x" ] in
  let c = Relation.of_list ~name:"c" schema [ t 1 "x" ] in
  Alcotest.(check bool) "a = b" true (Relation.equal_set a b);
  Alcotest.(check bool) "a <> c" false (Relation.equal_set a c);
  Alcotest.(check bool) "c subset a" true (Relation.subset c a);
  Alcotest.(check bool) "a not subset c" false (Relation.subset a c)

let test_scan_counters () =
  let r = Relation.of_list ~name:"r" schema [ t 1 "x"; t 2 "y" ] in
  Relation.reset_counters r;
  Relation.scan (fun _ -> ()) r;
  Relation.scan (fun _ -> ()) r;
  Relation.iter (fun _ -> ()) r;
  Alcotest.(check int) "two counted scans" 2 (Relation.scan_count r);
  ignore (Relation.find_key r [ Value.int 1 ]);
  Alcotest.(check int) "one probe" 1 (Relation.probe_count r);
  Relation.reset_counters r;
  Alcotest.(check int) "reset" 0 (Relation.scan_count r)

let test_to_list_sorted () =
  let r = Relation.of_list ~name:"r" schema [ t 3 "c"; t 1 "a"; t 2 "b" ] in
  Alcotest.(check (list Helpers.tuple))
    "sorted"
    [ t 1 "a"; t 2 "b"; t 3 "c" ]
    (Relation.to_list r)

let test_composite_key () =
  let s =
    Schema.make
      [
        Schema.attr "a" Vtype.int_full;
        Schema.attr "b" Vtype.int_full;
        Schema.attr "payload" Vtype.string_any;
      ]
      ~key:[ "a"; "b" ]
  in
  let r = Relation.create ~name:"r" s in
  Relation.insert r (Tuple.of_list [ Value.int 1; Value.int 2; Value.str "x" ]);
  Relation.insert r (Tuple.of_list [ Value.int 2; Value.int 1; Value.str "y" ]);
  Alcotest.(check int) "distinct composite keys" 2 (Relation.cardinality r);
  Alcotest.(check bool) "lookup composite" true
    (Relation.mem_key r [ Value.int 2; Value.int 1 ])

let test_database_catalog () =
  let db = Database.create () in
  let r = Database.declare_relation db ~name:"emp" schema in
  Relation.insert r (t 4 "dana");
  Alcotest.(check (list string)) "names" [ "emp" ] (Database.relation_names db);
  let tup = Database.deref db (Reference.make ~target:"emp" ~key:[ Value.int 4 ]) in
  Alcotest.check Helpers.tuple "deref" (t 4 "dana") tup;
  (match Database.deref db (Reference.make ~target:"emp" ~key:[ Value.int 5 ]) with
  | _ -> Alcotest.fail "expected Dangling_reference"
  | exception Errors.Dangling_reference _ -> ());
  match Database.find_relation db "nope" with
  | _ -> Alcotest.fail "expected Unknown_relation"
  | exception Errors.Unknown_relation _ -> ()

let suite =
  [
    ( "relation",
      [
        Alcotest.test_case "insert and key lookup" `Quick test_insert_and_lookup;
        Alcotest.test_case "insert idempotent" `Quick test_insert_idempotent;
        Alcotest.test_case "key violation" `Quick test_key_violation;
        Alcotest.test_case "domain violation" `Quick test_domain_violation;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "set equality" `Quick test_set_equality;
        Alcotest.test_case "scan counters" `Quick test_scan_counters;
        Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
        Alcotest.test_case "composite keys" `Quick test_composite_key;
        Alcotest.test_case "database catalog and deref" `Quick
          test_database_catalog;
      ] );
  ]
