open Pascalr
open Relalg
open Pascalr.Calculus

let test_running_query () =
  let db = Fixtures.make () in
  let result = Naive_eval.run db (Workload.Queries.running_query db) in
  Alcotest.(check (list string))
    "Example 2.1 answer" Fixtures.running_query_answer
    (Helpers.strings result)

let test_example_4_5_agrees () =
  let db = Fixtures.make () in
  Alcotest.(check (list string))
    "Example 4.5 same answer" Fixtures.running_query_answer
    (Helpers.strings (Naive_eval.run db (Workload.Queries.example_4_5 db)))

let test_example_4_7_agrees () =
  let db = Fixtures.make () in
  Alcotest.(check (list string))
    "Example 4.7 same answer" Fixtures.running_query_answer
    (Helpers.strings (Naive_eval.run db (Workload.Queries.example_4_7 db)))

let test_quantifier_base_cases () =
  let db = Fixtures.make () in
  Relation.clear (Database.find_relation db "papers");
  (* SOME over empty is false, ALL over empty is true. *)
  Alcotest.(check bool) "SOME over empty" false
    (Naive_eval.closed_holds db
       (f_some "p" (base "papers") F_true));
  Alcotest.(check bool) "ALL over empty" true
    (Naive_eval.closed_holds db (f_all "p" (base "papers") F_false))

let test_restricted_range_semantics () =
  let db = Fixtures.make () in
  (* SOME p IN [papers: pyear = 1977] true; with 1877 false. *)
  Alcotest.(check bool) "restricted non-empty" true
    (Naive_eval.closed_holds db
       (f_some "p"
          (restricted "papers" "p" (eq (attr "p" "pyear") (cint 1977)))
          F_true));
  Alcotest.(check bool) "restricted empty" false
    (Naive_eval.closed_holds db
       (f_some "p"
          (restricted "papers" "p" (eq (attr "p" "pyear") (cint 1877)))
          F_true))

let test_nested_quantifiers () =
  let db = Fixtures.make () in
  (* There is an employee teaching a freshman course: kim (3) and lee (4)
     teach course 10. *)
  let f =
    f_some "e" (base "employees")
      (f_some "t" (base "timetable")
         (f_and
            (eq (attr "t" "tenr") (attr "e" "enr"))
            (f_some "c" (base "courses")
               (f_and
                  (eq (attr "c" "cnr") (attr "t" "tcnr"))
                  (eq (attr "c" "clevel")
                     (const
                        (Value.enum
                           (Database.find_enum db "leveltype")
                           "freshman")))))))
  in
  Alcotest.(check bool) "nested SOME" true (Naive_eval.closed_holds db f)

let test_suppliers_division_queries () =
  let db = Workload.Suppliers.generate Workload.Suppliers.default_params in
  let all_parts = Naive_eval.run db (Workload.Suppliers.ships_all_parts db) in
  (* Supplier 1 ships every part by construction. *)
  Alcotest.(check bool) "supplier 1 qualifies" true
    (Relation.cardinality all_parts >= 1);
  let all_red = Naive_eval.run db (Workload.Suppliers.ships_all_red_parts db) in
  Alcotest.(check bool) "all-parts implies all-red-parts" true
    (Relation.subset all_parts all_red);
  let some_red = Naive_eval.run db (Workload.Suppliers.london_ships_some_red db) in
  let no_red = Naive_eval.run db (Workload.Suppliers.ships_no_red_part db) in
  (* A supplier cannot both ship some red part and no red part. *)
  let inter = Algebra.inter some_red no_red in
  Alcotest.(check int) "disjoint" 0 (Relation.cardinality inter)

let test_free_variable_product () =
  let db = Fixtures.make () in
  (* Two free variables: all (professor, professor) name pairs. *)
  let q =
    {
      free = [ ("e1", base "employees"); ("e2", base "employees") ];
      select = [ ("e1", "ename"); ("e2", "ename") ];
      body =
        f_and
          (eq (attr "e1" "estatus")
             (const (Workload.Queries.professor db)))
          (eq (attr "e2" "estatus")
             (const (Workload.Queries.professor db)));
    }
  in
  let result = Naive_eval.run db q in
  Alcotest.(check int) "3 x 3 pairs" 9 (Relation.cardinality result)

let test_result_schema_disambiguation () =
  let db = Fixtures.make () in
  let q =
    {
      free = [ ("e1", base "employees"); ("e2", base "employees") ];
      select = [ ("e1", "ename"); ("e2", "ename") ];
      body = F_true;
    }
  in
  let schema = Wellformed.result_schema db q in
  Alcotest.(check (list string))
    "disambiguated names" [ "e1_ename"; "e2_ename" ]
    (Schema.names schema)

let suite =
  [
    ( "naive_eval",
      [
        Alcotest.test_case "running query (Example 2.1)" `Quick
          test_running_query;
        Alcotest.test_case "Example 4.5 equivalence" `Quick
          test_example_4_5_agrees;
        Alcotest.test_case "Example 4.7 equivalence" `Quick
          test_example_4_7_agrees;
        Alcotest.test_case "quantifier base cases" `Quick
          test_quantifier_base_cases;
        Alcotest.test_case "restricted ranges" `Quick
          test_restricted_range_semantics;
        Alcotest.test_case "nested quantifiers" `Quick test_nested_quantifiers;
        Alcotest.test_case "suppliers division queries" `Quick
          test_suppliers_division_queries;
        Alcotest.test_case "free variable product" `Quick
          test_free_variable_product;
        Alcotest.test_case "result schema disambiguation" `Quick
          test_result_schema_disambiguation;
      ] );
  ]
