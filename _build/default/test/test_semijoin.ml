open Pascalr
open Pascalr.Calculus
open Relalg

(* The existential running sub-query as a conjunctive equality query:
   e joins t joins c — a chain, hence a tree. *)
let chain_ranges = [ ("e", base "employees"); ("t", base "timetable"); ("c", base "courses") ]

let chain_conj db =
  let prof = Workload.Queries.professor db in
  let soph = Workload.Queries.sophomore db in
  [
    { lhs = attr "e" "estatus"; op = Value.Eq; rhs = const prof };
    { lhs = attr "c" "clevel"; op = Value.Le; rhs = const soph };
    { lhs = attr "e" "enr"; op = Value.Eq; rhs = attr "t" "tenr" };
    { lhs = attr "c" "cnr"; op = Value.Eq; rhs = attr "t" "tcnr" };
  ]

let test_graph_construction () =
  let db = Fixtures.make () in
  let conj = chain_conj db in
  match Semijoin.graph_of_conjunction [ "e"; "t"; "c" ] conj with
  | None -> Alcotest.fail "graph expected"
  | Some g ->
    Alcotest.(check int) "two edges" 2 (List.length g.Semijoin.g_edges);
    Alcotest.(check bool) "tree" true (Semijoin.is_tree g)

let test_non_equality_excluded () =
  (* clevel <= sophomore is monadic (fine); an inequality DYADIC term
     makes the conjunction fall outside the class. *)
  let conj = [ { lhs = attr "e" "enr"; op = Value.Lt; rhs = attr "p" "penr" } ] in
  Alcotest.(check bool) "not applicable" true
    (Option.is_none (Semijoin.graph_of_conjunction [ "e"; "p" ] conj))

let test_cycle_detection () =
  let e a b = { Semijoin.ev1 = a; ea1 = "x"; ev2 = b; ea2 = "x" } in
  let tri = { Semijoin.g_nodes = [ "a"; "b"; "c" ]; g_edges = [ e "a" "b"; e "b" "c"; e "c" "a" ] } in
  Alcotest.(check bool) "triangle is cyclic" false (Semijoin.is_acyclic tri);
  let path = { Semijoin.g_nodes = [ "a"; "b"; "c" ]; g_edges = [ e "a" "b"; e "b" "c" ] } in
  Alcotest.(check bool) "path is a tree" true (Semijoin.is_tree path);
  let disconnected = { Semijoin.g_nodes = [ "a"; "b"; "c" ]; g_edges = [ e "a" "b" ] } in
  Alcotest.(check bool) "forest, not tree" false (Semijoin.is_tree disconnected);
  Alcotest.(check bool) "forest is acyclic" true (Semijoin.is_acyclic disconnected)

(* Soundness and completeness of the full reducer on the chain query:
   the reduced employee set equals the projection of the join — the
   answer of the existential query. *)
let test_full_reducer_exact () =
  let db = Workload.University.generate Workload.University.small_params in
  let conj = chain_conj db in
  match Semijoin.reduce db chain_ranges conj with
  | None -> Alcotest.fail "reduction expected"
  | Some red ->
    let reduced_e = List.assoc "e" red.Semijoin.red_vars in
    let expected =
      Naive_eval.run db
        {
          free = [ ("e", base "employees") ];
          select = [ ("e", "enr") ];
          body =
            f_and
              (eq (attr "e" "estatus") (const (Workload.Queries.professor db)))
              (f_some "t" (base "timetable")
                 (f_and
                    (eq (attr "e" "enr") (attr "t" "tenr"))
                    (f_some "c" (base "courses")
                       (f_and
                          (eq (attr "c" "cnr") (attr "t" "tcnr"))
                          (le (attr "c" "clevel")
                             (const (Workload.Queries.sophomore db)))))));
        }
    in
    let reduced_enrs = Algebra.project reduced_e [ "enr" ] in
    Alcotest.(check (list int))
      "fully reduced root = query answer" (Helpers.ints expected)
      (Helpers.ints reduced_enrs)

(* Every reduced relation is a subset of its monadic-filtered original,
   and re-running the reducer on the reduced database is a fixpoint. *)
let test_reduction_monotone_and_fixpoint () =
  let db = Workload.University.generate { Workload.University.small_params with seed = 5 } in
  let conj = chain_conj db in
  match Semijoin.reduce db chain_ranges conj with
  | None -> Alcotest.fail "reduction expected"
  | Some red ->
    List.iter
      (fun (v, after) ->
        let before = List.assoc v red.Semijoin.red_before in
        Alcotest.(check bool) (v ^ " shrinks") true (after <= before))
      red.Semijoin.red_after;
    (* Idempotence: applying the schedule again changes nothing. *)
    let again = Semijoin.run_steps red.Semijoin.red_vars red.Semijoin.red_steps in
    List.iter
      (fun (v, r) ->
        Alcotest.(check int)
          (v ^ " fixpoint")
          (Relation.cardinality (List.assoc v red.Semijoin.red_vars))
          (Relation.cardinality r))
      again

(* Cyclic fallback: a triangle query still reduces soundly. *)
let test_cyclic_reduction_sound () =
  let db = Workload.University.generate { Workload.University.small_params with seed = 9 } in
  (* e-t on enr, t-c on cnr, c-e on... there is no direct c/e equality
     attribute of the same kind except numbers: use cnr vs enr (both
     ints) to close the cycle artificially. *)
  let conj =
    [
      { lhs = attr "e" "enr"; op = Value.Eq; rhs = attr "t" "tenr" };
      { lhs = attr "c" "cnr"; op = Value.Eq; rhs = attr "t" "tcnr" };
      { lhs = attr "c" "cnr"; op = Value.Eq; rhs = attr "e" "enr" };
    ]
  in
  (match Semijoin.graph_of_conjunction [ "e"; "t"; "c" ] conj with
  | None -> Alcotest.fail "graph expected"
  | Some g -> Alcotest.(check bool) "cyclic" false (Semijoin.is_acyclic g));
  match Semijoin.reduce db chain_ranges conj with
  | None -> Alcotest.fail "reduction expected"
  | Some red ->
    (* Soundness: every surviving e participates in a full assignment. *)
    let reduced_e = List.assoc "e" red.Semijoin.red_vars in
    let expected =
      Naive_eval.run db
        {
          free = [ ("e", base "employees") ];
          select = [ ("e", "enr") ];
          body =
            f_some "t" (base "timetable")
              (f_and
                 (eq (attr "e" "enr") (attr "t" "tenr"))
                 (f_some "c" (base "courses")
                    (f_and
                       (eq (attr "c" "cnr") (attr "t" "tcnr"))
                       (eq (attr "c" "cnr") (attr "e" "enr")))));
        }
    in
    (* The fixpoint reduction of a cyclic query is sound but not
       necessarily complete; for this instance completeness is easy to
       check against the naive answer: reduced ⊇ answer always, and
       every answer member must survive. *)
    let survivors = Helpers.ints (Algebra.project reduced_e [ "enr" ]) in
    List.iter
      (fun enr ->
        Alcotest.(check bool)
          (Printf.sprintf "answer member %d survives" enr)
          true (List.mem enr survivors))
      (Helpers.ints expected)

(* The universal extension: ALL-<> is the antijoin. *)
let test_all_ne_is_antijoin () =
  let db = Workload.University.generate Workload.University.small_params in
  let employees = Database.find_relation db "employees" in
  let papers = Database.find_relation db "papers" in
  let reduced =
    Semijoin.all_ne_reduce ~outer_attr:"enr" ~inner_attr:"penr" employees papers
  in
  let expected =
    Naive_eval.run db
      {
        free = [ ("e", base "employees") ];
        select = [ ("e", "enr") ];
        body = f_all "p" (base "papers") (ne (attr "e" "enr") (attr "p" "penr"));
      }
  in
  Alcotest.(check (list int))
    "ALL-<> = antijoin" (Helpers.ints expected)
    (Helpers.ints (Algebra.project reduced [ "enr" ]))

let test_all_eq_at_most_one () =
  let db = Workload.University.generate Workload.University.small_params in
  let employees = Database.find_relation db "employees" in
  let papers = Database.find_relation db "papers" in
  let reduced =
    Semijoin.all_eq_reduce ~outer_attr:"enr" ~inner_attr:"penr" employees papers
  in
  let expected =
    Naive_eval.run db
      {
        free = [ ("e", base "employees") ];
        select = [ ("e", "enr") ];
        body = f_all "p" (base "papers") (eq (attr "e" "enr") (attr "p" "penr"));
      }
  in
  Alcotest.(check (list int))
    "ALL-= via at-most-one value" (Helpers.ints expected)
    (Helpers.ints (Algebra.project reduced [ "enr" ]))

let test_all_eq_empty_inner () =
  let db = Fixtures.make () in
  Relation.clear (Database.find_relation db "papers");
  let employees = Database.find_relation db "employees" in
  let papers = Database.find_relation db "papers" in
  let reduced =
    Semijoin.all_eq_reduce ~outer_attr:"enr" ~inner_attr:"penr" employees papers
  in
  Alcotest.(check int) "ALL over empty keeps everything" 4
    (Relation.cardinality reduced)

let suite =
  [
    ( "semijoin",
      [
        Alcotest.test_case "query graph" `Quick test_graph_construction;
        Alcotest.test_case "non-equality excluded" `Quick
          test_non_equality_excluded;
        Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
        Alcotest.test_case "full reducer is exact on trees" `Quick
          test_full_reducer_exact;
        Alcotest.test_case "reduction monotone + fixpoint" `Quick
          test_reduction_monotone_and_fixpoint;
        Alcotest.test_case "cyclic fallback sound" `Quick
          test_cyclic_reduction_sound;
        Alcotest.test_case "ALL-<> is the antijoin" `Quick
          test_all_ne_is_antijoin;
        Alcotest.test_case "ALL-= at-most-one" `Quick test_all_eq_at_most_one;
        Alcotest.test_case "ALL-= over empty" `Quick test_all_eq_empty_inner;
      ] );
  ]
