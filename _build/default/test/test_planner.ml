open Pascalr
open Relalg

let test_stats_collection () =
  let db = Fixtures.make () in
  let stats = Stats.collect db in
  Alcotest.(check int) "employees cardinality" 4
    (Stats.cardinality stats "employees");
  let enr = Stats.attr stats "employees" "enr" in
  Alcotest.(check int) "enr distinct" 4 enr.Stats.a_distinct;
  Alcotest.(check (option Helpers.value))
    "enr min" (Some (Value.int 1)) enr.Stats.a_min;
  Alcotest.(check (option Helpers.value))
    "enr max" (Some (Value.int 4)) enr.Stats.a_max;
  let status = Stats.attr stats "employees" "estatus" in
  Alcotest.(check int) "status distinct" 2 status.Stats.a_distinct

let test_selectivities () =
  let db = Fixtures.make () in
  let stats = Stats.collect db in
  let s_eq = Stats.monadic_selectivity stats "employees" "enr" Value.Eq (Value.int 2) in
  Alcotest.(check bool) "eq selectivity = 1/4" true (abs_float (s_eq -. 0.25) < 1e-9);
  let s_ne = Stats.monadic_selectivity stats "employees" "enr" Value.Ne (Value.int 2) in
  Alcotest.(check bool) "ne selectivity = 3/4" true (abs_float (s_ne -. 0.75) < 1e-9);
  let s_lt = Stats.monadic_selectivity stats "employees" "enr" Value.Lt (Value.int 3) in
  Alcotest.(check bool) "lt selectivity in (0,1)" true (s_lt > 0.0 && s_lt < 1.0);
  let j = Stats.join_selectivity stats "employees" "enr" "timetable" "tenr" in
  Alcotest.(check bool) "join selectivity positive" true (j > 0.0 && j <= 1.0)

let test_cost_monotone_in_strategies () =
  (* The estimated combination volume of the S3-transformed plan is no
     larger than the bare plan's. *)
  let db = Workload.University.generate Workload.University.small_params in
  let stats = Stats.collect db in
  let q = Workload.Queries.running_query db in
  let sf = Standard_form.compile db q in
  let bare = Cost.estimate stats (Plan.of_standard_form sf) in
  let s3 = Cost.estimate stats (Plan.of_standard_form (Range_ext.apply db sf)) in
  Alcotest.(check bool)
    (Printf.sprintf "S3 estimate (%.0f) <= bare (%.0f)" s3.Cost.e_combination
       bare.Cost.e_combination)
    true
    (s3.Cost.e_combination <= bare.Cost.e_combination)

let test_planner_chooses_everything_for_running_query () =
  let db = Workload.University.generate Workload.University.small_params in
  let q = Workload.Queries.running_query db in
  let d = Planner.choose db q in
  Alcotest.(check bool) "S1 on" true d.Planner.d_strategy.Strategy.parallel_scan;
  Alcotest.(check bool) "S2 on" true d.Planner.d_strategy.Strategy.monadic_restrict;
  Alcotest.(check bool) "S3 on" true d.Planner.d_strategy.Strategy.range_extension;
  Alcotest.(check bool)
    "after estimate <= before estimate" true
    (d.Planner.d_after.Cost.e_combination
    <= d.Planner.d_before.Cost.e_combination)

let test_planner_skips_s4_when_inapplicable () =
  (* Two dyadic terms over the same quantified variable in one
     conjunction: not pushable. *)
  let db = Workload.University.generate Workload.University.small_params in
  let open Pascalr.Calculus in
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_some "t" (base "timetable")
          (f_and
             (eq (attr "t" "tenr") (attr "e" "enr"))
             (le (attr "t" "tcnr") (attr "e" "enr")));
    }
  in
  let d = Planner.choose db q in
  Alcotest.(check bool) "S4 off" false
    d.Planner.d_strategy.Strategy.quantifier_push

let test_planner_result_correct () =
  let db = Workload.University.generate Workload.University.small_params in
  List.iter
    (fun q ->
      let _, result = Planner.run db q in
      let expected = Naive_eval.run db q in
      Alcotest.(check bool) "planner result = naive" true
        (Relation.equal_set expected result))
    [
      Workload.Queries.running_query db;
      Workload.Queries.universal_query db;
      Workload.Queries.minmax_all_query db;
    ]

let test_explain_output () =
  let db = Fixtures.make () in
  let q = Workload.Queries.example_4_7 db in
  let text = Explain.explain ~strategy:Strategy.s1234 db q in
  (* The S4 pipeline must mention value lists and the three phases. *)
  Alcotest.(check bool) "mentions vlist" true (Helpers.contains text "vlist_");
  Alcotest.(check bool) "mentions collection" true
    (Helpers.contains text "collection phase");
  Alcotest.(check bool) "mentions construction" true
    (Helpers.contains text "construction phase")

let suite =
  [
    ( "planner",
      [
        Alcotest.test_case "statistics collection" `Quick test_stats_collection;
        Alcotest.test_case "selectivities" `Quick test_selectivities;
        Alcotest.test_case "cost monotone under S3" `Quick
          test_cost_monotone_in_strategies;
        Alcotest.test_case "planner enables strategies" `Quick
          test_planner_chooses_everything_for_running_query;
        Alcotest.test_case "planner skips S4 when inapplicable" `Quick
          test_planner_skips_s4_when_inapplicable;
        Alcotest.test_case "planner result correct" `Quick
          test_planner_result_correct;
        Alcotest.test_case "explain output" `Quick test_explain_output;
      ] );
  ]
