(* Shared test utilities. *)

open Relalg

let relation : Relation.t Alcotest.testable =
  Alcotest.testable Relation.pp Relation.equal_set

let value : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let tuple : Tuple.t Alcotest.testable =
  Alcotest.testable Tuple.pp Tuple.equal

let check_same_result msg expected actual =
  Alcotest.check relation msg expected actual

(* Sorted list of the single attribute values of a unary relation — a
   convenient normal form for comparing query results. *)
let column rel =
  List.map (fun t -> Tuple.get t 0) (Relation.to_list rel)
  |> List.sort Value.compare

let strings rel =
  List.map
    (fun v -> match v with Value.VStr s -> s | _ -> Value.to_string v)
    (column rel)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let ints rel =
  List.map
    (fun v -> match v with Value.VInt n -> n | _ -> -1)
    (column rel)
