(* The three equi-join implementations (hash, sort-merge, nested loop —
   the paper's references [6,9] for the combination phase's operations)
   must agree on arbitrary inputs, including duplicate join keys. *)

open Relalg

let left_schema =
  Schema.make
    [ Schema.attr "a" Vtype.int_full; Schema.attr "x" Vtype.int_full ]
    ~key:[]

let right_schema =
  Schema.make
    [ Schema.attr "b" Vtype.int_full; Schema.attr "y" Vtype.int_full ]
    ~key:[]

let rel schema rows =
  Relation.of_list schema
    (List.map (fun (k, v) -> Tuple.of_list [ Value.int k; Value.int v ]) rows)

let test_joins_agree_simple () =
  let a = rel left_schema [ (1, 10); (2, 20); (2, 21); (3, 30) ] in
  let b = rel right_schema [ (2, 100); (2, 101); (4, 400) ] in
  let hash = Algebra.equi_join ~on:[ ("a", "b") ] a b in
  let merge = Algebra.merge_join ~on:[ ("a", "b") ] a b in
  let nested = Algebra.nested_loop_join ~on:[ ("a", "b") ] a b in
  (* run of 2 on the left (2 tuples) x run of 2 on the right = 4. *)
  Alcotest.(check int) "cardinality" 4 (Relation.cardinality hash);
  Alcotest.(check bool) "hash = merge" true (Relation.equal_set hash merge);
  Alcotest.(check bool) "hash = nested" true (Relation.equal_set hash nested)

let test_joins_empty_sides () =
  let a = rel left_schema [ (1, 10) ] in
  let empty = rel right_schema [] in
  Alcotest.(check int) "merge join with empty side" 0
    (Relation.cardinality (Algebra.merge_join ~on:[ ("a", "b") ] a empty));
  Alcotest.(check int) "hash join with empty side" 0
    (Relation.cardinality (Algebra.equi_join ~on:[ ("a", "b") ] a empty))

let test_joins_agree_random =
  let pair_list = QCheck.Gen.(list_size (int_range 0 30)
                                (pair (int_range 0 8) (int_range 0 1000))) in
  QCheck.Test.make ~name:"hash = merge = nested-loop join (random)" ~count:200
    (QCheck.make QCheck.Gen.(pair pair_list pair_list))
    (fun (ls, rs) ->
      (* Make rows unique so set semantics do not hide discrepancies. *)
      let uniq rows = List.mapi (fun i (k, _) -> (k, i)) rows in
      let a = rel left_schema (uniq ls) and b = rel right_schema (uniq rs) in
      let hash = Algebra.equi_join ~on:[ ("a", "b") ] a b in
      let merge = Algebra.merge_join ~on:[ ("a", "b") ] a b in
      let nested = Algebra.nested_loop_join ~on:[ ("a", "b") ] a b in
      Relation.equal_set hash merge && Relation.equal_set hash nested)

let test_multi_attribute_merge_join () =
  let ls =
    Schema.make
      [
        Schema.attr "a" Vtype.int_full;
        Schema.attr "c" Vtype.int_full;
        Schema.attr "x" Vtype.int_full;
      ]
      ~key:[]
  in
  let rs =
    Schema.make
      [
        Schema.attr "b" Vtype.int_full;
        Schema.attr "d" Vtype.int_full;
        Schema.attr "y" Vtype.int_full;
      ]
      ~key:[]
  in
  let mk s rows =
    Relation.of_list s
      (List.map
         (fun (k1, k2, v) -> Tuple.of_list [ Value.int k1; Value.int k2; Value.int v ])
         rows)
  in
  let a = mk ls [ (1, 1, 0); (1, 2, 1); (2, 1, 2) ] in
  let b = mk rs [ (1, 1, 9); (1, 2, 8); (2, 2, 7) ] in
  let on = [ ("a", "b"); ("c", "d") ] in
  Alcotest.(check bool) "composite keys agree" true
    (Relation.equal_set
       (Algebra.merge_join ~on a b)
       (Algebra.equi_join ~on a b))

let suite =
  [
    ( "joins",
      [
        Alcotest.test_case "implementations agree (duplicates)" `Quick
          test_joins_agree_simple;
        Alcotest.test_case "empty sides" `Quick test_joins_empty_sides;
        QCheck_alcotest.to_alcotest test_joins_agree_random;
        Alcotest.test_case "composite join keys" `Quick
          test_multi_attribute_merge_join;
      ] );
  ]
