(* A tiny hand-built instance of the Figure-1 database with answers that
   can be verified by inspection. *)

open Relalg

let make () =
  let db = Database.create () in
  let s = Workload.University.declare db ~max_enr:99 ~max_cnr:99 in
  let employees = Database.find_relation db "employees" in
  let papers = Database.find_relation db "papers" in
  let courses = Database.find_relation db "courses" in
  let timetable = Database.find_relation db "timetable" in
  let status = s.Workload.University.status_type in
  let level = s.Workload.University.level_type in
  let day = s.Workload.University.day_type in
  let emp enr name st =
    Relation.insert employees
      (Tuple.of_list [ Value.int enr; Value.str name; Value.enum status st ])
  in
  let paper penr year title =
    Relation.insert papers
      (Tuple.of_list [ Value.int penr; Value.int year; Value.str title ])
  in
  let course cnr lv title =
    Relation.insert courses
      (Tuple.of_list [ Value.int cnr; Value.enum level lv; Value.str title ])
  in
  let slot tenr tcnr d =
    Relation.insert timetable
      (Tuple.of_list
         [
           Value.int tenr;
           Value.int tcnr;
           Value.enum day d;
           Value.int 09001000;
           Value.str "r1";
         ])
  in
  (* smith published in 1977 and teaches only a senior course: out.
     jones has no 1977 paper: in.
     kim is a student: out.
     lee published in 1977 but teaches a freshman course: in. *)
  emp 1 "smith" "professor";
  emp 2 "jones" "professor";
  emp 3 "kim" "student";
  emp 4 "lee" "professor";
  paper 1 1977 "smith-77";
  paper 2 1976 "jones-76";
  paper 4 1977 "lee-77";
  course 10 "freshman" "intro";
  course 11 "senior" "advanced";
  slot 1 11 "tuesday";
  slot 4 10 "monday";
  slot 3 10 "friday";
  Database.reset_counters db;
  db

(* Expected answer of the running query (Example 2.1) on [make ()]. *)
let running_query_answer = [ "jones"; "lee" ]

(* Expected answer when papers is emptied (Example 2.2's adaptation):
   all professors. *)
let running_query_answer_empty_papers = [ "jones"; "lee"; "smith" ]
