(* Validation of Lemma 1 and the one-sorted reduction (paper Section 2):
   the four rules are semantic equivalences under the correct emptiness
   handling, the non-empty variants of rules 2 and 3 FAIL on empty
   relations exactly as the lemma warns, and many-sorted truth agrees
   with the one-sorted translation. *)

open Pascalr
open Pascalr.Calculus
open Relalg

(* Closed random formulas: wrap a random 1-free-variable formula in a
   quantifier. *)
let closed_formula db seed =
  let q = Workload.Random_query.generate db seed in
  match q.free with
  | (v, range) :: rest ->
    let body =
      List.fold_left
        (fun acc (v', range') -> f_some v' range' acc)
        q.body rest
    in
    f_some v range body
  | [] -> q.body

(* A (rec-free) and B (possibly over rec): manufacture rule instances. *)
let instance db seed rule =
  let a = closed_formula db seed in
  let rng = Workload.Prng.create (seed + 13) in
  let rel = Workload.Prng.pick rng Workload.Random_query.relations in
  let v = "rec" in
  (* B genuinely depends on rec: a monadic atom over it, combined with a
     random closed sub-formula. *)
  let rec_atom =
    match rel with
    | "employees" -> le (attr v "enr") (cint 7)
    | "papers" -> eq (attr v "pyear") (cint 1977)
    | "courses" -> gt (attr v "cnr") (cint 3)
    | _ -> le (attr v "tcnr") (cint 5)
  in
  let connect = if Workload.Prng.bool rng then f_or else f_and in
  let b = connect rec_atom (closed_formula db (seed + 23)) in
  let quantified =
    match rule with
    | Lemma1.Rule1 | Lemma1.Rule2 -> f_some v (base rel) b
    | Lemma1.Rule3 | Lemma1.Rule4 -> f_all v (base rel) b
  in
  match rule with
  | Lemma1.Rule1 | Lemma1.Rule3 -> F_and (a, quantified)
  | Lemma1.Rule2 | Lemma1.Rule4 -> F_or (a, quantified)

let check_rule_equivalence db rule seed =
  let f = instance db seed rule in
  match Lemma1.rewrite db rule f with
  | None -> QCheck.Test.fail_reportf "rule did not match its own instance"
  | Some g -> Naive_eval.closed_holds db f = Naive_eval.closed_holds db g

let test_rules_on_populated =
  QCheck.Test.make ~name:"Lemma 1 rules hold (populated db)" ~count:80
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let db = Workload.Random_query.tiny_db (seed * 37) in
      List.for_all (fun r -> check_rule_equivalence db r seed) Lemma1.all_rules)

let test_rules_on_empty_relations =
  QCheck.Test.make ~name:"Lemma 1 rules hold (one relation empty)" ~count:80
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let db = Workload.Random_query.tiny_db (seed * 41) in
      let victim =
        List.nth Workload.Random_query.relations (seed mod 4)
      in
      Relation.clear (Database.find_relation db victim);
      List.for_all (fun r -> check_rule_equivalence db r seed) Lemma1.all_rules)

(* The lemma's warning, demonstrated: with rel = [], the non-empty
   variants of rules 2 and 3 are NOT equivalences.  Concrete
   counterexample: A = true, B arbitrary.
     A OR SOME rec IN [] (B)  = true,  but SOME rec IN [] (A OR B) = false
     A AND ALL rec IN [] (B)  = true,  but ALL rec IN [] (A AND B) = true —
   so for rule 3 take A = false ... ALL over empty is true, A AND ... =
   false: false AND ALL=true -> false; ALL rec IN [] (false AND B) = true. *)
let test_nonempty_variants_fail_on_empty () =
  let db = Fixtures.make () in
  Relation.clear (Database.find_relation db "papers");
  let b = eq (attr "rec" "pyear") (cint 1977) in
  (* Rule 2 counterexample. *)
  let f2 = F_or (F_true, f_some "rec" (base "papers") b) in
  let wrong2 = Option.get (Lemma1.rewrite_assuming_nonempty Lemma1.Rule2 f2) in
  let right2 = Option.get (Lemma1.rewrite db Lemma1.Rule2 f2) in
  Alcotest.(check bool) "original is true" true (Naive_eval.closed_holds db f2);
  Alcotest.(check bool) "non-empty variant is wrong" false
    (Naive_eval.closed_holds db wrong2);
  Alcotest.(check bool) "emptiness-aware rewrite is right" true
    (Naive_eval.closed_holds db right2);
  (* Rule 3 counterexample. *)
  let f3 = F_and (F_false, f_all "rec" (base "papers") b) in
  let wrong3 = Option.get (Lemma1.rewrite_assuming_nonempty Lemma1.Rule3 f3) in
  let right3 = Option.get (Lemma1.rewrite db Lemma1.Rule3 f3) in
  Alcotest.(check bool) "original is false" false (Naive_eval.closed_holds db f3);
  Alcotest.(check bool) "non-empty variant is wrong" true
    (Naive_eval.closed_holds db wrong3);
  Alcotest.(check bool) "emptiness-aware rewrite is right" false
    (Naive_eval.closed_holds db right3)

(* Rules 1 and 4 are unconditional: they hold even on empty relations. *)
let test_unconditional_rules_on_empty () =
  let db = Fixtures.make () in
  Relation.clear (Database.find_relation db "papers");
  let b = eq (attr "rec" "pyear") (cint 1977) in
  let f1 = F_and (F_true, f_some "rec" (base "papers") b) in
  let g1 = Option.get (Lemma1.rewrite_assuming_nonempty Lemma1.Rule1 f1) in
  Alcotest.(check bool) "rule 1 on empty" (Naive_eval.closed_holds db f1)
    (Naive_eval.closed_holds db g1);
  let f4 = F_or (F_false, f_all "rec" (base "papers") b) in
  let g4 = Option.get (Lemma1.rewrite_assuming_nonempty Lemma1.Rule4 f4) in
  Alcotest.(check bool) "rule 4 on empty" (Naive_eval.closed_holds db f4)
    (Naive_eval.closed_holds db g4)

(* Many-sorted semantics agrees with the one-sorted translation. *)
let test_onesort_agrees =
  QCheck.Test.make ~name:"one-sorted reduction preserves truth" ~count:100
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let db = Workload.Random_query.tiny_db (seed * 53) in
      let f = closed_formula db seed in
      Naive_eval.closed_holds db f = Onesort.closed_holds db f)

let test_onesort_agrees_empty =
  QCheck.Test.make ~name:"one-sorted reduction (empty relation)" ~count:60
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let db = Workload.Random_query.tiny_db (seed * 59) in
      let victim = List.nth Workload.Random_query.relations (seed mod 4) in
      Relation.clear (Database.find_relation db victim);
      let f = closed_formula db seed in
      Naive_eval.closed_holds db f = Onesort.closed_holds db f)

let suite =
  [
    ( "lemma1",
      [
        QCheck_alcotest.to_alcotest test_rules_on_populated;
        QCheck_alcotest.to_alcotest test_rules_on_empty_relations;
        Alcotest.test_case "rules 2/3 fail without emptiness handling" `Quick
          test_nonempty_variants_fail_on_empty;
        Alcotest.test_case "rules 1/4 unconditional" `Quick
          test_unconditional_rules_on_empty;
        QCheck_alcotest.to_alcotest test_onesort_agrees;
        QCheck_alcotest.to_alcotest test_onesort_agrees_empty;
      ] );
  ]
