open Relalg

let status =
  { Value.enum_name = "statustype"; labels = [| "student"; "professor" |] }

let test_comparisons () =
  Alcotest.(check bool) "3 < 5" true (Value.apply Value.Lt (Value.int 3) (Value.int 5));
  Alcotest.(check bool) "3 >= 5" false (Value.apply Value.Ge (Value.int 3) (Value.int 5));
  Alcotest.(check bool) "'ab' <= 'ab'" true
    (Value.apply Value.Le (Value.str "ab") (Value.str "ab"));
  Alcotest.(check bool) "'ab' <> 'ac'" true
    (Value.apply Value.Ne (Value.str "ab") (Value.str "ac"));
  Alcotest.(check bool) "student < professor" true
    (Value.apply Value.Lt (Value.enum status "student") (Value.enum status "professor"))

let test_cross_domain_comparison () =
  Alcotest.check_raises "int vs string" (Errors.Type_error "cannot compare integer with string")
    (fun () -> ignore (Value.apply Value.Eq (Value.int 1) (Value.str "x")))

let test_negate_flip_involution () =
  List.iter
    (fun op ->
      let a = Value.int 3 and b = Value.int 7 in
      Alcotest.(check bool)
        ("negate " ^ Value.comparison_to_string op)
        (not (Value.apply op a b))
        (Value.apply (Value.negate_comparison op) a b);
      Alcotest.(check bool)
        ("flip " ^ Value.comparison_to_string op)
        (Value.apply op a b)
        (Value.apply (Value.flip_comparison op) b a))
    Value.all_comparisons

let test_negate_flip_property =
  let gen =
    QCheck.Gen.(
      pair (map Value.int (int_range (-50) 50)) (map Value.int (int_range (-50) 50)))
  in
  let arb = QCheck.make gen in
  let prop (a, b) =
    List.for_all
      (fun op ->
        Value.apply op a b = not (Value.apply (Value.negate_comparison op) a b)
        && Value.apply op a b = Value.apply (Value.flip_comparison op) b a)
      Value.all_comparisons
  in
  QCheck.Test.make ~name:"negate/flip laws" ~count:500 arb prop

let test_references () =
  let r = Reference.make ~target:"employees" ~key:[ Value.int 7 ] in
  Alcotest.check Helpers.value "round trip"
    (Value.VRef r)
    (Reference.to_value (Reference.of_value (Value.VRef r)));
  Alcotest.(check string) "target" "employees" (Reference.target r);
  Alcotest.(check bool) "self equal" true (Reference.equal r r)

let test_enum_errors () =
  Alcotest.check_raises "bad label"
    (Errors.Type_error "enum statustype has no label dean") (fun () ->
      ignore (Value.enum status "dean"));
  Alcotest.check_raises "bad ordinal"
    (Errors.Type_error "enum statustype has no ordinal 9") (fun () ->
      ignore (Value.enum_ordinal status 9))

let test_hash_consistent_with_equal () =
  let vs =
    [
      Value.int 3;
      Value.str "abc";
      Value.bool true;
      Value.enum status "student";
      Value.VRef (Reference.make ~target:"t" ~key:[ Value.int 1; Value.str "a" ]);
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check int) "hash stable" (Value.hash v) (Value.hash v))
    vs

let suite =
  [
    ( "value",
      [
        Alcotest.test_case "comparison operators" `Quick test_comparisons;
        Alcotest.test_case "cross-domain comparison rejected" `Quick
          test_cross_domain_comparison;
        Alcotest.test_case "negate/flip involutions" `Quick
          test_negate_flip_involution;
        QCheck_alcotest.to_alcotest test_negate_flip_property;
        Alcotest.test_case "references" `Quick test_references;
        Alcotest.test_case "enum errors" `Quick test_enum_errors;
        Alcotest.test_case "hash consistency" `Quick
          test_hash_consistent_with_equal;
      ] );
  ]
