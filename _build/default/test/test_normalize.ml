open Pascalr
open Pascalr.Calculus
open Relalg

let v n = Value.int n

let test_nnf_pushes_not () =
  (* NOT (a < b AND SOME p (x = y)) = a >= b OR ALL p (x <> y) *)
  let f =
    f_not
      (F_and
         ( lt (attr "e" "enr") (cint 5),
           F_some ("p", base "papers", eq (attr "p" "penr") (cint 1)) ))
  in
  let expected =
    F_or
      ( ge (attr "e" "enr") (cint 5),
        F_all ("p", base "papers", ne (attr "p" "penr") (cint 1)) )
  in
  Alcotest.(check bool) "nnf" true (equal_formula (Normalize.nnf f) expected)

let test_nnf_constant_folding () =
  let f = F_atom { lhs = O_const (v 3); op = Value.Lt; rhs = O_const (v 5) } in
  Alcotest.(check bool) "3<5 folds to true" true
    (equal_formula (Normalize.nnf f) F_true);
  Alcotest.(check bool) "not(3<5) folds to false" true
    (equal_formula (Normalize.nnf (f_not f)) F_false)

let test_prenex_order () =
  (* ALL p (...) OR SOME c (SOME t (...)) gives prefix p, c, t. *)
  let db = Fixtures.make () in
  let q = Workload.Queries.running_query db in
  let sf = Standard_form.of_query q in
  let prefix =
    List.map
      (fun e -> (Normalize.quant_to_string e.Normalize.q, e.Normalize.v))
      sf.Standard_form.prefix
  in
  Alcotest.(check (list (pair string string)))
    "prefix order as in Example 2.2"
    [ ("ALL", "p"); ("SOME", "c"); ("SOME", "t") ]
    prefix

let test_example_2_2_matrix () =
  (* The standard form of Example 2.1 has the three conjunctions of
     Example 2.2. *)
  let db = Fixtures.make () in
  let q = Workload.Queries.running_query db in
  let sf = Standard_form.of_query q in
  Alcotest.(check int) "three conjunctions" 3
    (List.length sf.Standard_form.matrix);
  let sizes =
    List.sort compare (List.map List.length sf.Standard_form.matrix)
  in
  (* (prof, pyear<>1977), (prof, penr<>enr), (prof, clevel<=, tenr=, tcnr=) *)
  Alcotest.(check (list int)) "conjunction sizes" [ 2; 2; 4 ] sizes

let test_dnf_contradiction_pruning () =
  (* (x=1 AND x<>1) OR (x=2) reduces to just x=2. *)
  let a1 = eq (attr "e" "enr") (cint 1) in
  let a1n = ne (attr "e" "enr") (cint 1) in
  let a2 = eq (attr "e" "enr") (cint 2) in
  let d = Normalize.dnf_of_matrix (f_or (F_and (a1, a1n)) a2) in
  Alcotest.(check int) "one conjunction" 1 (List.length d)

let test_dnf_subsumption () =
  (* A OR (A AND B) = A. *)
  let a = eq (attr "e" "enr") (cint 1) in
  let b = eq (attr "e" "estatus") (cint 3) in
  let d = Normalize.dnf_of_matrix (f_or a (F_and (a, b))) in
  Alcotest.(check int) "subsumed" 1 (List.length d);
  Alcotest.(check int) "the smaller conjunction" 1 (List.length (List.hd d))

let test_dnf_duplicate_atoms () =
  let a = eq (attr "e" "enr") (cint 1) in
  let d = Normalize.dnf_of_matrix (F_and (a, a)) in
  Alcotest.(check int) "atom deduplicated" 1 (List.length (List.hd d))

let test_standard_form_roundtrip_semantics () =
  (* to_query . of_query preserves the answer (non-empty ranges). *)
  let db = Workload.University.generate Workload.University.default_params in
  List.iter
    (fun (name, q) ->
      let direct = Naive_eval.run db q in
      let via_sf = Naive_eval.run db (Standard_form.to_query (Standard_form.of_query q)) in
      Alcotest.(check bool) (name ^ ": same answer") true
        (Relation.equal_set direct via_sf))
    [
      ("running", Workload.Queries.running_query db);
      ("example 4.5", Workload.Queries.example_4_5 db);
      ("example 4.7", Workload.Queries.example_4_7 db);
      ("existential", Workload.Queries.existential_query db);
      ("universal", Workload.Queries.universal_query db);
      ("suppliers-style all", Workload.Queries.all_eq_query db);
    ]

let test_adaptation_empty_papers () =
  (* Example 2.2: with papers = [], the query must reduce to the
     professors test; the un-adapted standard form would be wrong. *)
  let db = Fixtures.make () in
  Relation.clear (Database.find_relation db "papers");
  let q = Workload.Queries.running_query db in
  let adapted = Standard_form.adapt_query db q in
  let result = Naive_eval.run db adapted in
  Alcotest.(check (list string))
    "all professors" Fixtures.running_query_answer_empty_papers
    (Helpers.strings result);
  (* The adapted body no longer quantifies over papers. *)
  let rec mentions_papers = function
    | F_true | F_false | F_atom _ -> false
    | F_not f -> mentions_papers f
    | F_and (a, b) | F_or (a, b) -> mentions_papers a || mentions_papers b
    | F_some (_, r, f) | F_all (_, r, f) ->
      String.equal r.range_rel "papers" || mentions_papers f
  in
  Alcotest.(check bool) "papers quantifier eliminated" false
    (mentions_papers adapted.body)

let test_adaptation_restricted_range () =
  (* An extended range can be empty even when its base relation is not:
     ALL p IN [papers: pyear = 1877] must adapt to true. *)
  let db = Fixtures.make () in
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_all "p"
          (restricted "papers" "p" (eq (attr "p" "pyear") (cint 1877)))
          (eq (attr "p" "penr") (attr "e" "enr"));
    }
  in
  let adapted = Standard_form.adapt_query db q in
  Alcotest.(check bool) "body adapts to true" true
    (equal_formula adapted.body F_true);
  Alcotest.(check int) "all employees" 4
    (Relation.cardinality (Naive_eval.run db adapted))

let test_vacuous_quantifier_pruned () =
  (* SOME p IN papers (e.enr = 1): p does not occur; over a non-empty
     range the prefix entry must be dropped. *)
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body = f_some "p" (base "papers") (eq (attr "e" "enr") (cint 1));
    }
  in
  let sf = Standard_form.of_query q in
  Alcotest.(check int) "no prefix" 0 (List.length sf.Standard_form.prefix)

let suite =
  [
    ( "normalize",
      [
        Alcotest.test_case "nnf pushes negation" `Quick test_nnf_pushes_not;
        Alcotest.test_case "constant folding" `Quick test_nnf_constant_folding;
        Alcotest.test_case "prenex order (Example 2.2)" `Quick
          test_prenex_order;
        Alcotest.test_case "Example 2.2 matrix shape" `Quick
          test_example_2_2_matrix;
        Alcotest.test_case "contradiction pruning" `Quick
          test_dnf_contradiction_pruning;
        Alcotest.test_case "subsumption pruning" `Quick test_dnf_subsumption;
        Alcotest.test_case "duplicate atoms" `Quick test_dnf_duplicate_atoms;
        Alcotest.test_case "standard form round trip" `Quick
          test_standard_form_roundtrip_semantics;
        Alcotest.test_case "Example 2.2 empty-papers adaptation" `Quick
          test_adaptation_empty_papers;
        Alcotest.test_case "empty extended range adaptation" `Quick
          test_adaptation_restricted_range;
        Alcotest.test_case "vacuous quantifier pruned" `Quick
          test_vacuous_quantifier_pruned;
      ] );
  ]
