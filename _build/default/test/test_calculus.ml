open Pascalr.Calculus
open Relalg

let f1 =
  f_and
    (eq (attr "e" "estatus") (cint 1))
    (f_some "p" (base "papers") (ne (attr "p" "penr") (attr "e" "enr")))

let test_free_and_bound_vars () =
  Alcotest.(check (list string))
    "free" [ "e" ]
    (Var_set.elements (free_vars f1));
  Alcotest.(check (list string))
    "bound" [ "p" ]
    (Var_set.elements (bound_vars f1))

let test_monadic_dyadic () =
  let m = { lhs = attr "e" "estatus"; op = Value.Eq; rhs = cint 1 } in
  let d = { lhs = attr "e" "enr"; op = Value.Eq; rhs = attr "t" "tenr" } in
  Alcotest.(check bool) "monadic" true (is_monadic m);
  Alcotest.(check bool) "not dyadic" false (is_dyadic m);
  Alcotest.(check bool) "dyadic" true (is_dyadic d);
  (* a term over the same variable twice is monadic *)
  let self = { lhs = attr "e" "enr"; op = Value.Lt; rhs = attr "e" "salary" } in
  Alcotest.(check bool) "self-join term is monadic" true (is_monadic self)

let test_smart_constructors () =
  Alcotest.(check bool) "and true" true
    (equal_formula (f_and F_true f1) f1);
  Alcotest.(check bool) "and false" true
    (equal_formula (f_and f1 F_false) F_false);
  Alcotest.(check bool) "or false" true (equal_formula (f_or F_false f1) f1);
  Alcotest.(check bool) "or true" true (equal_formula (f_or f1 F_true) F_true);
  Alcotest.(check bool) "double negation" true
    (equal_formula (f_not (f_not f1)) f1)

let test_rename_free () =
  let renamed = rename_free "e" "x" f1 in
  Alcotest.(check (list string))
    "free renamed" [ "x" ]
    (Var_set.elements (free_vars renamed));
  (* bound variable p untouched, inner shadowed names respected *)
  let shadow = f_some "e" (base "papers") (eq (attr "e" "penr") (cint 1)) in
  let renamed_shadow = rename_free "e" "x" shadow in
  Alcotest.(check bool) "shadowed binder untouched" true
    (equal_formula shadow renamed_shadow)

let test_distinct_bound_vars () =
  (* SOME p (...) AND SOME p (...) must get distinct binders. *)
  let clash =
    f_and
      (f_some "p" (base "papers") (eq (attr "p" "pyear") (cint 1977)))
      (f_some "p" (base "papers") (eq (attr "p" "pyear") (cint 1978)))
  in
  let distinct = distinct_bound_vars (Var_set.singleton "e") clash in
  let rec binders = function
    | F_true | F_false | F_atom _ -> []
    | F_not f -> binders f
    | F_and (a, b) | F_or (a, b) -> binders a @ binders b
    | F_some (v, _, f) | F_all (v, _, f) -> v :: binders f
  in
  let bs = binders distinct in
  Alcotest.(check int) "two binders" 2 (List.length bs);
  Alcotest.(check bool) "distinct" true
    (List.length (List.sort_uniq String.compare bs) = 2)

let test_equal_atom_mirrored () =
  let a = { lhs = attr "e" "enr"; op = Value.Lt; rhs = attr "p" "penr" } in
  let b = { lhs = attr "p" "penr"; op = Value.Gt; rhs = attr "e" "enr" } in
  Alcotest.(check bool) "mirrored equal" true (equal_atom_mirrored a b);
  Alcotest.(check bool) "not structurally equal" false (equal_atom a b)

let test_pretty_printer () =
  let s = formula_to_string (f_some "t" (base "timetable") (eq (attr "t" "tenr") (cint 3))) in
  Alcotest.(check string) "concrete syntax" "SOME t IN timetable (t.tenr = 3)" s

let test_wellformed () =
  let db = Fixtures.make () in
  let q = Workload.Queries.running_query db in
  (match Pascalr.Wellformed.check_query db q with
  | Ok () -> ()
  | Error e -> Alcotest.failf "running query ill-formed: %s" e.message);
  let bad_rel = { q with free = [ ("e", base "nonexistent") ] } in
  (match Pascalr.Wellformed.check_query db bad_rel with
  | Ok () -> Alcotest.fail "unknown relation accepted"
  | Error _ -> ());
  let bad_attr = { q with select = [ ("e", "salary") ] } in
  (match Pascalr.Wellformed.check_query db bad_attr with
  | Ok () -> Alcotest.fail "unknown attribute accepted"
  | Error _ -> ());
  let bad_cmp =
    { q with body = eq (attr "e" "ename") (attr "e" "enr") }
  in
  match Pascalr.Wellformed.check_query db bad_cmp with
  | Ok () -> Alcotest.fail "incomparable domains accepted"
  | Error _ -> ()

let suite =
  [
    ( "calculus",
      [
        Alcotest.test_case "free and bound variables" `Quick
          test_free_and_bound_vars;
        Alcotest.test_case "monadic vs dyadic join terms" `Quick
          test_monadic_dyadic;
        Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
        Alcotest.test_case "rename free" `Quick test_rename_free;
        Alcotest.test_case "distinct bound vars" `Quick
          test_distinct_bound_vars;
        Alcotest.test_case "mirrored atom equality" `Quick
          test_equal_atom_mirrored;
        Alcotest.test_case "pretty printer" `Quick test_pretty_printer;
        Alcotest.test_case "well-formedness" `Quick test_wellformed;
      ] );
  ]
