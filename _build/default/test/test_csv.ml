open Relalg

let status =
  { Value.enum_name = "statustype"; labels = [| "student"; "professor" |] }

let schema =
  Schema.make
    [
      Schema.attr "id" Vtype.int_full;
      Schema.attr "name" Vtype.string_any;
      Schema.attr "st" (Vtype.TEnum status);
      Schema.attr "ok" Vtype.boolean;
    ]
    ~key:[ "id" ]

let sample () =
  Relation.of_list ~name:"r" schema
    [
      Tuple.of_list
        [ Value.int 1; Value.str "plain"; Value.enum status "student"; Value.bool true ];
      Tuple.of_list
        [
          Value.int 2;
          Value.str "with, comma and \"quotes\"";
          Value.enum status "professor";
          Value.bool false;
        ];
    ]

let test_roundtrip () =
  let r = sample () in
  let csv = Csv_io.to_string r in
  let r' = Csv_io.of_string ~name:"r2" schema csv in
  Alcotest.(check bool) "round trip" true (Relation.equal_set r r')

let test_header () =
  let csv = Csv_io.to_string (sample ()) in
  let header = List.hd (String.split_on_char '\n' csv) in
  Alcotest.(check string) "header" "id,name,st,ok" header

let test_bad_inputs () =
  let expect_error src =
    match Csv_io.of_string schema src with
    | _ -> Alcotest.failf "expected Type_error for %S" src
    | exception Errors.Type_error _ -> ()
  in
  expect_error "";
  expect_error "wrong,header,names,here\n1,x,student,true";
  expect_error "id,name,st,ok\n1,x,student";
  expect_error "id,name,st,ok\nnotanint,x,student,true";
  expect_error "id,name,st,ok\n1,x,dean,true"

let test_file_io () =
  let r = sample () in
  let path = Filename.temp_file "pascalr" ".csv" in
  Csv_io.save_file r path;
  let r' = Csv_io.load_file schema path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (Relation.equal_set r r')

let suite =
  [
    ( "csv",
      [
        Alcotest.test_case "round trip" `Quick test_roundtrip;
        Alcotest.test_case "header" `Quick test_header;
        Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
        Alcotest.test_case "file io" `Quick test_file_io;
      ] );
  ]
