(** CSV import/export for relations (header line of attribute names;
    values parsed against the schema; enumerations by label).
    Reference values are not representable. *)

val to_string : Relation.t -> string

val of_string : ?name:string -> Schema.t -> string -> Relation.t
(** @raise Errors.Type_error on malformed input or header mismatch. *)

val save_file : Relation.t -> string -> unit
val load_file : ?name:string -> Schema.t -> string -> Relation.t
