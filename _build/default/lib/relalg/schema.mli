(** Relation schemas: ordered named, typed attributes plus a declared key
    (PASCAL/R: [RELATION <key> OF RECORD ... END]). *)

type attr = { attr_name : string; attr_type : Vtype.t }

type t

val attr : string -> Vtype.t -> attr

val make : attr list -> key:string list -> t
(** [make attrs ~key] builds a schema.  An empty [key] declares all
    attributes as key (pure set semantics, used for intermediate
    reference relations).
    @raise Errors.Schema_error on duplicate names or unknown key names. *)

val arity : t -> int
val attrs : t -> attr list
val attr_at : t -> int -> attr
val names : t -> string list
val key_positions : t -> int array
val key_names : t -> string list

val index_of : t -> string -> int
(** @raise Errors.Unknown_attribute *)

val mem : t -> string -> bool
val type_of : t -> string -> Vtype.t
val type_at : t -> int -> Vtype.t
val name_at : t -> int -> string

val project : t -> string list -> t
(** Schema of the projection onto the given names, keyed by everything. *)

val concat : t -> t -> t
(** Schema of a product; names must stay distinct. *)

val rename : t -> (string * string) list -> t
(** Rename attributes according to the association list. *)

val compatible : t -> t -> bool
(** Same attribute names and types, in order. *)

val same_shape : t -> t -> bool
(** Same attribute types in order (names ignored). *)

val pp : t Fmt.t
