(* Relation schemas: an ordered list of named, typed attributes together
   with a key (a subset of the attributes, declared in angular brackets
   in PASCAL/R: RELATION <enr> OF RECORD ... END). *)

type attr = { attr_name : string; attr_type : Vtype.t }

type t = {
  attrs : attr array;
  key : int array;  (* positions of the key attributes, in declared order *)
}

let attr name ty = { attr_name = name; attr_type = ty }

let arity s = Array.length s.attrs
let attrs s = Array.to_list s.attrs
let attr_at s i = s.attrs.(i)
let key_positions s = Array.copy s.key

let index_of s name =
  let rec find i =
    if i >= Array.length s.attrs then
      raise (Errors.Unknown_attribute name)
    else if String.equal s.attrs.(i).attr_name name then i
    else find (i + 1)
  in
  find 0

let mem s name =
  Array.exists (fun a -> String.equal a.attr_name name) s.attrs

let type_of s name = s.attrs.(index_of s name).attr_type
let type_at s i = s.attrs.(i).attr_type
let name_at s i = s.attrs.(i).attr_name

let names s = Array.to_list (Array.map (fun a -> a.attr_name) s.attrs)

let check_distinct_names attrs =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      if Hashtbl.mem seen a.attr_name then
        Errors.schema_error "duplicate attribute name %s" a.attr_name
      else Hashtbl.add seen a.attr_name ())
    attrs

(* [make attrs ~key] builds a schema whose key is the named attribute
   subset.  An empty [key] list declares the whole tuple as key (set
   semantics) — the convention used for all intermediate reference
   relations of the paper's Section 3.2. *)
let make attr_list ~key =
  let attrs = Array.of_list attr_list in
  if Array.length attrs = 0 then Errors.schema_error "schema with no attributes";
  check_distinct_names attrs;
  let index_of_name name =
    let rec find i =
      if i >= Array.length attrs then
        Errors.schema_error "key attribute %s not in schema" name
      else if String.equal attrs.(i).attr_name name then i
      else find (i + 1)
    in
    find 0
  in
  let key =
    match key with
    | [] -> Array.init (Array.length attrs) (fun i -> i)
    | names -> Array.of_list (List.map index_of_name names)
  in
  { attrs; key }

let key_names s =
  Array.to_list (Array.map (fun i -> s.attrs.(i).attr_name) s.key)

(* Schema of a projection onto the given attribute names, in the order
   given.  The projection result is keyed by all its attributes. *)
let project s names =
  let attr_list = List.map (fun n -> s.attrs.(index_of s n)) names in
  make attr_list ~key:[]

(* Concatenation for products and joins; attribute names must remain
   distinct, callers rename beforehand when needed. *)
let concat a b =
  make (attrs a @ attrs b) ~key:[]

let rename s mapping =
  let rename_one a =
    match List.assoc_opt a.attr_name mapping with
    | Some fresh -> { a with attr_name = fresh }
    | None -> a
  in
  let attrs = Array.map rename_one s.attrs in
  check_distinct_names attrs;
  { s with attrs }

(* Structural equality of the attribute lists (names and types, in
   order); the key is ignored because set operations care only about
   tuple shape. *)
let compatible a b =
  arity a = arity b
  && Array.for_all2
       (fun x y ->
         String.equal x.attr_name y.attr_name
         && Vtype.equal x.attr_type y.attr_type)
       a.attrs b.attrs

(* Same attribute types in order, names ignored: sufficient for unions
   of intermediate results that were built by different subexpressions. *)
let same_shape a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> Vtype.equal x.attr_type y.attr_type) a.attrs
       b.attrs

let pp ppf s =
  let pp_attr ppf a =
    Fmt.pf ppf "%s : %a" a.attr_name Vtype.pp a.attr_type
  in
  Fmt.pf ppf "<%a> OF (%a)"
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    (key_names s)
    (Fmt.array ~sep:Fmt.semi pp_attr)
    s.attrs
