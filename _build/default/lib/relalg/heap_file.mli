(** Paged heap files: length-prefixed records packed into fixed-size
    pages; iteration goes through a {!Buffer_pool}. *)

val page_size : int

type t

val create : unit -> t
val file_id : t -> int
val page_count : t -> int
val record_count : t -> int

val append : t -> Bytes.t -> unit
(** @raise Errors.Type_error if the record exceeds the page size. *)

val clear : t -> unit

val iter : pool:Buffer_pool.t -> t -> (Bytes.t -> unit) -> unit
(** Iterate all records; each page access is charged to [pool]. *)
