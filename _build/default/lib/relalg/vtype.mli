(** Domains (attribute types): integer subranges, fixed-width strings,
    booleans, named enumerations, and reference types [@rel] (paper
    Figures 1 and 2). *)

type t =
  | TInt of { lo : int; hi : int }
  | TStr of { width : int option }
  | TBool
  | TEnum of Value.enum_info
  | TRef of string

val int_full : t
val int_range : int -> int -> t
(** @raise Errors.Schema_error if the range is empty. *)

val string_any : t
val string_width : int -> t
val boolean : t

val enum : string -> string array -> t
(** [enum name labels] declares enumeration [name] with the given labels.
    @raise Errors.Schema_error if [labels] is empty. *)

val reference : string -> t
(** [reference rel] is the type of references into relation [rel]. *)

val member : t -> Value.t -> bool
(** Domain membership of a runtime value. *)

val comparable : t -> t -> bool
(** Can values of the two domains meet in a join term? *)

val equal : t -> t -> bool

val enumerate : t -> Value.t list option
(** All values of a finite domain in order, or [None] if unbounded. *)

val to_string : t -> string
val pp : t Fmt.t
