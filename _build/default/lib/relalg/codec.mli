(** Binary tuple encoding for the paged storage layer.  Schema-directed:
    enumerations are stored as ordinals and reconstructed from the
    schema; reference values are self-described. *)

val encode_tuple : Schema.t -> Tuple.t -> Bytes.t
val decode_tuple : Schema.t -> Bytes.t -> Tuple.t

val put_value : Buffer.t -> Value.t -> unit
(** Self-described single-value encoding (as used inside references). *)

type cursor = { bytes : Bytes.t; mutable pos : int }

val get_value : cursor -> Value.t
(** Decoded enum values carry only their enumeration name and ordinal
    (empty label table) — sufficient for equality and ordering. *)
