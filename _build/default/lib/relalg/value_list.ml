(* Value lists for quantifier evaluation in the collection phase
   (paper Section 4.4, strategy 4).

   "When vnrel is read, instead of a complete index only its value list
   is generated.  Afterwards, when vmrel is read, the quantifier of vn
   can be evaluated."

   Three storage policies implement the paper's refinements:
   - [Full]        all distinct values (general case);
   - [Bounds]      only min and max — sufficient when the join term's
                   operator is < <= > >= ("only one component value of
                   vnrel must be stored");
   - [At_most_one] the first value plus a saw-two-distinct flag —
                   sufficient for ALL combined with =, and SOME combined
                   with <> ("at most one value need to be stored"). *)

type storage = Full | Bounds | At_most_one

type quantifier = Q_some | Q_all

type t = {
  storage : storage;
  values : unit Value_key.table;  (* used by Full only *)
  mutable vmin : Value.t option;
  mutable vmax : Value.t option;
  mutable first : Value.t option; (* used by At_most_one *)
  mutable distinct2 : bool;       (* saw >= 2 distinct values *)
  mutable added : int;            (* total insertions (with duplicates) *)
  mutable distinct : int;         (* distinct values seen (Full only) *)
}

let create ?(storage = Full) () =
  {
    storage;
    values = Value_key.create 64;
    vmin = None;
    vmax = None;
    first = None;
    distinct2 = false;
    added = 0;
    distinct = 0;
  }

let storage t = t.storage

let update_bounds t v =
  (match t.vmin with
  | None -> t.vmin <- Some v
  | Some m -> if Value.compare v m < 0 then t.vmin <- Some v);
  match t.vmax with
  | None -> t.vmax <- Some v
  | Some m -> if Value.compare v m > 0 then t.vmax <- Some v

let add t v =
  t.added <- t.added + 1;
  update_bounds t v;
  (match t.first with
  | None -> t.first <- Some v
  | Some f -> if not (Value.equal f v) then t.distinct2 <- true);
  match t.storage with
  | Full ->
    if not (Value_key.Table.mem t.values [ v ]) then begin
      Value_key.Table.replace t.values [ v ] ();
      t.distinct <- t.distinct + 1
    end
  | Bounds | At_most_one -> ()

let of_column ?storage ?filter rel name =
  let t = create ?storage () in
  let keep = Option.value filter ~default:(fun _ -> true) in
  let pos = Schema.index_of (Relation.schema rel) name in
  Relation.scan (fun tuple -> if keep tuple then add t (Tuple.get tuple pos)) rel;
  t

let is_empty t = t.added = 0

let mem t v =
  match t.storage with
  | Full -> Value_key.Table.mem t.values [ v ]
  | Bounds | At_most_one ->
    Errors.type_error "membership query on a %s value list"
      (match t.storage with Bounds -> "bounds-only" | _ -> "at-most-one")

let distinct_count t =
  match t.storage with
  | Full -> Some t.distinct
  | Bounds | At_most_one -> None

(* Number of component values physically retained — the paper's storage
   claim for the Bounds and At_most_one policies. *)
let stored_size t =
  match t.storage with
  | Full -> t.distinct
  | Bounds -> (match t.vmin, t.vmax with
    | None, None -> 0
    | Some a, Some b -> if Value.equal a b then 1 else 2
    | Some _, None | None, Some _ -> 1)
  | At_most_one -> (match t.first with None -> 0 | Some _ -> 1)

let min_value t = t.vmin
let max_value t = t.vmax

let to_sorted_list t =
  match t.storage with
  | Full ->
    Value_key.Table.fold
      (fun key () acc -> match key with [ v ] -> v :: acc | _ -> acc)
      t.values []
    |> List.sort Value.compare
  | Bounds | At_most_one ->
    Errors.type_error "enumeration of a reduced value list"

let exists_value p t = List.exists p (to_sorted_list t)
let for_all_values p t = List.for_all p (to_sorted_list t)

(* [quant_holds ~quant op v t] decides (Q w IN list) (v op w).
   SOME over an empty list is false, ALL over an empty list is true.
   The reduced storage policies decide exactly the operator/quantifier
   combinations the paper assigns to them; asking them anything else is
   a programming error in the planner and raises. *)
let quant_holds ~quant op v t =
  if is_empty t then (match quant with Q_some -> false | Q_all -> true)
  else
    let against_min op = Value.apply op v (Option.get t.vmin) in
    let against_max op = Value.apply op v (Option.get t.vmax) in
    match quant, op with
    (* v < SOME w  <=>  v < max;  v < ALL w  <=>  v < min;  dually for >. *)
    | Q_some, Value.Lt -> against_max Value.Lt
    | Q_some, Value.Le -> against_max Value.Le
    | Q_some, Value.Gt -> against_min Value.Gt
    | Q_some, Value.Ge -> against_min Value.Ge
    | Q_all, Value.Lt -> against_min Value.Lt
    | Q_all, Value.Le -> against_min Value.Le
    | Q_all, Value.Gt -> against_max Value.Gt
    | Q_all, Value.Ge -> against_max Value.Ge
    | Q_some, Value.Eq -> (
      match t.storage with
      | Full -> mem t v
      | At_most_one ->
        (* Not one of the paper's reduced cases, but decidable when only
           one distinct value was seen. *)
        if t.distinct2 then
          Errors.type_error "SOME-= on an at-most-one value list with 2+ values"
        else Value.equal v (Option.get t.first)
      | Bounds ->
        (* v = SOME w <=> min <= v <= max is wrong in general; decidable
           only if min = max. *)
        if Value.equal (Option.get t.vmin) (Option.get t.vmax) then
          Value.equal v (Option.get t.vmin)
        else Errors.type_error "SOME-= on a bounds-only value list")
    | Q_all, Value.Ne -> (
      match t.storage with
      | Full -> not (mem t v)
      | At_most_one ->
        if t.distinct2 then
          Errors.type_error "ALL-<> on an at-most-one value list with 2+ values"
        else not (Value.equal v (Option.get t.first))
      | Bounds ->
        if Value.equal (Option.get t.vmin) (Option.get t.vmax) then
          not (Value.equal v (Option.get t.vmin))
        else Errors.type_error "ALL-<> on a bounds-only value list")
    (* The paper's at-most-one cases. *)
    | Q_all, Value.Eq ->
      (* v = ALL w: false as soon as two distinct values exist. *)
      (not t.distinct2)
      && (match t.storage with
         | Full | At_most_one | Bounds -> Value.equal v (Option.get t.first))
    | Q_some, Value.Ne ->
      (* v <> SOME w: true as soon as two distinct values exist. *)
      t.distinct2
      || not (Value.equal v (Option.get t.first))

let pp ppf t =
  match t.storage with
  | Full ->
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma Value.pp) (to_sorted_list t)
  | Bounds ->
    Fmt.pf ppf "{bounds %a..%a}" (Fmt.option Value.pp) t.vmin
      (Fmt.option Value.pp) t.vmax
  | At_most_one ->
    Fmt.pf ppf "{first %a%s}" (Fmt.option Value.pp) t.first
      (if t.distinct2 then ", 2+ distinct" else "")
