(* Domains (attribute types) of the PASCAL/R data model.

   Figure 1 of the paper declares subrange types (yeartype = 1900..1999),
   packed character arrays (nametype = PACKED ARRAY [1..10] OF char),
   enumerations (statustype, daytype, leveltype) and — in Figure 2 —
   reference types (@employees, @papers, ...).  This module models those
   domains and membership / compatibility checks over them. *)

type t =
  | TInt of { lo : int; hi : int }
  | TStr of { width : int option }
  | TBool
  | TEnum of Value.enum_info
  | TRef of string  (* @relname *)

let int_full = TInt { lo = min_int; hi = max_int }
let int_range lo hi =
  if lo > hi then Errors.schema_error "empty subrange %d..%d" lo hi
  else TInt { lo; hi }

let string_any = TStr { width = None }
let string_width w =
  if w <= 0 then Errors.schema_error "non-positive string width %d" w
  else TStr { width = Some w }

let boolean = TBool

let enum name labels =
  if Array.length labels = 0 then
    Errors.schema_error "enumeration %s has no labels" name
  else TEnum { Value.enum_name = name; labels }

let reference relname = TRef relname

let to_string = function
  | TInt { lo; hi } ->
    if lo = min_int && hi = max_int then "integer"
    else Printf.sprintf "%d..%d" lo hi
  | TStr { width = None } -> "string"
  | TStr { width = Some w } -> Printf.sprintf "string[%d]" w
  | TBool -> "boolean"
  | TEnum info -> info.Value.enum_name
  | TRef r -> "@" ^ r

let pp ppf ty = Fmt.string ppf (to_string ty)

(* Does a runtime value belong to a domain?  Strings wider than the
   declared width are rejected (PASCAL packed arrays are fixed-size; we
   allow shorter strings, modelling blank padding). *)
let member ty v =
  match ty, v with
  | TInt { lo; hi }, Value.VInt n -> lo <= n && n <= hi
  | TStr { width = None }, Value.VStr _ -> true
  | TStr { width = Some w }, Value.VStr s -> String.length s <= w
  | TBool, Value.VBool _ -> true
  | TEnum info, Value.VEnum (info', i) ->
    String.equal info.Value.enum_name info'.Value.enum_name
    && i >= 0
    && i < Array.length info.Value.labels
  | TRef r, Value.VRef { target; _ } -> String.equal r target
  | (TInt _ | TStr _ | TBool | TEnum _ | TRef _), _ -> false

(* Two domains are comparable when values drawn from them can meet in a
   join term: subranges of integers are mutually comparable, all strings
   are, enums must be the same enumeration, references must target the
   same relation. *)
let comparable a b =
  match a, b with
  | TInt _, TInt _ -> true
  | TStr _, TStr _ -> true
  | TBool, TBool -> true
  | TEnum ia, TEnum ib -> String.equal ia.Value.enum_name ib.Value.enum_name
  | TRef ra, TRef rb -> String.equal ra rb
  | (TInt _ | TStr _ | TBool | TEnum _ | TRef _), _ -> false

let equal a b =
  match a, b with
  | TInt ra, TInt rb -> ra.lo = rb.lo && ra.hi = rb.hi
  | TStr wa, TStr wb -> wa.width = wb.width
  | TBool, TBool -> true
  | TEnum ia, TEnum ib ->
    String.equal ia.Value.enum_name ib.Value.enum_name
    && ia.Value.labels = ib.Value.labels
  | TRef ra, TRef rb -> String.equal ra rb
  | (TInt _ | TStr _ | TBool | TEnum _ | TRef _), _ -> false

(* Enumerate the values of a finite domain in order; used by the random
   workload generators and by the one-sorted test evaluator.  Unbounded
   domains have no enumeration. *)
let enumerate = function
  | TInt { lo; hi } when hi - lo < 1_000_000 ->
    Some (List.init (hi - lo + 1) (fun i -> Value.VInt (lo + i)))
  | TEnum info ->
    Some
      (List.init (Array.length info.Value.labels) (fun i ->
           Value.VEnum (info, i)))
  | TBool -> Some [ Value.VBool false; Value.VBool true ]
  | TInt _ | TStr _ | TRef _ -> None
