(* CSV import/export for relations: a pragmatic extension so the sample
   databases can be inspected and external data loaded.  The first line
   is a header of attribute names; values are parsed against the
   schema's domains (enumerations by label).  Reference values are not
   representable in CSV. *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let field_of_value = function
  | Value.VInt n -> string_of_int n
  | Value.VBool b -> string_of_bool b
  | Value.VStr s -> if needs_quoting s then quote s else s
  | Value.VEnum (info, i) ->
    if i >= 0 && i < Array.length info.Value.labels then info.Value.labels.(i)
    else Errors.type_error "csv: enum ordinal out of range"
  | Value.VRef _ -> Errors.type_error "csv: reference values are not representable"

let to_string rel =
  let schema = Relation.schema rel in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Schema.names schema));
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat ","
           (List.map field_of_value (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    (Relation.to_list rel);
  Buffer.contents buf

(* Split one CSV line into fields, honouring quotes. *)
let split_line line =
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length line in
  let rec plain i =
    if i >= n then finish ()
    else
      match line.[i] with
      | ',' ->
        push ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then Errors.type_error "csv: unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  and finish () =
    push ();
    List.rev !fields
  in
  plain 0

let value_of_field ty field =
  match ty with
  | Vtype.TInt _ -> (
    match int_of_string_opt (String.trim field) with
    | Some n -> Value.VInt n
    | None -> Errors.type_error "csv: %s is not an integer" field)
  | Vtype.TBool -> (
    match String.lowercase_ascii (String.trim field) with
    | "true" -> Value.VBool true
    | "false" -> Value.VBool false
    | _ -> Errors.type_error "csv: %s is not a boolean" field)
  | Vtype.TStr _ -> Value.VStr field
  | Vtype.TEnum info -> Value.enum info (String.trim field)
  | Vtype.TRef _ ->
    Errors.type_error "csv: reference values are not representable"

let of_string ?name schema src =
  let lines =
    String.split_on_char '\n' src
    |> List.map (fun l ->
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Errors.type_error "csv: empty input"
  | header :: rows ->
    let names = List.map String.trim (split_line header) in
    if names <> Schema.names schema then
      Errors.type_error "csv: header %s does not match the schema"
        (String.concat "," names);
    let rel = Relation.create ?name schema in
    List.iter
      (fun row ->
        let fields = split_line row in
        if List.length fields <> Schema.arity schema then
          Errors.type_error "csv: row with %d fields, expected %d"
            (List.length fields) (Schema.arity schema);
        let values =
          List.mapi (fun i f -> value_of_field (Schema.type_at schema i) f) fields
        in
        Relation.insert rel (Tuple.of_list values))
      rows;
    rel

let save_file rel path =
  let oc = open_out path in
  output_string oc (to_string rel);
  close_out oc

let load_file ?name schema path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  of_string ?name schema src
