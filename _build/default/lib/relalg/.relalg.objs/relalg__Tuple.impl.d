lib/relalg/tuple.ml: Array Fmt Int List Schema Value Vtype
