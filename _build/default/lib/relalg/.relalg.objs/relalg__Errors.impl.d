lib/relalg/errors.ml: Format
