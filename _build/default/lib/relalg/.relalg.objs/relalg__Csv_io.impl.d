lib/relalg/csv_io.ml: Array Buffer Errors List Relation Schema String Tuple Value Vtype
