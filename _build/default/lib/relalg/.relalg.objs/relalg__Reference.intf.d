lib/relalg/reference.mli: Fmt Relation Tuple Value
