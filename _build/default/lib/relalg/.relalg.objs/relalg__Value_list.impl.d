lib/relalg/value_list.ml: Errors Fmt List Option Relation Schema Tuple Value Value_key
