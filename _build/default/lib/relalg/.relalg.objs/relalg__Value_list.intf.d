lib/relalg/value_list.mli: Fmt Relation Tuple Value
