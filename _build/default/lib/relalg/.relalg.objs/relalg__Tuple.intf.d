lib/relalg/tuple.mli: Fmt Schema Value
