lib/relalg/schema.ml: Array Errors Fmt Hashtbl List String Vtype
