lib/relalg/codec.ml: Array Buffer Bytes Char Errors List Schema String Tuple Value Vtype
