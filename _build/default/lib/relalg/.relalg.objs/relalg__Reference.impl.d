lib/relalg/reference.ml: Errors Relation String Tuple Value
