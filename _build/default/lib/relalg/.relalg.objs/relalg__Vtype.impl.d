lib/relalg/vtype.ml: Array Errors Fmt List Printf String Value
