lib/relalg/value_key.ml: Hashtbl List Option Value
