lib/relalg/index.mli: Relation Schema Tuple Value
