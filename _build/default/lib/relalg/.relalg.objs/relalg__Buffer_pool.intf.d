lib/relalg/buffer_pool.mli: Fmt
