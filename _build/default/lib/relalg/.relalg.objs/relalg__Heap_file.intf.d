lib/relalg/heap_file.mli: Buffer_pool Bytes
