lib/relalg/index.ml: Array Errors List Option Reference Relation Schema Tuple Value Value_key Vtype
