lib/relalg/heap_file.ml: Array Buffer_pool Bytes Char Errors List
