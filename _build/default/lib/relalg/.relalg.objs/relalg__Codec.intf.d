lib/relalg/codec.mli: Buffer Bytes Schema Tuple Value
