lib/relalg/value.ml: Array Bool Errors Fmt Hashtbl Int List String
