lib/relalg/algebra.ml: Array Errors List Relation Schema Tuple Value Value_key
