lib/relalg/schema.mli: Fmt Vtype
