lib/relalg/database.ml: Buffer_pool Errors Fmt Hashtbl Index List Relation String Value
