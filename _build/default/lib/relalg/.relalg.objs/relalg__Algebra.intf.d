lib/relalg/algebra.mli: Relation Schema Tuple
