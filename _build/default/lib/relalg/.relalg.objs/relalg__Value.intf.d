lib/relalg/value.mli: Fmt
