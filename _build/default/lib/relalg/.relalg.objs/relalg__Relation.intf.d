lib/relalg/relation.mli: Buffer_pool Fmt Schema Tuple Value
