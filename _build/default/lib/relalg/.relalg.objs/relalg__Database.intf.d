lib/relalg/database.mli: Buffer_pool Fmt Index Relation Schema Tuple Value
