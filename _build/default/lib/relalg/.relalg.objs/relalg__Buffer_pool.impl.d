lib/relalg/buffer_pool.ml: Fmt Hashtbl List
