lib/relalg/vtype.mli: Fmt Value
