lib/relalg/relation.ml: Buffer_pool Codec Errors Fmt Hashtbl Heap_file List Option Schema String Tuple Value
