(* Hash tables keyed by value lists — shared by relations, indexes and
   the hash-join implementation. *)

module Table = Hashtbl.Make (struct
  type t = Value.t list

  let equal = List.equal Value.equal
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end)

type 'a table = 'a Table.t

let create n : 'a table = Table.create n

(* Multimap helper: cons onto the bucket for [k]. *)
let add_multi (tbl : 'a list table) k v =
  match Table.find_opt tbl k with
  | None -> Table.replace tbl k [ v ]
  | Some vs -> Table.replace tbl k (v :: vs)

let find_multi (tbl : 'a list table) k =
  Option.value (Table.find_opt tbl k) ~default:[]
