(** Value lists for collection-phase quantifier evaluation (paper
    Section 4.4, strategy 4), with the paper's reduced storage policies:
    min/max only for the order comparisons, and at-most-one value for
    [ALL =] / [SOME <>]. *)

type storage =
  | Full          (** all distinct values *)
  | Bounds        (** only min/max — for [< <= > >=] *)
  | At_most_one   (** first value + saw-two-distinct flag — for [ALL =] / [SOME <>] *)

type quantifier = Q_some | Q_all

type t

val create : ?storage:storage -> unit -> t
val storage : t -> storage

val add : t -> Value.t -> unit

val of_column :
  ?storage:storage ->
  ?filter:(Tuple.t -> bool) ->
  Relation.t ->
  string ->
  t
(** Build from one component of a relation by a counted scan. *)

val is_empty : t -> bool

val mem : t -> Value.t -> bool
(** Full storage only. @raise Errors.Type_error otherwise. *)

val distinct_count : t -> int option
val stored_size : t -> int
(** Component values physically retained (the paper's storage claim). *)

val min_value : t -> Value.t option
val max_value : t -> Value.t option

val to_sorted_list : t -> Value.t list
(** Full storage only. @raise Errors.Type_error otherwise. *)

val exists_value : (Value.t -> bool) -> t -> bool
val for_all_values : (Value.t -> bool) -> t -> bool

val quant_holds : quant:quantifier -> Value.comparison -> Value.t -> t -> bool
(** [quant_holds ~quant op v t] decides [(quant w IN t) (v op w)].
    SOME over empty is false; ALL over empty is true.  Reduced storage
    policies decide exactly the paper's operator/quantifier cases and
    raise {!Errors.Type_error} outside them. *)

val pp : t Fmt.t
