(** References to selected variables, [@rel[keyval]] (paper Section 3.1). *)

val make : target:string -> key:Value.t list -> Value.reference

val of_tuple : Relation.t -> Tuple.t -> Value.reference
(** The paper's short-hand [@r] for [@rel[r.key]].
    @raise Errors.Schema_error on anonymous relations. *)

val value_of_tuple : Relation.t -> Tuple.t -> Value.t

val to_value : Value.reference -> Value.t

val of_value : Value.t -> Value.reference
(** @raise Errors.Type_error if the value is not a reference. *)

val target : Value.reference -> string
val key : Value.reference -> Value.t list
val equal : Value.reference -> Value.reference -> bool
val compare : Value.reference -> Value.reference -> int
val pp : Value.reference Fmt.t
