(** Runtime values of the PASCAL/R data model.

    Values are integers, strings, booleans, enumeration ordinals, or
    {e references} to relation elements ([@rel[keyval]], paper Section
    3.1).  All six comparison operators of the paper's join terms are
    supported through {!apply}. *)

type enum_info = { enum_name : string; labels : string array }
(** A named enumeration type, e.g. Figure 1's
    [statustype = (student, technician, assistant, professor)]. *)

type t =
  | VInt of int
  | VStr of string
  | VBool of bool
  | VEnum of enum_info * int  (** ordinal into [labels] *)
  | VRef of reference

and reference = { target : string; key : t list }
(** A reference identifies an element of relation [target] by its key
    values — the high-level generalization of TIDs used throughout the
    paper's intermediate structures. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

val all_comparisons : comparison list

val comparison_to_string : comparison -> string

val negate_comparison : comparison -> comparison
(** [negate_comparison op] satisfies
    [not (apply op a b) = apply (negate_comparison op) a b]. *)

val flip_comparison : comparison -> comparison
(** [flip_comparison op] satisfies
    [apply op a b = apply (flip_comparison op) b a]. *)

val compare : t -> t -> int
(** Total order on values of the same domain.
    @raise Errors.Type_error on cross-domain comparison. *)

val compare_list : t list -> t list -> int
(** Lexicographic; shorter lists order first. *)

val equal : t -> t -> bool

val apply : comparison -> t -> t -> bool
(** Semantics of a join term's comparison operator. *)

val hash : t -> int
(** Structural hash compatible with {!equal}. *)

val type_name : t -> string

val pp : t Fmt.t
val to_string : t -> string

val int : int -> t
val str : string -> t
val bool : bool -> t

val enum : enum_info -> string -> t
(** [enum info label] is the value of [info] named [label].
    @raise Errors.Type_error if [label] is not one of [info.labels]. *)

val enum_ordinal : enum_info -> int -> t
(** [enum_ordinal info i] is the [i]-th value of [info].
    @raise Errors.Type_error if [i] is out of range. *)
