(* References to selected variables: @rel[keyval] (paper Section 3.1).

   A reference value stores the target relation's name and the key values
   of the referenced element; {!Database.deref} regains the selected
   variable.  [of_tuple] is the short-hand @r for @rel[r.key] used
   throughout the paper's examples. *)

let make ~target ~key = { Value.target; key }

let of_tuple rel t =
  let name = Relation.name rel in
  if String.equal name "" then
    Errors.schema_error "cannot reference an element of an anonymous relation"
  else { Value.target = name; key = Tuple.key_of (Relation.schema rel) t }

let to_value r = Value.VRef r

(* @r as a value, directly. *)
let value_of_tuple rel t = Value.VRef (of_tuple rel t)

let of_value = function
  | Value.VRef r -> r
  | v ->
    Errors.type_error "expected a reference, got %s" (Value.to_string v)

let target (r : Value.reference) = r.Value.target
let key (r : Value.reference) = r.Value.key

let equal (a : Value.reference) (b : Value.reference) =
  Value.equal (Value.VRef a) (Value.VRef b)

let compare (a : Value.reference) (b : Value.reference) =
  Value.compare (Value.VRef a) (Value.VRef b)

let pp ppf r = Value.pp ppf (Value.VRef r)
