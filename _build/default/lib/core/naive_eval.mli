(** Ground-truth evaluator: direct tuple-substitution semantics with
    nested scans and no intermediate structures.  All optimized
    strategies are validated against it. *)

open Relalg
open Calculus

exception Eval_error of string

type binding = { tuple : Tuple.t; schema : Schema.t }
type benv = binding Var_map.t

val holds : Database.t -> benv -> formula -> bool
(** Truth of a formula under an environment binding its free variables. *)

val closed_holds : Database.t -> formula -> bool

val run : ?name:string -> Database.t -> query -> Relation.t
(** Evaluate a selection; the result relation uses
    {!Wellformed.result_schema}. *)
