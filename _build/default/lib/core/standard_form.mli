(** The standard form: prenex normal form with a DNF matrix (paper
    Section 2), plus the runtime adaptation for empty range relations. *)

open Relalg
open Calculus

type t = {
  free : (var * range) list;
  select : (var * string) list;
  prefix : Normalize.prefix_entry list;
  matrix : Normalize.dnf;
}

val range_is_empty : Database.t -> range -> bool
(** Emptiness against the live database; evaluates extended-range
    restrictions (one counted scan). *)

val adapt_formula : Database.t -> formula -> formula
val adapt_query : Database.t -> query -> query
(** Replace quantifiers over empty ranges by their truth values so that
    the subsequent prenex transformation is an equivalence. *)

val of_query : query -> t
(** Compile under the non-empty-ranges assumption (the paper's
    compile-time transformation). *)

val compile : Database.t -> query -> t
(** [adapt_query] then [of_query]: the runtime pipeline entry point. *)

val to_query : t -> query
(** Rebuild a query; [run (to_query (compile db q)) = run q] on [db]. *)

val variable_order : t -> var list
(** Free variables first, then the prefix order — the canonical column
    order of the combination phase's n-tuples. *)

val range_of : t -> var -> range option
val conjunction_count : t -> int

val pp : t Fmt.t
val to_string : t -> string
