(** Reduction of the many-sorted calculus to a one-sorted calculus
    (paper Section 2, after A. Schmidt 1938): range expressions become
    atomic formulas, quantifiers range over the tagged union of all
    relation elements.  Used to validate Lemma 1 and the transformation
    rules against an independent semantics. *)

open Relalg
open Calculus

type os_formula =
  | OS_true
  | OS_false
  | OS_atom of atom
  | OS_range of var * range  (** the new atomic formula [rec IN rel] *)
  | OS_not of os_formula
  | OS_and of os_formula * os_formula
  | OS_or of os_formula * os_formula
  | OS_some of var * os_formula  (** over the whole universe *)
  | OS_all of var * os_formula

val translate : formula -> os_formula
(** [SOME rec IN rel (W)] becomes [SOME rec ((rec IN rel) AND W)];
    [ALL rec IN rel (W)] becomes [ALL rec (NOT (rec IN rel) OR W)]. *)

type element = { el_rel : string; el_schema : Schema.t; el_tuple : Tuple.t }

val universe : Database.t -> element list
(** All relation elements, tagged with their source relation. *)

type env = element Var_map.t

val eval : Database.t -> element list -> env -> os_formula -> bool

val closed_holds : Database.t -> formula -> bool
(** Truth of a closed many-sorted formula under the one-sorted semantics
    of its translation. *)
