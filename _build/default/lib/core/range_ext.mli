(** Strategy 3: extended range expressions (paper Section 4.3).

    Monadic join terms move from the matrix into the range expressions:
    for a free/SOME variable, a monadic atom occurring in every
    conjunction that mentions the variable; for an ALL variable, a
    conjunction consisting of a single monadic atom is absorbed negated.
    Emptiness of each new extended range is checked against the live
    database and handled per Lemma 1 (the prenex context is only valid
    for non-empty ranges). *)

open Relalg

val apply : ?cnf:bool -> Database.t -> Standard_form.t -> Standard_form.t
(** With [~cnf:true] (default false) the paper's future-work refinement
    applies: pure-monadic conjunctions of an ALL variable are absorbed
    negated (restrictions in conjunctive normal form, removing whole
    conjunctions from the matrix), and free/SOME ranges additionally
    shrink by the disjunction of their conjunctions' monadic terms. *)
