(** Lemma 1 (paper Section 2): distribution of AND/OR over range-coupled
    quantifiers, with the empty-relation exceptions of rules 2 and 3. *)

open Relalg
open Calculus

type rule =
  | Rule1  (** [A AND SOME rec IN rel (B) = SOME rec IN rel (A AND B)] — always *)
  | Rule2  (** [A OR SOME rec IN rel (B)] — [A] if [rel] empty *)
  | Rule3  (** [A AND ALL rec IN rel (B)] — [A] if [rel] empty *)
  | Rule4  (** [A OR ALL rec IN rel (B) = ALL rec IN rel (A OR B)] — always *)

val all_rules : rule list
val rule_to_string : rule -> string

val match_lhs : rule -> formula -> (formula * var * range * formula) option
(** Match a rule's left-hand side (either operand order); checks the
    side condition that [rec] does not occur in [A]. *)

val rewrite : Database.t -> rule -> formula -> formula option
(** The correct rewrite, consulting the database for emptiness. *)

val rewrite_assuming_nonempty : rule -> formula -> formula option
(** The compile-time (non-empty assumption) rewrite — wrong on empty
    relations for rules 2 and 3, as the test suite demonstrates. *)

val distribute : Database.t -> formula -> formula option
val distribute_assuming_nonempty : formula -> formula option
