(** Plan explanation in the paper's element-oriented statement style
    (Examples 4.3 and 4.7). *)

open Relalg

val explain_plan : Plan.t -> string

val explain : ?strategy:Strategy.t -> Database.t -> Calculus.query -> string
(** Prepare the query under [strategy] (default {!Strategy.full}) and
    render the resulting plan. *)
