(** Strategy 4: quantifier evaluation in the collection phase (paper
    Section 4.4).

    The rightmost prefix variable is pushed into the matrix as a derived
    predicate when (a) quantifier swapping can move it innermost (equal
    quantifiers swap freely; independent ones by Lemma 1), and (b) each
    conjunction mentioning it contains exactly one dyadic join term over
    one other variable plus monadic terms (for ALL, additionally only
    one conjunction may mention it).  Iterates to a fixpoint, so chains
    like Example 4.7's cset/tset/pset program arise naturally. *)

open Relalg

val apply : Database.t -> Plan.t -> Plan.t
(** Precondition: every prefix range non-empty (adaptation ran). *)

val movable_to_rightmost :
  Plan.t -> Normalize.prefix_entry list -> Normalize.prefix_entry -> bool
(** Exposed for testing: the quantifier-swapping side condition. *)
