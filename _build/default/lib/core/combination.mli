(** The combination phase (paper Section 3.3): combine each
    conjunction's reference structures into n-tuples, union the
    disjuncts, and eliminate quantifiers right to left — projection for
    SOME, division for ALL. *)

open Relalg

val evaluate : Collection.t -> Plan.t -> Relation.t
(** Returns the reference relation over the free variables, in
    declaration order.  Precondition: every prefix range is non-empty
    (established by {!Standard_form.adapt_query}). *)

val evaluate_with_stats : Collection.t -> Plan.t -> Relation.t * int
(** Also returns the cardinality of the largest n-tuple relation built —
    the combinatorial-growth metric. *)
