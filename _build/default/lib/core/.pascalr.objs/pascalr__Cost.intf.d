lib/core/cost.mli: Calculus Fmt Plan Stats
