lib/core/onesort.mli: Calculus Database Relalg Schema Tuple Var_map
