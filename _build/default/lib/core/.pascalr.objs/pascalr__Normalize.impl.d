lib/core/normalize.ml: Calculus Fmt List Relalg Value Var_set
