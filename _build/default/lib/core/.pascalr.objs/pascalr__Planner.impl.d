lib/core/planner.ml: Calculus Cost Fmt List Normalize Phased_eval Plan Quant_push Range_ext Standard_form Stats Strategy String
