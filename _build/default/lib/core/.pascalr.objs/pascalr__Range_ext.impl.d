lib/core/range_ext.ml: Calculus List Normalize Relalg Standard_form String Value Var_set
