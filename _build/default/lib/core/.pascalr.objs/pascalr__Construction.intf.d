lib/core/construction.mli: Database Plan Relalg Relation
