lib/core/lemma1.ml: Calculus List Standard_form Var_set
