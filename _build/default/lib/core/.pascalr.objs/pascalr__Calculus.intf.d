lib/core/calculus.mli: Fmt Map Relalg Set Value
