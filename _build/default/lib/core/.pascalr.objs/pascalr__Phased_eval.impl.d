lib/core/phased_eval.ml: Calculus Collection Combination Construction Database List Logs Plan Quant_push Range_ext Relalg Relation Standard_form Strategy
