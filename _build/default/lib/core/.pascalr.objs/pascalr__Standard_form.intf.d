lib/core/standard_form.mli: Calculus Database Fmt Normalize Relalg
