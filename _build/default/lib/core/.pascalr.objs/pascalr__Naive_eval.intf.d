lib/core/naive_eval.mli: Calculus Database Relalg Relation Schema Tuple Var_map
