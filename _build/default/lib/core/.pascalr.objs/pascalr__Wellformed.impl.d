lib/core/wellformed.ml: Calculus Database Fmt Format List Relalg Relation Result Schema String Value Var_map Var_set Vtype
