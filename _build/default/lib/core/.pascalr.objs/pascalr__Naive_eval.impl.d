lib/core/naive_eval.ml: Calculus Database Format List Relalg Relation Schema Tuple Value Var_map Wellformed
