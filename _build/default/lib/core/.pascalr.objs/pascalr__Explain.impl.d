lib/core/explain.ml: Buffer Calculus Fmt List Normalize Phased_eval Plan Relalg Strategy String Value Var_set
