lib/core/range_ext.mli: Database Relalg Standard_form
