lib/core/normalize.mli: Calculus Fmt Var_set
