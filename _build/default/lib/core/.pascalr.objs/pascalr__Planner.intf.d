lib/core/planner.mli: Calculus Cost Database Fmt Relalg Relation Strategy
