lib/core/cost.ml: Calculus Float Fmt List Option Plan Relalg Stats String Value
