lib/core/phased_eval.mli: Calculus Database Plan Relalg Relation Strategy
