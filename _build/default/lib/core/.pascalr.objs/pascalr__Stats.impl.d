lib/core/stats.ml: Array Database Errors Float Fmt Hashtbl List Relalg Relation Schema Tuple Value Value_key
