lib/core/collection.ml: Calculus Database Fmt Hashtbl Index List Naive_eval Normalize Option Plan Reference Relalg Relation Schema Strategy String Tuple Value Value_list Var_map Var_set Vtype
