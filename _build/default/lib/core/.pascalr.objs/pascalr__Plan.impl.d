lib/core/plan.ml: Calculus Fmt List Normalize Relalg Standard_form String Value Var_set
