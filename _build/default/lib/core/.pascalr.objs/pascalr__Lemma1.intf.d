lib/core/lemma1.mli: Calculus Database Relalg
