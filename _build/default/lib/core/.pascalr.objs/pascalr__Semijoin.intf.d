lib/core/semijoin.mli: Calculus Database Fmt Normalize Relalg Relation
