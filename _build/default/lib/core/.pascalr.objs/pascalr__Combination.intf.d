lib/core/combination.mli: Collection Plan Relalg Relation
