lib/core/explain.mli: Calculus Database Plan Relalg Strategy
