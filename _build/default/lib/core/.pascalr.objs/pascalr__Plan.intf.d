lib/core/plan.mli: Calculus Fmt Normalize Relalg Standard_form Value Var_set
