lib/core/strategy.ml: Fmt List String
