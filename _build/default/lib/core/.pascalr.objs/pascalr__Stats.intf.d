lib/core/stats.mli: Database Fmt Relalg Relation Value
