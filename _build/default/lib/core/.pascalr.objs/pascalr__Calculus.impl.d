lib/core/calculus.ml: Fmt List Map Relalg Set String Value
