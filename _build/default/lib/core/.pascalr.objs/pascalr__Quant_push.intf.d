lib/core/quant_push.mli: Database Normalize Plan Relalg
