lib/core/standard_form.ml: Calculus Database Fmt List Naive_eval Normalize Relalg Relation String Var_map Var_set
