lib/core/construction.ml: Calculus Database List Plan Relalg Relation Schema Tuple Wellformed
