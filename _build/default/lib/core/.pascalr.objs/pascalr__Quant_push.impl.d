lib/core/quant_push.ml: Calculus Fun List Normalize Option Plan Relalg String Value Var_set
