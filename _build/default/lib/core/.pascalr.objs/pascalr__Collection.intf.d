lib/core/collection.mli: Calculus Database Plan Relalg Relation Schema Strategy
