lib/core/semijoin.ml: Algebra Calculus Database Fmt Hashtbl List Naive_eval Normalize Option Plan Relalg Relation String Tuple Value Value_list Var_map
