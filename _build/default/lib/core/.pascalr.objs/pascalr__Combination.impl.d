lib/core/combination.ml: Algebra Calculus Collection List Normalize Plan Relalg Relation Schema String Vtype
