lib/core/wellformed.mli: Calculus Database Relalg Schema Var_map
