lib/core/onesort.ml: Calculus Database List Naive_eval Relalg Relation Schema String Tuple Value Var_map
