(* Executable query plans.

   A plan refines the standard form: the DNF matrix becomes a list of
   conjunction plans whose atoms can be augmented (by strategy 4) with
   DERIVED PREDICATES — quantifiers over a single variable that have been
   moved into the matrix for evaluation in the collection phase via value
   lists (paper Section 4.4).  A derived predicate on variable vm
   encapsulates [Q vn IN range (monadic(vn) AND nested(vn) AND
   vm.outer_attr op vn.inner_attr)]. *)

open Relalg
open Calculus

type pushed = {
  p_quant : Normalize.quant;
  p_var : var;  (* the pushed (eliminated) variable vn *)
  p_range : range;
  p_op : Value.comparison;  (* vm.outer_attr op vn.inner_attr *)
  p_outer_attr : string;
  p_inner_attr : string;
  p_monadic : atom list;  (* monadic join terms over vn from the conjunction *)
  p_nested : pushed list;  (* derived predicates over vn from earlier pushes *)
}

type conj = {
  atoms : Normalize.conjunction;
  derived : (var * pushed) list;
      (* derived monadic predicates, keyed by the outer variable vm *)
}

type t = {
  free : (var * range) list;
  select : (var * string) list;
  prefix : Normalize.prefix_entry list;
  conjs : conj list;
}

let of_standard_form (sf : Standard_form.t) =
  {
    free = sf.Standard_form.free;
    select = sf.Standard_form.select;
    prefix = sf.Standard_form.prefix;
    conjs =
      List.map (fun atoms -> { atoms; derived = [] }) sf.Standard_form.matrix;
  }

(* Variables used by a conjunction: variables of its atoms plus the outer
   variables of its derived predicates. *)
let conj_vars c =
  List.fold_left
    (fun acc (vm, _) -> Var_set.add vm acc)
    (Normalize.conj_vars c.atoms)
    c.derived

let plan_vars p =
  List.fold_left (fun acc c -> Var_set.union acc (conj_vars c)) Var_set.empty
    p.conjs

(* Canonical column order of the combination phase: free variables first,
   then the remaining prefix. *)
let variable_order p =
  List.map fst p.free @ List.map (fun e -> e.Normalize.v) p.prefix

let range_of p v =
  match List.assoc_opt v p.free with
  | Some r -> Some r
  | None ->
    List.find_map
      (fun e ->
        if String.equal e.Normalize.v v then Some e.Normalize.range else None)
      p.prefix

(* Monadic atoms of a conjunction over a given variable, and the dyadic
   atoms touching it. *)
let monadic_over v atoms =
  List.filter
    (fun a -> is_monadic a && Var_set.mem v (atom_vars a))
    atoms

let dyadic_over v atoms =
  List.filter (fun a -> is_dyadic a && Var_set.mem v (atom_vars a)) atoms

(* Stable textual identities, used as memo-table keys by the collection
   phase so that identical work (same term, same restrictions) is done
   once — "avoid repeated access to identical data" (Section 4). *)
let atom_id a =
  (* Orient dyadic atoms canonically so mirrored twins share a key. *)
  let a =
    if compare_atoms_operand a.lhs a.rhs <= 0 then a
    else { lhs = a.rhs; op = Value.flip_comparison a.op; rhs = a.lhs }
  in
  Fmt.str "%a" pp_atom a

let atoms_id atoms =
  String.concat "&" (List.sort String.compare (List.map atom_id atoms))

let rec pushed_id p =
  Fmt.str "%s:%s:%a:%s:%s:%s:[%s]:[%s]"
    (Normalize.quant_to_string p.p_quant)
    p.p_var pp_range p.p_range
    (Value.comparison_to_string p.p_op)
    p.p_outer_attr p.p_inner_attr (atoms_id p.p_monadic)
    (String.concat ";" (List.map pushed_id p.p_nested))

let derived_id (vm, p) = vm ^ "<-" ^ pushed_id p

let pp_pushed ppf p =
  let rec go ppf p =
    Fmt.pf ppf "%s %s IN %a (%a"
      (Normalize.quant_to_string p.p_quant)
      p.p_var pp_range p.p_range
      (Fmt.list ~sep:(Fmt.any " AND ") pp_atom)
      (p.p_monadic
      @ [
          {
            lhs = O_attr ("<outer>", p.p_outer_attr);
            op = p.p_op;
            rhs = O_attr (p.p_var, p.p_inner_attr);
          };
        ]);
    List.iter (fun n -> Fmt.pf ppf " AND %a" go n) p.p_nested;
    Fmt.pf ppf ")"
  in
  go ppf p

let pp_conj ppf c =
  Normalize.pp_conjunction ppf c.atoms;
  List.iter
    (fun (vm, p) -> Fmt.pf ppf "@ AND [on %s: %a]" vm pp_pushed p)
    c.derived

let pp ppf p =
  let pp_free ppf (v, r) = Fmt.pf ppf "EACH %s IN %a" v pp_range r in
  let pp_prefix ppf e =
    Fmt.pf ppf "%s %s IN %a"
      (Normalize.quant_to_string e.Normalize.q)
      e.Normalize.v pp_range e.Normalize.range
  in
  Fmt.pf ppf "@[<v2>plan:@ free: %a@ prefix: %a@ %a@]"
    (Fmt.list ~sep:Fmt.comma pp_free)
    p.free
    (Fmt.list ~sep:Fmt.sp pp_prefix)
    p.prefix
    (Fmt.list ~sep:(Fmt.any "@,OR ") pp_conj)
    p.conjs
