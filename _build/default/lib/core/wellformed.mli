(** Well-formedness of queries against a database schema. *)

open Relalg
open Calculus

type error = { message : string }

type env = Schema.t Var_map.t

val check_formula : Database.t -> env -> formula -> (unit, error) result
(** Check a formula in an environment binding each free variable to the
    schema of its range relation. *)

val check_query : Database.t -> query -> (unit, error) result

val result_schema : Database.t -> query -> Schema.t
(** Schema of the query's result relation; selected components are named
    after the component, disambiguated by the variable on collision. *)
