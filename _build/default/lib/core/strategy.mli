(** Strategy toggles for the four query transformation / evaluation
    strategies of paper Section 4. *)

type t = {
  parallel_scan : bool;
      (** S1 (Section 4.1): evaluate all join terms over a relation in
          one scan — each range relation is read no more than once. *)
  monadic_restrict : bool;
      (** S2 (Section 4.2): monadic terms restrict indirect joins while
          the relation is read; their single lists are not built. *)
  range_extension : bool;
      (** S3 (Section 4.3): move monadic terms into extended range
          expressions. *)
  cnf_extension : bool;
      (** The paper's Section 4.3 future-work refinement: range
          extensions in conjunctive normal form — a pure-monadic
          conjunction of an ALL variable is absorbed negated (a CNF
          clause), and SOME/free ranges shrink by the disjunction of
          their conjunctions' monadic terms.  Implies
          [range_extension]. *)
  quantifier_push : bool;
      (** S4 (Section 4.4): evaluate splittable quantifiers in the
          collection phase through value lists. *)
}

val palermo : t
(** The phase-structured baseline of Section 3.3: no strategies. *)

val s1 : t
val s12 : t
val s123 : t
val s1234 : t
val s123c : t
val full_cnf : t
val s2_only : t
val s3_only : t
val s4_only : t

val full : t
(** All four strategies ([s1234]). *)

val all_presets : (string * t) list
(** The cumulative presets compared by the benchmark harness. *)

val to_string : t -> string
val pp : t Fmt.t
