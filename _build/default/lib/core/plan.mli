(** Executable query plans: the standard form refined with strategy 4's
    derived predicates (quantifiers moved into the matrix for
    collection-phase evaluation, paper Section 4.4). *)

open Relalg
open Calculus

type pushed = {
  p_quant : Normalize.quant;
  p_var : var;  (** the pushed variable vn *)
  p_range : range;
  p_op : Value.comparison;  (** [vm.outer_attr op vn.inner_attr] *)
  p_outer_attr : string;
  p_inner_attr : string;
  p_monadic : atom list;  (** monadic join terms over vn *)
  p_nested : pushed list;  (** derived predicates over vn, pushed earlier *)
}
(** A derived predicate on outer variable vm:
    [Q vn IN range (monadic ∧ nested ∧ vm.outer_attr op vn.inner_attr)]. *)

type conj = {
  atoms : Normalize.conjunction;
  derived : (var * pushed) list;  (** keyed by the outer variable *)
}

type t = {
  free : (var * range) list;
  select : (var * string) list;
  prefix : Normalize.prefix_entry list;
  conjs : conj list;
}

val of_standard_form : Standard_form.t -> t

val conj_vars : conj -> Var_set.t
(** Variables of the atoms plus outer variables of derived predicates. *)

val plan_vars : t -> Var_set.t

val variable_order : t -> var list
(** Free variables first, then prefix order: the canonical n-tuple
    column order of the combination phase. *)

val range_of : t -> var -> range option

val monadic_over : var -> atom list -> atom list
val dyadic_over : var -> atom list -> atom list

val atom_id : atom -> string
(** Stable textual identity, canonical under mirroring; used as a memo
    key by the collection phase. *)

val atoms_id : atom list -> string
val pushed_id : pushed -> string
val derived_id : var * pushed -> string

val pp_pushed : pushed Fmt.t
val pp_conj : conj Fmt.t
val pp : t Fmt.t
