(* The full PASCAL/R query evaluation pipeline (paper Sections 2-4):

   1. runtime adaptation of empty ranges (Section 2);
   2. compilation to standard form — prenex + DNF (Section 2);
   3. strategy 3: extended range expressions (Section 4.3);
   4. strategy 4: quantifier evaluation in the collection phase (4.4);
   5. collection phase — single lists, indexes, indirect joins, value
      lists (Section 3.3; strategies 1 and 2 of Sections 4.1/4.2);
   6. combination phase — n-tuple reference relations, union,
      right-to-left quantifier elimination (Section 3.3);
   7. construction phase — dereference and component selection. *)

open Relalg

let src = Logs.Src.create "pascalr.eval" ~doc:"PASCAL/R evaluation pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

type report = {
  result : Relation.t;
  plan : Plan.t;
  scans : int;  (* counted full relation scans of the database *)
  probes : int;  (* key lookups against database relations *)
  max_ntuple : int;  (* largest combined n-tuple relation *)
  intermediates : (string * int) list;
      (* sizes of all collection-phase structures *)
}

let prepare db strategy query =
  let adapted = Standard_form.adapt_query db query in
  if not (Calculus.equal_formula adapted.Calculus.body query.Calculus.body)
  then
    Log.debug (fun m ->
        m "empty-range adaptation rewrote the query to %a" Calculus.pp_query
          adapted);
  let sf = Standard_form.of_query adapted in
  Log.debug (fun m ->
      m "standard form: %d conjunctions, prefix %d"
        (List.length sf.Standard_form.matrix)
        (List.length sf.Standard_form.prefix));
  let sf =
    if strategy.Strategy.range_extension || strategy.Strategy.cnf_extension
    then begin
      let sf' = Range_ext.apply ~cnf:strategy.Strategy.cnf_extension db sf in
      Log.debug (fun m ->
          m "range extension: %d -> %d conjunctions"
            (List.length sf.Standard_form.matrix)
            (List.length sf'.Standard_form.matrix));
      sf'
    end
    else sf
  in
  let plan = Plan.of_standard_form sf in
  if strategy.Strategy.quantifier_push then begin
    let plan' = Quant_push.apply db plan in
    Log.debug (fun m ->
        m "quantifier pushing: prefix %d -> %d"
          (List.length plan.Plan.prefix)
          (List.length plan'.Plan.prefix));
    plan'
  end
  else plan

let run ?name ?(strategy = Strategy.full) db query =
  let plan = prepare db strategy query in
  let coll = Collection.create db strategy plan in
  Collection.run coll;
  let refs = Combination.evaluate coll plan in
  Construction.run ?name db plan refs

(* Run with instrumentation.  Scan/probe counters of the database
   relations are reset first, so the report reflects this query alone. *)
let run_report ?name ?(strategy = Strategy.full) db query =
  Database.reset_counters db;
  let plan = prepare db strategy query in
  let coll = Collection.create db strategy plan in
  Collection.run coll;
  let refs, max_ntuple = Combination.evaluate_with_stats coll plan in
  let result = Construction.run ?name db plan refs in
  {
    result;
    plan;
    scans = Database.total_scans db;
    probes =
      List.fold_left
        (fun acc r -> acc + Relation.probe_count r)
        0 (Database.relations db);
    max_ntuple;
    intermediates = Collection.intermediate_sizes coll;
  }
