(* Strategy toggles for the four query transformation / evaluation
   strategies of paper Section 4.  The benchmark harness compares the
   presets against each other and against the naive evaluator. *)

type t = {
  parallel_scan : bool;
      (* S1: evaluate all join terms over a relation in one scan *)
  monadic_restrict : bool;
      (* S2: monadic terms restrict indirect joins; skip their single lists *)
  range_extension : bool;
      (* S3: move monadic terms into extended range expressions *)
  cnf_extension : bool;
      (* S3/CNF: the paper's future-work refinement — extensions in
         conjunctive normal form (implies range_extension) *)
  quantifier_push : bool;
      (* S4: evaluate splittable quantifiers in the collection phase *)
}

(* The phase-structured baseline after Palermo (Section 3.3): one scan
   per join-term evaluation, no transformations. *)
let palermo =
  {
    parallel_scan = false;
    monadic_restrict = false;
    range_extension = false;
    cnf_extension = false;
    quantifier_push = false;
  }

let s1 = { palermo with parallel_scan = true }
let s12 = { s1 with monadic_restrict = true }
let s123 = { s12 with range_extension = true }
let s1234 = { s123 with quantifier_push = true }
let s123c = { s123 with cnf_extension = true }
let full_cnf = { s1234 with cnf_extension = true }

(* Isolated strategies, for the ablation benchmarks. *)
let s2_only = { palermo with monadic_restrict = true }
let s3_only = { palermo with range_extension = true }
let s4_only = { palermo with quantifier_push = true }

let full = s1234

let all_presets =
  [
    ("palermo", palermo);
    ("s1", s1);
    ("s1+s2", s12);
    ("s1+s2+s3", s123);
    ("s1+s2+s3+s4", s1234);
    ("s1+s2+s3cnf+s4", full_cnf);
  ]

let to_string s =
  let flags =
    [
      (s.parallel_scan, "S1");
      (s.monadic_restrict, "S2");
      (s.range_extension && not s.cnf_extension, "S3");
      (s.cnf_extension, "S3cnf");
      (s.quantifier_push, "S4");
    ]
  in
  match List.filter_map (fun (on, n) -> if on then Some n else None) flags with
  | [] -> "palermo"
  | ns -> String.concat "+" ns

let pp ppf s = Fmt.string ppf (to_string s)
