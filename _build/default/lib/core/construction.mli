(** The construction phase (paper Section 3.3): dereference the
    surviving reference n-tuples and project on the component
    selection. *)

open Relalg

val run : ?name:string -> Database.t -> Plan.t -> Relation.t -> Relation.t
(** [run db plan refs] dereferences each free variable's column of
    [refs] and projects the plan's component selection; the result uses
    {!Wellformed.result_schema}. *)
