(** Cardinality/cost estimation over plans: per-conjunction n-tuple
    volume (the combination phase's combinatorial growth) and
    collection-phase scan volume. *)

open Calculus

type estimate = {
  e_conj_sizes : float list;
  e_combination : float;  (** sum of the estimated n-tuple cardinalities *)
  e_collection : float;  (** elements scanned by the collection phase *)
}

val restricted_cardinality : Stats.t -> range -> float
val formula_selectivity : Stats.t -> string -> formula -> float
val atom_selectivity : Stats.t -> string -> atom -> float
val conj_cardinality : Stats.t -> Plan.t -> Plan.conj -> float
val estimate : Stats.t -> Plan.t -> estimate
val pp : estimate Fmt.t
