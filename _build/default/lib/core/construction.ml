(* The CONSTRUCTION PHASE (paper Section 3.3): dereference the reference
   n-tuples surviving the combination phase and project on the
   components specified in the component selection. *)

open Relalg
open Calculus

let run ?name db (plan : Plan.t) refs =
  let query =
    { free = plan.Plan.free; select = plan.Plan.select; body = F_true }
  in
  let out_schema = Wellformed.result_schema db query in
  let out = Relation.create ?name out_schema in
  let free_names = List.map fst plan.Plan.free in
  let schema_of_var =
    List.map
      (fun (v, (r : range)) ->
        (v, Relation.schema (Database.find_relation db r.range_rel)))
      plan.Plan.free
  in
  let ref_schema = Relation.schema refs in
  let positions =
    List.map (fun v -> Schema.index_of ref_schema v) free_names
  in
  Relation.scan
    (fun t ->
      (* Regain each selected variable from its reference. *)
      let bindings =
        List.map2
          (fun v pos ->
            let tuple = Database.deref_value db (Tuple.get t pos) in
            (v, tuple))
          free_names positions
      in
      let projected =
        Tuple.of_list
          (List.map
             (fun (v, a) ->
               let tuple = List.assoc v bindings in
               let schema = List.assoc v schema_of_var in
               Tuple.get_by_name schema tuple a)
             plan.Plan.select)
      in
      Relation.insert out projected)
    refs;
  out
