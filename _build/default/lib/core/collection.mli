(** The collection phase (paper Section 3.3): evaluate range expressions
    and single join terms into single lists, indexes, indirect joins and
    value lists, with memoization so identical work is done once.

    Two execution modes share the same builders: lazy (one scan per
    structure — the Palermo baseline) and strategy 1's grouped scans
    (all structures over a relation in one pass, honouring
    index-before-probe dependencies).  Strategy 2 folds monadic terms
    and derived predicates into the indirect joins; strategy 4's derived
    predicates are evaluated through {!Relalg.Value_list}. *)

open Relalg
open Calculus

type t

type component =
  | C_single of var * Relation.t
      (** single list: reference relation [<@v>] *)
  | C_pair of var * var * Relation.t
      (** indirect join: reference relation [<@v1, @v2>] *)

val create : Database.t -> Strategy.t -> Plan.t -> t

val run : t -> unit
(** With strategy 1, build every structure of the plan up front in
    grouped scans; otherwise a no-op (structures build lazily). *)

val base_list : t -> var -> Relation.t
(** The variable's (restricted) range expression as a single list —
    used for padding and as the division divisor. *)

val components : t -> Plan.conj -> component list
(** The structures covering one conjunction's atoms and derived
    predicates (shape depends on strategy 2). *)

val var_schema : t -> var -> Schema.t

val intermediate_sizes : t -> (string * int) list
(** Cardinality (or stored size) of every materialized structure, by
    memo key — the intermediate-growth metric of the experiments. *)
