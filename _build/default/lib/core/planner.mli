(** Cost-based strategy selection — the paper's Section 5 "ongoing
    research" direction, implemented as an extension: analyse the query
    against database statistics and enable the strategies that apply,
    with a written justification per decision. *)

open Relalg
open Calculus

type decision = {
  d_strategy : Strategy.t;
  d_reasons : (string * string) list;  (** strategy tag -> justification *)
  d_before : Cost.estimate;  (** bare standard form *)
  d_after : Cost.estimate;  (** transformed plan *)
}

val choose : Database.t -> query -> decision

val run : ?name:string -> Database.t -> query -> decision * Relation.t
(** Plan, then evaluate with the chosen strategy. *)

val pp_decision : decision Fmt.t
