(** Semi-join programs from the predicate-calculus point of view (paper
    Sections 4.4 and 5): query graphs, tree detection, Bernstein/Chiu
    full reducers, cyclic fixpoint fallback, and the universal (ALL)
    extension via antijoin / at-most-one-value reductions. *)

open Relalg
open Calculus

type edge = { ev1 : var; ea1 : string; ev2 : var; ea2 : string }
type graph = { g_nodes : var list; g_edges : edge list }

val graph_of_conjunction : var list -> Normalize.conjunction -> graph option
(** [None] when the conjunction has a non-equality dyadic term (outside
    the Bernstein/Chiu class).  Monadic terms do not contribute edges. *)

val is_acyclic : graph -> bool
val is_connected : graph -> bool
val is_tree : graph -> bool

type step = { st_target : var; st_source : var; st_edge : edge }

val full_reducer_schedule : graph -> root:var -> step list
(** Bottom-up then top-down semijoin schedule for an acyclic graph. *)

val run_steps :
  (var * Relation.t) list -> step list -> (var * Relation.t) list

type reduction = {
  red_vars : (var * Relation.t) list;
  red_steps : step list;
  red_before : (var * int) list;
  red_after : (var * int) list;
}

val reduce :
  Database.t ->
  (var * range) list ->
  Normalize.conjunction ->
  reduction option
(** Full reducer on trees; fixpoint semijoin iteration on cyclic graphs;
    monadic terms applied up front.  [None] when not applicable. *)

val all_ne_reduce :
  ?name:string ->
  outer_attr:string ->
  inner_attr:string ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** [ALL y IN inner (x.outer_attr <> y.inner_attr)]: the antijoin — the
    universal counterpart of the semijoin. *)

val all_eq_reduce :
  ?name:string ->
  outer_attr:string ->
  inner_attr:string ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** [ALL y IN inner (x.outer_attr = y.inner_attr)] via the at-most-one-
    value test; empty [inner] keeps everything. *)

val some_eq_reduce :
  ?name:string ->
  outer_attr:string ->
  inner_attr:string ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** The plain semijoin, for symmetry. *)

val pp_edge : edge Fmt.t
val pp_graph : graph Fmt.t
val pp_step : step Fmt.t
