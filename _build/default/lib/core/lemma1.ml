(* Lemma 1 (paper Section 2): the four distribution rules of AND/OR over
   range-coupled quantifiers, two of which hold only for non-empty range
   relations.  Let A be a wff in which rec does not occur, B any wff:

   1. A AND SOME rec IN rel (B) = SOME rec IN rel (A AND B)      (always)
   2. A OR  SOME rec IN rel (B) = A,                 if rel = []
                                = SOME rec IN rel (A OR B)  otherwise
   3. A AND ALL  rec IN rel (B) = A,                 if rel = []
                                = ALL rec IN rel (A AND B)  otherwise
   4. A OR  ALL  rec IN rel (B) = ALL rec IN rel (A OR B)        (always)

   [distribute] applies the correct variant by consulting the database;
   [distribute_assuming_nonempty] applies the unconditional forms — the
   compile-time behaviour whose runtime repair is the adaptation pass.
   The test suite proves both the rules and their empty-relation
   exceptions against the naive and one-sorted semantics. *)

open Calculus

type rule = Rule1 | Rule2 | Rule3 | Rule4

let rule_to_string = function
  | Rule1 -> "A AND SOME rec (B)"
  | Rule2 -> "A OR SOME rec (B)"
  | Rule3 -> "A AND ALL rec (B)"
  | Rule4 -> "A OR ALL rec (B)"

(* Side condition: rec must not occur (free) in A. *)
let side_condition v a = not (Var_set.mem v (free_vars a))

(* Match a formula against a rule's left-hand side.  Returns
   (A, rec, range, B) on success.  The commuted forms (quantifier on the
   left) are matched too. *)
let match_lhs rule f =
  let pick a b =
    match b with
    | F_some (v, r, body) when rule = Rule1 || rule = Rule2 ->
      if side_condition v a then Some (a, v, r, body) else None
    | F_all (v, r, body) when rule = Rule3 || rule = Rule4 ->
      if side_condition v a then Some (a, v, r, body) else None
    | _ -> None
  in
  match rule, f with
  | (Rule1 | Rule3), F_and (x, y) -> (
    match pick x y with Some m -> Some m | None -> pick y x)
  | (Rule2 | Rule4), F_or (x, y) -> (
    match pick x y with Some m -> Some m | None -> pick y x)
  | (Rule1 | Rule2 | Rule3 | Rule4), _ -> None

(* The unconditional (non-empty assumption) rewrite. *)
let rewrite_assuming_nonempty rule f =
  match match_lhs rule f with
  | None -> None
  | Some (a, v, r, b) -> (
    match rule with
    | Rule1 -> Some (F_some (v, r, f_and a b))
    | Rule2 -> Some (F_some (v, r, f_or a b))
    | Rule3 -> Some (F_all (v, r, f_and a b))
    | Rule4 -> Some (F_all (v, r, f_or a b)))

(* The correct rewrite, consulting the live database for the
   empty-relation exceptions of rules 2 and 3. *)
let rewrite db rule f =
  match match_lhs rule f with
  | None -> None
  | Some (a, v, r, b) -> (
    match rule with
    | Rule1 -> Some (F_some (v, r, f_and a b))
    | Rule4 -> Some (F_all (v, r, f_or a b))
    | Rule2 ->
      if Standard_form.range_is_empty db r then Some a
      else Some (F_some (v, r, f_or a b))
    | Rule3 ->
      if Standard_form.range_is_empty db r then Some a
      else Some (F_all (v, r, f_and a b)))

let all_rules = [ Rule1; Rule2; Rule3; Rule4 ]

(* Apply the first applicable rule at the root. *)
let distribute db f =
  List.find_map (fun rule -> rewrite db rule f) all_rules

let distribute_assuming_nonempty f =
  List.find_map (fun rule -> rewrite_assuming_nonempty rule f) all_rules
