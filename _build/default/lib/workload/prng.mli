(** Deterministic splitmix64 PRNG; all workload generation is seeded so
    tests and benchmarks are reproducible. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)].
    @raise Invalid_argument on non-positive bounds. *)

val in_range : t -> int -> int -> int
(** Uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
val flip : t -> float -> bool
(** Bernoulli with the given probability. *)

val pick : t -> 'a list -> 'a
val pick_array : t -> 'a array -> 'a
val word : t -> int -> string
(** Random lowercase string of the given length. *)

val shuffle : t -> 'a list -> 'a list
