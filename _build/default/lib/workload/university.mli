(** The Figure-1 computer-science-department database: employees,
    papers, courses and timetable, generated deterministically with
    parameterized cardinalities and selectivities. *)

open Relalg

val status_labels : string array
val day_labels : string array
val level_labels : string array

type params = {
  n_employees : int;
  n_papers : int;
  n_courses : int;
  n_timetable : int;
  prob_professor : float;  (** selectivity of [estatus = professor] *)
  prob_1977 : float;  (** selectivity of [pyear = 1977] *)
  prob_low_level : float;  (** selectivity of [clevel <= sophomore] *)
  seed : int;
}

val default_params : params

val small_params : params
(** Small enough for exhaustive tests against the unoptimized
    combination phase. *)

val scaled : ?seed:int -> int -> params
(** Uniform scaling of the default cardinalities. *)

type schemas = {
  status_type : Value.enum_info;
  day_type : Value.enum_info;
  level_type : Value.enum_info;
  employees : Schema.t;
  papers : Schema.t;
  courses : Schema.t;
  timetable : Schema.t;
}

val declare : Database.t -> max_enr:int -> max_cnr:int -> schemas
(** Declare Figure 1's types and empty relations into a database. *)

val generate : params -> Database.t

val generate_with_empty : params -> string -> Database.t
(** [generate] with the named relation emptied (Example 2.2's
    [papers = \[\]] scenario). *)
