(* The sample computer-science-department database of paper Figure 1:
   employees, papers, courses and a timetable associating employees with
   courses.  Contents are generated deterministically from a seed, with
   parameterized cardinalities and selectivities chosen so that every
   predicate of the running example (Example 2.1) has witnesses on both
   sides. *)

open Relalg

let status_labels = [| "student"; "technician"; "assistant"; "professor" |]
let day_labels = [| "monday"; "tuesday"; "wednesday"; "thursday"; "friday" |]
let level_labels = [| "freshman"; "sophomore"; "junior"; "senior" |]

type params = {
  n_employees : int;
  n_papers : int;
  n_courses : int;
  n_timetable : int;
  prob_professor : float;  (* selectivity of estatus = professor *)
  prob_1977 : float;       (* selectivity of pyear = 1977 *)
  prob_low_level : float;  (* selectivity of clevel <= sophomore *)
  seed : int;
}

let default_params =
  {
    n_employees = 40;
    n_papers = 60;
    n_courses = 25;
    n_timetable = 80;
    prob_professor = 0.3;
    prob_1977 = 0.25;
    prob_low_level = 0.4;
    seed = 42;
  }

(* A small instance whose full Cartesian combination stays a few
   thousand n-tuples — suitable for exhaustive correctness tests that
   run the unoptimized Palermo combination phase. *)
let small_params =
  {
    n_employees = 10;
    n_papers = 14;
    n_courses = 7;
    n_timetable = 18;
    prob_professor = 0.4;
    prob_1977 = 0.3;
    prob_low_level = 0.4;
    seed = 42;
  }

(* Uniform scaling of the default cardinalities, for the benchmark
   sweeps. *)
let scaled ?(seed = 42) factor =
  {
    default_params with
    n_employees = max 1 (40 * factor);
    n_papers = max 1 (60 * factor);
    n_courses = max 1 (25 * factor);
    n_timetable = max 1 (80 * factor);
    seed;
  }

type schemas = {
  status_type : Value.enum_info;
  day_type : Value.enum_info;
  level_type : Value.enum_info;
  employees : Schema.t;
  papers : Schema.t;
  courses : Schema.t;
  timetable : Schema.t;
}

(* Figure 1, faithfully: the four relation declarations with their keys
   <enr>, <ptitle,penr>, <cnr> and <tenr,tcnr,tday>. *)
let declare db ~max_enr ~max_cnr =
  let status_type = Database.declare_enum db "statustype" status_labels in
  let day_type = Database.declare_enum db "daytype" day_labels in
  let level_type = Database.declare_enum db "leveltype" level_labels in
  let enumbertype = Vtype.int_range 1 max_enr in
  let cnumbertype = Vtype.int_range 1 max_cnr in
  let employees =
    Schema.make
      [
        Schema.attr "enr" enumbertype;
        Schema.attr "ename" (Vtype.string_width 10);
        Schema.attr "estatus" (Vtype.TEnum status_type);
      ]
      ~key:[ "enr" ]
  in
  let papers =
    Schema.make
      [
        Schema.attr "penr" enumbertype;
        Schema.attr "pyear" (Vtype.int_range 1900 1999);
        Schema.attr "ptitle" (Vtype.string_width 40);
      ]
      ~key:[ "ptitle"; "penr" ]
  in
  let courses =
    Schema.make
      [
        Schema.attr "cnr" cnumbertype;
        Schema.attr "clevel" (Vtype.TEnum level_type);
        Schema.attr "ctitle" (Vtype.string_width 40);
      ]
      ~key:[ "cnr" ]
  in
  let timetable =
    Schema.make
      [
        Schema.attr "tenr" enumbertype;
        Schema.attr "tcnr" cnumbertype;
        Schema.attr "tday" (Vtype.TEnum day_type);
        Schema.attr "ttime" (Vtype.int_range 08000900 18002000);
        Schema.attr "troom" (Vtype.string_width 5);
      ]
      ~key:[ "tenr"; "tcnr"; "tday" ]
  in
  ignore (Database.declare_relation db ~name:"employees" employees);
  ignore (Database.declare_relation db ~name:"papers" papers);
  ignore (Database.declare_relation db ~name:"courses" courses);
  ignore (Database.declare_relation db ~name:"timetable" timetable);
  { status_type; day_type; level_type; employees; papers; courses; timetable }

let generate params =
  let db = Database.create () in
  let s =
    declare db
      ~max_enr:(max 99 params.n_employees)
      ~max_cnr:(max 99 params.n_courses)
  in
  let rng = Prng.create params.seed in
  let employees = Database.find_relation db "employees" in
  let papers = Database.find_relation db "papers" in
  let courses = Database.find_relation db "courses" in
  let timetable = Database.find_relation db "timetable" in
  for enr = 1 to params.n_employees do
    let status =
      if Prng.flip rng params.prob_professor then
        Value.enum s.status_type "professor"
      else
        Value.enum_ordinal s.status_type (Prng.int rng 3) (* non-professor *)
    in
    Relation.insert employees
      (Tuple.of_list
         [ Value.int enr; Value.str (Prng.word rng 8); status ])
  done;
  for i = 1 to params.n_papers do
    let penr = Prng.in_range rng 1 (max 1 params.n_employees) in
    let pyear =
      if Prng.flip rng params.prob_1977 then 1977
      else
        (* any other year of yeartype *)
        let y = Prng.in_range rng 1970 1985 in
        if y = 1977 then 1978 else y
    in
    Relation.insert papers
      (Tuple.of_list
         [
           Value.int penr;
           Value.int pyear;
           Value.str (Printf.sprintf "paper-%04d-%s" i (Prng.word rng 6));
         ])
  done;
  for cnr = 1 to params.n_courses do
    let level =
      if Prng.flip rng params.prob_low_level then
        Value.enum_ordinal s.level_type (Prng.int rng 2) (* freshman/sophomore *)
      else Value.enum_ordinal s.level_type (2 + Prng.int rng 2) (* junior/senior *)
    in
    Relation.insert courses
      (Tuple.of_list
         [
           Value.int cnr;
           level;
           Value.str (Printf.sprintf "course-%03d-%s" cnr (Prng.word rng 6));
         ])
  done;
  let inserted = ref 0 in
  let attempts = ref 0 in
  while !inserted < params.n_timetable && !attempts < params.n_timetable * 10 do
    incr attempts;
    let tenr = Prng.in_range rng 1 (max 1 params.n_employees) in
    let tcnr = Prng.in_range rng 1 (max 1 params.n_courses) in
    let tday = Value.enum_ordinal s.day_type (Prng.int rng 5) in
    let key = [ Value.int tenr; Value.int tcnr; tday ] in
    if not (Relation.mem_key timetable key) then begin
      Relation.insert timetable
        (Tuple.of_list
           [
             Value.int tenr;
             Value.int tcnr;
             tday;
             Value.int (Prng.in_range rng 08000900 18002000);
             Value.str (Prng.word rng 5);
           ]);
      incr inserted
    end
  done;
  Database.reset_counters db;
  db

(* The same database with one of its relations emptied — used by the
   empty-range adaptation experiments (Example 2.2's papers = []). *)
let generate_with_empty params relation_name =
  let db = generate params in
  Relation.clear (Database.find_relation db relation_name);
  db
