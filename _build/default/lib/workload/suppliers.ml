(* The classic suppliers-parts database (Codd's division example).  Not
   from the paper, but the canonical workload for universal
   quantification: "suppliers who ship ALL parts" exercises exactly the
   division step of the combination phase and the ALL strategies. *)

open Relalg
open Pascalr.Calculus

type params = {
  n_suppliers : int;
  n_parts : int;
  n_shipments : int;
  prob_red : float;   (* selectivity of pcolor = red *)
  prob_london : float; (* selectivity of scity = london *)
  seed : int;
}

let default_params =
  {
    n_suppliers = 20;
    n_parts = 12;
    n_shipments = 120;
    prob_red = 0.35;
    prob_london = 0.4;
    seed = 7;
  }

let scaled ?(seed = 7) factor =
  {
    default_params with
    n_suppliers = max 1 (20 * factor);
    n_parts = max 1 (12 * factor);
    n_shipments = max 1 (120 * factor);
    seed;
  }

let color_labels = [| "red"; "green"; "blue" |]
let city_labels = [| "london"; "paris"; "athens"; "oslo" |]

let generate params =
  let db = Database.create () in
  let color = Database.declare_enum db "colortype" color_labels in
  let city = Database.declare_enum db "citytype" city_labels in
  let suppliers =
    Database.declare_relation db ~name:"suppliers"
      (Schema.make
         [
           Schema.attr "snr" (Vtype.int_range 1 (max 999 params.n_suppliers));
           Schema.attr "sname" (Vtype.string_width 10);
           Schema.attr "scity" (Vtype.TEnum city);
         ]
         ~key:[ "snr" ])
  in
  let parts =
    Database.declare_relation db ~name:"parts"
      (Schema.make
         [
           Schema.attr "pnr" (Vtype.int_range 1 (max 999 params.n_parts));
           Schema.attr "pname" (Vtype.string_width 10);
           Schema.attr "pcolor" (Vtype.TEnum color);
           Schema.attr "pweight" (Vtype.int_range 1 100);
         ]
         ~key:[ "pnr" ])
  in
  let shipments =
    Database.declare_relation db ~name:"shipments"
      (Schema.make
         [
           Schema.attr "hsnr" (Vtype.int_range 1 (max 999 params.n_suppliers));
           Schema.attr "hpnr" (Vtype.int_range 1 (max 999 params.n_parts));
           Schema.attr "hqty" (Vtype.int_range 1 1000);
         ]
         ~key:[ "hsnr"; "hpnr" ])
  in
  let rng = Prng.create params.seed in
  for snr = 1 to params.n_suppliers do
    let scity =
      if Prng.flip rng params.prob_london then Value.enum city "london"
      else Value.enum_ordinal city (1 + Prng.int rng 3)
    in
    Relation.insert suppliers
      (Tuple.of_list [ Value.int snr; Value.str (Prng.word rng 8); scity ])
  done;
  for pnr = 1 to params.n_parts do
    let pcolor =
      if Prng.flip rng params.prob_red then Value.enum color "red"
      else Value.enum_ordinal color (1 + Prng.int rng 2)
    in
    Relation.insert parts
      (Tuple.of_list
         [
           Value.int pnr;
           Value.str (Prng.word rng 8);
           pcolor;
           Value.int (Prng.in_range rng 1 100);
         ])
  done;
  (* Supplier 1 ships every part, guaranteeing the division queries a
     non-empty answer. *)
  if params.n_suppliers >= 1 then
    for pnr = 1 to params.n_parts do
      Relation.insert shipments
        (Tuple.of_list
           [ Value.int 1; Value.int pnr; Value.int (Prng.in_range rng 1 1000) ])
    done;
  let inserted = ref 0 in
  let attempts = ref 0 in
  while !inserted < params.n_shipments && !attempts < params.n_shipments * 10 do
    incr attempts;
    let snr = Prng.in_range rng 1 params.n_suppliers in
    let pnr = Prng.in_range rng 1 params.n_parts in
    if not (Relation.mem_key shipments [ Value.int snr; Value.int pnr ]) then begin
      Relation.insert shipments
        (Tuple.of_list
           [ Value.int snr; Value.int pnr; Value.int (Prng.in_range rng 1 1000) ]);
      incr inserted
    end
  done;
  Database.reset_counters db;
  db

let red db = Value.enum (Database.find_enum db "colortype") "red"
let london db = Value.enum (Database.find_enum db "citytype") "london"

(* Suppliers shipping ALL parts: the division classic. *)
let ships_all_parts _db =
  {
    free = [ ("s", base "suppliers") ];
    select = [ ("s", "sname") ];
    body =
      f_all "p" (base "parts")
        (f_some "h" (base "shipments")
           (f_and
              (eq (attr "h" "hsnr") (attr "s" "snr"))
              (eq (attr "h" "hpnr") (attr "p" "pnr"))));
  }

(* Suppliers shipping ALL red parts: division with an extended range. *)
let ships_all_red_parts db =
  let r = red db in
  {
    free = [ ("s", base "suppliers") ];
    select = [ ("s", "sname") ];
    body =
      f_all "p" (base "parts")
        (f_or
           (ne (attr "p" "pcolor") (const r))
           (f_some "h" (base "shipments")
              (f_and
                 (eq (attr "h" "hsnr") (attr "s" "snr"))
                 (eq (attr "h" "hpnr") (attr "p" "pnr")))));
  }

(* London suppliers shipping SOME red part. *)
let london_ships_some_red db =
  let r = red db and l = london db in
  {
    free = [ ("s", base "suppliers") ];
    select = [ ("s", "sname") ];
    body =
      f_and
        (eq (attr "s" "scity") (const l))
        (f_some "h" (base "shipments")
           (f_and
              (eq (attr "h" "hsnr") (attr "s" "snr"))
              (f_some "p" (base "parts")
                 (f_and
                    (eq (attr "p" "pnr") (attr "h" "hpnr"))
                    (eq (attr "p" "pcolor") (const r))))));
  }

(* Suppliers shipping NO red part (negated existential, becomes ALL after
   NNF — the antijoin shape). *)
let ships_no_red_part db =
  let r = red db in
  {
    free = [ ("s", base "suppliers") ];
    select = [ ("s", "sname") ];
    body =
      f_not
        (f_some "h" (base "shipments")
           (f_and
              (eq (attr "h" "hsnr") (attr "s" "snr"))
              (f_some "p" (base "parts")
                 (f_and
                    (eq (attr "p" "pnr") (attr "h" "hpnr"))
                    (eq (attr "p" "pcolor") (const r))))));
  }
