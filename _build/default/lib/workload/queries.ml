(* The paper's queries over the Figure-1 database, as calculus values.

   [running_query] is Example 2.1: professors who did not publish in 1977
   or who currently offer courses at sophomore level or lower.
   [example_4_5] and [example_4_7] are its hand-transformed forms from
   the paper (extended ranges; extended ranges + swapped quantifiers) —
   used to cross-check that our automatic strategies produce equivalent
   results. *)

open Relalg
open Pascalr.Calculus

let professor db = Value.enum (Database.find_enum db "statustype") "professor"
let sophomore db = Value.enum (Database.find_enum db "leveltype") "sophomore"

(* Example 2.1, verbatim. *)
let running_query db =
  let prof = professor db and soph = sophomore db in
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "ename") ];
    body =
      f_and
        (eq (attr "e" "estatus") (const prof))
        (f_or
           (f_all "p" (base "papers")
              (f_or
                 (ne (attr "p" "pyear") (cint 1977))
                 (ne (attr "e" "enr") (attr "p" "penr"))))
           (f_some "c" (base "courses")
              (f_and
                 (le (attr "c" "clevel") (const soph))
                 (f_some "t" (base "timetable")
                    (f_and
                       (eq (attr "c" "cnr") (attr "t" "tcnr"))
                       (eq (attr "e" "enr") (attr "t" "tenr")))))));
  }

(* Example 4.5: the running query after extension of range expressions
   (strategy 3), as printed in the paper.  Valid when all range
   relations are non-empty. *)
let example_4_5 db =
  let prof = professor db and soph = sophomore db in
  let e_range =
    restricted "employees" "e" (eq (attr "e" "estatus") (const prof))
  in
  let p_range = restricted "papers" "p" (eq (attr "p" "pyear") (cint 1977)) in
  let c_range =
    restricted "courses" "c" (le (attr "c" "clevel") (const soph))
  in
  {
    free = [ ("e", e_range) ];
    select = [ ("e", "ename") ];
    body =
      f_all "p" p_range
        (f_some "c" c_range
           (f_some "t" (base "timetable")
              (f_or
                 (ne (attr "p" "penr") (attr "e" "enr"))
                 (f_and
                    (eq (attr "t" "tenr") (attr "e" "enr"))
                    (eq (attr "t" "tcnr") (attr "c" "cnr"))))));
  }

(* Example 4.7: extended ranges with the quantifier sequence of t and c
   swapped, ready for collection-phase quantifier evaluation. *)
let example_4_7 db =
  let prof = professor db and soph = sophomore db in
  let e_range =
    restricted "employees" "e" (eq (attr "e" "estatus") (const prof))
  in
  let p_range = restricted "papers" "p" (eq (attr "p" "pyear") (cint 1977)) in
  let c_range =
    restricted "courses" "c" (le (attr "c" "clevel") (const soph))
  in
  {
    free = [ ("e", e_range) ];
    select = [ ("e", "ename") ];
    body =
      f_all "p" p_range
        (f_or
           (ne (attr "p" "penr") (attr "e" "enr"))
           (f_some "t" (base "timetable")
              (f_and
                 (eq (attr "t" "tenr") (attr "e" "enr"))
                 (f_some "c" c_range (eq (attr "c" "cnr") (attr "t" "tcnr"))))));
  }

(* The Example 3.2 subexpression in isolation: low-level courses that
   appear in the timetable. *)
let example_3_2 db =
  let soph = sophomore db in
  {
    free = [ ("c", base "courses") ];
    select = [ ("c", "cnr") ];
    body =
      f_and
        (le (attr "c" "clevel") (const soph))
        (f_some "t" (base "timetable") (eq (attr "c" "cnr") (attr "t" "tcnr")));
  }

(* Purely existential variant of the running query (its second branch):
   professors who currently offer low-level courses.  Exercises the
   SOME-only machinery (splitting is always permitted, Section 2). *)
let existential_query db =
  let prof = professor db and soph = sophomore db in
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "ename") ];
    body =
      f_and
        (eq (attr "e" "estatus") (const prof))
        (f_some "c" (base "courses")
           (f_and
              (le (attr "c" "clevel") (const soph))
              (f_some "t" (base "timetable")
                 (f_and
                    (eq (attr "c" "cnr") (attr "t" "tcnr"))
                    (eq (attr "e" "enr") (attr "t" "tenr"))))));
  }

(* Universal-only query: employees all of whose timetable entries are
   low-level courses... expressed as: employees e such that ALL t
   (t.tenr <> e.enr OR SOME c low-level with c.cnr = t.tcnr).
   Exercises ALL with a dyadic disjunct. *)
let universal_query db =
  let soph = sophomore db in
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "enr") ];
    body =
      f_all "t" (base "timetable")
        (f_or
           (ne (attr "t" "tenr") (attr "e" "enr"))
           (f_some "c" (base "courses")
              (f_and
                 (eq (attr "c" "cnr") (attr "t" "tcnr"))
                 (le (attr "c" "clevel") (const soph)))));
  }

(* Inequality-join queries for the min/max special case of Section 4.4
   ("if the relational operator of the join term is < or <=, only one
   component value of vnrel must be stored"): a single dyadic order
   comparison between employees and paper author numbers. *)
let minmax_some_query _db =
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "enr") ];
    body = f_some "p" (base "papers") (le (attr "e" "enr") (attr "p" "penr"));
  }

let minmax_all_query _db =
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "enr") ];
    body = f_all "p" (base "papers") (lt (attr "e" "enr") (attr "p" "penr"));
  }

(* ALL-with-= and SOME-with-<> queries for the at-most-one-value special
   case of Section 4.4. *)
let all_eq_query _db =
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "enr") ];
    body = f_all "p" (base "papers") (eq (attr "e" "enr") (attr "p" "penr"));
  }

let some_ne_query _db =
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "enr") ];
    body = f_some "p" (base "papers") (ne (attr "e" "enr") (attr "p" "penr"));
  }
