(** The paper's queries over the Figure-1 database: Example 2.1 (the
    running query), its hand-transformed forms 4.5 and 4.7, and focused
    queries for each special case of Section 4.4. *)

open Relalg
open Pascalr.Calculus

val professor : Database.t -> Value.t
val sophomore : Database.t -> Value.t

val running_query : Database.t -> query
(** Example 2.1, verbatim. *)

val example_4_5 : Database.t -> query
(** The running query with extended range expressions (strategy 3). *)

val example_4_7 : Database.t -> query
(** Extended ranges with the t/c quantifiers swapped, ready for
    collection-phase quantifier evaluation (strategy 4). *)

val example_3_2 : Database.t -> query
(** The Example 3.2 subexpression: low-level courses in the timetable. *)

val existential_query : Database.t -> query
val universal_query : Database.t -> query

val minmax_some_query : Database.t -> query
(** SOME with [<=]: only the maximum of the value list is needed. *)

val minmax_all_query : Database.t -> query
(** ALL with [<]: only the minimum of the value list is needed. *)

val all_eq_query : Database.t -> query
(** ALL with [=]: at most one value is stored. *)

val some_ne_query : Database.t -> query
(** SOME with [<>]: at most one value is stored. *)
