lib/workload/queries.mli: Database Pascalr Relalg Value
