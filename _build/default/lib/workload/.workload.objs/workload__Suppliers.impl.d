lib/workload/suppliers.ml: Database Pascalr Prng Relalg Relation Schema Tuple Value Vtype
