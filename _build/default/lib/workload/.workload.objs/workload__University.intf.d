lib/workload/university.mli: Database Relalg Schema Value
