lib/workload/random_query.mli: Database Pascalr Relalg
