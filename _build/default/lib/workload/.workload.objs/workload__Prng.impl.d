lib/workload/prng.ml: Array Char Int64 List String
