lib/workload/queries.ml: Database Pascalr Relalg Value
