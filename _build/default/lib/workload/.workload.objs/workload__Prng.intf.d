lib/workload/prng.mli:
