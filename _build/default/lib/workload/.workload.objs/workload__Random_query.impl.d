lib/workload/random_query.ml: Database List Pascalr Printf Prng Relalg University Value
