lib/workload/suppliers.mli: Database Pascalr Relalg Value
