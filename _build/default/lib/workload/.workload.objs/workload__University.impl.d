lib/workload/university.ml: Database Printf Prng Relalg Relation Schema Tuple Value Vtype
