(** The classic suppliers-parts database: the canonical workload for
    universal quantification (division queries). *)

open Relalg
open Pascalr.Calculus

type params = {
  n_suppliers : int;
  n_parts : int;
  n_shipments : int;
  prob_red : float;
  prob_london : float;
  seed : int;
}

val default_params : params
val scaled : ?seed:int -> int -> params

val generate : params -> Database.t
(** Supplier 1 ships every part, so the division queries have non-empty
    answers. *)

val red : Database.t -> Value.t
val london : Database.t -> Value.t

val ships_all_parts : Database.t -> query
val ships_all_red_parts : Database.t -> query
val london_ships_some_red : Database.t -> query
val ships_no_red_part : Database.t -> query
