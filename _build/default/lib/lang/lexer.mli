(** Hand-written lexer for the PASCAL/R subset.  Keywords are
    case-insensitive; comments are PASCAL's [(* ... *)]. *)

exception Lex_error of string * Token.position

val tokenize : string -> Token.spanned list
(** Tokenize a whole source string, ending with {!Token.EOF}.
    @raise Lex_error with a position on invalid input. *)
