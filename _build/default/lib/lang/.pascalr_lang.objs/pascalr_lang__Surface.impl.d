lib/lang/surface.ml: Relalg
