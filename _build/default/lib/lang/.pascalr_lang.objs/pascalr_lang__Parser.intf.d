lib/lang/parser.mli: Surface Token
