lib/lang/elaborate.mli: Database Pascalr Relalg Schema Surface Value Vtype
