lib/lang/elaborate.ml: Array Database Errors Format List Parser Pascalr Relalg Relation Schema String Surface Value Vtype
