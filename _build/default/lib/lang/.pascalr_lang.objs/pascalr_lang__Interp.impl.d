lib/lang/interp.ml: Array Database Elaborate Errors Fmt Format List Option Parser Pascalr Reference Relalg Relation Schema String Surface Tuple Value Vtype
