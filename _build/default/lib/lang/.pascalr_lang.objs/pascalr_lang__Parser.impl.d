lib/lang/parser.ml: Format Lexer List Printf Relalg Surface Token
