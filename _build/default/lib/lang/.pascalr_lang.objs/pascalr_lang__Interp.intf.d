lib/lang/interp.mli: Database Relalg Relation Surface Tuple
