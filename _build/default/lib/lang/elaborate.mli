(** Elaboration of surface syntax: declarations into a {!Relalg.Database}
    and selections into {!Pascalr.Calculus} queries, with enumeration
    labels resolved by the opposite operand's domain (or a unique-label
    search). *)

open Relalg

exception Elab_error of string

val elaborate_program : ?db:Database.t -> Surface.program -> Database.t
(** Declare the program's enumerations and relations; returns the
    (possibly given) database.
    @raise Elab_error on unknown types; Errors.Schema_error on schema
    violations. *)

val elaborate_query : Database.t -> Surface.query -> Pascalr.Calculus.query
(** @raise Elab_error on unresolvable names. *)

val elaborate_formula :
  Database.t -> (string * Schema.t) list -> Surface.formula ->
  Pascalr.Calculus.formula
(** Elaborate a formula under an environment binding each free variable
    to the schema of its range relation (used by the statement
    interpreter, where loop variables are in scope). *)

val resolve_ident : Database.t -> Vtype.t option -> string -> Value.t
(** Resolve an unqualified identifier (boolean or enumeration label),
    optionally guided by an expected domain. *)

val query_of_string : Database.t -> string -> Pascalr.Calculus.query
(** Parse and elaborate in one step. *)

val database_of_string : string -> Database.t
