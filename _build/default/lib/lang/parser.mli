(** Recursive-descent parser for the PASCAL/R subset: Figure-1
    declarations and selection expressions.  Precedence, lowest first:
    OR, AND, NOT, comparison. *)

exception Parse_error of string * Token.position

val query_of_string : string -> Surface.query
(** Parse a selection [[<v.a> OF EACH v IN range, ...: wff]].
    @raise Parse_error / Lexer.Lex_error *)

val program_of_string : string -> Surface.program
(** Parse TYPE and VAR (relation) declaration sections. *)

val formula_of_string : string -> Surface.formula

val stmt_of_string : string -> Surface.stmt
(** Parse one statement (FOR EACH / IF / BEGIN / assignment / [:+] /
    [:-] / PRINT). *)

val unit_of_string : string -> Surface.unit_
(** Parse a whole compilation unit: TYPE/VAR sections then an optional
    [BEGIN ... END] main block (optionally terminated by '.'). *)
