(* A guided tour of the four optimization strategies on one query,
   showing the transformation each performs and its measured effect.

     dune exec examples/strategy_tour.exe *)

open Relalg
open Pascalr

(* Sized so the unoptimized Palermo combination stays around 10^5
   n-tuples — big enough to show the orders-of-magnitude gap, small
   enough to run in seconds. *)
let demo_params =
  {
    Workload.University.default_params with
    Workload.University.n_employees = 20;
    n_papers = 30;
    n_courses = 12;
    n_timetable = 40;
  }

let () =
  let db = Workload.University.generate demo_params in
  let q = Workload.Queries.running_query db in
  let reference = Naive_eval.run db q in

  Fmt.pr "database: employees %d, papers %d, courses %d, timetable %d@.@."
    (Relation.cardinality (Database.find_relation db "employees"))
    (Relation.cardinality (Database.find_relation db "papers"))
    (Relation.cardinality (Database.find_relation db "courses"))
    (Relation.cardinality (Database.find_relation db "timetable"));

  Fmt.pr "strategy        scans   probes   max n-tuple   wall (ms)   correct@.";
  Fmt.pr "--------------- ------- -------- ------------- ----------- -------@.";
  List.iter
    (fun (name, strategy) ->
      let t0 = Unix.gettimeofday () in
      let report = Session.exec_report ~opts:(Exec_opts.make ~strategy ()) (Session.create db) q in
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Fmt.pr "%-15s %7d %8d %13d %11.2f %7b@." name report.Exec_result.scans
        report.Exec_result.probes report.Exec_result.max_ntuple ms
        (Relation.equal_set report.Exec_result.result reference))
    Strategy.all_presets;

  Fmt.pr "@.What each strategy did:@.";
  Fmt.pr
    "S1  groups all join-term evaluations over a relation into one scan@.";
  Fmt.pr
    "S2  lets monadic terms (estatus=professor, clevel<=sophomore) restrict@.";
  Fmt.pr "    the indirect joins while the relation is being read@.";
  Fmt.pr
    "S3  moves those monadic terms into the range expressions, shrinking@.";
  Fmt.pr "    every structure built over the variable and dropping a whole@.";
  Fmt.pr "    conjunction of the DNF matrix (3 -> 2)@.";
  Fmt.pr
    "S4  evaluates the quantifiers of p, c and t in the collection phase@.";
  Fmt.pr
    "    via value lists, emptying the combination phase's prefix@.";

  let d = Planner.choose db q in
  Fmt.pr "@.planner decision:@.%a@." Planner.pp_decision d
