(* Empty relations and the standard-form adaptation (paper Section 2,
   Lemma 1, Example 2.2): why the compile-time normal form assumes
   non-empty ranges, what goes wrong if the assumption is violated, and
   how the runtime adaptation repairs it.

     dune exec examples/empty_relations.exe *)

open Relalg
open Pascalr
open Pascalr.Calculus

let () =
  let db = Workload.University.generate Workload.University.small_params in
  let q = Workload.Queries.running_query db in

  Fmt.pr "=== Lemma 1's four rules ===@.";
  let a = eq (attr "e" "estatus") (const (Workload.Queries.professor db)) in
  let b = ne (attr "rec" "penr") (attr "e" "enr") in
  List.iter
    (fun rule ->
      let lhs =
        match rule with
        | Lemma1.Rule1 -> F_and (a, f_some "rec" (base "papers") b)
        | Lemma1.Rule2 -> F_or (a, f_some "rec" (base "papers") b)
        | Lemma1.Rule3 -> F_and (a, f_all "rec" (base "papers") b)
        | Lemma1.Rule4 -> F_or (a, f_all "rec" (base "papers") b)
      in
      match Lemma1.rewrite db rule lhs with
      | Some rhs ->
        Fmt.pr "%-22s:  %a@.%-22s   =  %a@." (Lemma1.rule_to_string rule)
          pp_formula lhs "" pp_formula rhs
      | None -> ())
    Lemma1.all_rules;

  Fmt.pr "@.=== With papers populated (%d elements) ===@."
    (Relation.cardinality (Database.find_relation db "papers"));
  let answer = Naive_eval.run db q in
  Fmt.pr "running query answer: %d professors@." (Relation.cardinality answer);

  Fmt.pr "@.=== Now papers := [] (Example 2.2) ===@.";
  Relation.clear (Database.find_relation db "papers");
  let correct = Naive_eval.run db q in
  Fmt.pr "correct answer: %d (every professor qualifies vacuously)@."
    (Relation.cardinality correct);

  (* The un-adapted standard form evaluates the prenex/DNF matrix as if
     papers were non-empty — demonstrably wrong. *)
  let unadapted = Standard_form.of_query q in
  let wrong = Naive_eval.run db (Standard_form.to_query unadapted) in
  Fmt.pr "un-adapted standard form would answer: %d  (WRONG: %b)@."
    (Relation.cardinality wrong)
    (not (Relation.equal_set wrong correct));

  let adapted = Standard_form.adapt_query db q in
  Fmt.pr "adapted query: %a@." pp_query adapted;
  let repaired = Naive_eval.run db adapted in
  Fmt.pr "adapted answer: %d  (agrees: %b)@."
    (Relation.cardinality repaired)
    (Relation.equal_set repaired correct);

  (* The full pipeline performs the adaptation automatically. *)
  List.iter
    (fun (name, strategy) ->
      let r = Session.exec ~opts:(Exec_opts.make ~strategy ()) (Session.create db) q in
      Fmt.pr "pipeline %-12s: %d (agrees %b)@." name (Relation.cardinality r)
        (Relation.equal_set r correct))
    Strategy.all_presets;

  (* Extended ranges can be empty even when their base relation is not. *)
  Fmt.pr "@.=== Empty extended range ===@.";
  let db2 = Workload.University.generate Workload.University.small_params in
  let q2 =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_all "p"
          (restricted "papers" "p" (eq (attr "p" "pyear") (cint 1900)))
          (eq (attr "p" "penr") (attr "e" "enr"));
    }
  in
  Fmt.pr "query: %a@." pp_query q2;
  Fmt.pr "no paper from 1900 exists, so ALL holds vacuously: %d employees@."
    (Relation.cardinality (Session.exec (Session.create db2) q2))
