(* The paged storage substrate: CSV loading, heap-file pages, and the
   buffer pool's view of different evaluators — the 1982 cost model in
   action.

     dune exec examples/storage_demo.exe *)

open Relalg
open Pascalr

let csv_parts =
  "pnr,pname,pcolor,pweight\n\
   1,cog,red,12\n\
   2,bolt,green,17\n\
   3,screw,blue,17\n\
   4,cam,red,12\n\
   5,gear,red,19\n"

let () =
  (* 1. Load a relation from CSV against a declared schema. *)
  let color = Vtype.enum "colortype" [| "red"; "green"; "blue" |] in
  let parts_schema =
    Schema.make
      [
        Schema.attr "pnr" (Vtype.int_range 1 999);
        Schema.attr "pname" (Vtype.string_width 10);
        Schema.attr "pcolor" color;
        Schema.attr "pweight" (Vtype.int_range 1 100);
      ]
      ~key:[ "pnr" ]
  in
  let parts = Csv_io.of_string ~name:"parts" parts_schema csv_parts in
  Fmt.pr "loaded from CSV:@.%a@.@." Relation.pp parts;
  Fmt.pr "round trip:@.%s@." (Csv_io.to_string parts);

  (* 2. Attach paged storage to a generated database and watch the
     buffer pool. *)
  let db = Workload.University.generate (Workload.University.scaled 2) in
  let pool = Database.attach_storage db ~pool_pages:6 in
  List.iter
    (fun rel ->
      match Relation.backing_pages rel with
      | Some pages ->
        Fmt.pr "%-10s: %4d elements on %2d pages@." (Relation.name rel)
          (Relation.cardinality rel) pages
      | None -> ())
    (Database.relations db);

  let q = Workload.Queries.running_query db in
  let show name run =
    Buffer_pool.reset_stats pool;
    run ();
    Fmt.pr "%-14s %a@." name Buffer_pool.pp_stats (Buffer_pool.stats pool)
  in
  Fmt.pr "@.buffer pool (6 frames) during evaluation:@.";
  show "naive" (fun () -> ignore (Naive_eval.run db q));
  show "s1+s2+s3+s4" (fun () ->
      ignore (Session.exec ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) (Session.create db) q));
  Fmt.pr
    "@.the collected evaluation reads each relation once; the naive@.";
  Fmt.pr "evaluator's nested re-scans thrash the small pool.@."
