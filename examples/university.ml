(* The paper's running example, end to end: the Figure-1 database, the
   Example 2.1 query in concrete syntax, its standard form (Example
   2.2), the transformed forms (Examples 4.5/4.7), and the evaluation
   plans of all strategies with their instrumentation.

     dune exec examples/university.exe *)

open Relalg
open Pascalr

let example_2_1 =
  {|
[<e.ename> OF EACH e IN employees:
  (e.estatus = professor)
  AND
  (ALL p IN papers ((p.pyear <> 1977) OR (e.enr <> p.penr))
   OR
   SOME c IN courses ((c.clevel <= sophomore)
     AND SOME t IN timetable ((c.cnr = t.tcnr) AND (e.enr = t.tenr))))]
|}

let () =
  let db = Workload.University.generate Workload.University.default_params in
  let q = Pascalr_lang.Elaborate.query_of_string db example_2_1 in

  Fmt.pr "=== Example 2.1: the query as written ===@.%a@.@."
    Calculus.pp_query q;

  let sf = Standard_form.compile db q in
  Fmt.pr "=== Example 2.2: standard form (prenex + DNF) ===@.%a@.@."
    Standard_form.pp sf;

  let sf3 = Range_ext.apply db sf in
  Fmt.pr "=== Example 4.5: after extended range expressions (S3) ===@.%a@.@."
    Standard_form.pp sf3;

  let plan = Quant_push.apply db (Plan.of_standard_form sf3) in
  Fmt.pr "=== Example 4.7: after quantifier pushing (S4) ===@.%a@.@." Plan.pp
    plan;

  Fmt.pr "=== Element-oriented program (Example 4.3/4.7 style) ===@.%s@."
    (Explain.explain ~strategy:Strategy.s1234 db q);

  Fmt.pr "=== Evaluation ===@.";
  let reference = Naive_eval.run db q in
  Fmt.pr "%-14s -> %d employees (reference)@." "naive"
    (Relation.cardinality reference);
  List.iter
    (fun (name, strategy) ->
      let report = Session.exec_report ~opts:(Exec_opts.make ~strategy ()) (Session.create db) q in
      Fmt.pr
        "%-14s -> %d employees | scans %2d | probes %5d | max n-tuple %6d | agree %b@."
        name
        (Relation.cardinality report.Exec_result.result)
        report.Exec_result.scans report.Exec_result.probes
        report.Exec_result.max_ntuple
        (Relation.equal_set report.Exec_result.result reference))
    Strategy.all_presets;

  (* Example 2.2's adaptation: empty papers. *)
  Fmt.pr "@.=== Empty papers (Example 2.2 adaptation) ===@.";
  Relation.clear (Database.find_relation db "papers");
  let adapted = Standard_form.adapt_query db q in
  Fmt.pr "adapted query: %a@." Calculus.pp_query adapted;
  let reference = Naive_eval.run db q in
  List.iter
    (fun (name, strategy) ->
      let r = Session.exec ~opts:(Exec_opts.make ~strategy ()) (Session.create db) q in
      Fmt.pr "%-14s -> %d employees | agree %b@." name (Relation.cardinality r)
        (Relation.equal_set r reference))
    Strategy.all_presets
