(* Semi-join programs from the predicate-calculus point of view (paper
   Sections 4.4/5): query graph, tree test, Bernstein/Chiu full reducer,
   and the universal (ALL) extension.

     dune exec examples/semijoin_demo.exe *)

open Relalg
open Pascalr
open Pascalr.Calculus

let () =
  let db = Workload.University.generate Workload.University.default_params in
  let prof = Workload.Queries.professor db in
  let soph = Workload.Queries.sophomore db in

  (* The existential branch of the running query as a conjunctive
     chain query: employees - timetable - courses. *)
  let conj =
    [
      { lhs = attr "e" "estatus"; op = Value.Eq; rhs = const prof };
      { lhs = attr "c" "clevel"; op = Value.Le; rhs = const soph };
      { lhs = attr "e" "enr"; op = Value.Eq; rhs = attr "t" "tenr" };
      { lhs = attr "c" "cnr"; op = Value.Eq; rhs = attr "t" "tcnr" };
    ]
  in
  let ranges =
    [ ("e", base "employees"); ("t", base "timetable"); ("c", base "courses") ]
  in
  (match Semijoin.graph_of_conjunction [ "e"; "t"; "c" ] conj with
  | None -> Fmt.pr "not a conjunctive equality query@."
  | Some g ->
    Fmt.pr "query graph: %a@." Semijoin.pp_graph g;
    Fmt.pr "tree query: %b@." (Semijoin.is_tree g));
  (match Semijoin.reduce db ranges conj with
  | None -> ()
  | Some red ->
    Fmt.pr "@.full reducer schedule:@.";
    List.iter (fun s -> Fmt.pr "  %a@." Semijoin.pp_step s) red.Semijoin.red_steps;
    Fmt.pr "@.reduction (monadic filters included):@.";
    List.iter
      (fun (v, before) ->
        let after = List.assoc v red.Semijoin.red_after in
        Fmt.pr "  %-2s: %4d -> %4d elements@." v before after)
      red.Semijoin.red_before);

  (* The universal extension. *)
  Fmt.pr "@.=== ALL as anti-semijoin ===@.";
  let employees = Database.find_relation db "employees" in
  let papers = Database.find_relation db "papers" in
  let non_authors =
    Semijoin.all_ne_reduce ~outer_attr:"enr" ~inner_attr:"penr" employees papers
  in
  Fmt.pr "employees with ALL p (enr <> penr), i.e. no papers: %d of %d@."
    (Relation.cardinality non_authors)
    (Relation.cardinality employees);
  let single_author =
    Semijoin.all_eq_reduce ~outer_attr:"enr" ~inner_attr:"penr" employees papers
  in
  Fmt.pr
    "employees with ALL p (enr = penr), i.e. sole author of every paper: %d@."
    (Relation.cardinality single_author);

  (* The same through the full query pipeline with the S4 value lists. *)
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body = f_all "p" (base "papers") (ne (attr "e" "enr") (attr "p" "penr"));
    }
  in
  let report = Session.exec_report ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) (Session.create db) q in
  Fmt.pr
    "@.pipeline with S4: %d employees, %d scans (value-list evaluation)@."
    (Relation.cardinality report.Exec_result.result)
    report.Exec_result.scans
