(* Quickstart: declare a database in PASCAL/R syntax, load some data,
   then query it through the Session front door — one-shot execution,
   every strategy preset, and a prepared query with $parameters served
   from the plan cache.

     dune exec examples/quickstart.exe *)

open Relalg

let schema_src =
  {|
TYPE colortype = (red, green, blue);

VAR fruits : RELATION <fid> OF
      RECORD
        fid : 1..100;
        fname : PACKED ARRAY [1..20] OF char;
        fcolor : colortype
      END;
    baskets : RELATION <bid, bfid> OF
      RECORD
        bid : 1..100;
        bfid : 1..100
      END;
|}

let () =
  (* 1. Declare the schema by parsing PASCAL/R declarations. *)
  let db = Pascalr_lang.Elaborate.database_of_string schema_src in
  let fruits = Database.find_relation db "fruits" in
  let baskets = Database.find_relation db "baskets" in
  let color = Database.find_enum db "colortype" in

  (* 2. Load data with the PASCAL/R insertion operator (:+). *)
  let fruit fid name c =
    Relation.insert fruits
      (Tuple.of_list [ Value.int fid; Value.str name; Value.enum color c ])
  in
  let basket bid fid =
    Relation.insert baskets (Tuple.of_list [ Value.int bid; Value.int fid ])
  in
  fruit 1 "apple" "red";
  fruit 2 "kiwi" "green";
  fruit 3 "cherry" "red";
  fruit 4 "plum" "blue";
  basket 1 1;
  basket 1 2;
  basket 1 3;
  basket 2 3;
  basket 3 2;
  basket 3 4;

  (* 3. Open a session: the database plus an LRU plan cache.  All
     evaluation goes through it; repeated queries skip planning. *)
  let session = Pascalr.Session.create db in

  (* 4. A selection with a universal quantifier: baskets all of whose
     fruits are red... expressed over basket entries b: there is no
     entry of the same basket with a non-red fruit. *)
  let query_src =
    {|[<b.bid> OF EACH b IN baskets:
        ALL x IN baskets
          ((x.bid <> b.bid)
           OR SOME f IN [EACH f IN fruits: f.fcolor = red] (f.fid = x.bfid))]|}
  in
  let query = Pascalr_lang.Elaborate.query_of_string db query_src in
  Fmt.pr "query:@.%a@.@." Pascalr.Calculus.pp_query query;

  (* 5. Evaluate with the naive reference evaluator and with every
     strategy preset of the paper.  Each preset compiles differently,
     so each occupies its own plan-cache entry. *)
  let reference = Pascalr.Naive_eval.run db query in
  Fmt.pr "naive answer: %a@."
    (Fmt.list ~sep:Fmt.comma Value.pp)
    (List.map (fun t -> Tuple.get t 0) (Relation.to_list reference));
  List.iter
    (fun (name, strategy) ->
      let opts = Pascalr.Exec_opts.make ~strategy () in
      let r = Pascalr.Session.exec ~opts session query in
      Fmt.pr "%-12s same answer: %b@." name (Relation.equal_set r reference))
    Pascalr.Strategy.all_presets;

  (* 6. Prepare once, execute many times: $lo is bound per execution;
     the plan is compiled exactly once and grounded at each call. *)
  let by_id =
    Pascalr_lang.Elaborate.query_of_string db
      {|[<f.fname> OF EACH f IN fruits: f.fid >= $lo]|}
  in
  let prepared = Pascalr.Session.prepare session by_id in
  Fmt.pr "@.prepared [fid >= $lo], parameters: %a@."
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    (Pascalr.Prepared.params prepared);
  List.iter
    (fun lo ->
      let r =
        Pascalr.Prepared.exec ~params:[ ("lo", Value.int lo) ] prepared
      in
      Fmt.pr "  lo=%d -> %a@." lo
        (Fmt.list ~sep:Fmt.comma Value.pp)
        (List.map (fun t -> Tuple.get t 0) (Relation.to_list r)))
    [ 1; 3; 4 ];

  (* 7. The cache saw one miss per compiled plan and a hit for every
     re-execution; an update moves the stats epoch and forces the next
     execution to re-plan (empty-range adaptation may change). *)
  let stats = Pascalr.Session.cache_stats session in
  Fmt.pr "@.plan cache: %d plans, %d hits, %d misses@."
    (Pascalr.Session.cache_length session)
    stats.Pascalr.Plan_cache.hits stats.Pascalr.Plan_cache.misses;
  fruit 5 "grape" "green";
  ignore (Pascalr.Prepared.exec ~params:[ ("lo", Value.int 5) ] prepared);
  let stats' = Pascalr.Session.cache_stats session in
  Fmt.pr "after an insert: %d invalidations (the plan was rebuilt)@."
    stats'.Pascalr.Plan_cache.invalidations;

  (* 8. Ask the planner what it would do. *)
  let decision = Pascalr.Planner.choose db query in
  Fmt.pr "@.planner:@.%a@." Pascalr.Planner.pp_decision decision
