(* Universal quantification on the classic suppliers-parts database:
   division queries ("ships ALL parts", "ships ALL red parts"), their
   antijoin dual ("ships NO red part"), and how the strategies treat
   them.

     dune exec examples/suppliers.exe *)

open Relalg
open Pascalr

let show db name q =
  let reference = Naive_eval.run db q in
  Fmt.pr "@.%s@.%a@." name Calculus.pp_query q;
  Fmt.pr "answer: %a@."
    (Fmt.list ~sep:Fmt.comma Value.pp)
    (List.map (fun t -> Tuple.get t 0) (Relation.to_list reference));
  List.iter
    (fun (sname, strategy) ->
      let report = Session.exec_report ~opts:(Exec_opts.make ~strategy ()) (Session.create db) q in
      Fmt.pr "  %-12s scans %2d  max n-tuple %6d  agree %b@." sname
        report.Exec_result.scans report.Exec_result.max_ntuple
        (Relation.equal_set report.Exec_result.result reference))
    Strategy.all_presets

let () =
  let db = Workload.Suppliers.generate Workload.Suppliers.default_params in
  Fmt.pr "suppliers: %d, parts: %d, shipments: %d@."
    (Relation.cardinality (Database.find_relation db "suppliers"))
    (Relation.cardinality (Database.find_relation db "parts"))
    (Relation.cardinality (Database.find_relation db "shipments"));
  show db "-- suppliers shipping ALL parts (division) --"
    (Workload.Suppliers.ships_all_parts db);
  show db "-- suppliers shipping ALL red parts (division + extended range) --"
    (Workload.Suppliers.ships_all_red_parts db);
  show db "-- london suppliers shipping SOME red part (semijoin chain) --"
    (Workload.Suppliers.london_ships_some_red db);
  show db "-- suppliers shipping NO red part (antijoin after NNF) --"
    (Workload.Suppliers.ships_no_red_part db);
  (* The paper's Section 5 point: semi-joins extend to ALL.  Show the
     direct antijoin reduction agreeing with the query. *)
  let suppliers = Database.find_relation db "suppliers" in
  let red_shippers =
    let shipments = Database.find_relation db "shipments" in
    let parts = Database.find_relation db "parts" in
    let red_parts =
      Algebra.select
        (fun t ->
          Value.equal
            (Tuple.get_by_name (Relation.schema parts) t "pcolor")
            (Workload.Suppliers.red db))
        parts
    in
    let red_shipments =
      Algebra.semijoin ~on:[ ("hpnr", "pnr") ] shipments red_parts
    in
    Algebra.semijoin ~on:[ ("snr", "hsnr") ] suppliers red_shipments
  in
  let no_red = Algebra.diff suppliers red_shippers in
  let by_query =
    Naive_eval.run db (Workload.Suppliers.ships_no_red_part db)
  in
  Fmt.pr
    "@.antijoin reduction: %d suppliers ship no red part; query agrees: %b@."
    (Relation.cardinality no_red)
    (Relation.cardinality no_red = Relation.cardinality by_query)
