(* Observability layer: metric snapshot/diff arithmetic, span nesting
   and timing, and well-formedness of the emitted JSON. *)

open Obs

(* --------------------------------------------------------------- *)
(* A tiny JSON parser — just enough of RFC 8259 to check that what
   Obs.Json prints is well-formed.  Returns unit or raises Failure. *)

let validate_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Fmt.str "at %d: %s in %S" !pos msg s) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Fmt.str "expected %c" c)
  in
  let literal word =
    String.iter expect word
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let d = ref 0 in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          incr d;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !d = 0 then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected value"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

(* --------------------------------------------------------------- *)
(* Metrics *)

let test_counter_arithmetic () =
  Metrics.reset ();
  Metrics.incr "c";
  Metrics.incr ~by:5 "c";
  Alcotest.(check int) "counter accumulates" 6 (Metrics.counter_value "c");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter_value "nope")

let test_snapshot_diff () =
  Metrics.reset ();
  Metrics.incr ~by:10 "scans";
  Metrics.incr ~by:3 "probes";
  Metrics.set_gauge "g.stale" 7.0;
  Metrics.set_gauge "g.live" 1.0;
  Metrics.observe "h" 2.0;
  Metrics.observe "h" 4.0;
  let before = Metrics.snapshot () in
  Metrics.incr ~by:5 "scans";
  Metrics.incr "fresh";
  Metrics.set_gauge "g.live" 9.0;
  Metrics.observe "h" 10.0;
  let after = Metrics.snapshot () in
  let d = Metrics.diff ~before ~after in
  Alcotest.(check int) "counter delta" 5 (Metrics.get_counter d "scans");
  Alcotest.(check int) "new counter full value" 1 (Metrics.get_counter d "fresh");
  Alcotest.(check bool) "untouched counter dropped" true
    (Metrics.find d "probes" = None);
  Alcotest.(check bool) "unchanged gauge dropped" true
    (Metrics.find d "g.stale" = None);
  Alcotest.(check (option (float 1e-9))) "changed gauge keeps after value"
    (Some 9.0)
    (Metrics.get_gauge d "g.live");
  (match Metrics.find d "h" with
  | Some (Metrics.Histogram { count; sum; max; _ }) ->
    Alcotest.(check int) "histogram count delta" 1 count;
    Alcotest.(check (float 1e-9)) "histogram sum delta" 10.0 sum;
    Alcotest.(check (float 1e-9)) "histogram max from after" 10.0 max
  | _ -> Alcotest.fail "histogram missing from diff");
  Alcotest.(check int) "identical snapshots diff to nothing" 0
    (List.length (Metrics.diff ~before:after ~after))

let test_gauge_max () =
  Metrics.reset ();
  Metrics.gauge_max "hw" 3.0;
  Metrics.gauge_max "hw" 10.0;
  Metrics.gauge_max "hw" 5.0;
  Alcotest.(check (option (float 1e-9))) "high-water keeps the max"
    (Some 10.0)
    (Metrics.get_gauge (Metrics.snapshot ()) "hw")

let test_metrics_json () =
  Metrics.reset ();
  Metrics.incr ~by:2 "a.counter";
  Metrics.set_gauge "a.gauge" 1.5;
  Metrics.observe "a.histo" 3.0;
  let j = Metrics.to_json (Metrics.snapshot ()) in
  validate_json (Json.to_string j);
  validate_json (Fmt.str "%a" Json.pp_pretty j)

(* --------------------------------------------------------------- *)
(* Trace *)

let test_span_tree () =
  Metrics.reset ();
  let result, root =
    Trace.collect "root" ~attrs:[ ("k", Json.Str "v") ] (fun () ->
        Trace.with_span "first" (fun () -> Metrics.incr ~by:4 "t.scans");
        Trace.with_span "second" (fun () ->
            Trace.with_span "inner" (fun () -> Metrics.incr "t.probes"));
        42)
  in
  Alcotest.(check int) "callback result returned" 42 result;
  Alcotest.(check string) "root name" "root" root.Trace.sp_name;
  Alcotest.(check (list string)) "children in execution order"
    [ "first"; "second" ]
    (List.map (fun s -> s.Trace.sp_name) root.Trace.sp_children);
  Alcotest.(check int) "counter delta on child" 4
    (match Trace.find root "first" with
    | Some s -> Trace.counter s "t.scans"
    | None -> -1);
  Alcotest.(check int) "delta propagates to ancestors" 1
    (Trace.counter root "t.probes");
  Alcotest.(check bool) "find reaches grandchildren" true
    (Trace.find root "inner" <> None);
  Alcotest.(check bool) "tracing off outside collect" true
    (not (Trace.enabled ()))

let test_span_timing_monotonic () =
  let _, root =
    Trace.collect "root" (fun () ->
        Trace.with_span "child" (fun () ->
            Trace.with_span "grandchild" (fun () -> Unix.sleepf 0.002)))
  in
  let elapsed name =
    match Trace.find root name with
    | Some s -> s.Trace.sp_elapsed_ms
    | None -> Alcotest.fail ("missing span " ^ name)
  in
  Alcotest.(check bool) "grandchild took measurable time" true
    (elapsed "grandchild" > 0.0);
  Alcotest.(check bool) "child >= grandchild" true
    (elapsed "child" >= elapsed "grandchild");
  Alcotest.(check bool) "root >= child" true
    (root.Trace.sp_elapsed_ms >= elapsed "child")

let test_span_exception_safety () =
  let _, root =
    Trace.collect "root" (fun () ->
        (try Trace.with_span "boom" (fun () -> raise Exit)
         with Exit -> ());
        Trace.with_span "after" (fun () -> ()))
  in
  Alcotest.(check (list string)) "raising span still closed"
    [ "boom"; "after" ]
    (List.map (fun s -> s.Trace.sp_name) root.Trace.sp_children)

let test_add_attr_overwrites () =
  let _, root =
    Trace.collect "root" (fun () ->
        Trace.add_attr "n" (Json.Int 1);
        Trace.add_attr "n" (Json.Int 2))
  in
  Alcotest.(check bool) "repeated attr key overwrites" true
    (List.assoc_opt "n" root.Trace.sp_attrs = Some (Json.Int 2))

let test_nested_collect_rejected () =
  Alcotest.check_raises "nested collect"
    (Invalid_argument "Trace.collect: already collecting") (fun () ->
      ignore
        (Trace.collect "outer" (fun () ->
             Trace.collect "inner" (fun () -> ()))))

let test_trace_json () =
  Metrics.reset ();
  let _, root =
    Trace.collect "root"
      ~attrs:
        [
          ("quote", Json.Str "say \"hi\"\\");
          ("control", Json.Str "tab\there\nnl");
          ("nan", Json.Float Float.nan);
        ]
      (fun () ->
        Trace.with_span "child" (fun () -> Metrics.incr "j.count"))
  in
  validate_json (Json.to_string (Trace.to_json root));
  validate_json (Fmt.str "%a" Json.pp_pretty (Trace.to_json root))

let test_json_escaping () =
  let doc =
    Json.Obj
      [
        ("plain", Json.Str "abc");
        ("tricky", Json.Str "\"\\\n\t\x01\x1f");
        ("nums", Json.List [ Json.Int (-3); Json.Float 1.5; Json.Float nan ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
        ("bool", Json.Bool true);
        ("null", Json.Null);
      ]
  in
  validate_json (Json.to_string doc);
  validate_json (Fmt.str "%a" Json.pp_pretty doc);
  Alcotest.(check bool) "member finds a field" true
    (Json.member "bool" doc = Some (Json.Bool true));
  Alcotest.(check bool) "member on non-object" true
    (Json.member "x" (Json.Int 1) = None)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
        Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff;
        Alcotest.test_case "gauge high-water" `Quick test_gauge_max;
        Alcotest.test_case "metrics json" `Quick test_metrics_json;
        Alcotest.test_case "span tree" `Quick test_span_tree;
        Alcotest.test_case "span timing monotonic" `Quick
          test_span_timing_monotonic;
        Alcotest.test_case "span exception safety" `Quick
          test_span_exception_safety;
        Alcotest.test_case "add_attr overwrites" `Quick
          test_add_attr_overwrites;
        Alcotest.test_case "nested collect rejected" `Quick
          test_nested_collect_rejected;
        Alcotest.test_case "trace json" `Quick test_trace_json;
        Alcotest.test_case "json escaping" `Quick test_json_escaping;
      ] );
  ]
