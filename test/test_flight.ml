(* The flight-recorder subsystem: cumulative per-digest query stats
   recorded by the Session front door, the bounded execution ring,
   slow-query arming and one-shot trace capture, the Chrome
   trace-event exporter, and the zero-division guards on the two
   hit-rate ratios.

   Every test that touches the global recorder or the slow threshold
   restores them: the analyze golden test (same process) pins
   [flight_recorder.slow_ms] as null. *)

open Relalg
open Pascalr

let mk_db () = Workload.Suppliers.generate Workload.Suppliers.default_params

let clean_slate () =
  Obs.Query_stats.reset ();
  Obs.Flight_recorder.reset ();
  Obs.Flight_recorder.set_slow_ms None

(* ---------------------------------------------------------------- *)
(* Cumulative query stats through Session.exec: calls, hits, replans,
   rows and a monotone bounded latency histogram. *)

let test_stats_accumulate () =
  clean_slate ();
  let db = mk_db () in
  let q = Workload.Suppliers.ships_all_parts db in
  let s = Session.create db in
  let digest = Session.digest q in
  let rows = ref 0 in
  for _ = 1 to 4 do
    rows := Relation.cardinality (Session.exec s q)
  done;
  (match Obs.Query_stats.find digest with
  | None -> Alcotest.fail "no entry for the executed digest"
  | Some e ->
    Alcotest.(check int) "four calls" 4 e.Obs.Query_stats.qs_calls;
    Alcotest.(check int) "first call replans, rest hit" 3
      e.Obs.Query_stats.qs_cache_hits;
    Alcotest.(check int) "exactly one replan" 1 e.Obs.Query_stats.qs_replans;
    Alcotest.(check int) "rows accumulate over calls" (4 * !rows)
      e.Obs.Query_stats.qs_rows;
    let h = e.Obs.Query_stats.qs_latency in
    Alcotest.(check int) "one latency sample per call" 4 (Obs.Histogram.count h);
    let p50 = Obs.Histogram.quantile h 0.5
    and p95 = Obs.Histogram.quantile h 0.95
    and p99 = Obs.Histogram.quantile h 0.99 in
    Alcotest.(check bool) "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
    Alcotest.(check bool) "quantiles bounded by min/max" true
      (Obs.Histogram.min_value h <= p50 && p99 <= Obs.Histogram.max_value h);
    Alcotest.(check bool) "phase split is non-negative" true
      (e.Obs.Query_stats.qs_collection_ms >= 0.0
      && e.Obs.Query_stats.qs_combination_ms >= 0.0
      && e.Obs.Query_stats.qs_construction_ms >= 0.0);
    Test_obs.validate_json
      (Obs.Json.to_string (Obs.Query_stats.entry_to_json e)));
  (* The ring saw the same four executions, newest first. *)
  Alcotest.(check int) "flight recorder holds the four runs" 4
    (Obs.Flight_recorder.total_recorded ());
  (match Obs.Flight_recorder.recent ~n:1 () with
  | [ r ] ->
    Alcotest.(check string) "ring record carries the digest" digest
      r.Obs.Flight_recorder.fr_digest;
    Alcotest.(check int) "ring record carries the rows" !rows
      r.Obs.Flight_recorder.fr_rows
  | _ -> Alcotest.fail "expected one recent record");
  Test_obs.validate_json
    (Obs.Json.to_string (Obs.Flight_recorder.to_json ~n:8 ()));
  clean_slate ()

(* A prepared query records at exec time: the prepare itself is not a
   call, and grounding a parameter counts as a replan, not a hit. *)
let test_stats_prepared () =
  clean_slate ();
  let db = mk_db () in
  let q = Workload.Suppliers.ships_all_red_parts db in
  let s = Session.create db in
  let prep = Session.prepare s q in
  Alcotest.(check bool) "prepare alone records nothing" true
    (Obs.Query_stats.find (Prepared.digest prep) = None);
  ignore (Prepared.exec prep);
  ignore (Prepared.exec prep);
  (match Obs.Query_stats.find (Prepared.digest prep) with
  | None -> Alcotest.fail "prepared executions missing from stats"
  | Some e ->
    Alcotest.(check int) "two calls" 2 e.Obs.Query_stats.qs_calls;
    Alcotest.(check int) "both reuse the prepared plan" 2
      e.Obs.Query_stats.qs_cache_hits);
  clean_slate ()

(* ---------------------------------------------------------------- *)
(* Ring bounds: wrap-around keeps the newest records and counts what
   fell off. *)

let synthetic digest =
  {
    Obs.Flight_recorder.fr_digest = digest;
    fr_opts = "test";
    fr_wall_ms = 1.0;
    fr_collection_ms = 0.4;
    fr_combination_ms = 0.4;
    fr_construction_ms = 0.2;
    fr_rows = 1;
    fr_jobs = 1;
    fr_scans = 2;
    fr_probes = 3;
    fr_index_probes = 0;
    fr_pool_fetches = 0;
  }

let digests rs =
  List.map (fun r -> r.Obs.Flight_recorder.fr_digest) rs

let test_ring_bounds () =
  clean_slate ();
  let old_cap = Obs.Flight_recorder.capacity () in
  Obs.Flight_recorder.set_capacity 4;
  for i = 1 to 7 do
    Obs.Flight_recorder.record (synthetic (Printf.sprintf "d%d" i))
  done;
  Alcotest.(check int) "total counts overwritten records" 7
    (Obs.Flight_recorder.total_recorded ());
  Alcotest.(check int) "three records fell off" 3
    (Obs.Flight_recorder.dropped ());
  Alcotest.(check (list string)) "newest first, oldest dropped"
    [ "d7"; "d6"; "d5"; "d4" ]
    (digests (Obs.Flight_recorder.recent ()));
  Alcotest.(check (list string)) "n limits the slice"
    [ "d7"; "d6" ]
    (digests (Obs.Flight_recorder.recent ~n:2 ()));
  Test_obs.validate_json
    (Obs.Json.to_string
       (Obs.Flight_recorder.record_to_json (synthetic "d7")));
  Alcotest.check_raises "non-positive capacity rejected"
    (Invalid_argument "Flight_recorder.set_capacity") (fun () ->
      Obs.Flight_recorder.set_capacity 0);
  Obs.Flight_recorder.set_capacity old_cap;
  clean_slate ()

(* ---------------------------------------------------------------- *)
(* Slow-query capture: crossing the threshold arms the digest, the
   next execution is traced exactly once, and the captured span
   exports as valid Chrome trace-event JSON. *)

let test_slow_capture () =
  clean_slate ();
  let db = mk_db () in
  let q = Workload.Suppliers.ships_all_parts db in
  let s = Session.create db in
  let digest = Session.digest q in
  Obs.Flight_recorder.set_slow_ms (Some 0.0);
  ignore (Session.exec s q);
  Alcotest.(check bool) "crossing the threshold arms the digest" true
    (Obs.Flight_recorder.armed digest);
  Alcotest.(check int) "nothing captured yet" 0
    (List.length (Obs.Flight_recorder.slow_traces ()));
  ignore (Session.exec s q);
  Alcotest.(check bool) "capture disarms (one trace per offender)" false
    (Obs.Flight_recorder.armed digest);
  (match Obs.Flight_recorder.slow_traces () with
  | [ (d, span) ] ->
    Alcotest.(check string) "trace keyed by the digest" d digest;
    Alcotest.(check string) "root span is the query" "query"
      span.Obs.Trace.sp_name;
    Alcotest.(check bool) "trace has phase children" true
      (Obs.Trace.find span "collection" <> None);
    (* Chrome export: a flat list of complete events with ts/dur. *)
    let chrome = Obs.Trace.to_chrome span in
    Test_obs.validate_json (Obs.Json.to_string chrome);
    (match chrome with
    | Obs.Json.List events ->
      Alcotest.(check bool) "at least the root event" true
        (List.length events >= 1);
      List.iter
        (fun ev ->
          Alcotest.(check bool) "every event is complete (ph=X)" true
            (Obs.Json.member "ph" ev = Some (Obs.Json.Str "X"));
          let non_negative field =
            match Obs.Json.member field ev with
            | Some (Obs.Json.Float v) -> v >= 0.0
            | Some (Obs.Json.Int v) -> v >= 0
            | _ -> false
          in
          Alcotest.(check bool) "ts and dur present, microseconds >= 0"
            true
            (non_negative "ts" && non_negative "dur"))
        events
    | _ -> Alcotest.fail "chrome export is not a flat event list")
  | ts ->
    Alcotest.fail
      (Printf.sprintf "expected exactly one slow trace, got %d"
         (List.length ts)));
  clean_slate ()

(* ---------------------------------------------------------------- *)
(* Ratio guards: both hit rates answer 0.0 — never NaN — on a
   zero-access window. *)

let test_hit_rate_guards () =
  let bp0 =
    { Buffer_pool.fetches = 0; misses = 0; evictions = 0; invalidations = 0 }
  in
  Alcotest.(check (float 0.0)) "buffer pool: no fetches -> 0.0" 0.0
    (Buffer_pool.hit_rate bp0);
  let bp =
    { Buffer_pool.fetches = 8; misses = 2; evictions = 0; invalidations = 0 }
  in
  Alcotest.(check (float 1e-9)) "buffer pool: 6 of 8 hit" 0.75
    (Buffer_pool.hit_rate bp);
  let pc0 =
    { Plan_cache.hits = 0; misses = 0; evictions = 0; invalidations = 0 }
  in
  Alcotest.(check (float 0.0)) "plan cache: no lookups -> 0.0" 0.0
    (Plan_cache.hit_rate pc0);
  let pc =
    { Plan_cache.hits = 3; misses = 1; evictions = 0; invalidations = 0 }
  in
  Alcotest.(check (float 1e-9)) "plan cache: 3 of 4 lookups hit" 0.75
    (Plan_cache.hit_rate pc)

let suite =
  [
    ( "flight",
      [
        Alcotest.test_case "session executions accumulate query stats"
          `Quick test_stats_accumulate;
        Alcotest.test_case "prepared queries record at exec time" `Quick
          test_stats_prepared;
        Alcotest.test_case "ring wrap keeps newest, counts dropped" `Quick
          test_ring_bounds;
        Alcotest.test_case "slow queries arm, capture once, export Chrome"
          `Quick test_slow_capture;
        Alcotest.test_case "hit rates are 0.0 on zero accesses" `Quick
          test_hit_rate_guards;
      ] );
  ]
