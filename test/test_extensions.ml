(* Extensions beyond the paper's "current system version":

   - permanent indexes (Section 3.2: "The first step can be omitted, if
     permanent indexes exist", Example 3.1);
   - range extensions in conjunctive normal form (Section 4.3's
     future-work remark). *)

open Pascalr
open Pascalr.Calculus
open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q
let exec_q_report ?opts db q = Session.exec_report ?opts (Session.create db) q


(* --------------------------------------------------------------- *)
(* Permanent indexes *)

let test_permanent_index_lookup () =
  let db = Fixtures.make () in
  let idx = Database.register_index db "timetable" ~on:"tcnr" in
  Alcotest.(check int) "entries" 3 (Index.entry_count idx);
  Alcotest.(check int) "course 10 taught twice" 2
    (List.length (Index.lookup1 idx (Value.int 10)));
  Alcotest.(check (option (pair string string)))
    "registered" (Some ("timetable", "tcnr"))
    (Option.map
       (fun i -> (Index.source i, List.hd (Index.on i)))
       (Database.permanent_index db "timetable" ~on:"tcnr"))

let test_permanent_index_saves_scans () =
  let db = Workload.University.generate Workload.University.small_params in
  let q = Workload.Queries.existential_query db in
  (* Without permanent indexes. *)
  let before = (exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s12 ()) db q).Exec_result.scans in
  (* Example 4.3's indexes, registered permanently. *)
  ignore (Database.register_index db "timetable" ~on:"tcnr");
  ignore (Database.register_index db "timetable" ~on:"tenr");
  let report = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s12 ()) db q in
  Alcotest.(check bool)
    (Printf.sprintf "scans drop (%d -> %d)" before report.Exec_result.scans)
    true
    (report.Exec_result.scans < before);
  (* timetable itself is never scanned: both its uses go through the
     permanent indexes. *)
  Alcotest.(check int) "timetable not scanned" 0
    (Relation.scan_count (Database.find_relation db "timetable"));
  (* And the answer is still right. *)
  let expected = Naive_eval.run db q in
  Alcotest.(check bool) "answer unchanged" true
    (Relation.equal_set expected report.Exec_result.result)

let test_permanent_index_all_strategies_agree () =
  let db = Workload.University.generate Workload.University.small_params in
  ignore (Database.register_index db "timetable" ~on:"tcnr");
  ignore (Database.register_index db "timetable" ~on:"tenr");
  ignore (Database.register_index db "papers" ~on:"penr");
  List.iter
    (fun (qname, q) ->
      let expected = Naive_eval.run db q in
      List.iter
        (fun (sname, strategy) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" qname sname)
            true
            (Relation.equal_set expected (exec_q ~opts:(Exec_opts.make ~strategy ()) db q)))
        Strategy.all_presets)
    [
      ("running", Workload.Queries.running_query db);
      ("existential", Workload.Queries.existential_query db);
      ("universal", Workload.Queries.universal_query db);
    ]

let test_permanent_index_not_used_for_restricted_range () =
  (* A permanent whole-relation index must NOT stand in for an index
     over an S3-restricted range; correctness across strategies covers
     this, but check the restricted case explicitly. *)
  let db = Workload.University.generate Workload.University.small_params in
  ignore (Database.register_index db "courses" ~on:"cnr");
  let q = Workload.Queries.example_4_5 db in
  let expected = Naive_eval.run db q in
  Alcotest.(check bool) "restricted ranges still correct" true
    (Relation.equal_set expected (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s123 ()) db q))

let test_refresh_indexes () =
  let db = Fixtures.make () in
  let _ = Database.register_index db "employees" ~on:"enr" in
  Relation.insert
    (Database.find_relation db "employees")
    (Tuple.of_list
       [
         Value.int 9;
         Value.str "newhire";
         Value.enum (Database.find_enum db "statustype") "student";
       ]);
  let stale = Option.get (Database.permanent_index db "employees" ~on:"enr") in
  Alcotest.(check int) "stale index misses the new element" 0
    (List.length (Index.lookup1 stale (Value.int 9)));
  Database.refresh_indexes db;
  let fresh = Option.get (Database.permanent_index db "employees" ~on:"enr") in
  Alcotest.(check int) "refreshed index finds it" 1
    (List.length (Index.lookup1 fresh (Value.int 9)))

(* --------------------------------------------------------------- *)
(* CNF range extensions *)

(* ALL p over a matrix whose p-only conjunction has TWO monadic atoms:
   plain S3 cannot absorb it; the CNF refinement can. *)
let cnf_all_query db =
  ignore db;
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "enr") ];
    body =
      f_all "p" (base "papers")
        (f_or
           (f_and (ne (attr "p" "pyear") (cint 1977)) (gt (attr "p" "penr") (cint 5)))
           (eq (attr "p" "penr") (attr "e" "enr")));
  }

let test_cnf_absorbs_multi_atom_conjunction () =
  let db = Workload.University.generate Workload.University.small_params in
  let q = cnf_all_query db in
  let sf = Standard_form.compile db q in
  Alcotest.(check int) "two conjunctions" 2 (List.length sf.Standard_form.matrix);
  let plain = Range_ext.apply db sf in
  Alcotest.(check int) "plain S3 cannot absorb" 2
    (List.length plain.Standard_form.matrix);
  let with_cnf = Range_ext.apply ~cnf:true db sf in
  Alcotest.(check int) "CNF absorbs the pure-monadic conjunction" 1
    (List.length with_cnf.Standard_form.matrix);
  (match
     List.find_opt
       (fun e -> String.equal e.Normalize.v "p")
       with_cnf.Standard_form.prefix
   with
  | Some e ->
    Alcotest.(check bool) "p range restricted" true
      (Option.is_some e.Normalize.range.restriction)
  | None -> Alcotest.fail "p should stay in the prefix");
  (* Semantics preserved. *)
  let expected = Naive_eval.run db q in
  Alcotest.(check bool) "answers agree" true
    (Relation.equal_set expected
       (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.full_cnf ()) db q))

(* SOME c with different monadic terms in different conjunctions: the
   CNF clause (freshman OR senior) shrinks the range. *)
let test_cnf_clause_extension () =
  let db = Workload.University.generate Workload.University.small_params in
  let level = Database.find_enum db "leveltype" in
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_some "t" (base "timetable")
          (f_and
             (eq (attr "t" "tenr") (attr "e" "enr"))
             (f_some "c" (base "courses")
                (f_and
                   (eq (attr "c" "cnr") (attr "t" "tcnr"))
                   (f_or
                      (eq (attr "c" "clevel") (const (Value.enum level "freshman")))
                      (eq (attr "c" "clevel") (const (Value.enum level "senior")))))));
    }
  in
  let sf = Standard_form.compile db q in
  let with_cnf = Range_ext.apply ~cnf:true db sf in
  (match
     List.find_opt
       (fun e -> String.equal e.Normalize.v "c")
       with_cnf.Standard_form.prefix
   with
  | Some e ->
    Alcotest.(check bool) "c range carries the clause" true
      (Option.is_some e.Normalize.range.restriction)
  | None -> ());
  let expected = Naive_eval.run db q in
  Alcotest.(check bool) "answers agree" true
    (Relation.equal_set expected
       (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.full_cnf ()) db q))

(* CNF on random queries: full_cnf must agree with naive everywhere. *)
let test_cnf_random =
  QCheck.Test.make ~name:"CNF extension preserves semantics (random)"
    ~count:120
    QCheck.(make Gen.(int_range 0 100_000))
    (fun seed ->
      let db = Workload.Random_query.tiny_db (seed * 61) in
      let q = Workload.Random_query.generate db (seed + 5) in
      let expected = Naive_eval.run db q in
      Relation.equal_set expected
        (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.full_cnf ()) db q)
      && Relation.equal_set expected
           (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s123c ()) db q))

let suite =
  [
    ( "extensions",
      [
        Alcotest.test_case "permanent index lookup" `Quick
          test_permanent_index_lookup;
        Alcotest.test_case "permanent index saves scans" `Quick
          test_permanent_index_saves_scans;
        Alcotest.test_case "permanent index: strategies agree" `Quick
          test_permanent_index_all_strategies_agree;
        Alcotest.test_case "permanent index vs restricted range" `Quick
          test_permanent_index_not_used_for_restricted_range;
        Alcotest.test_case "index refresh after update" `Quick
          test_refresh_indexes;
        Alcotest.test_case "CNF absorbs multi-atom ALL conjunction" `Quick
          test_cnf_absorbs_multi_atom_conjunction;
        Alcotest.test_case "CNF clause extension" `Quick
          test_cnf_clause_extension;
        QCheck_alcotest.to_alcotest test_cnf_random;
      ] );
  ]
