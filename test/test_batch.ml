(* The vectorized batch execution layer: window-boundary edge cases on
   the stream kernels (empty source, all-false selection, batch larger
   than the input, windows that don't divide the cardinality), and the
   QCheck differential pinning the batch-independence contract — the
   batched engine must produce the scalar engine's result set for every
   batch size, strategy preset and jobs count, with identical iteration
   order whenever the query involves no universal quantification (the
   columnar divide is documented to reorder only the quotient). *)

open Relalg
open Pascalr

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q

module Stream = Algebra.Stream

let seq_of r = Array.to_list (Relation.to_array_uncounted r)

let check_same_relation label a b =
  Alcotest.(check (list Helpers.tuple))
    (label ^ ": iteration order") (seq_of a) (seq_of b);
  Alcotest.(check (list Helpers.tuple))
    (label ^ ": sorted contents") (Relation.to_list a) (Relation.to_list b)

let pair_rel name cols rows =
  Relation.of_list ~name
    (Schema.make (List.map (fun c -> Schema.attr c Vtype.int_full) cols) ~key:[])
    (List.map (fun (a, b) -> Tuple.of_list [ Value.int a; Value.int b ]) rows)

(* One representative chain exercising every kernel: filter, project
   with duplicates, dedup, and a hash join against a build relation. *)
let chain build src =
  let s = Stream.of_relation src in
  let s =
    Stream.select (fun t -> Value.compare (Tuple.get t 1) (Value.int 3) >= 0) s
  in
  let s = Stream.project s [ "x" ] in
  let s = Stream.dedup s in
  Stream.natural_join s build

(* --------------------------------------------------------------- *)
(* Window-boundary units: each scalar materialize (the oracle) against
   a sweep of batch sizes, including sizes that don't divide the
   input, exceed it, or meet an empty stream. *)

let batch_sweep label src mk =
  let scalar = Stream.materialize ~batch_size:1 (mk src) in
  List.iter
    (fun bs ->
      let batched = Stream.materialize ~batch_size:bs (mk src) in
      check_same_relation (Printf.sprintf "%s (batch_size %d)" label bs)
        scalar batched)
    [ 2; 3; 7; 64; 100_000 ]

let test_boundaries () =
  let build =
    pair_rel "b" [ "x"; "z" ] (List.init 9 (fun i -> (i mod 5, i * 10)))
  in
  let mk src = chain build src in
  batch_sweep "empty source" (pair_rel "e" [ "x"; "y" ] []) mk;
  batch_sweep "all rows filtered out"
    (pair_rel "f" [ "x"; "y" ] (List.init 10 (fun i -> (i, -1))))
    mk;
  batch_sweep "batch larger than input"
    (pair_rel "g" [ "x"; "y" ] (List.init 4 (fun i -> (i, i + 3))))
    mk;
  batch_sweep "non-multiple cardinality"
    (pair_rel "h" [ "x"; "y" ] (List.init 10 (fun i -> (i mod 6, i))))
    mk

let test_product_and_semijoin_windows () =
  let src = pair_rel "s" [ "x"; "y" ] (List.init 10 (fun i -> (i mod 4, i))) in
  (* disjoint columns: the join degenerates to a product *)
  let prod = pair_rel "p" [ "u"; "v" ] (List.init 3 (fun i -> (i, i + 50))) in
  batch_sweep "product windows" src (fun s ->
      Stream.natural_join (Stream.of_relation s) prod);
  (* no new columns: the join degenerates to a semijoin filter *)
  let semi = pair_rel "m" [ "x"; "y" ] [ (1, 1); (2, 4); (7, 7) ] in
  batch_sweep "semijoin windows" src (fun s ->
      Stream.natural_join (Stream.of_relation s) semi)

(* --------------------------------------------------------------- *)
(* Whole-pipeline batch-independence: the differential of the issue.
   The scalar engine (batch_size = 1) is the oracle; the batched
   engine must agree for small windows (many boundaries), the default
   window, and under a jobs=4 fan-out — across every strategy preset.
   Result sets must match always; iteration order must also match
   unless the query can involve universal quantification (negation
   included: adaptation rewrites NOT-EXISTS into ALL), where the
   columnar divide reorders only the quotient relation. *)

let rec order_exact_formula = function
  | Calculus.F_true | Calculus.F_false | Calculus.F_atom _ -> true
  | Calculus.F_not _ | Calculus.F_all _ -> false
  | Calculus.F_and (a, b) | Calculus.F_or (a, b) ->
    order_exact_formula a && order_exact_formula b
  | Calculus.F_some (_, _, f) -> order_exact_formula f

let order_exact (q : Calculus.query) = order_exact_formula q.Calculus.body

let batch_independent_on seed =
  let db = Workload.Random_query.tiny_db ((seed * 7919) + 3) in
  let q = Workload.Random_query.generate db (seed + 17) in
  match Wellformed.check_query db q with
  | Error _ -> true (* generator contract tested elsewhere *)
  | Ok () ->
    List.for_all
      (fun (sname, strategy) ->
        let run ~jobs ~batch_size =
          exec_q
            ~opts:
              (Exec_opts.make ~strategy ~jobs ~par_threshold:0 ~batch_size ())
            db q
        in
        let reference = run ~jobs:1 ~batch_size:1 in
        List.for_all
          (fun (jobs, batch_size) ->
            let r = run ~jobs ~batch_size in
            let sets_equal =
              List.equal Tuple.equal (Relation.to_list reference)
                (Relation.to_list r)
            in
            let order_ok =
              (not (order_exact q))
              || List.equal Tuple.equal (seq_of reference) (seq_of r)
            in
            (sets_equal && order_ok)
            ||
            QCheck.Test.fail_reportf
              "batch_size=%d jobs=%d diverges from scalar under %s, seed %d \
               (%s):@.%a@.scalar %a@.got %a"
              batch_size jobs sname seed
              (if sets_equal then "iteration order" else "result set")
              Calculus.pp_query q Relation.pp reference Relation.pp r)
          [ (1, 3); (1, 2048); (4, 4) ])
      Strategy.all_presets

let test_batch_differential =
  QCheck.Test.make
    ~name:
      "random queries: batched engine matches scalar result set (and order \
       without ALL)"
    ~count:60
    QCheck.(make Gen.(int_range 0 100_000))
    batch_independent_on

(* --------------------------------------------------------------- *)
(* Counters and options plumbing *)

let test_batch_counters_move () =
  let db = Workload.Suppliers.generate (Workload.Suppliers.scaled ~seed:5 1) in
  let q = Workload.Suppliers.ships_no_red_part db in
  let run batch_size =
    let before = Obs.Metrics.counter_value "algebra.batch.rows_in" in
    ignore
      (exec_q
         ~opts:(Exec_opts.make ~strategy:Strategy.s123 ~batch_size ())
         db q);
    Obs.Metrics.counter_value "algebra.batch.rows_in" - before
  in
  Alcotest.(check int) "scalar execution feeds no batch kernels" 0 (run 1);
  Alcotest.(check bool) "batched execution counts kernel input rows" true
    (run 256 > 0)

let test_fingerprint_distinguishes_batch_size () =
  let fp batch_size =
    Exec_opts.fingerprint (Exec_opts.make ~batch_size ())
  in
  Alcotest.(check bool) "batch_size in the plan-cache key" true
    (fp 1 <> fp 2048)

let suite =
  [
    ( "batch",
      [
        Alcotest.test_case "kernel chains at window boundaries" `Quick
          test_boundaries;
        Alcotest.test_case "product/semijoin degenerate chains" `Quick
          test_product_and_semijoin_windows;
        Alcotest.test_case "batch counters move only when batched" `Quick
          test_batch_counters_move;
        Alcotest.test_case "fingerprint separates batch sizes" `Quick
          test_fingerprint_distinguishes_batch_size;
        QCheck_alcotest.to_alcotest test_batch_differential;
      ] );
  ]
