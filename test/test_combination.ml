(* The streaming combination engine (cost-ordered joins, eager
   quantifier elimination, fused operators) against the
   declaration-order baseline, on the paper's worked examples.

   Two guarantees are pinned:
   - both engines and the naive evaluator agree on the result set;
   - the streaming engine's max_ntuple never exceeds the baseline's,
     and stays below the figures the baseline engine reported on the
     committed benchmark databases (98,881 n-tuples for the running
     query at scale 2; 126,589 for `no red part` at scale 2). *)

open Relalg
open Pascalr

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q
let exec_q_report ?opts db q = Session.exec_report ?opts (Session.create db) q


(* Scale-2 university database, byte-identical to the benchmark's
   [uni_params 2] so the hardcoded baseline figures apply. *)
let uni_db () =
  Workload.University.generate
    {
      Workload.University.default_params with
      Workload.University.n_employees = 20;
      n_papers = 30;
      n_courses = 12;
      n_timetable = 40;
      seed = 44;
    }

let suppliers_db () =
  Workload.Suppliers.generate (Workload.Suppliers.scaled ~seed:9 2)

let check_engines_agree ~pin db q strategies =
  let naive = Naive_eval.run db q in
  List.iter
    (fun (sname, strategy) ->
      let ordered =
        exec_q_report ~opts:(Exec_opts.make ~strategy ~join_order:Combination.Cost_ordered ())
          db q
      in
      let decl =
        exec_q_report ~opts:(Exec_opts.make ~strategy ~join_order:Combination.Declaration ())
          db q
      in
      Alcotest.(check bool)
        (sname ^ ": ordered engine agrees with naive")
        true
        (Relation.equal_set ordered.Exec_result.result naive);
      Alcotest.(check bool)
        (sname ^ ": declaration engine agrees with naive")
        true
        (Relation.equal_set decl.Exec_result.result naive);
      Alcotest.(check bool)
        (Fmt.str "%s: eager elimination max_ntuple %d <= baseline %d" sname
           ordered.Exec_result.max_ntuple decl.Exec_result.max_ntuple)
        true
        (ordered.Exec_result.max_ntuple <= decl.Exec_result.max_ntuple);
      Alcotest.(check bool)
        (Fmt.str "%s: max_ntuple %d below the seed-engine figure %d" sname
           ordered.Exec_result.max_ntuple pin)
        true
        (ordered.Exec_result.max_ntuple < pin))
    strategies

let strategies =
  [
    ("palermo", Strategy.palermo);
    ("s1", Strategy.s1);
    ("s1+s2", Strategy.s12);
    ("s1+s2+s3", Strategy.s123);
  ]

(* Running query (Example 2.1): the seed engine padded every
   conjunction to the full 4-variable order — 98,881 n-tuples at this
   scale under palermo/s1/s1+s2. *)
let test_running_query () =
  let db = uni_db () in
  check_engines_agree ~pin:98881 db (Workload.Queries.running_query db)
    strategies

let test_universal_query () =
  let db = uni_db () in
  check_engines_agree ~pin:98881 db (Workload.Queries.universal_query db)
    [ ("palermo", Strategy.palermo); ("s1+s2", Strategy.s12) ]

(* `no red part` (division through a negated nested SOME): 126,589
   padded n-tuples at scale 2 under s1+s2+s3 in the seed engine. *)
let test_no_red_part () =
  let db = suppliers_db () in
  check_engines_agree ~pin:126589 db
    (Workload.Suppliers.ships_no_red_part db)
    [ ("palermo", Strategy.palermo); ("s1+s2+s3", Strategy.s123) ]

(* Strategy 1's claim is engine-independent: the combination phase may
   reorder joins and skip padding, but every database relation is still
   read exactly as often as before — the collection phase alone decides
   the scans. *)
let test_s1_scans_engine_independent () =
  let db = uni_db () in
  let q = Workload.Queries.running_query db in
  let counts join_order =
    let _ = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s1 ~join_order ()) db q in
    List.map
      (fun r -> (Relation.name r, Relation.scan_count r))
      (Database.relations db)
  in
  let ordered = counts Combination.Cost_ordered in
  let decl = counts Combination.Declaration in
  List.iter
    (fun (rel, n) ->
      Alcotest.(check int)
        (Fmt.str "s1 scan count of %s" rel)
        n
        (List.assoc rel ordered))
    decl

(* The fused stream pipeline computes the same relations as the classic
   materializing operators it replaces. *)
let test_stream_matches_classic () =
  let schema_a =
    Schema.make
      [ Schema.attr "x" Vtype.int_full; Schema.attr "y" Vtype.int_full ]
      ~key:[]
  in
  let schema_b =
    Schema.make
      [ Schema.attr "y" Vtype.int_full; Schema.attr "z" Vtype.int_full ]
      ~key:[]
  in
  let rng = Workload.Prng.create 2024 in
  let mk schema n lim =
    let rel = Relation.create schema in
    for _ = 1 to n do
      Relation.insert rel
        (Tuple.of_list
           [
             Value.int (Workload.Prng.in_range rng 1 lim);
             Value.int (Workload.Prng.in_range rng 1 lim);
           ])
    done;
    rel
  in
  let schema_c =
    Schema.make
      [ Schema.attr "u" Vtype.int_full; Schema.attr "z" Vtype.int_full ]
      ~key:[]
  in
  let a = mk schema_a 120 12 and b = mk schema_b 90 12 in
  let c = mk schema_c 40 12 in
  let pred t = Value.compare (Tuple.get t 0) (Value.int 6) < 0 in
  let classic =
    Algebra.project
      (Algebra.select pred (Algebra.natural_join a b))
      [ "x"; "z" ]
  in
  let fused =
    Algebra.Stream.materialize
      (Algebra.Stream.project
         (Algebra.Stream.select pred
            (Algebra.Stream.natural_join (Algebra.Stream.of_relation a) b))
         [ "x"; "z" ])
  in
  Alcotest.(check bool)
    "select-join-project chain: fused = classic" true
    (Relation.equal_set classic fused);
  let classic_prod = Algebra.project (Algebra.product a c) [ "x"; "z" ] in
  let fused_prod =
    Algebra.Stream.materialize
      (Algebra.Stream.project
         (Algebra.Stream.product (Algebra.Stream.of_relation a) c)
         [ "x"; "z" ])
  in
  Alcotest.(check bool)
    "product-project chain: fused = classic" true
    (Relation.equal_set classic_prod fused_prod);
  let deduped =
    Algebra.Stream.materialize
      (Algebra.Stream.dedup
         (Algebra.Stream.project (Algebra.Stream.of_relation a) [ "x" ]))
  in
  Alcotest.(check bool)
    "dedup stream = duplicate-eliminating projection" true
    (Relation.equal_set (Algebra.project a [ "x" ]) deduped)

let suite =
  [
    ( "combination-engine",
      [
        Alcotest.test_case "running query: engines agree, eager shrinks"
          `Quick test_running_query;
        Alcotest.test_case "universal query: engines agree, eager shrinks"
          `Quick test_universal_query;
        Alcotest.test_case "no red part: engines agree, eager shrinks" `Quick
          test_no_red_part;
        Alcotest.test_case "s1 per-relation scans are engine-independent"
          `Quick test_s1_scans_engine_independent;
        Alcotest.test_case "fused streams match classic operators" `Quick
          test_stream_matches_classic;
      ] );
  ]
