(* Unit tests for the remaining substrate modules: domains, schemas,
   tuples, indexes and value lists. *)

open Relalg

(* --------------------------------------------------------------- *)
(* Vtype *)

let level =
  Vtype.enum "leveltype" [| "freshman"; "sophomore"; "junior"; "senior" |]

let test_vtype_membership () =
  Alcotest.(check bool) "in subrange" true
    (Vtype.member (Vtype.int_range 1900 1999) (Value.int 1977));
  Alcotest.(check bool) "below subrange" false
    (Vtype.member (Vtype.int_range 1900 1999) (Value.int 1899));
  Alcotest.(check bool) "string within width" true
    (Vtype.member (Vtype.string_width 5) (Value.str "abc"));
  Alcotest.(check bool) "string too wide" false
    (Vtype.member (Vtype.string_width 2) (Value.str "abc"));
  (match level with
  | Vtype.TEnum info ->
    Alcotest.(check bool) "enum member" true
      (Vtype.member level (Value.enum info "junior"));
    Alcotest.(check bool) "foreign enum rejected" false
      (Vtype.member level
         (Value.enum { Value.enum_name = "other"; labels = [| "junior" |] } "junior"))
  | _ -> Alcotest.fail "expected enum");
  Alcotest.(check bool) "reference type" true
    (Vtype.member (Vtype.reference "employees")
       (Value.VRef (Reference.make ~target:"employees" ~key:[ Value.int 1 ])));
  Alcotest.(check bool) "wrong target" false
    (Vtype.member (Vtype.reference "employees")
       (Value.VRef (Reference.make ~target:"papers" ~key:[ Value.int 1 ])))

let test_vtype_comparability () =
  Alcotest.(check bool) "subranges comparable" true
    (Vtype.comparable (Vtype.int_range 1 9) (Vtype.int_range 100 200));
  Alcotest.(check bool) "int vs string not" false
    (Vtype.comparable Vtype.int_full Vtype.string_any);
  Alcotest.(check bool) "same enum" true (Vtype.comparable level level)

let test_vtype_enumerate () =
  (match Vtype.enumerate (Vtype.int_range 3 6) with
  | Some vs -> Alcotest.(check int) "4 values" 4 (List.length vs)
  | None -> Alcotest.fail "expected enumeration");
  (match Vtype.enumerate level with
  | Some vs -> Alcotest.(check int) "4 labels" 4 (List.length vs)
  | None -> Alcotest.fail "expected enumeration");
  Alcotest.(check bool) "strings not enumerable" true
    (Vtype.enumerate Vtype.string_any = None)

let test_vtype_errors () =
  (match Vtype.int_range 5 1 with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Errors.Schema_error _ -> ());
  match Vtype.enum "empty" [||] with
  | _ -> Alcotest.fail "expected Schema_error"
  | exception Errors.Schema_error _ -> ()

(* --------------------------------------------------------------- *)
(* Schema *)

let abc =
  Schema.make
    [
      Schema.attr "a" Vtype.int_full;
      Schema.attr "b" Vtype.string_any;
      Schema.attr "c" Vtype.boolean;
    ]
    ~key:[ "a" ]

let test_schema_accessors () =
  Alcotest.(check int) "arity" 3 (Schema.arity abc);
  Alcotest.(check int) "index of b" 1 (Schema.index_of abc "b");
  Alcotest.(check (list string)) "key" [ "a" ] (Schema.key_names abc);
  Alcotest.(check bool) "mem" true (Schema.mem abc "c");
  match Schema.index_of abc "z" with
  | _ -> Alcotest.fail "expected Unknown_attribute"
  | exception Errors.Unknown_attribute _ -> ()

let test_schema_project_rename () =
  let p = Schema.project abc [ "c"; "a" ] in
  Alcotest.(check (list string)) "projection order" [ "c"; "a" ] (Schema.names p);
  let r = Schema.rename abc [ ("a", "x") ] in
  Alcotest.(check (list string)) "renamed" [ "x"; "b"; "c" ] (Schema.names r);
  match Schema.rename abc [ ("a", "b") ] with
  | _ -> Alcotest.fail "expected Schema_error on clash"
  | exception Errors.Schema_error _ -> ()

let test_schema_errors () =
  (match
     Schema.make
       [ Schema.attr "a" Vtype.int_full; Schema.attr "a" Vtype.boolean ]
       ~key:[]
   with
  | _ -> Alcotest.fail "duplicate names accepted"
  | exception Errors.Schema_error _ -> ());
  match Schema.make [ Schema.attr "a" Vtype.int_full ] ~key:[ "z" ] with
  | _ -> Alcotest.fail "bad key accepted"
  | exception Errors.Schema_error _ -> ()

(* --------------------------------------------------------------- *)
(* Tuple *)

let test_tuple_operations () =
  let t = Tuple.of_list [ Value.int 1; Value.str "x"; Value.bool true ] in
  Alcotest.check Helpers.value "by name" (Value.str "x")
    (Tuple.get_by_name abc t "b");
  Alcotest.(check bool) "well typed" true (Tuple.well_typed abc t);
  let bad = Tuple.of_list [ Value.str "no"; Value.str "x"; Value.bool true ] in
  Alcotest.(check bool) "ill typed" false (Tuple.well_typed abc bad);
  Alcotest.check Helpers.tuple "project"
    (Tuple.of_list [ Value.bool true; Value.int 1 ])
    (Tuple.project_names abc [ "c"; "a" ] t);
  Alcotest.(check (list Helpers.value))
    "key values" [ Value.int 1 ] (Tuple.key_of abc t);
  (* lexicographic comparison: shorter first, then pointwise *)
  let t2 = Tuple.of_list [ Value.int 1; Value.str "y"; Value.bool true ] in
  Alcotest.(check bool) "t < t2" true (Tuple.compare t t2 < 0);
  Alcotest.(check bool) "shorter first" true
    (Tuple.compare (Tuple.of_list [ Value.int 9 ]) t < 0)

(* --------------------------------------------------------------- *)
(* Index *)

let test_index_build_and_probe () =
  let db = Fixtures.make () in
  let timetable = Database.find_relation db "timetable" in
  let idx = Index.build timetable ~on:[ "tcnr" ] in
  Alcotest.(check int) "3 entries" 3 (Index.entry_count idx);
  Alcotest.(check int) "2 distinct course numbers" 2 (Index.distinct_keys idx);
  Alcotest.(check int) "course 10 taught by two" 2
    (List.length (Index.lookup1 idx (Value.int 10)));
  Alcotest.(check int) "course 99 by none" 0
    (List.length (Index.lookup1 idx (Value.int 99)));
  (* General-operator probe: tcnr <= 10. *)
  let le10 =
    Index.fold_matching idx Value.Le (Value.int 10) (fun acc _ -> acc + 1) 0
  in
  Alcotest.(check int) "tcnr <= 10" 2 le10;
  let gt10 =
    Index.fold_matching idx Value.Gt (Value.int 10) (fun acc _ -> acc + 1) 0
  in
  Alcotest.(check int) "tcnr > 10" 1 gt10

let test_index_partial () =
  let db = Fixtures.make () in
  let papers = Database.find_relation db "papers" in
  let schema = Relation.schema papers in
  let idx =
    Index.build papers ~on:[ "penr" ] ~filter:(fun t ->
        Value.equal (Tuple.get_by_name schema t "pyear") (Value.int 1977))
  in
  Alcotest.(check int) "only 1977 papers" 2 (Index.entry_count idx)

let test_index_to_relation () =
  let db = Fixtures.make () in
  let timetable = Database.find_relation db "timetable" in
  let idx = Index.build timetable ~on:[ "tcnr" ] in
  let rel = Index.to_relation ~name:"ind_t_cnr" idx (Relation.schema timetable) in
  (* Figure 2's ind_t_cnr: RELATION <tcnr, tref>. *)
  Alcotest.(check (list string)) "schema" [ "tcnr"; "ref" ]
    (Schema.names (Relation.schema rel));
  Alcotest.(check int) "one row per element" 3 (Relation.cardinality rel)

(* --------------------------------------------------------------- *)
(* Value lists *)

let vl_of ints storage =
  let vl = Value_list.create ~storage () in
  List.iter (fun n -> Value_list.add vl (Value.int n)) ints;
  vl

let test_value_list_full () =
  let vl = vl_of [ 5; 3; 9; 3; 5 ] Value_list.Full in
  Alcotest.(check (option int)) "distinct" (Some 3) (Value_list.distinct_count vl);
  Alcotest.(check int) "stored" 3 (Value_list.stored_size vl);
  Alcotest.(check (option Helpers.value)) "min" (Some (Value.int 3))
    (Value_list.min_value vl);
  Alcotest.(check (option Helpers.value)) "max" (Some (Value.int 9))
    (Value_list.max_value vl);
  Alcotest.(check (list Helpers.value))
    "sorted"
    [ Value.int 3; Value.int 5; Value.int 9 ]
    (Value_list.to_sorted_list vl)

(* quant_holds must agree with the brute-force quantifier on every
   operator for Full storage. *)
let test_value_list_quant_exhaustive () =
  let ints = [ 2; 4; 7 ] in
  let vl = vl_of ints Value_list.Full in
  List.iter
    (fun v ->
      List.iter
        (fun op ->
          let brute_some =
            List.exists (fun w -> Value.apply op (Value.int v) (Value.int w)) ints
          in
          let brute_all =
            List.for_all (fun w -> Value.apply op (Value.int v) (Value.int w)) ints
          in
          Alcotest.(check bool)
            (Printf.sprintf "SOME %d %s" v (Value.comparison_to_string op))
            brute_some
            (Value_list.quant_holds ~quant:Value_list.Q_some op (Value.int v) vl);
          Alcotest.(check bool)
            (Printf.sprintf "ALL %d %s" v (Value.comparison_to_string op))
            brute_all
            (Value_list.quant_holds ~quant:Value_list.Q_all op (Value.int v) vl))
        Value.all_comparisons)
    [ 0; 2; 3; 4; 7; 9 ]

let test_value_list_bounds_storage () =
  let vl = vl_of [ 2; 4; 7; 4 ] Value_list.Bounds in
  Alcotest.(check int) "stores two values" 2 (Value_list.stored_size vl);
  (* Order comparisons still decided exactly. *)
  Alcotest.(check bool) "3 < SOME" true
    (Value_list.quant_holds ~quant:Value_list.Q_some Value.Lt (Value.int 3) vl);
  Alcotest.(check bool) "3 < ALL" false
    (Value_list.quant_holds ~quant:Value_list.Q_all Value.Lt (Value.int 3) vl);
  Alcotest.(check bool) "1 < ALL" true
    (Value_list.quant_holds ~quant:Value_list.Q_all Value.Lt (Value.int 1) vl);
  (* Membership is not available. *)
  match Value_list.mem vl (Value.int 4) with
  | _ -> Alcotest.fail "expected Type_error"
  | exception Errors.Type_error _ -> ()

let test_value_list_at_most_one () =
  let single = vl_of [ 6; 6; 6 ] Value_list.At_most_one in
  Alcotest.(check int) "one stored value" 1 (Value_list.stored_size single);
  Alcotest.(check bool) "6 = ALL" true
    (Value_list.quant_holds ~quant:Value_list.Q_all Value.Eq (Value.int 6) single);
  Alcotest.(check bool) "5 = ALL" false
    (Value_list.quant_holds ~quant:Value_list.Q_all Value.Eq (Value.int 5) single);
  Alcotest.(check bool) "6 <> SOME" false
    (Value_list.quant_holds ~quant:Value_list.Q_some Value.Ne (Value.int 6) single);
  let multi = vl_of [ 6; 8 ] Value_list.At_most_one in
  Alcotest.(check int) "still one stored value" 1 (Value_list.stored_size multi);
  Alcotest.(check bool) "two distinct: ALL-= false" false
    (Value_list.quant_holds ~quant:Value_list.Q_all Value.Eq (Value.int 6) multi);
  Alcotest.(check bool) "two distinct: SOME-<> true" true
    (Value_list.quant_holds ~quant:Value_list.Q_some Value.Ne (Value.int 6) multi)

let test_value_list_empty () =
  let vl = vl_of [] Value_list.Full in
  Alcotest.(check bool) "SOME over empty" false
    (Value_list.quant_holds ~quant:Value_list.Q_some Value.Eq (Value.int 1) vl);
  Alcotest.(check bool) "ALL over empty" true
    (Value_list.quant_holds ~quant:Value_list.Q_all Value.Eq (Value.int 1) vl)

(* --------------------------------------------------------------- *)
(* Buffer pool LRU order *)

(* The recency list must evict the least-recently-*accessed* frame, not
   merely some resident frame: a hit moves the frame to the MRU end. *)
let test_pool_lru_eviction_order () =
  let pool = Buffer_pool.create ~capacity:3 in
  let touch page = ignore (Buffer_pool.access pool ~file:1 ~page) in
  touch 0;
  touch 1;
  touch 2;
  Alcotest.(check (list (pair int int)))
    "MRU order after three misses"
    [ (1, 2); (1, 1); (1, 0) ]
    (Buffer_pool.resident_keys_mru pool);
  (* A hit on the oldest page promotes it to MRU... *)
  touch 0;
  Alcotest.(check (list (pair int int)))
    "hit promotes to MRU"
    [ (1, 0); (1, 2); (1, 1) ]
    (Buffer_pool.resident_keys_mru pool);
  (* ...so the next miss evicts page 1, now the true LRU, not page 0. *)
  touch 3;
  Alcotest.(check (list (pair int int)))
    "miss evicts the LRU tail"
    [ (1, 3); (1, 0); (1, 2) ]
    (Buffer_pool.resident_keys_mru pool);
  (* Sequential sweep through a pool-sized window keeps exactly the last
     [capacity] pages, newest first. *)
  for p = 10 to 20 do
    touch p
  done;
  Alcotest.(check (list (pair int int)))
    "sweep leaves the newest window"
    [ (1, 20); (1, 19); (1, 18) ]
    (Buffer_pool.resident_keys_mru pool)

let test_pool_invalidate_unlinks () =
  let pool = Buffer_pool.create ~capacity:4 in
  ignore (Buffer_pool.access pool ~file:1 ~page:0);
  ignore (Buffer_pool.access pool ~file:2 ~page:0);
  ignore (Buffer_pool.access pool ~file:1 ~page:1);
  Buffer_pool.invalidate_file pool ~file:1;
  Alcotest.(check (list (pair int int)))
    "only file 2 remains, list consistent"
    [ (2, 0) ]
    (Buffer_pool.resident_keys_mru pool);
  (* The recency list survived the surgery: more accesses still work. *)
  ignore (Buffer_pool.access pool ~file:3 ~page:0);
  Alcotest.(check int) "resident count" 2 (Buffer_pool.resident_count pool)

let suite =
  [
    ( "substrate",
      [
        Alcotest.test_case "vtype membership" `Quick test_vtype_membership;
        Alcotest.test_case "vtype comparability" `Quick
          test_vtype_comparability;
        Alcotest.test_case "vtype enumerate" `Quick test_vtype_enumerate;
        Alcotest.test_case "vtype errors" `Quick test_vtype_errors;
        Alcotest.test_case "schema accessors" `Quick test_schema_accessors;
        Alcotest.test_case "schema project/rename" `Quick
          test_schema_project_rename;
        Alcotest.test_case "schema errors" `Quick test_schema_errors;
        Alcotest.test_case "tuple operations" `Quick test_tuple_operations;
        Alcotest.test_case "index build/probe" `Quick test_index_build_and_probe;
        Alcotest.test_case "partial index" `Quick test_index_partial;
        Alcotest.test_case "index as Figure-2 relation" `Quick
          test_index_to_relation;
        Alcotest.test_case "value list (full)" `Quick test_value_list_full;
        Alcotest.test_case "value list quantifiers vs brute force" `Quick
          test_value_list_quant_exhaustive;
        Alcotest.test_case "value list bounds storage" `Quick
          test_value_list_bounds_storage;
        Alcotest.test_case "value list at-most-one storage" `Quick
          test_value_list_at_most_one;
        Alcotest.test_case "value list empty" `Quick test_value_list_empty;
        Alcotest.test_case "buffer pool LRU eviction order" `Quick
          test_pool_lru_eviction_order;
        Alcotest.test_case "buffer pool invalidate keeps list consistent"
          `Quick test_pool_invalidate_unlinks;
      ] );
  ]
