open Pascalr
open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q
let exec_q_report ?opts db q = Session.exec_report ?opts (Session.create db) q


let queries db =
  [
    ("running (Ex 2.1)", Workload.Queries.running_query db);
    ("example 4.5", Workload.Queries.example_4_5 db);
    ("example 4.7", Workload.Queries.example_4_7 db);
    ("example 3.2", Workload.Queries.example_3_2 db);
    ("existential", Workload.Queries.existential_query db);
    ("universal", Workload.Queries.universal_query db);
    ("minmax some", Workload.Queries.minmax_some_query db);
    ("minmax all", Workload.Queries.minmax_all_query db);
    ("all eq", Workload.Queries.all_eq_query db);
    ("some ne", Workload.Queries.some_ne_query db);
  ]

let supplier_queries db =
  [
    ("ships all parts", Workload.Suppliers.ships_all_parts db);
    ("ships all red parts", Workload.Suppliers.ships_all_red_parts db);
    ("london some red", Workload.Suppliers.london_ships_some_red db);
    ("ships no red part", Workload.Suppliers.ships_no_red_part db);
  ]

(* Every strategy preset must agree with the naive evaluator on every
   query, on a generated university database. *)
let test_all_strategies_agree () =
  let db = Workload.University.generate Workload.University.small_params in
  List.iter
    (fun (qname, q) ->
      let expected = Naive_eval.run db q in
      List.iter
        (fun (sname, strategy) ->
          let actual = exec_q ~opts:(Exec_opts.make ~strategy ()) db q in
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" qname sname)
            true
            (Relation.equal_set expected actual))
        Strategy.all_presets)
    (queries db)

let test_all_strategies_agree_suppliers () =
  let db = Workload.Suppliers.generate Workload.Suppliers.default_params in
  List.iter
    (fun (qname, q) ->
      let expected = Naive_eval.run db q in
      List.iter
        (fun (sname, strategy) ->
          let actual = exec_q ~opts:(Exec_opts.make ~strategy ()) db q in
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" qname sname)
            true
            (Relation.equal_set expected actual))
        Strategy.all_presets)
    (supplier_queries db)

let test_exact_answer_fixture () =
  let db = Fixtures.make () in
  List.iter
    (fun (sname, strategy) ->
      let r = exec_q ~opts:(Exec_opts.make ~strategy ()) db (Workload.Queries.running_query db) in
      Alcotest.(check (list string))
        ("fixture answer / " ^ sname)
        Fixtures.running_query_answer (Helpers.strings r))
    Strategy.all_presets

(* Example 2.2's empty-papers case must be handled by every strategy. *)
let test_empty_papers_all_strategies () =
  let db = Fixtures.make () in
  Relation.clear (Database.find_relation db "papers");
  List.iter
    (fun (sname, strategy) ->
      let r = exec_q ~opts:(Exec_opts.make ~strategy ()) db (Workload.Queries.running_query db) in
      Alcotest.(check (list string))
        ("empty papers / " ^ sname)
        Fixtures.running_query_answer_empty_papers (Helpers.strings r))
    Strategy.all_presets

(* Emptying each relation in turn must keep all strategies equivalent to
   the naive evaluator. *)
let test_each_relation_empty () =
  List.iter
    (fun victim ->
      let db =
        Workload.University.generate_with_empty
          { Workload.University.small_params with seed = 11 }
          victim
      in
      List.iter
        (fun (qname, q) ->
          let expected = Naive_eval.run db q in
          List.iter
            (fun (sname, strategy) ->
              let actual = exec_q ~opts:(Exec_opts.make ~strategy ()) db q in
              Alcotest.(check bool)
                (Printf.sprintf "%s empty / %s / %s" victim qname sname)
                true
                (Relation.equal_set expected actual))
            Strategy.all_presets)
        (queries db))
    [ "employees"; "papers"; "courses"; "timetable" ]

(* Strategy 1 reads each database relation no more than once for the
   purely existential query (no per-element probing of base relations).
   The paper's claim: "each range relation is read no more than once". *)
let test_s1_scan_counts () =
  let db = Workload.University.generate Workload.University.small_params in
  let q = Workload.Queries.existential_query db in
  let report = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s12 ()) db q in
  List.iter
    (fun rel_name ->
      let rel = Database.find_relation db rel_name in
      Alcotest.(check bool)
        (rel_name ^ " scanned at most once")
        true
        (Relation.scan_count rel <= 1))
    [ "employees"; "courses"; "timetable" ];
  ignore report

(* Without strategy 1 the same query performs strictly more scans. *)
let test_s1_reduces_scans () =
  let db = Workload.University.generate Workload.University.small_params in
  let q = Workload.Queries.running_query db in
  let r_palermo = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.palermo ()) db q in
  let r_s1 = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s1 ()) db q in
  Alcotest.(check bool)
    (Printf.sprintf "S1 scans (%d) < palermo scans (%d)" r_s1.Exec_result.scans
       r_palermo.Exec_result.scans)
    true
    (r_s1.Exec_result.scans < r_palermo.Exec_result.scans)

(* Strategy 4 on Example 4.7's input empties the quantifier prefix: all
   three quantified variables are evaluated in the collection phase. *)
let test_s4_empties_prefix () =
  let db = Fixtures.make () in
  let q = Workload.Queries.example_4_7 db in
  let plan = Session.plan_only ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q in
  Alcotest.(check int)
    "prefix emptied by pushing" 0
    (List.length plan.Plan.prefix)

(* Strategy 3 on the running query reduces the matrix from three
   conjunctions to two (Example 4.5: "There is one conjunction less to
   be evaluated"). *)
let test_s3_conjunction_count () =
  let db = Fixtures.make () in
  let q = Workload.Queries.running_query db in
  let sf = Standard_form.compile db q in
  Alcotest.(check int) "before: 3" 3 (List.length sf.Standard_form.matrix);
  let sf3 = Range_ext.apply db sf in
  Alcotest.(check int) "after: 2" 2 (List.length sf3.Standard_form.matrix);
  (* e's range must now be restricted by the professor test. *)
  let e_range = List.assoc "e" sf3.Standard_form.free in
  Alcotest.(check bool) "e range extended" true
    (Option.is_some e_range.Calculus.restriction);
  (* p's range must be restricted (to pyear = 1977). *)
  match
    List.find_opt
      (fun e -> String.equal e.Normalize.v "p")
      sf3.Standard_form.prefix
  with
  | None -> Alcotest.fail "p missing from prefix"
  | Some e ->
    Alcotest.(check bool) "p range extended" true
      (Option.is_some e.Normalize.range.Calculus.restriction)

(* The combination phase's intermediate growth shrinks monotonically as
   strategies are enabled on the running query. *)
let test_intermediate_shrinkage () =
  let db = Workload.University.generate Workload.University.small_params in
  let q = Workload.Queries.running_query db in
  let m strategy = (exec_q_report ~opts:(Exec_opts.make ~strategy ()) db q).Exec_result.max_ntuple in
  let palermo = m Strategy.palermo in
  let s123 = m Strategy.s123 in
  Alcotest.(check bool)
    (Printf.sprintf "S1-3 max n-tuple (%d) <= palermo (%d)" s123 palermo)
    true (s123 <= palermo)

let suite =
  [
    ( "phased_eval",
      [
        Alcotest.test_case "all strategies match naive (university)" `Quick
          test_all_strategies_agree;
        Alcotest.test_case "all strategies match naive (suppliers)" `Quick
          test_all_strategies_agree_suppliers;
        Alcotest.test_case "exact fixture answer" `Quick
          test_exact_answer_fixture;
        Alcotest.test_case "Example 2.2 empty papers" `Quick
          test_empty_papers_all_strategies;
        Alcotest.test_case "each relation emptied" `Slow
          test_each_relation_empty;
        Alcotest.test_case "S1 single scan per relation" `Quick
          test_s1_scan_counts;
        Alcotest.test_case "S1 reduces scan count" `Quick test_s1_reduces_scans;
        Alcotest.test_case "S4 empties the prefix (Ex 4.7)" `Quick
          test_s4_empties_prefix;
        Alcotest.test_case "S3 drops a conjunction (Ex 4.5)" `Quick
          test_s3_conjunction_count;
        Alcotest.test_case "intermediates shrink with strategies" `Quick
          test_intermediate_shrinkage;
      ] );
  ]
