(* Differential fault testing: the same discipline test_properties.ml
   applies to query semantics (every strategy must equal Naive_eval),
   applied to durability.  Random query workloads run under randomly
   armed failpoints; every outcome must be one of

     - the exact fault-free answer (the fault never fired, or the
       storage layer recovered by invalidate-and-rebuild), or
     - a typed error (Errors.Io_error / Errors.Corruption), with the
       on-disk snapshot byte-identical to the last committed state.

   Silent wrong answers and untyped crashes are the two failure modes
   this suite exists to rule out.

   The CI fault-matrix job reruns the randomized properties under
   several seeds via the PASCALR_FAULT_SEED environment variable (an
   offset mixed into every generated seed; logged below for
   reproduction). *)

open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q =
  Pascalr.Session.exec ?opts (Pascalr.Session.create db) q


let seed_offset =
  match Sys.getenv_opt "PASCALR_FAULT_SEED" with
  | Some s -> (try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let () =
  if seed_offset <> 0 then
    Printf.printf "test_faults: PASCALR_FAULT_SEED offset %d\n%!" seed_offset

let with_failpoints f =
  Fun.protect ~finally:Failpoint.disarm_all (fun () ->
      Failpoint.disarm_all ();
      f ())

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let temp_snapshot () = Filename.temp_file "pascalr_fault" ".pascalrdb"

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp")

(* --------------------------------------------------------------- *)
(* Trigger semantics *)

let test_trigger_nth () =
  with_failpoints (fun () ->
      Failpoint.arm "t.site" (Failpoint.Nth 3);
      let fires = List.init 6 (fun _ -> Failpoint.should_fire "t.site") in
      Alcotest.(check (list bool))
        "fires exactly on the 3rd hit"
        [ false; false; true; false; false; false ]
        fires;
      Alcotest.(check int) "6 hits counted" 6 (Failpoint.hit_count "t.site");
      Alcotest.(check int) "1 fire counted" 1 (Failpoint.fire_count "t.site"))

let test_trigger_every () =
  with_failpoints (fun () ->
      Failpoint.arm "t.site" (Failpoint.Every 2);
      let fires = List.init 6 (fun _ -> Failpoint.should_fire "t.site") in
      Alcotest.(check (list bool))
        "fires on every 2nd hit"
        [ false; true; false; true; false; true ]
        fires)

let test_trigger_seeded_deterministic () =
  with_failpoints (fun () ->
      let pattern seed =
        Failpoint.arm "t.site" (Failpoint.Seeded { seed; prob = 0.3 });
        List.init 64 (fun _ -> Failpoint.should_fire "t.site")
      in
      let a = pattern 42 and b = pattern 42 and c = pattern 43 in
      Alcotest.(check (list bool)) "same seed, same schedule" a b;
      Alcotest.(check bool) "some hit fires at p=0.3 over 64 hits" true
        (List.exists Fun.id a);
      Alcotest.(check bool) "different seed, different schedule" true (a <> c))

let test_trigger_specs () =
  Alcotest.(check bool) "nth" true (Failpoint.trigger_of_string "nth:4" = Failpoint.Nth 4);
  Alcotest.(check bool) "every" true
    (Failpoint.trigger_of_string "every:7" = Failpoint.Every 7);
  Alcotest.(check bool) "prob with seed" true
    (Failpoint.trigger_of_string "prob:0.25:9"
    = Failpoint.Seeded { seed = 9; prob = 0.25 });
  List.iter
    (fun bad ->
      match Failpoint.trigger_of_string bad with
      | _ -> Alcotest.failf "accepted %S" bad
      | exception Invalid_argument _ -> ())
    [ "nth:0"; "every:-1"; "prob:1.5"; "sometimes"; "nth:x"; "" ];
  (* round trips *)
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Failpoint.trigger_to_string t)
        true
        (Failpoint.trigger_of_string (Failpoint.trigger_to_string t) = t))
    [ Failpoint.Nth 1; Failpoint.Every 5; Failpoint.Seeded { seed = 3; prob = 0.5 } ]

let test_unarmed_is_free () =
  with_failpoints (fun () ->
      Alcotest.(check bool) "nothing armed" false (Failpoint.any_armed ());
      Alcotest.(check bool) "unarmed site never fires" false
        (Failpoint.should_fire "heap.read.short");
      Alcotest.(check int) "no hits counted when unarmed" 0
        (Failpoint.hit_count "heap.read.short"))

(* --------------------------------------------------------------- *)
(* Per-site faults and recovery *)

let status =
  { Value.enum_name = "statustype"; labels = [| "student"; "professor" |] }

let schema =
  Schema.make
    [
      Schema.attr "id" Vtype.int_full;
      Schema.attr "name" Vtype.string_any;
      Schema.attr "st" (Vtype.TEnum status);
    ]
    ~key:[ "id" ]

let sample_tuple n =
  Tuple.of_list
    [
      Value.int n;
      Value.str (Printf.sprintf "name-%d" n);
      Value.enum_ordinal status (n land 1);
    ]

let paged_relation n =
  let r = Relation.create ~name:"r" schema in
  for i = 1 to n do
    Relation.insert r (sample_tuple i)
  done;
  let pool = Buffer_pool.create ~capacity:4 in
  Relation.attach_storage r ~pool;
  (r, pool)

let scan_count r =
  let n = ref 0 in
  Relation.scan (fun _ -> incr n) r;
  !n

let test_torn_write_recovery () =
  with_failpoints (fun () ->
      let r, _pool = paged_relation 50 in
      Failpoint.arm "heap.write.partial" (Failpoint.Nth 1);
      (* The insert fails typed, but the key table holds the tuple and
         the backing is marked dirty. *)
      (match Relation.insert r (sample_tuple 51) with
      | () -> Alcotest.fail "expected Io_error from torn write"
      | exception Errors.Io_error _ -> ());
      Failpoint.disarm "heap.write.partial";
      (* The next scan rebuilds the damaged file and sees all 51. *)
      Alcotest.(check int) "scan after torn write" 51 (scan_count r);
      Alcotest.(check bool) "tuple survived via key table" true
        (Relation.mem_tuple r (sample_tuple 51)))

let test_short_read_recovery () =
  with_failpoints (fun () ->
      let r, _pool = paged_relation 60 in
      let expected = Relation.to_list r in
      Failpoint.arm "heap.read.short" (Failpoint.Nth 1);
      (* Fires once mid-scan; the buffered scan rebuilds and retries. *)
      let seen = ref [] in
      Relation.scan (fun t -> seen := t :: !seen) r;
      Alcotest.(check int) "all tuples delivered exactly once"
        (List.length expected) (List.length !seen);
      Alcotest.(check bool) "recovery rebuild counted" true
        (Failpoint.fire_count "heap.read.short" = 1))

let test_short_read_persistent_fails_typed () =
  with_failpoints (fun () ->
      let r, _pool = paged_relation 60 in
      Failpoint.arm "heap.read.short" (Failpoint.Every 1);
      match scan_count r with
      | _ -> Alcotest.fail "expected Corruption to surface"
      | exception Errors.Corruption _ -> ())

let test_codec_corrupt_recovery () =
  with_failpoints (fun () ->
      let r, _pool = paged_relation 40 in
      Failpoint.arm "codec.decode.corrupt" (Failpoint.Nth 5);
      Alcotest.(check int) "recovered scan sees all tuples" 40 (scan_count r);
      Failpoint.disarm "codec.decode.corrupt";
      Failpoint.arm "codec.decode.corrupt" (Failpoint.Every 1);
      match scan_count r with
      | _ -> Alcotest.fail "expected Corruption"
      | exception Errors.Corruption _ -> ())

let test_evict_io_fails_typed () =
  with_failpoints (fun () ->
      let pool = Buffer_pool.create ~capacity:2 in
      ignore (Buffer_pool.access pool ~file:1 ~page:0);
      ignore (Buffer_pool.access pool ~file:1 ~page:1);
      Failpoint.arm "pool.evict.io" (Failpoint.Nth 1);
      (match Buffer_pool.access pool ~file:1 ~page:2 with
      | _ -> Alcotest.fail "expected Io_error from eviction"
      | exception Errors.Io_error _ -> ());
      (* The failed eviction left the pool consistent: the victim stays
         resident, the new page was never admitted. *)
      Alcotest.(check int) "resident unchanged" 2 (Buffer_pool.resident_count pool);
      Failpoint.disarm "pool.evict.io";
      Alcotest.(check bool) "pool usable again" false
        (Buffer_pool.access pool ~file:1 ~page:2))

let test_checksum_detects_out_of_band_damage () =
  (* Damage a page behind the storage layer's back: a torn write whose
     checksum was never refreshed.  The validated read must refuse the
     page with a typed Corruption even with no failpoint armed at read
     time... but streaming mode only validates; recovery needs the
     framework active, so check the typed error surfaces. *)
  with_failpoints (fun () ->
      let hf = Heap_file.create () in
      let pool = Buffer_pool.create ~capacity:4 in
      Heap_file.append hf (Codec.encode_tuple schema (sample_tuple 1));
      Failpoint.arm "heap.write.partial" (Failpoint.Nth 1);
      (match Heap_file.append hf (Codec.encode_tuple schema (sample_tuple 2)) with
      | () -> Alcotest.fail "expected torn write"
      | exception Errors.Io_error _ -> ());
      Failpoint.disarm "heap.write.partial";
      match Heap_file.iter ~pool hf (fun _ -> ()) with
      | () -> Alcotest.fail "expected checksum mismatch"
      | exception Errors.Corruption _ -> ())

(* --------------------------------------------------------------- *)
(* Atomic save *)

let db_equal a b =
  Database.relation_names a = Database.relation_names b
  && List.for_all
       (fun n ->
         Relation.equal_set (Database.find_relation a n)
           (Database.find_relation b n))
       (Database.relation_names a)
  && List.map (fun i -> i.Value.enum_name) (Database.enums a)
     = List.map (fun i -> i.Value.enum_name) (Database.enums b)
  && Database.permanent_index_list a = Database.permanent_index_list b

let test_save_load_roundtrip () =
  with_failpoints (fun () ->
      let db = Workload.Random_query.tiny_db 7 in
      ignore (Database.register_index db "papers" ~on:"penr");
      let path = temp_snapshot () in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          Database.save db ~path;
          let db2 = Database.load ~path in
          Alcotest.(check bool) "load equals save" true (db_equal db db2);
          (* Determinism: an equal database snapshots to identical bytes. *)
          let path2 = temp_snapshot () in
          Fun.protect
            ~finally:(fun () -> cleanup path2)
            (fun () ->
              Database.save db2 ~path:path2;
              Alcotest.(check bool) "byte-identical resave" true
                (String.equal (read_file path) (read_file path2)))))

let test_save_crash_is_atomic () =
  with_failpoints (fun () ->
      let db = Workload.Random_query.tiny_db 11 in
      let path = temp_snapshot () in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          Database.save db ~path;
          let committed = read_file path in
          (* Change the database, then crash the save at both crash
             points in turn; the committed bytes must survive. *)
          Relation.clear (Database.find_relation db "papers");
          List.iter
            (fun nth ->
              Failpoint.arm "db.save.crash" (Failpoint.Nth nth);
              (match Database.save db ~path with
              | () -> Alcotest.fail "expected crash during save"
              | exception Errors.Io_error _ -> ());
              Failpoint.disarm "db.save.crash";
              Alcotest.(check bool)
                (Printf.sprintf "crash point %d left committed bytes" nth)
                true
                (String.equal committed (read_file path)))
            [ 1; 2 ];
          (* With the fault gone, the save lands and is loadable. *)
          Database.save db ~path;
          Alcotest.(check bool) "post-crash save differs from committed" true
            (not (String.equal committed (read_file path)));
          Alcotest.(check bool) "post-crash save loads equal" true
            (db_equal db (Database.load ~path))))

let test_load_rejects_damage () =
  with_failpoints (fun () ->
      let db = Workload.Random_query.tiny_db 13 in
      let path = temp_snapshot () in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          Database.save db ~path;
          let bytes = Bytes.of_string (read_file path) in
          let expect_corruption label data =
            let oc = open_out_bin path in
            output_bytes oc data;
            close_out oc;
            match Database.load ~path with
            | _ -> Alcotest.failf "%s: expected Corruption" label
            | exception Errors.Corruption _ -> ()
          in
          (* Flip one payload byte: checksum mismatch. *)
          let flipped = Bytes.copy bytes in
          let mid = Bytes.length flipped / 2 in
          Bytes.set flipped mid
            (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
          expect_corruption "bit flip" flipped;
          (* Truncate: short file. *)
          expect_corruption "truncation"
            (Bytes.sub bytes 0 (Bytes.length bytes / 2));
          (* Garbage magic. *)
          expect_corruption "bad magic" (Bytes.of_string "NOTADATABASE")))

(* --------------------------------------------------------------- *)
(* The differential property: random workload x random failpoint *)

let sites_and_triggers rng =
  let site = Workload.Prng.pick rng Failpoint.standard_sites in
  let trigger =
    match Workload.Prng.int rng 3 with
    | 0 -> Failpoint.Nth (1 + Workload.Prng.int rng 5)
    | 1 -> Failpoint.Every (1 + Workload.Prng.int rng 4)
    | _ ->
      Failpoint.Seeded
        {
          seed = Workload.Prng.int rng 10_000;
          prob = 0.05 +. (0.4 *. float_of_int (Workload.Prng.int rng 10) /. 10.0);
        }
  in
  let extra =
    if Workload.Prng.flip rng 0.3 then
      [ (Workload.Prng.pick rng Failpoint.standard_sites, Failpoint.Every 3) ]
    else []
  in
  (site, trigger) :: extra

(* [jobs = 4] runs the same property through the domain pool (with
   par_threshold 0 so even the tiny databases partition): a fault that
   fires while a worker holds a task must still surface at the join as
   the typed error the serial engine reports — never as a Domain
   teardown crash — and never as a silently different answer. *)
let fault_differential ?(jobs = 1) seed0 =
  let opts_of strategy =
    if jobs <= 1 then Pascalr.Exec_opts.make ~strategy ()
    else Pascalr.Exec_opts.make ~strategy ~jobs ~par_threshold:0 ()
  in
  let seed = seed0 + (seed_offset * 1_000_003) in
  with_failpoints (fun () ->
      let rng = Workload.Prng.create (seed * 131) in
      let db = Workload.Random_query.tiny_db ((seed * 48611) + 5) in
      ignore (Database.attach_storage db ~pool_pages:(2 + Workload.Prng.int rng 6));
      (* Half the runs declare secondary indexes, so the armed
         index.save.crash / index.load.corrupt sites fire against real
         catalog state — and the indexed access paths run under the
         same heap/pool faults as the scans. *)
      if Workload.Prng.flip rng 0.5 then
        List.iter
          (fun rel ->
            match Workload.Random_query.rel_attrs rel with
            | (a, _) :: _ ->
              ignore
                (Database.declare_index ~kind:Secondary_index.Sorted db rel
                   ~on:[ a ]
                  : Secondary_index.t)
            | [] -> ())
          Workload.Random_query.relations;
      let q = Workload.Random_query.generate db (seed + 17) in
      let sname, strategy =
        Workload.Prng.pick rng Pascalr.Strategy.all_presets
      in
      (* Fault-free reference answer, and the committed snapshot. *)
      let expected = exec_q ~opts:(opts_of strategy) db q in
      let naive = Pascalr.Naive_eval.run db q in
      if not (Relation.equal_set expected naive) then
        QCheck.Test.fail_reportf "strategy %s wrong without faults, seed %d"
          sname seed;
      let path = temp_snapshot () in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          Database.save db ~path;
          let committed = read_file path in
          let armed = sites_and_triggers rng in
          List.iter (fun (site, trig) -> Failpoint.arm site trig) armed;
          let describe () =
            String.concat ", "
              (List.map
                 (fun (s, t) -> s ^ "=" ^ Failpoint.trigger_to_string t)
                 (Failpoint.armed_sites ()))
          in
          (* Run the workload under faults: the query, then a save
             attempt.  Every outcome must be fault-free-equal or a
             typed error. *)
          (match exec_q ~opts:(opts_of strategy) db q with
          | actual ->
            if not (Relation.equal_set expected actual) then
              QCheck.Test.fail_reportf
                "silent wrong answer under faults [%s], strategy %s, seed %d"
                (describe ()) sname seed
          | exception (Errors.Io_error _ | Errors.Corruption _) -> ()
          | exception e ->
            QCheck.Test.fail_reportf
              "untyped failure %s under faults [%s], seed %d"
              (Printexc.to_string e) (describe ()) seed);
          let saved_ok =
            match Database.save db ~path with
            | () -> true
            | exception (Errors.Io_error _ | Errors.Corruption _) -> false
            | exception e ->
              QCheck.Test.fail_reportf
                "untyped save failure %s under faults [%s], seed %d"
                (Printexc.to_string e) (describe ()) seed
          in
          Failpoint.disarm_all ();
          let on_disk = read_file path in
          if saved_ok then begin
            (* A completed save must be a valid, loadable snapshot of
               the current database. *)
            match Database.load ~path with
            | db2 ->
              if not (db_equal db db2) then
                QCheck.Test.fail_reportf
                  "committed snapshot diverges from database, seed %d" seed;
              (* Persisted (or damage-rebuilt) secondary indexes must
                 describe exactly the loaded heaps. *)
              List.iter
                (fun (rel_name, on, _) ->
                  let rel = Database.find_relation db2 rel_name in
                  List.iter
                    (fun ix ->
                      if not (Secondary_index.consistent_with ix rel) then
                        QCheck.Test.fail_reportf
                          "loaded index %s(%s) inconsistent with its heap, \
                           seed %d"
                          rel_name (String.concat "," on) seed)
                    (Database.secondary_indexes db2 rel_name))
                (Database.secondary_index_list db2)
            | exception e ->
              QCheck.Test.fail_reportf
                "completed save unreadable (%s), seed %d"
                (Printexc.to_string e) seed
          end
          else if not (String.equal committed on_disk) then
            QCheck.Test.fail_reportf
              "failed save mutated the committed snapshot [%s], seed %d"
              (describe ()) seed;
          true))

let test_fault_differential =
  QCheck.Test.make
    ~name:
      "differential: random (workload, failpoint) pairs are fault-free-equal \
       or typed + committed-intact"
    ~count:220
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fault_differential ?jobs:None)

let test_fault_differential_parallel =
  QCheck.Test.make
    ~name:
      "differential under jobs=4: faults stay typed at the pool join, \
       committed snapshot intact"
    ~count:60
    QCheck.(make Gen.(int_range 0 1_000_000))
    (fault_differential ~jobs:4)

(* --------------------------------------------------------------- *)
(* WAL crash differential: replay recovers exactly the committed
   transactions *)

let wlog_schema =
  Schema.make
    [ Schema.attr "wid" Vtype.int_full; Schema.attr "wval" Vtype.int_full ]
    ~key:[ "wid" ]

let wlog_tuple k v = Tuple.of_list [ Value.int k; Value.int v ]

let cleanup_durable path =
  cleanup path;
  let wal = path ^ ".wal" in
  if Sys.file_exists wal then Sys.remove wal

(* Random committed transactions against a durable database, with a WAL
   or snapshot failpoint armed partway through the sequence.  Every
   commit either returns — and is recorded in a model of the committed
   state — or raises a typed error and must leave no durable trace.
   Reopening the path replays the log; the recovered database must match
   the model exactly, compared byte-for-byte through the canonical
   (key-sorted) snapshot encoding. *)
let wal_crash_differential seed0 =
  let seed = seed0 + (seed_offset * 1_000_003) in
  with_failpoints (fun () ->
      let rng = Workload.Prng.create ((seed * 977) + 1) in
      let base_seed = (seed * 31397) + 3 in
      let db = Workload.Random_query.tiny_db base_seed in
      ignore (Database.declare_relation db ~name:"wlog" wlog_schema);
      let path = temp_snapshot () in
      Fun.protect
        ~finally:(fun () -> cleanup_durable path)
        (fun () ->
          Database.attach_wal db ~path;
          (* The committed state of wlog, maintained only on commit
             success; failed commits must be invisible after recovery. *)
          let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
          let next = ref 0 in
          let txns = 5 + Workload.Prng.int rng 8 in
          let crash_at = Workload.Prng.int rng txns in
          let site =
            Workload.Prng.pick rng
              [
                "wal.append.crash";
                "wal.fsync.crash";
                "wal.checkpoint.crash";
                "db.save.crash";
              ]
          in
          for i = 0 to txns - 1 do
            if i = crash_at then
              Failpoint.arm site (Failpoint.Nth (1 + Workload.Prng.int rng 2));
            let inserts =
              List.init
                (1 + Workload.Prng.int rng 3)
                (fun _ ->
                  let k = !next in
                  incr next;
                  (k, Workload.Prng.int rng 1000))
            in
            let live = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
            let deletes =
              if live <> [] && Workload.Prng.flip rng 0.3 then
                [ Workload.Prng.pick rng live ]
              else []
            in
            (match
               Database.with_write db (fun txn ->
                   List.iter
                     (fun (k, v) ->
                       Database.Txn.insert txn "wlog" (wlog_tuple k v))
                     inserts;
                   List.iter
                     (fun k -> Database.Txn.delete_key txn "wlog" [ Value.int k ])
                     deletes)
             with
            | () ->
              List.iter (fun (k, v) -> Hashtbl.replace model k v) inserts;
              List.iter (fun k -> Hashtbl.remove model k) deletes
            | exception (Errors.Io_error _ | Errors.Corruption _) -> ()
            | exception e ->
              QCheck.Test.fail_reportf
                "untyped commit failure %s under %s, seed %d"
                (Printexc.to_string e) site seed);
            (* Occasional checkpoints give wal.checkpoint.crash and
               db.save.crash something to fire at; a failed checkpoint
               must not lose committed state either. *)
            if Workload.Prng.flip rng 0.3 then (
              match Database.checkpoint db with
              | () -> ()
              | exception (Errors.Io_error _ | Errors.Corruption _) -> ()
              | exception e ->
                QCheck.Test.fail_reportf
                  "untyped checkpoint failure %s under %s, seed %d"
                  (Printexc.to_string e) site seed)
          done;
          Failpoint.disarm_all ();
          (* "kill -9": abandon the open handle and recover from disk. *)
          let recovered = Database.open_durable ~path in
          let reference = Workload.Random_query.tiny_db base_seed in
          let wl =
            Database.declare_relation reference ~name:"wlog" wlog_schema
          in
          Hashtbl.iter (fun k v -> Relation.insert wl (wlog_tuple k v)) model;
          if not (db_equal recovered reference) then
            QCheck.Test.fail_reportf
              "recovered state diverges from committed model under %s, seed %d"
              site seed;
          if
            not
              (Bytes.equal
                 (Database.snapshot_bytes recovered)
                 (Database.snapshot_bytes reference))
          then
            QCheck.Test.fail_reportf
              "recovered snapshot not byte-identical to committed model under \
               %s, seed %d"
              site seed;
          Database.close recovered;
          true))

let test_wal_crash_differential =
  QCheck.Test.make
    ~name:
      "WAL differential: crash + replay recovers exactly the committed \
       transactions, byte-identically"
    ~count:120
    QCheck.(make Gen.(int_range 0 1_000_000))
    wal_crash_differential

(* --------------------------------------------------------------- *)
(* Snapshot isolation: concurrent readers only ever see committed
   epoch vectors *)

(* A writer commits pairs of rows atomically (wids 2i and 2i+1 in one
   transaction) while reader domains repeatedly pin snapshots.  Every
   snapshot must hold a committed prefix: even cardinality c with
   exactly the wids 0..c-1 present — an odd count or a torn prefix
   would mean a reader observed a transaction mid-install. *)
let snapshot_readers_see_committed_prefixes seed0 =
  let db = Database.create () in
  ignore (Database.declare_relation db ~name:"pairs" wlog_schema);
  let writes = 40 + (seed0 mod 20) in
  let stop = Atomic.make false in
  let reader () =
    let bad = ref None in
    while not (Atomic.get stop) do
      Database.with_read db (fun txn ->
          let v = Database.Txn.view txn in
          let r = Database.find_relation v "pairs" in
          let c = Relation.cardinality r in
          if c land 1 = 1 then bad := Some (Printf.sprintf "odd count %d" c)
          else if
            c > 0 && Relation.find_key r [ Value.int (c - 1) ] = None
          then bad := Some (Printf.sprintf "count %d but wid %d absent" c (c - 1))
          else if Relation.find_key r [ Value.int c ] <> None then
            bad := Some (Printf.sprintf "count %d but wid %d present" c c))
    done;
    !bad
  in
  let readers = List.init 3 (fun _ -> Domain.spawn reader) in
  for i = 0 to writes - 1 do
    Database.with_write db (fun txn ->
        Database.Txn.insert txn "pairs" (wlog_tuple (2 * i) i);
        Database.Txn.insert txn "pairs" (wlog_tuple ((2 * i) + 1) i))
  done;
  Atomic.set stop true;
  let bads = List.filter_map Domain.join readers in
  (match bads with
  | [] -> ()
  | msg :: _ ->
    QCheck.Test.fail_reportf "reader saw an uncommitted state: %s, seed %d" msg
      seed0);
  true

let test_snapshot_readers =
  QCheck.Test.make
    ~name:
      "snapshot isolation: concurrent readers observe exactly committed \
       epoch vectors (atomic pair commits)"
    ~count:15
    QCheck.(make Gen.(int_range 0 1_000_000))
    snapshot_readers_see_committed_prefixes

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "trigger nth" `Quick test_trigger_nth;
        Alcotest.test_case "trigger every" `Quick test_trigger_every;
        Alcotest.test_case "trigger seeded deterministic" `Quick
          test_trigger_seeded_deterministic;
        Alcotest.test_case "trigger spec parsing" `Quick test_trigger_specs;
        Alcotest.test_case "unarmed sites are free" `Quick test_unarmed_is_free;
        Alcotest.test_case "torn write: typed error + rebuild" `Quick
          test_torn_write_recovery;
        Alcotest.test_case "short read: invalidate-and-rebuild recovery" `Quick
          test_short_read_recovery;
        Alcotest.test_case "persistent short read fails typed" `Quick
          test_short_read_persistent_fails_typed;
        Alcotest.test_case "codec corruption: recovery then typed" `Quick
          test_codec_corrupt_recovery;
        Alcotest.test_case "eviction I/O failure is typed + consistent" `Quick
          test_evict_io_fails_typed;
        Alcotest.test_case "checksum catches out-of-band damage" `Quick
          test_checksum_detects_out_of_band_damage;
        Alcotest.test_case "snapshot save/load round trip" `Quick
          test_save_load_roundtrip;
        Alcotest.test_case "save crash is atomic at both crash points" `Quick
          test_save_crash_is_atomic;
        Alcotest.test_case "load rejects damaged snapshots" `Quick
          test_load_rejects_damage;
        QCheck_alcotest.to_alcotest test_fault_differential;
        QCheck_alcotest.to_alcotest test_fault_differential_parallel;
        QCheck_alcotest.to_alcotest test_wal_crash_differential;
        QCheck_alcotest.to_alcotest test_snapshot_readers;
      ] );
  ]
