(* Persistent secondary indexes: build/probe/range semantics,
   incremental maintenance through relation mutations, MVCC
   copy-on-write independence, snapshot persistence with checksummed
   pages (and the index.* failpoints), the access path the collection
   phase reports per structure, the join algorithm the combination
   phase picks per step — and the QCheck differential proving that
   index-driven adaptive plans return exactly the tuples of the forced
   heap-scan nested-loop oracle across presets, jobs and batch sizes. *)

open Pascalr
open Relalg

let exec_q ?opts db q = Session.exec ?opts (Session.create db) q
let report ?opts db q = Session.exec_report ?opts (Session.create db) q

let mk_db () = Workload.Suppliers.generate Workload.Suppliers.default_params

let shipments_of db = Database.find_relation db "shipments"

let with_failpoints f =
  Fun.protect ~finally:Failpoint.disarm_all (fun () ->
      Failpoint.disarm_all ();
      f ())

(* ---------------------------------------------------------------- *)
(* Build, probe, range *)

let test_build_and_probe () =
  let db = mk_db () in
  let ship = shipments_of db in
  let ix = Secondary_index.build ~kind:Secondary_index.Hash ship ~on:[ "hqty" ] in
  Alcotest.(check int)
    "every shipment indexed"
    (Relation.cardinality ship)
    (Secondary_index.entry_count ix);
  (* Probes return exactly the tuples a scan-and-filter finds. *)
  Relation.iter
    (fun t ->
      let qty = Tuple.get t 2 in
      let expected =
        Relation.fold
          (fun acc u -> if Value.equal (Tuple.get u 2) qty then u :: acc else acc)
          [] ship
      in
      let got = Secondary_index.probe1 ix qty in
      Alcotest.(check int)
        "probe matches scan-and-filter"
        (List.length expected) (List.length got);
      List.iter
        (fun u ->
          Alcotest.(check bool) "probe tuple has the probed key" true
            (Value.equal (Tuple.get u 2) qty))
        got)
    ship;
  Alcotest.(check bool) "probes were counted" true
    (Secondary_index.probe_count ix > 0);
  Alcotest.(check (list string)) "missing key probes empty" []
    (List.map Tuple.to_string (Secondary_index.probe1 ix (Value.int (-1))))

let test_sorted_range () =
  let db = mk_db () in
  let ship = shipments_of db in
  let ix =
    Secondary_index.build ~kind:Secondary_index.Sorted ship ~on:[ "hqty" ]
  in
  let count op v =
    let n = ref 0 in
    Secondary_index.iter_matching ix op (Value.int v) (fun _ -> incr n);
    !n
  in
  let scan_count op v =
    Relation.fold
      (fun acc t ->
        if Value.apply op (Tuple.get t 2) (Value.int v) then acc + 1
        else acc)
      0 ship
  in
  List.iter
    (fun (op, v) ->
      Alcotest.(check int)
        (Fmt.str "range %s %d agrees with scan" (Value.comparison_to_string op) v)
        (scan_count op v) (count op v);
      let frac = Secondary_index.matching_fraction ix op (Value.int v) in
      let exact =
        float_of_int (scan_count op v)
        /. float_of_int (max 1 (Relation.cardinality ship))
      in
      Alcotest.(check (float 1e-9))
        (Fmt.str "matching_fraction %s %d is exact"
           (Value.comparison_to_string op) v)
        exact frac)
    [
      (Value.Lt, 500);
      (Value.Le, 500);
      (Value.Gt, 900);
      (Value.Ge, 900);
      (Value.Eq, 500);
    ]

(* ---------------------------------------------------------------- *)
(* Incremental maintenance through relation mutations *)

(* hqty's declared domain is 1..1000, hsnr/hpnr cap at 999. *)
let shipment s p q = Tuple.of_list [ Value.int s; Value.int p; Value.int q ]

let test_maintenance_through_writes () =
  let db = mk_db () in
  let ship = shipments_of db in
  let ix = Database.declare_index db "shipments" ~on:[ "hqty" ] in
  let hits q = List.length (Secondary_index.probe1 ix (Value.int q)) in
  let before = hits 997 in
  Relation.insert ship (shipment 901 901 997);
  Alcotest.(check int) "insert maintained" (before + 1) (hits 997);
  Relation.delete_key ship [ Value.int 901; Value.int 901 ];
  Alcotest.(check int) "delete maintained" before (hits 997);
  Alcotest.(check bool) "consistent after insert+delete" true
    (Secondary_index.consistent_with ix ship);
  Relation.clear ship;
  Alcotest.(check int) "clear empties the index" 0
    (Secondary_index.entry_count ix);
  Alcotest.(check bool) "consistent after clear" true
    (Secondary_index.consistent_with ix ship)

let test_copy_independence () =
  let db = mk_db () in
  let ship = shipments_of db in
  let ix = Database.declare_index db "shipments" ~on:[ "hqty" ] in
  let snap = Secondary_index.copy ix in
  let before = Secondary_index.entry_count snap in
  Relation.insert ship (shipment 902 902 998);
  Alcotest.(check int) "original sees the insert" (before + 1)
    (Secondary_index.entry_count ix);
  Alcotest.(check int) "copy does not" before
    (Secondary_index.entry_count snap);
  Alcotest.(check bool) "copy still consistent with its snapshot count" true
    (Secondary_index.entry_count snap = before)

(* ---------------------------------------------------------------- *)
(* Persistence: snapshot round trip and the index.* failpoints *)

let temp_snapshot () = Filename.temp_file "pascalr_secix" ".pascalrdb"

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".tmp"; path ^ ".wal" ]

let test_save_load_roundtrip () =
  let path = temp_snapshot () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let db = mk_db () in
  ignore (Database.declare_index db "shipments" ~on:[ "hqty" ] : Secondary_index.t);
  ignore
    (Database.declare_index ~kind:Secondary_index.Sorted db "parts"
       ~on:[ "pweight" ]
      : Secondary_index.t);
  Database.save db ~path;
  let db2 = Database.load ~path in
  Alcotest.(check (list (triple string (list string) string)))
    "catalog survives the round trip"
    [ ("parts", [ "pweight" ], "sorted"); ("shipments", [ "hqty" ], "hash") ]
    (List.sort compare
       (List.map
          (fun (r, on, k) -> (r, on, Secondary_index.kind_to_string k))
          (Database.secondary_index_list db2)));
  List.iter
    (fun (rel_name, _, _) ->
      let rel = Database.find_relation db2 rel_name in
      List.iter
        (fun ix ->
          Alcotest.(check bool)
            (Fmt.str "loaded index on %s consistent" rel_name)
            true
            (Secondary_index.consistent_with ix rel))
        (Database.secondary_indexes db2 rel_name))
    (Database.secondary_index_list db2)

let test_save_crash_failpoint () =
  with_failpoints @@ fun () ->
  let path = temp_snapshot () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let db = mk_db () in
  ignore (Database.declare_index db "shipments" ~on:[ "hqty" ] : Secondary_index.t);
  Database.save db ~path;
  let committed =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Failpoint.arm "index.save.crash" (Failpoint.Nth 1);
  (match Database.save db ~path with
  | () -> Alcotest.fail "expected Io_error from index.save.crash"
  | exception Errors.Io_error _ -> ());
  let after =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check bool) "crashed save left the committed snapshot intact" true
    (String.equal committed after)

let test_load_corrupt_rebuilds () =
  with_failpoints @@ fun () ->
  let path = temp_snapshot () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let db = mk_db () in
  ignore (Database.declare_index db "shipments" ~on:[ "hqty" ] : Secondary_index.t);
  Database.save db ~path;
  Failpoint.arm "index.load.corrupt" (Failpoint.Every 1);
  let rebuilds0 = Obs.Metrics.counter_value "index.recovery_rebuilds" in
  let db2 = Database.load ~path in
  Alcotest.(check bool) "corrupt index page was rebuilt (metric)" true
    (Obs.Metrics.counter_value "index.recovery_rebuilds" > rebuilds0);
  List.iter
    (fun ix ->
      Alcotest.(check bool) "rebuilt index consistent" true
        (Secondary_index.consistent_with ix (shipments_of db2)))
    (Database.secondary_indexes db2 "shipments")

(* ---------------------------------------------------------------- *)
(* Access-path and join-algorithm reporting *)

let hqty_query v =
  let open Calculus in
  {
    free = [ ("h", base "shipments") ];
    select = [ ("h", "hsnr"); ("h", "hpnr") ];
    body = eq (attr "h" "hqty") (cint v);
  }

let hqty_range_query v =
  let open Calculus in
  {
    free = [ ("h", base "shipments") ];
    select = [ ("h", "hsnr"); ("h", "hpnr") ];
    body = gt (attr "h" "hqty") (cint v);
  }

let path_of r key =
  match List.assoc_opt key r.Exec_result.access_paths with
  | Some p -> p
  | None ->
    Alcotest.failf "no access path recorded under %S (have: %s)" key
      (String.concat ", " (List.map fst r.Exec_result.access_paths))

let test_access_path_pins () =
  let db = mk_db () in
  ignore (Database.declare_index db "shipments" ~on:[ "hqty" ] : Secondary_index.t);
  (* use_index is forced on: the pins must hold under the
     PASCALR_NO_INDEX=1 test leg too, where the default flips off. *)
  let opts = Exec_opts.make ~strategy:Strategy.s1234 ~use_index:true () in
  let r = report ~opts db (hqty_query 500) in
  Alcotest.(check string) "equality over a hash index probes" "probe"
    (path_of r "base:h");
  Alcotest.(check int) "no heap scan on the probe path" 0 r.Exec_result.scans;
  let r_off =
    report
      ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ~use_index:false ())
      db (hqty_query 500)
  in
  Alcotest.(check string) "use_index=false forces the heap scan" "scan"
    (path_of r_off "base:h");
  Alcotest.(check bool) "disabled run scans the heap" true
    (r_off.Exec_result.scans > 0);
  (* Identical answers either way. *)
  Alcotest.(check bool) "probe and scan agree" true
    (Relation.equal_set r.Exec_result.result r_off.Exec_result.result)

let test_range_path_pin () =
  let db = mk_db () in
  ignore
    (Database.declare_index ~kind:Secondary_index.Sorted db "shipments"
       ~on:[ "hqty" ]
      : Secondary_index.t);
  let opts = Exec_opts.make ~strategy:Strategy.s1234 ~use_index:true () in
  let r = report ~opts db (hqty_range_query 900) in
  Alcotest.(check string) "selective order atom over a sorted index" "range"
    (path_of r "base:h");
  (* An unselective range (matching most of the relation) must fall
     back to the scan: range_scan_max_fraction caps eligibility. *)
  let r_wide = report ~opts db (hqty_range_query 1) in
  Alcotest.(check string) "unselective range falls back to the scan" "scan"
    (path_of r_wide "base:h")

(* A two-variable equi-join collapses into one indirect-join pair
   structure in collection (zero streaming join steps), so the pin
   needs the three-variable running query: its combination joins the
   course/timetable structures through the stream engine. *)
let test_join_algo_pins () =
  let db = Workload.Random_query.tiny_db 3 in
  let join_query = Workload.Queries.running_query db in
  let opts = Exec_opts.make ~strategy:Strategy.s12 () in
  let r = report ~opts db join_query in
  Alcotest.(check bool) "streaming joins were recorded" true
    (r.Exec_result.join_algos <> []);
  List.iter
    (fun (step, algo) ->
      Alcotest.(check bool)
        (Fmt.str "step %s reports a known algorithm" step)
        true
        (List.mem algo [ "nlj"; "hash"; "batched-nlj" ]))
    r.Exec_result.join_algos;
  (* Forcing pins every step to the forced algorithm, and the answer
     does not move. *)
  List.iter
    (fun forced_algo ->
      let algo = Cost.join_algo_to_string forced_algo in
      let forced =
        report
          ~opts:
            (Exec_opts.make ~strategy:Strategy.s12 ~force_join:forced_algo ())
          db join_query
      in
      List.iter
        (fun (step, got) ->
          Alcotest.(check string) (Fmt.str "forced %s at %s" algo step) algo got)
        forced.Exec_result.join_algos;
      Alcotest.(check bool)
        (Fmt.str "forced %s returns the same tuples" algo)
        true
        (Relation.equal_set r.Exec_result.result forced.Exec_result.result))
    [ Cost.J_nlj; Cost.J_hash; Cost.J_batched_nlj ]

let test_analyze_json_reports_paths () =
  let db = mk_db () in
  ignore (Database.declare_index db "shipments" ~on:[ "hqty" ] : Secondary_index.t);
  let opts = Exec_opts.make ~strategy:Strategy.s1234 ~use_index:true () in
  let a = Analyze.run ~opts db (hqty_query 500) in
  let json =
    Fmt.str "%a" Obs.Json.pp
      (Analyze.to_json ~database:"suppliers" ~scale:1 db (hqty_query 500) a)
  in
  let contains needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub json i nn = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "analyze json has the access_paths section" true
    (contains "\"access_paths\"");
  Alcotest.(check bool) "analyze json reports the probe" true
    (contains "\"probe\"");
  Alcotest.(check bool) "analyze json has the join_algos section" true
    (contains "\"join_algos\"")

(* ---------------------------------------------------------------- *)
(* QCheck differential: adaptive index plans = forced heap-scan NLJ *)

(* Sorted single-component indexes on every attribute of the Figure-1
   schema: sorted serves both the equality probes and the range scans,
   so every monadic atom the generator emits is a potential index
   drive. *)
let index_everything db =
  List.iter
    (fun rel ->
      List.iter
        (fun (a, _) ->
          ignore
            (Database.declare_index ~kind:Secondary_index.Sorted db rel
               ~on:[ a ]
              : Secondary_index.t))
        (Workload.Random_query.rel_attrs rel))
    Workload.Random_query.relations

let indexed_plans_agree_on seed =
  let db = Workload.Random_query.tiny_db ((seed * 2654435761) + 9) in
  index_everything db;
  let q = Workload.Random_query.generate db (seed + 23) in
  (* The oracle: heap scans only, every join a nested loop. *)
  let expected =
    exec_q
      ~opts:
        (Exec_opts.make ~strategy:Strategy.s1234 ~use_index:false
           ~force_join:Cost.J_nlj ())
      db q
  in
  List.for_all
    (fun (sname, strategy) ->
      List.for_all
        (fun jobs ->
          List.for_all
            (fun batch_size ->
              let actual =
                exec_q
                  ~opts:
                    (Exec_opts.make ~strategy ~jobs ~batch_size
                       ~use_index:true ())
                  db q
              in
              Relation.equal_set expected actual
              ||
              QCheck.Test.fail_reportf
                "indexed %s (jobs=%d batch=%d) differs from heap-scan NLJ \
                 oracle on seed %d:@.%a@.expected %a@.got %a"
                sname jobs batch_size seed Calculus.pp_query q Relation.pp
                expected Relation.pp actual)
            [ 1; 2048 ])
        [ 1; 4 ])
    Strategy.all_presets

let test_indexed_differential =
  QCheck.Test.make
    ~name:"indexed adaptive plans = heap-scan NLJ oracle (presets x jobs x batch)"
    ~count:30
    QCheck.(make Gen.(int_range 0 100_000))
    indexed_plans_agree_on

(* Index maintenance differential: random insert/delete churn through
   direct relation writes keeps every declared index consistent. *)
let churn_keeps_consistent seed =
  let db = Workload.Random_query.tiny_db ((seed * 7927) + 3) in
  index_everything db;
  let rels = List.map (Database.find_relation db) Workload.Random_query.relations in
  let rng = Workload.Prng.create (seed + 71) in
  for _ = 1 to 40 do
    let rel = List.nth rels (Workload.Prng.in_range rng 0 (List.length rels - 1)) in
    let tuples = Relation.to_list rel in
    match tuples with
    | [] -> ()
    | ts ->
      let t = List.nth ts (Workload.Prng.in_range rng 0 (List.length ts - 1)) in
      if Workload.Prng.in_range rng 0 1 = 0 then
        Relation.delete_key rel (Tuple.key_of (Relation.schema rel) t)
      else
        (* Re-inserting a deleted witness keeps keys unique. *)
        let key = Tuple.key_of (Relation.schema rel) t in
        if Relation.find_key rel key <> None then
          Relation.delete_key rel key
  done;
  List.for_all
    (fun rel ->
      List.for_all
        (fun ix -> Secondary_index.consistent_with ix rel)
        (Database.secondary_indexes db (Relation.name rel)))
    rels

let test_churn_differential =
  QCheck.Test.make
    ~name:"random write churn keeps every secondary index consistent"
    ~count:50
    QCheck.(make Gen.(int_range 0 100_000))
    churn_keeps_consistent

let suite =
  [
    ( "secondary-index",
      [
        Alcotest.test_case "build + equality probes" `Quick test_build_and_probe;
        Alcotest.test_case "sorted ranges and exact fractions" `Quick
          test_sorted_range;
        Alcotest.test_case "maintained through insert/delete/clear" `Quick
          test_maintenance_through_writes;
        Alcotest.test_case "copy-on-write independence" `Quick
          test_copy_independence;
        Alcotest.test_case "snapshot save/load round trip" `Quick
          test_save_load_roundtrip;
        Alcotest.test_case "index.save.crash leaves snapshot intact" `Quick
          test_save_crash_failpoint;
        Alcotest.test_case "index.load.corrupt rebuilds from the heap" `Quick
          test_load_corrupt_rebuilds;
        Alcotest.test_case "access path pins: probe vs scan" `Quick
          test_access_path_pins;
        Alcotest.test_case "access path pins: range and fallback" `Quick
          test_range_path_pin;
        Alcotest.test_case "join algorithm pins and force_join" `Quick
          test_join_algo_pins;
        Alcotest.test_case "analyze json carries paths and algorithms" `Quick
          test_analyze_json_reports_paths;
        QCheck_alcotest.to_alcotest test_indexed_differential;
        QCheck_alcotest.to_alcotest test_churn_differential;
      ] );
  ]
