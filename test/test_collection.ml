(* Tests of the collection phase in isolation: the Figure-2 structures
   (single lists, indexes, indirect joins) for the running example, and
   the strategy-2 restriction behaviour. *)

open Pascalr
open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q
let exec_q_report ?opts db q = Session.exec_report ?opts (Session.create db) q


let setup strategy =
  let db = Fixtures.make () in
  let q = Workload.Queries.running_query db in
  let plan = Session.plan_only ~opts:(Exec_opts.make ~strategy:strategy ()) db q in
  let coll = Collection.create db strategy plan in
  Collection.run coll;
  (db, plan, coll)

(* Figure 2 / Example 3.2: the single list sl_csoph has the low-level
   courses; the indirect join ij_c_t pairs them with timetable entries. *)
let test_figure_2_structures () =
  let _db, plan, coll = setup Strategy.palermo in
  (* Find the conjunction with 4 atoms: prof & csoph & two joins. *)
  let conj =
    List.find
      (fun (c : Plan.conj) -> List.length c.Plan.atoms = 4)
      plan.Plan.conjs
  in
  let components = Collection.components coll conj in
  (* baseline: 2 single lists (prof, csoph) + 2 indirect joins. *)
  let singles, pairs =
    List.partition
      (function Collection.C_single _ -> true | Collection.C_pair _ -> false)
      components
  in
  Alcotest.(check int) "two single lists" 2 (List.length singles);
  Alcotest.(check int) "two indirect joins" 2 (List.length pairs);
  (* sl_csoph: exactly one course (cnr 10, freshman) qualifies. *)
  let csoph =
    List.find_map
      (function
        | Collection.C_single ("c", r) -> Some r
        | Collection.C_single _ | Collection.C_pair _ -> None)
      components
  in
  (match csoph with
  | Some r -> Alcotest.(check int) "sl_csoph" 1 (Relation.cardinality r)
  | None -> Alcotest.fail "no single list over c");
  (* ij_c_t: course 10 appears twice in the timetable; course 11 once
     but it is not low-level (unrestricted baseline keeps it anyway:
     the pair covers only the join term c.cnr = t.tcnr). *)
  let ij_ct =
    List.find_map
      (function
        | Collection.C_pair ("c", "t", r) | Collection.C_pair ("t", "c", r) ->
          Some r
        | Collection.C_pair _ | Collection.C_single _ -> None)
      components
  in
  match ij_ct with
  | Some r -> Alcotest.(check int) "ij_c_t (unrestricted)" 3 (Relation.cardinality r)
  | None -> Alcotest.fail "no indirect join c-t"

(* With strategy 2 the monadic terms fold into the indirect joins:
   single lists for variables with dyadic terms disappear and the
   indirect join shrinks. *)
let test_s2_folds_monadic_terms () =
  let _db, plan, coll = setup Strategy.s12 in
  let conj =
    List.find
      (fun (c : Plan.conj) -> List.length c.Plan.atoms = 4)
      plan.Plan.conjs
  in
  let components = Collection.components coll conj in
  let singles =
    List.filter
      (function Collection.C_single _ -> true | Collection.C_pair _ -> false)
      components
  in
  (* e, c, t all occur in dyadic terms of this conjunction: no single
     lists remain. *)
  Alcotest.(check int) "no single lists" 0 (List.length singles);
  let ij_ct =
    List.find_map
      (function
        | Collection.C_pair ("c", "t", r) | Collection.C_pair ("t", "c", r) ->
          Some r
        | Collection.C_pair _ | Collection.C_single _ -> None)
      components
  in
  match ij_ct with
  | Some r ->
    (* clevel <= sophomore restricts the probe side: only course 10's
       two timetable entries survive (Example 4.2). *)
    Alcotest.(check int) "ij_c_t restricted" 2 (Relation.cardinality r)
  | None -> Alcotest.fail "no indirect join c-t"

(* Structures are shared across conjunctions: the professor single list
   is built once even though it appears in all three conjunctions. *)
let test_memoization () =
  let db, plan, coll = setup Strategy.palermo in
  List.iter (fun c -> ignore (Collection.components coll c)) plan.Plan.conjs;
  (* The employees relation is scanned once per DISTINCT structure over
     it, not once per conjunction: prof single list + two probe scans
     (ij e-t and ij e-p) = 3, not 3 per conjunction. *)
  let scans = Relation.scan_count (Database.find_relation db "employees") in
  Alcotest.(check bool)
    (Printf.sprintf "employees scanned %d times (distinct structures only)" scans)
    true (scans <= 3)

(* Base single lists apply the range restriction. *)
let test_base_list_restriction () =
  let db = Fixtures.make () in
  let q = Workload.Queries.example_4_5 db in
  let plan = Session.plan_only ~opts:(Exec_opts.make ~strategy:Strategy.palermo ()) db q in
  let coll = Collection.create db Strategy.palermo plan in
  let bl = Collection.base_list coll "p" in
  (* [papers: pyear = 1977] has two elements in the fixture. *)
  Alcotest.(check int) "restricted base list" 2 (Relation.cardinality bl)


(* Mutual restriction of indirect joins (Section 4.2: "this technique
   also allows two indirect joins to restrict each other"): in a
   conjunction with two dyadic terms probing from the same variable,
   each indirect join is filtered by existence in the other's index. *)
let test_mutual_restriction () =
  let db = Workload.University.generate Workload.University.small_params in
  let prof = Workload.Queries.professor db in
  let q =
    let open Pascalr.Calculus in
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_and
          (eq (attr "e" "estatus") (const prof))
          (f_and
             (f_some "p" (base "papers") (eq (attr "e" "enr") (attr "p" "penr")))
             (f_some "t" (base "timetable")
                (eq (attr "e" "enr") (attr "t" "tenr"))));
    }
  in
  (* Expected ij_e_p size under mutual restriction: professor-paper
     pairs whose employee also appears in the timetable. *)
  let employees = Database.find_relation db "employees" in
  let papers = Database.find_relation db "papers" in
  let timetable = Database.find_relation db "timetable" in
  let es = Relation.schema employees
  and ps = Relation.schema papers
  and ts = Relation.schema timetable in
  let has_slot enr =
    Relation.exists
      (fun t -> Value.equal (Tuple.get_by_name ts t "tenr") enr)
      timetable
  in
  let expected_ij_e_p =
    Relation.fold
      (fun acc e ->
        let enr = Tuple.get_by_name es e "enr" in
        if
          Value.equal (Tuple.get_by_name es e "estatus") prof
          && has_slot enr
        then
          acc
          + Relation.fold
              (fun acc2 p ->
                if Value.equal (Tuple.get_by_name ps p "penr") enr then
                  acc2 + 1
                else acc2)
              0 papers
        else acc)
      0 employees
  in
  let report = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s12 ()) db q in
  let ij_e_p =
    List.fold_left
      (fun acc (key, size) ->
        if
          Helpers.contains key "pair:"
          && Helpers.contains key "p.penr"
          && Helpers.contains key "mutual[(e.enr = t.tenr)]"
        then acc + size
        else acc)
      0 report.Exec_result.intermediates
  in
  Alcotest.(check int) "ij_e_p mutually restricted" expected_ij_e_p ij_e_p;
  (* And of course the answer is right. *)
  Alcotest.(check bool) "answer correct" true
    (Relation.equal_set (Naive_eval.run db q) report.Exec_result.result)

let suite =
  [
    ( "collection",
      [
        Alcotest.test_case "Figure 2 structures (Example 3.2)" `Quick
          test_figure_2_structures;
        Alcotest.test_case "S2 folds monadic terms (Example 4.2)" `Quick
          test_s2_folds_monadic_terms;
        Alcotest.test_case "memoization across conjunctions" `Quick
          test_memoization;
        Alcotest.test_case "restricted base lists" `Quick
          test_base_list_restriction;
        Alcotest.test_case "mutual restriction of indirect joins" `Quick
          test_mutual_restriction;
      ] );
  ]
