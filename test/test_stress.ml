(* Multi-domain stress of the process-global observability state: the
   flight-recorder ring and the query-stats registry are the two
   structures every client domain of the traffic driver writes through
   concurrently, so both are hammered from 4 domains and their
   accounting checked for exactness — no lost updates, [dropped]
   arithmetic that balances to the record, histogram counts that match
   the call count.  A final end-to-end case runs real Session
   executions from 4 domains over one shared read-only database.

   (The third observability structure, [Obs.Metrics], is domain-local
   by design — each domain owns a private registry and deltas merge at
   pool joins — so cross-domain stress is meaningless for it; its merge
   discipline is covered in test_parallel.ml.) *)

open Relalg
open Pascalr

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q


let domains = 4

let spawn_all f =
  Array.init domains (fun d -> Domain.spawn (fun () -> f d))
  |> Array.iter Domain.join

(* --------------------------------------------------------------- *)
(* Flight recorder: the ring is a mutex around one array store, so
   every record from every domain must land — [total_recorded] counts
   all of them, the ring retains exactly [capacity], and [dropped]
   accounts for the precise overflow. *)

let flight_record d i =
  {
    Obs.Flight_recorder.fr_digest = Printf.sprintf "stress-%d-%d" d i;
    fr_opts = "opts";
    fr_wall_ms = float_of_int i;
    fr_collection_ms = 0.0;
    fr_combination_ms = 0.0;
    fr_construction_ms = 0.0;
    fr_rows = d;
    fr_jobs = 1;
    fr_scans = 0;
    fr_probes = 0;
    fr_index_probes = 0;
    fr_pool_fetches = 0;
  }

let test_flight_ring_exact () =
  let per_domain = 1000 in
  let capacity = 64 in
  let saved = Obs.Flight_recorder.capacity () in
  Obs.Flight_recorder.set_capacity capacity;
  Fun.protect
    ~finally:(fun () -> Obs.Flight_recorder.set_capacity saved)
    (fun () ->
      spawn_all (fun d ->
          for i = 1 to per_domain do
            Obs.Flight_recorder.record (flight_record d i)
          done);
      let total = domains * per_domain in
      Alcotest.(check int) "every record counted, none lost" total
        (Obs.Flight_recorder.total_recorded ());
      Alcotest.(check int) "ring retains exactly its capacity" capacity
        (List.length (Obs.Flight_recorder.recent ()));
      Alcotest.(check int) "dropped accounts for the exact overflow"
        (total - capacity)
        (Obs.Flight_recorder.dropped ());
      (* Each surviving record is intact — a torn write would show up
         as a digest/rows mismatch. *)
      List.iter
        (fun r ->
          Alcotest.(check bool) "record not torn" true
            (Scanf.sscanf r.Obs.Flight_recorder.fr_digest "stress-%d-%d"
               (fun d _ -> d = r.Obs.Flight_recorder.fr_rows)))
        (Obs.Flight_recorder.recent ()))

(* --------------------------------------------------------------- *)
(* Query stats: all domains fold into one mutex-protected registry.
   Private digests must each see exactly their own calls; a digest
   shared by all domains must accumulate every call and row with no
   lost updates, and its latency histogram must hold every sample. *)

let test_query_stats_exact () =
  let per_domain = 1000 in
  Obs.Query_stats.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.Query_stats.reset ())
    (fun () ->
      spawn_all (fun d ->
          for i = 1 to per_domain do
            let record digest =
              Obs.Query_stats.record ~digest
                ~query:"stress query" ~opts:"opts" ~wall_ms:1.0
                ~collection_ms:0.2 ~combination_ms:0.2 ~construction_ms:0.1
                ~rows:3 ~cache_hit:(i mod 2 = 0) ~replans:0
            in
            record (Printf.sprintf "private-%d" d);
            record "shared"
          done);
      let entry digest =
        match Obs.Query_stats.find digest with
        | Some e -> e
        | None -> Alcotest.failf "no entry for %s" digest
      in
      for d = 0 to domains - 1 do
        let e = entry (Printf.sprintf "private-%d" d) in
        Alcotest.(check int) "private digest: exact call count" per_domain
          e.Obs.Query_stats.qs_calls
      done;
      let s = entry "shared" in
      let total = domains * per_domain in
      Alcotest.(check int) "shared digest: no lost calls" total
        s.Obs.Query_stats.qs_calls;
      Alcotest.(check int) "shared digest: no lost rows" (3 * total)
        s.Obs.Query_stats.qs_rows;
      Alcotest.(check int) "shared digest: no lost cache hits" (total / 2)
        s.Obs.Query_stats.qs_cache_hits;
      Alcotest.(check int) "shared digest: histogram holds every sample"
        total
        (Obs.Histogram.count s.Obs.Query_stats.qs_latency))

(* --------------------------------------------------------------- *)
(* End to end: 4 domains, each with its own Session (sessions and their
   plan caches are single-domain structures), hammering one shared
   read-only database.  Answers must match the serial reference on
   every iteration, and the global registries must account for every
   execution exactly. *)

let test_sessions_shared_database () =
  let per_domain = 25 in
  let db = Workload.University.generate Workload.University.small_params in
  let q = Workload.Queries.running_query db in
  let opts = Exec_opts.make ~jobs:1 () in
  let reference = Relation.to_list (exec_q ~opts db q) in
  Obs.Query_stats.reset ();
  Obs.Flight_recorder.reset ();
  Fun.protect
    ~finally:(fun () -> Obs.Query_stats.reset ())
    (fun () ->
      let wrong = Atomic.make 0 in
      spawn_all (fun _ ->
          let session = Session.create db in
          for _ = 1 to per_domain do
            let r = Session.exec ~opts session q in
            if Relation.to_list r <> reference then Atomic.incr wrong
          done);
      Alcotest.(check int) "every concurrent answer matches serial" 0
        (Atomic.get wrong);
      let total = domains * per_domain in
      (match Obs.Query_stats.find (Session.digest q) with
      | None -> Alcotest.fail "no query-stats entry after the stress"
      | Some e ->
        Alcotest.(check int) "query stats saw every execution" total
          e.Obs.Query_stats.qs_calls;
        (* Each session plans once (cache miss), then hits its own
           cache: exactly one miss per domain. *)
        Alcotest.(check int) "one cache miss per session, rest hits"
          (total - domains) e.Obs.Query_stats.qs_cache_hits);
      Alcotest.(check int) "flight recorder saw every execution" total
        (Obs.Flight_recorder.total_recorded ()))

let suite =
  [
    ( "obs-stress",
      [
        Alcotest.test_case "flight ring: exact totals under 4 domains"
          `Quick test_flight_ring_exact;
        Alcotest.test_case "query stats: exact totals under 4 domains"
          `Quick test_query_stats_exact;
        Alcotest.test_case "4 sessions, one database: answers and accounting"
          `Quick test_sessions_shared_database;
      ] );
  ]
