(* Boundary cases of the statistics-based selectivity model. *)

open Relalg
open Pascalr

let db_with rows =
  let db = Database.create () in
  let schema =
    Schema.make
      [ Schema.attr "k" Vtype.int_full; Schema.attr "s" Vtype.string_any ]
      ~key:[]
  in
  let r = Database.declare_relation db ~name:"r" schema in
  List.iter
    (fun (k, s) ->
      ignore (Relation.insert r (Tuple.of_list [ Value.int k; Value.str s ])))
    rows;
  db

let sel db attr op c = Stats.monadic_selectivity (Stats.collect db) "r" attr op c

let close = Alcotest.(check (float 1e-9))

let test_eq_distinct () =
  let db = db_with [ (1, "a"); (2, "b"); (3, "c"); (3, "d") ] in
  close "eq is 1/distinct" (1.0 /. 3.0) (sel db "k" Value.Eq (Value.int 3));
  close "ne is complement" (1.0 -. (1.0 /. 3.0))
    (sel db "k" Value.Ne (Value.int 3))

let test_interpolation_and_clamp () =
  let db = db_with [ (0, "a"); (100, "b") ] in
  close "midpoint interpolates" 0.5 (sel db "k" Value.Lt (Value.int 50));
  close "below-min clamps low" 0.01 (sel db "k" Value.Lt (Value.int 0));
  close "above-max clamps high" 0.99 (sel db "k" Value.Lt (Value.int 100));
  close "gt mirrors lt" 0.99 (sel db "k" Value.Gt (Value.int 0));
  close "gt at max clamps low" 0.01 (sel db "k" Value.Gt (Value.int 100))

let test_degenerate_domain () =
  (* min = max: interpolation is undefined, the model answers 0.5. *)
  let db = db_with [ (7, "a"); (7, "b"); (7, "c") ] in
  close "degenerate domain is neutral" 0.5
    (sel db "k" Value.Lt (Value.int 7));
  close "degenerate domain for ge" 0.5 (sel db "k" Value.Ge (Value.int 7))

let test_string_values_neutral () =
  (* Strings have no interpolatable domain: a neutral 0.5 guess. *)
  let db = db_with [ (1, "alpha"); (2, "omega") ] in
  close "string comparison is neutral" 0.5
    (sel db "s" Value.Lt (Value.str "beta"))

let test_missing_minmax () =
  (* An empty relation has no min/max at all: the fallback is 0.33. *)
  let db = db_with [] in
  close "empty relation falls back" 0.33 (sel db "k" Value.Lt (Value.int 5));
  (* Eq on an empty relation still answers via distinct (clamped to 1). *)
  close "eq on empty relation" 1.0 (sel db "k" Value.Eq (Value.int 5))

let suite =
  [
    ( "stats-selectivity",
      [
        Alcotest.test_case "eq via distinct" `Quick test_eq_distinct;
        Alcotest.test_case "interpolation and clamping" `Quick
          test_interpolation_and_clamp;
        Alcotest.test_case "degenerate min=max domain" `Quick
          test_degenerate_domain;
        Alcotest.test_case "non-interpolatable strings" `Quick
          test_string_values_neutral;
        Alcotest.test_case "missing min/max" `Quick test_missing_minmax;
      ] );
  ]
