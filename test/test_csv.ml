open Relalg

let status =
  { Value.enum_name = "statustype"; labels = [| "student"; "professor" |] }

let schema =
  Schema.make
    [
      Schema.attr "id" Vtype.int_full;
      Schema.attr "name" Vtype.string_any;
      Schema.attr "st" (Vtype.TEnum status);
      Schema.attr "ok" Vtype.boolean;
    ]
    ~key:[ "id" ]

let sample () =
  Relation.of_list ~name:"r" schema
    [
      Tuple.of_list
        [ Value.int 1; Value.str "plain"; Value.enum status "student"; Value.bool true ];
      Tuple.of_list
        [
          Value.int 2;
          Value.str "with, comma and \"quotes\"";
          Value.enum status "professor";
          Value.bool false;
        ];
    ]

let test_roundtrip () =
  let r = sample () in
  let csv = Csv_io.to_string r in
  let r' = Csv_io.of_string ~name:"r2" schema csv in
  Alcotest.(check bool) "round trip" true (Relation.equal_set r r')

let test_header () =
  let csv = Csv_io.to_string (sample ()) in
  let header = List.hd (String.split_on_char '\n' csv) in
  Alcotest.(check string) "header" "id,name,st,ok" header

let test_bad_inputs () =
  let expect_error src =
    match Csv_io.of_string schema src with
    | _ -> Alcotest.failf "expected Type_error for %S" src
    | exception Errors.Type_error _ -> ()
  in
  expect_error "";
  expect_error "wrong,header,names,here\n1,x,student,true";
  expect_error "id,name,st,ok\n1,x,student";
  expect_error "id,name,st,ok\nnotanint,x,student,true";
  expect_error "id,name,st,ok\n1,x,dean,true"

let test_file_io () =
  let r = sample () in
  let path = Filename.temp_file "pascalr" ".csv" in
  Csv_io.save_file r path;
  let r' = Csv_io.load_file schema path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (Relation.equal_set r r')

(* Property: write -> read is the identity on random relations over the
   fixed 4-column schema, including strings with embedded commas and
   quotes (the parser splits on lines first, so no \n/\r in values),
   enum ordinals, and the empty relation. *)
let roundtrip_on seed =
  let rng = Workload.Prng.create (seed * 2654435761) in
  let n = Workload.Prng.int rng 12 (* 0 hits the empty relation *) in
  let random_string () =
    let pieces =
      List.init
        (Workload.Prng.int rng 4)
        (fun _ ->
          match Workload.Prng.int rng 5 with
          | 0 -> ","
          | 1 -> "\""
          | 2 -> " "
          | 3 -> "\"\""
          | _ -> Workload.Prng.word rng (1 + Workload.Prng.int rng 6))
    in
    String.concat "" pieces
  in
  let tuples =
    List.init n (fun i ->
        Tuple.of_list
          [
            Value.int (i + 1);
            Value.str (random_string ());
            Value.enum_ordinal status (Workload.Prng.int rng 2);
            Value.bool (Workload.Prng.bool rng);
          ])
  in
  let r = Relation.of_list ~name:"r" schema tuples in
  let r' = Csv_io.of_string ~name:"r2" schema (Csv_io.to_string r) in
  Relation.equal_set r r'
  || QCheck.Test.fail_reportf "csv round trip differs on seed %d" seed

let test_roundtrip_property =
  QCheck.Test.make
    ~name:"csv write -> read is identity (quoting, enums, empty relations)"
    ~count:300
    QCheck.(make Gen.(int_range 0 100_000))
    roundtrip_on

let suite =
  [
    ( "csv",
      [
        Alcotest.test_case "round trip" `Quick test_roundtrip;
        QCheck_alcotest.to_alcotest test_roundtrip_property;
        Alcotest.test_case "header" `Quick test_header;
        Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
        Alcotest.test_case "file io" `Quick test_file_io;
      ] );
  ]
