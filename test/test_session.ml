(* The Session front door: plan-cache behaviour (repeat hits, stats-
   epoch invalidation, LRU eviction, per-option and alpha-renaming
   keys), prepared-query parameter grounding, and the PREPARE/EXECUTE
   statement surface of the language. *)

open Pascalr
open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q


let mk_db () = Workload.Suppliers.generate Workload.Suppliers.default_params

let cache_stats =
  let pp ppf (s : Plan_cache.stats) =
    Fmt.pf ppf "{hits=%d; misses=%d; evictions=%d; invalidations=%d}"
      s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.evictions
      s.Plan_cache.invalidations
  in
  Alcotest.testable pp ( = )

(* ---------------------------------------------------------------- *)
(* Repeated execution hits the cache and skips the planning phases. *)

let test_repeat_hits () =
  let db = mk_db () in
  let q = Workload.Suppliers.ships_all_parts db in
  let s = Session.create db in
  let r1, root1 = Session.exec_traced s q in
  let r2, root2 = Session.exec_traced s q in
  Alcotest.(check bool)
    "same answer on re-execution" true
    (Relation.equal_set r1.Exec_result.result r2.Exec_result.result);
  let stats = Session.cache_stats s in
  Alcotest.(check int) "exactly one miss" 1 stats.Plan_cache.misses;
  Alcotest.(check bool) "subsequent lookups hit" true (stats.Plan_cache.hits >= 1);
  Alcotest.(check int) "one cached plan" 1 (Session.cache_length s);
  (* Cold trace plans; warm trace goes straight to evaluation. *)
  Alcotest.(check bool) "cold run plans" true (Obs.Trace.find root1 "plan" <> None);
  Alcotest.(check bool) "warm run skips plan" true (Obs.Trace.find root2 "plan" = None);
  Alcotest.(check bool)
    "warm run skips standard form" true
    (Obs.Trace.find root2 "standard_form" = None);
  Alcotest.(check bool)
    "warm run still evaluates" true
    (Obs.Trace.find root2 "collection" <> None)

(* ---------------------------------------------------------------- *)
(* A stats-epoch bump (here: an insertion) invalidates the cached plan
   and forces a re-plan on the next execution. *)

let test_epoch_invalidation () =
  let db = mk_db () in
  let q = Workload.Suppliers.ships_all_parts db in
  let s = Session.create db in
  let _ = Session.exec_traced s q in
  let epoch_before = Database.stats_epoch db in
  let suppliers = Database.find_relation db "suppliers" in
  let free_snr = 998 in
  Relation.insert suppliers
    (Tuple.of_list
       [
         Value.int free_snr;
         Value.str "latecomer";
         Workload.Suppliers.london db;
       ]);
  Alcotest.(check bool)
    "insertion moves the stats epoch" true
    (Database.stats_epoch db > epoch_before);
  let _, root = Session.exec_traced s q in
  let stats = Session.cache_stats s in
  Alcotest.(check int) "one invalidation" 1 stats.Plan_cache.invalidations;
  Alcotest.(check bool)
    "stale entry forces a re-plan" true
    (Obs.Trace.find root "plan" <> None)

(* ---------------------------------------------------------------- *)
(* LRU eviction: with capacity 2, the least recently used entry is the
   one displaced. *)

let test_lru_eviction () =
  let db = mk_db () in
  let qa = Workload.Suppliers.ships_all_parts db in
  let qb = Workload.Suppliers.ships_all_red_parts db in
  let qc = Workload.Suppliers.london_ships_some_red db in
  let s = Session.create ~cache_capacity:2 db in
  let prep q = ignore (Session.prepare s q) in
  prep qa;
  (* cache: A *)
  prep qb;
  (* cache: A B *)
  prep qa;
  (* hit; A now more recent than B *)
  prep qc;
  (* full: evicts B, the LRU entry      *)
  Alcotest.(check int) "capacity respected" 2 (Session.cache_length s);
  prep qa;
  (* still cached: hit                  *)
  prep qb;
  (* was evicted: misses again          *)
  Alcotest.check cache_stats "LRU accounting"
    { Plan_cache.hits = 2; misses = 4; evictions = 2; invalidations = 0 }
    (Session.cache_stats s)

(* ---------------------------------------------------------------- *)
(* Cache keys: distinct per strategy and join order, but insensitive
   to the spelling of range variables (alpha-canonical digests). *)

let test_keys_per_options () =
  let db = mk_db () in
  let q = Workload.Suppliers.ships_all_parts db in
  let s = Session.create db in
  ignore (Session.prepare s q);
  ignore
    (Session.prepare ~opts:(Exec_opts.make ~strategy:Strategy.palermo ()) s q);
  ignore
    (Session.prepare
       ~opts:(Exec_opts.make ~join_order:Combination.Declaration ())
       s q);
  Alcotest.(check int) "three distinct keys" 3 (Session.cache_length s);
  Alcotest.(check int) "no spurious hits" 3
    (Session.cache_stats s).Plan_cache.misses

let test_alpha_renaming_shares_key () =
  let open Calculus in
  let db = mk_db () in
  let spelled free_v all_v some_v =
    {
      free = [ (free_v, base "suppliers") ];
      select = [ (free_v, "sname") ];
      body =
        f_all all_v (base "parts")
          (f_some some_v (base "shipments")
             (f_and
                (eq (attr some_v "hsnr") (attr free_v "snr"))
                (eq (attr some_v "hpnr") (attr all_v "pnr"))));
    }
  in
  let s = Session.create db in
  ignore (Session.prepare s (spelled "s" "p" "h"));
  ignore (Session.prepare s (spelled "zebra" "quux" "w"));
  let stats = Session.cache_stats s in
  Alcotest.(check int) "one plan serves both spellings" 1
    (Session.cache_length s);
  Alcotest.(check int) "renamed query hits" 1 stats.Plan_cache.hits;
  Alcotest.(check int) "only the first misses" 1 stats.Plan_cache.misses

(* ---------------------------------------------------------------- *)
(* Parameters: a prepared query grounded with bindings answers exactly
   like the substituted query run from scratch; bad bindings raise. *)

let param_query =
  let open Calculus in
  {
    free = [ ("s", base "suppliers") ];
    select = [ ("s", "sname") ];
    body = mk_atom (attr "s" "snr") Value.Ge (param "lo");
  }

let test_params_ground () =
  let db = mk_db () in
  let s = Session.create db in
  let prep = Session.prepare s param_query in
  Alcotest.(check (list string)) "declared params" [ "lo" ] (Prepared.params prep);
  List.iter
    (fun lo ->
      let got = Prepared.exec ~params:[ ("lo", Value.int lo) ] prep in
      let ground =
        Calculus.subst_query
          (Calculus.Var_map.singleton "lo" (Value.int lo))
          param_query
      in
      let expected = exec_q db ground in
      Alcotest.(check bool)
        (Printf.sprintf "same answer as fresh run at lo=%d" lo)
        true
        (Relation.equal_set expected got))
    [ 1; 3; 999 ];
  (* One plan served every binding. *)
  Alcotest.(check int) "one cached plan for all bindings" 1
    (Session.cache_length s)

let test_params_errors () =
  let db = mk_db () in
  let s = Session.create db in
  let prep = Session.prepare s param_query in
  Alcotest.check_raises "missing binding" (Prepared.Unbound_parameter "lo")
    (fun () -> ignore (Prepared.exec prep));
  Alcotest.check_raises "extra binding" (Prepared.Unknown_parameter "hi")
    (fun () ->
      ignore
        (Prepared.exec
           ~params:[ ("lo", Value.int 1); ("hi", Value.int 2) ]
           prep))

(* ---------------------------------------------------------------- *)
(* Property: lifting every constant of a random query into a $param
   and executing the prepared form with the original constants as
   bindings gives exactly the fresh phased answer, for every strategy
   preset. *)

let lift_params (q : Calculus.query) =
  let open Calculus in
  let n = ref 0 in
  let binds = ref [] in
  let lift_operand = function
    | O_const v ->
      incr n;
      let name = Printf.sprintf "p%d" !n in
      binds := (name, v) :: !binds;
      O_param name
    | o -> o
  in
  let lift_atom a = { a with lhs = lift_operand a.lhs; rhs = lift_operand a.rhs } in
  let rec lift_formula = function
    | F_true -> F_true
    | F_false -> F_false
    | F_atom a -> F_atom (lift_atom a)
    | F_not f -> F_not (lift_formula f)
    | F_and (a, b) -> F_and (lift_formula a, lift_formula b)
    | F_or (a, b) -> F_or (lift_formula a, lift_formula b)
    | F_some (v, r, f) -> F_some (v, lift_range r, lift_formula f)
    | F_all (v, r, f) -> F_all (v, lift_range r, lift_formula f)
  and lift_range r =
    match r.restriction with
    | None -> r
    | Some (v, f) -> { r with restriction = Some (v, lift_formula f) }
  in
  let free = List.map (fun (v, r) -> (v, lift_range r)) q.free in
  let body = lift_formula q.body in
  ({ q with free; body }, List.rev !binds)

let prepared_equals_fresh_on seed =
  let db = Workload.Random_query.tiny_db (seed * 12721) in
  let q = Workload.Random_query.generate db seed in
  match Wellformed.check_query db q with
  | Error e ->
    QCheck.Test.fail_reportf "generator produced ill-formed query: %s"
      e.Wellformed.message
  | Ok () ->
    let pq, binds = lift_params q in
    let session = Session.create db in
    List.for_all
      (fun (sname, strategy) ->
        let opts = Exec_opts.make ~strategy () in
        let prep = Session.prepare ~opts session pq in
        let got = Prepared.exec ~params:binds prep in
        let expected = exec_q ~opts db q in
        Relation.equal_set expected got
        ||
        QCheck.Test.fail_reportf
          "prepared(%s) differs on seed %d (%d params):@.%a" sname seed
          (List.length binds) Calculus.pp_query q)
      Strategy.all_presets

let test_prepared_equals_fresh =
  QCheck.Test.make ~name:"prepared exec = fresh phased run" ~count:75
    QCheck.(make Gen.(int_range 0 100_000))
    prepared_equals_fresh_on

(* ---------------------------------------------------------------- *)
(* The statement surface: PREPARE ... FOR, EXECUTE with bindings into
   a target relation, and the error paths. *)

let prepare_program =
  {|
TYPE colortype = (red, green, blue);

VAR parts : RELATION <pnr> OF
      RECORD
        pnr : 1..999;
        pname : PACKED ARRAY [1..10] OF char;
        pcolor : colortype
      END;

BEGIN
  parts :+ [<1, 'cam', red>];
  parts :+ [<2, 'bolt', green>];
  parts :+ [<3, 'cog', red>];
  PREPARE bycolor FOR [<p.pnr, p.pname> OF EACH p IN parts : p.pcolor = $c];
  reds := EXECUTE bycolor ($c = red);
  greens := EXECUTE bycolor ($c = green)
END.
|}

let test_lang_prepare_execute () =
  let db = Pascalr_lang.Interp.run_string prepare_program in
  let reds = Database.find_relation db "reds" in
  let greens = Database.find_relation db "greens" in
  Alcotest.(check int) "two red parts" 2 (Relation.cardinality reds);
  Alcotest.(check int) "one green part" 1 (Relation.cardinality greens)

let unbound_program =
  {|
TYPE colortype = (red, green, blue);

VAR parts : RELATION <pnr> OF
      RECORD
        pnr : 1..999;
        pcolor : colortype
      END;

BEGIN
  parts :+ [<1, red>];
  PREPARE bycolor FOR [<p.pnr> OF EACH p IN parts : p.pcolor = $c];
  EXECUTE bycolor
END.
|}

let test_lang_unbound_param () =
  Alcotest.check_raises "unbound parameter surfaces as a runtime error"
    (Pascalr_lang.Interp.Runtime_error
       "EXECUTE bycolor: parameter $c is not bound") (fun () ->
      ignore (Pascalr_lang.Interp.run_string unbound_program))

let test_lang_unknown_prepared () =
  Alcotest.check_raises "executing an unprepared name fails"
    (Pascalr_lang.Interp.Runtime_error "EXECUTE nope: no such prepared query")
    (fun () -> Pascalr_lang.Interp.exec_string (Database.create ()) "EXECUTE nope")

let suite =
  [
    ( "session",
      [
        Alcotest.test_case "repeat execution hits the plan cache" `Quick
          test_repeat_hits;
        Alcotest.test_case "stats-epoch bump invalidates and re-plans" `Quick
          test_epoch_invalidation;
        Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
        Alcotest.test_case "distinct keys per strategy and join order" `Quick
          test_keys_per_options;
        Alcotest.test_case "alpha-renamed query shares the cached plan" `Quick
          test_alpha_renaming_shares_key;
        Alcotest.test_case "parameter grounding matches fresh runs" `Quick
          test_params_ground;
        Alcotest.test_case "parameter binding errors" `Quick test_params_errors;
        QCheck_alcotest.to_alcotest test_prepared_equals_fresh;
        Alcotest.test_case "PREPARE/EXECUTE statements" `Quick
          test_lang_prepare_execute;
        Alcotest.test_case "EXECUTE without a required binding" `Quick
          test_lang_unbound_param;
        Alcotest.test_case "EXECUTE of an unknown prepared name" `Quick
          test_lang_unknown_prepared;
      ] );
  ]
