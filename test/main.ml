let () =
  Alcotest.run "pascalr"
    (List.concat
       [
         Test_value.suite;
         Test_relation.suite;
         Test_algebra.suite;
         Test_calculus.suite;
         Test_normalize.suite;
         Test_naive.suite;
         Test_phased.suite;
         Test_properties.suite;
         Test_lemma1.suite;
         Test_semijoin.suite;
         Test_planner.suite;
         Test_lang.suite;
         Test_extensions.suite;
         Test_substrate.suite;
         Test_collection.suite;
         Test_quant_push.suite;
         Test_interp.suite;
         Test_storage.suite;
         Test_csv.suite;
         Test_joins.suite;
         Test_obs.suite;
         Test_stats.suite;
       ])
