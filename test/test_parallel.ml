(* The multicore execution layer: domain-pool mechanics (reuse, jobs=1
   bypass, exception propagation), partitioned-operator determinism at
   the parallelism threshold, and a QCheck differential pinning the
   jobs-independence contract — identical result tuples in identical
   iteration order for jobs 1, 2 and 4 across every strategy preset. *)

open Relalg
open Pascalr

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q


(* Unsorted contents in iteration order — the strongest determinism
   observation: parallel chunk replay must reproduce the serial
   insertion sequence exactly, so even hashtable iteration order is
   jobs-independent. *)
let seq_of r = Array.to_list (Relation.to_array_uncounted r)

let check_same_relation label a b =
  Alcotest.(check (list Helpers.tuple)) (label ^ ": iteration order") (seq_of a) (seq_of b);
  Alcotest.(check (list Helpers.tuple)) (label ^ ": sorted contents")
    (Relation.to_list a) (Relation.to_list b)

(* --------------------------------------------------------------- *)
(* Pool mechanics *)

let test_jobs1_bypass () =
  let before = Domain_pool.spawned_domains () in
  let order = ref [] in
  Domain_pool.run_tasks ~jobs:1 8 (fun i -> order := i :: !order);
  Alcotest.(check (list int))
    "serial path runs tasks in index order" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.rev !order);
  Alcotest.(check int) "jobs=1 spawns no domains" before
    (Domain_pool.spawned_domains ())

let test_parallel_map () =
  let input = Array.init 100 Fun.id in
  let out = Domain_pool.parallel_map ~jobs:4 (fun x -> x * x) input in
  Alcotest.(check (array int))
    "maps every element" (Array.map (fun x -> x * x) input) out

let test_pool_reuse () =
  ignore (Domain_pool.parallel_map ~jobs:3 Fun.id (Array.init 32 Fun.id));
  let after_first = Domain_pool.spawned_domains () in
  ignore (Domain_pool.parallel_map ~jobs:3 Fun.id (Array.init 32 Fun.id));
  Alcotest.(check int) "second run reuses the pooled workers" after_first
    (Domain_pool.spawned_domains ())

let test_shutdown_and_respawn () =
  (* Park some workers, quiesce them, and confirm the next parallel run
     lazily respawns a working pool: the spawn counter advances (fresh
     domains, not reused ones) and results stay correct. *)
  ignore (Domain_pool.parallel_map ~jobs:3 Fun.id (Array.init 32 Fun.id));
  let before = Domain_pool.spawned_domains () in
  Domain_pool.shutdown ();
  Domain_pool.shutdown ();
  (* idempotent on an empty pool *)
  Alcotest.(check int) "shutdown spawns nothing" before
    (Domain_pool.spawned_domains ());
  let input = Array.init 64 Fun.id in
  let out = Domain_pool.parallel_map ~jobs:3 (fun x -> x + 1) input in
  Alcotest.(check (array int)) "respawned pool computes correctly"
    (Array.map (fun x -> x + 1) input)
    out;
  Alcotest.(check bool) "respawn used fresh domains" true
    (Domain_pool.spawned_domains () > before)

let test_exception_lowest_index () =
  let ran = Array.make 6 false in
  let raised =
    match
      Domain_pool.run_tasks ~jobs:4 6 (fun i ->
          ran.(i) <- true;
          if i = 1 then failwith "task-1";
          if i = 3 then failwith "task-3")
    with
    | () -> None
    | exception Failure m -> Some m
  in
  Alcotest.(check (option string))
    "lowest failing task index wins at the join" (Some "task-1") raised;
  Alcotest.(check (array bool))
    "one failure does not cancel the other tasks" (Array.make 6 true) ran

let test_typed_errors_propagate () =
  (match
     Domain_pool.run_tasks ~jobs:4 4 (fun i ->
         if i = 2 then raise (Errors.Io_error "disk gone"))
   with
  | () -> Alcotest.fail "expected Io_error from worker"
  | exception Errors.Io_error m ->
    Alcotest.(check string) "Io_error payload survives the join" "disk gone" m);
  match
    Domain_pool.run_tasks ~jobs:4 4 (fun i ->
        if i = 0 then raise (Errors.Corruption "bad page"))
  with
  | () -> Alcotest.fail "expected Corruption from worker"
  | exception Errors.Corruption m ->
    Alcotest.(check string) "Corruption payload survives the join" "bad page" m

let test_chunk_boundaries () =
  List.iter
    (fun n ->
      let arr = Array.init n Fun.id in
      List.iter
        (fun pieces ->
          let chunks = Domain_pool.chunk ~pieces arr in
          let label = Printf.sprintf "n=%d pieces=%d" n pieces in
          Alcotest.(check (array int))
            (label ^ ": concatenation preserves order") arr
            (Array.concat (Array.to_list chunks));
          let sizes = Array.map Array.length chunks in
          let mn = Array.fold_left min max_int sizes
          and mx = Array.fold_left max 0 sizes in
          Alcotest.(check bool)
            (label ^ ": chunk sizes balanced within 1")
            true
            (mx - mn <= 1))
        [ 1; 3; 4; 7 ])
    [ 0; 1; 7; 8; 9; 63; 64; 65 ]

(* --------------------------------------------------------------- *)
(* Partitioned operators: threshold gating and determinism *)

let unary name xs =
  Relation.of_list ~name
    (Schema.make [ Schema.attr "x" Vtype.int_full ] ~key:[])
    (List.map (fun a -> Tuple.of_list [ Value.int a ]) xs)

let pair_rel name cols rows =
  Relation.of_list ~name
    (Schema.make (List.map (fun c -> Schema.attr c Vtype.int_full) cols) ~key:[])
    (List.map (fun (a, b) -> Tuple.of_list [ Value.int a; Value.int b ]) rows)

let par = { Domain_pool.jobs = 4; threshold = 8 }
let even t = Value.compare (Tuple.get t 0) (Value.int 0) >= 0

let test_select_threshold_gating () =
  (* Cardinalities straddling the threshold: below it the par operator
     call must stay on the serial path (no algebra.par tally), at and
     above it the partitioned path runs — and both produce the serial
     relation exactly. *)
  List.iter
    (fun n ->
      let r = unary "r" (List.init n (fun i -> (i * 7) mod 1009)) in
      let serial = Algebra.select even r in
      let before = Obs.Metrics.counter_value "algebra.par.select" in
      let parallel = Algebra.select ~par even r in
      let fired = Obs.Metrics.counter_value "algebra.par.select" - before in
      Alcotest.(check int)
        (Printf.sprintf "n=%d: partitioned iff n >= threshold" n)
        (if n >= par.Domain_pool.threshold then 1 else 0)
        fired;
      check_same_relation (Printf.sprintf "select n=%d" n) serial parallel)
    [ 0; 7; 8; 9; 200 ]

let test_join_and_product_deterministic () =
  let a =
    pair_rel "a" [ "x"; "y" ] (List.init 60 (fun i -> (i mod 11, i)))
  in
  let b =
    pair_rel "b" [ "x"; "z" ] (List.init 45 (fun i -> (i mod 13, i * 2)))
  in
  let par = { Domain_pool.jobs = 4; threshold = 1 } in
  check_same_relation "natural join"
    (Algebra.natural_join a b)
    (Algebra.natural_join ~par a b);
  let c =
    pair_rel "c" [ "u"; "v" ] (List.init 20 (fun i -> (i, i + 100)))
  in
  check_same_relation "product"
    (Algebra.product a c)
    (Algebra.product ~par a c);
  check_same_relation "project"
    (Algebra.project a [ "x" ])
    (Algebra.project ~par a [ "x" ])

(* --------------------------------------------------------------- *)
(* Whole-pipeline jobs-independence: the differential of the issue.
   Identical tuples in identical order for jobs 1 vs 2 vs 4, across
   every strategy preset, with par_threshold 0 so even the tiny
   property databases exercise the partitioned paths. *)

let jobs_independent_on seed =
  let db = Workload.Random_query.tiny_db ((seed * 9973) + 11) in
  let q = Workload.Random_query.generate db (seed + 5) in
  match Wellformed.check_query db q with
  | Error _ -> true (* generator contract tested elsewhere *)
  | Ok () ->
    List.for_all
      (fun (sname, strategy) ->
        let run jobs =
          exec_q
            ~opts:(Exec_opts.make ~strategy ~jobs ~par_threshold:0 ())
            db q
        in
        let reference = run 1 in
        List.for_all
          (fun jobs ->
            let r = run jobs in
            List.equal Tuple.equal (seq_of reference) (seq_of r)
            ||
            QCheck.Test.fail_reportf
              "jobs=%d diverges from serial under %s, seed %d:@.%a@.serial %a@.got %a"
              jobs sname seed Calculus.pp_query q Relation.pp reference
              Relation.pp r)
          [ 2; 4 ])
      Strategy.all_presets

let test_jobs_differential =
  QCheck.Test.make
    ~name:"random queries: jobs 1/2/4 identical tuples, identical order"
    ~count:60
    QCheck.(make Gen.(int_range 0 100_000))
    jobs_independent_on

(* --------------------------------------------------------------- *)
(* Metric histograms across the pool: the bucketed-histogram merge is
   commutative and associative, so the order in which worker deltas
   reach the caller's registry cannot be observed — and actually
   routing the observations through a jobs=4 pool lands on the same
   pooled histogram as observing them serially. *)

(* Deterministic pseudo-random values: an LCG seeded per worker, spread
   over several histogram decades.  Dyadic rationals (x / 8) so pooled
   sums are exact in binary floating point — snapshot equality across
   merge orders can then be bit-strict. *)
let worker_values seed w =
  let state = ref ((seed * 48271 + w * 69621 + 1) land 0x3FFFFFFF) in
  let next () =
    state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
    float_of_int (!state mod 10_000) /. 8.0
  in
  List.init (3 + ((seed + w) mod 5)) (fun _ -> next ())

(* Per-seed instrument name: worker-domain registries survive across
   property iterations, and a delta's histogram min/max come from the
   worker's cumulative "after" state — a reused name would leak earlier
   iterations' extremes into this one's delta. *)
let histo_name seed = Printf.sprintf "h.pool.merge.%d" seed

(* One worker's delta, produced on the main domain with the same
   diff discipline the pool join uses. *)
let delta_of name values =
  let before = Obs.Metrics.snapshot () in
  List.iter (Obs.Metrics.observe name) values;
  let after = Obs.Metrics.snapshot () in
  Obs.Metrics.diff ~before ~after

let merged_snapshot deltas =
  Obs.Metrics.reset ();
  List.iter Obs.Metrics.merge deltas;
  Obs.Metrics.snapshot ()

let permutations_of xs =
  (* A few structurally different orders; full factorial is overkill. *)
  [ xs; List.rev xs; (match xs with [] -> [] | x :: tl -> tl @ [ x ]) ]

let merge_order_invisible_on seed =
  let workers = 4 in
  let name = histo_name seed in
  let values = List.init workers (worker_values seed) in
  Obs.Metrics.reset ();
  let deltas = List.map (delta_of name) values in
  let reference = merged_snapshot deltas in
  let all_orders_agree =
    List.for_all
      (fun perm -> merged_snapshot perm = reference)
      (permutations_of deltas)
  in
  (* The real pool: observe each worker's values inside a jobs=4 task;
     worker-domain registries reach this one via merge at the join. *)
  Obs.Metrics.reset ();
  let varr = Array.of_list values in
  Domain_pool.run_tasks ~jobs:4 workers (fun i ->
      List.iter (Obs.Metrics.observe name) varr.(i));
  let pooled = Obs.Metrics.snapshot () in
  let pooled_matches =
    Obs.Metrics.find pooled name = Obs.Metrics.find reference name
  in
  let flat = List.concat values in
  let lo = List.fold_left min infinity flat
  and hi = List.fold_left max neg_infinity flat in
  let quantiles_bounded =
    List.for_all
      (fun q ->
        match Obs.Metrics.histogram_quantile reference name q with
        | Some v -> lo <= v && v <= hi
        | None -> false)
      [ 0.0; 0.5; 0.95; 0.99; 1.0 ]
  in
  Obs.Metrics.reset ();
  (all_orders_agree
  || QCheck.Test.fail_reportf "merge order observable at seed %d" seed)
  && (pooled_matches
     || QCheck.Test.fail_reportf
          "jobs=4 pooled histogram differs from serial merge at seed %d" seed)
  && (quantiles_bounded
     || QCheck.Test.fail_reportf
          "pooled quantile outside pooled min/max at seed %d" seed)

let test_merge_permutation =
  QCheck.Test.make
    ~name:"histogram worker deltas: merge order invisible, quantiles bounded"
    ~count:100
    QCheck.(make Gen.(int_range 0 100_000))
    merge_order_invisible_on

(* --------------------------------------------------------------- *)
(* Options plumbing *)

let test_fingerprint_distinguishes_parallelism () =
  let fp ?jobs ?par_threshold () =
    Exec_opts.fingerprint (Exec_opts.make ?jobs ?par_threshold ())
  in
  Alcotest.(check bool) "jobs in the plan-cache key" true
    (fp ~jobs:1 () <> fp ~jobs:4 ());
  Alcotest.(check bool) "par_threshold in the plan-cache key" true
    (fp ~jobs:4 ~par_threshold:4096 () <> fp ~jobs:4 ~par_threshold:64 ())

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "jobs=1 bypasses the pool" `Quick test_jobs1_bypass;
        Alcotest.test_case "parallel_map covers every element" `Quick
          test_parallel_map;
        Alcotest.test_case "pool domains are reused across runs" `Quick
          test_pool_reuse;
        Alcotest.test_case "shutdown joins workers, next run respawns" `Quick
          test_shutdown_and_respawn;
        Alcotest.test_case "lowest-index exception wins at the join" `Quick
          test_exception_lowest_index;
        Alcotest.test_case "typed storage errors propagate from workers" `Quick
          test_typed_errors_propagate;
        Alcotest.test_case "chunking is ordered and balanced" `Quick
          test_chunk_boundaries;
        Alcotest.test_case "select partitions exactly at the threshold" `Quick
          test_select_threshold_gating;
        Alcotest.test_case "join/product/project are jobs-deterministic" `Quick
          test_join_and_product_deterministic;
        Alcotest.test_case "fingerprint separates parallelism settings" `Quick
          test_fingerprint_distinguishes_parallelism;
        QCheck_alcotest.to_alcotest test_merge_permutation;
        QCheck_alcotest.to_alcotest test_jobs_differential;
      ] );
  ]
