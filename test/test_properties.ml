(* Property-based equivalence testing: on random databases and random
   well-typed queries, every strategy pipeline must return exactly the
   naive evaluator's answer.  This exercises normalization, adaptation,
   all four strategies and the three evaluation phases together. *)

open Pascalr
open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q


let strategies_agree_on seed =
  let db = Workload.Random_query.tiny_db (seed * 7919) in
  let q = Workload.Random_query.generate db seed in
  match Wellformed.check_query db q with
  | Error e ->
    QCheck.Test.fail_reportf "generator produced ill-formed query: %s@.%a"
      e.Wellformed.message Calculus.pp_query q
  | Ok () ->
    let expected = Naive_eval.run db q in
    List.for_all
      (fun (sname, strategy) ->
        let actual = exec_q ~opts:(Exec_opts.make ~strategy ()) db q in
        Relation.equal_set expected actual
        ||
        QCheck.Test.fail_reportf
          "strategy %s differs on seed %d:@.%a@.expected %a@.got %a" sname seed
          Calculus.pp_query q Relation.pp expected Relation.pp actual)
      Strategy.all_presets

let test_random_equivalence =
  QCheck.Test.make ~name:"random queries: all strategies = naive" ~count:150
    QCheck.(make Gen.(int_range 0 100_000))
    strategies_agree_on

(* Round trip through the standard form preserves semantics on random
   queries too (after adaptation, so empty ranges are legal). *)
let roundtrip_on seed =
  let db = Workload.Random_query.tiny_db (seed * 104729) in
  let q = Workload.Random_query.generate db (seed + 31) in
  let adapted = Standard_form.adapt_query db q in
  let direct = Naive_eval.run db adapted in
  let via = Naive_eval.run db (Standard_form.to_query (Standard_form.of_query adapted)) in
  Relation.equal_set direct via

let test_roundtrip =
  QCheck.Test.make ~name:"standard form round trip on random queries"
    ~count:150
    QCheck.(make Gen.(int_range 0 100_000))
    roundtrip_on

(* Adaptation is a semantic no-op: the adapted query has the same answer
   as the original. *)
let adaptation_preserves seed =
  let db = Workload.Random_query.tiny_db (seed * 31337) in
  let q = Workload.Random_query.generate db (seed + 77) in
  let adapted = Standard_form.adapt_query db q in
  Relation.equal_set (Naive_eval.run db q) (Naive_eval.run db adapted)

let test_adaptation =
  QCheck.Test.make ~name:"adaptation preserves semantics" ~count:150
    QCheck.(make Gen.(int_range 0 100_000))
    adaptation_preserves

(* Empty ranges, guaranteed: clear one relation and force the query to
   range over it, so the Lemma-1 adaptation (Examples 2.1 and 2.2 —
   SOME over an empty range is false, ALL is true, a free variable over
   an empty range yields the empty answer) is exercised on every case
   rather than only when the torture test happens to hit one. *)
let empty_range_agree_on seed =
  let db = Workload.Random_query.tiny_db ((seed * 6151) + 3) in
  let victim = List.nth Workload.Random_query.relations (seed mod 4) in
  Relation.clear (Database.find_relation db victim);
  let q = Workload.Random_query.generate ~first_rel:victim db (seed + 13) in
  let expected = Naive_eval.run db q in
  List.for_all
    (fun (sname, strategy) ->
      Relation.equal_set expected (exec_q ~opts:(Exec_opts.make ~strategy ()) db q)
      ||
      QCheck.Test.fail_reportf
        "empty range over %s: %s differs on seed %d:@.%a" victim sname seed
        Calculus.pp_query q)
    Strategy.all_presets

let test_empty_ranges =
  QCheck.Test.make
    ~name:"queries ranging over an emptied relation: all strategies = naive"
    ~count:200
    QCheck.(make Gen.(int_range 0 100_000))
    empty_range_agree_on

(* Torture: random query, random database configuration — possibly an
   emptied relation, permanent indexes, paged storage — and every
   strategy preset must still equal the naive evaluator. *)
let torture seed =
  let db = Workload.Random_query.tiny_db ((seed * 48271) + 1) in
  (* Randomized environment, derived deterministically from the seed. *)
  if seed land 1 = 0 then
    Relation.clear
      (Database.find_relation db
         (List.nth Workload.Random_query.relations (seed mod 4)));
  if seed land 2 = 0 then begin
    ignore (Database.register_index db "timetable" ~on:"tcnr");
    ignore (Database.register_index db "papers" ~on:"penr")
  end;
  if seed land 4 = 0 then
    ignore (Database.attach_storage db ~pool_pages:((seed mod 7) + 2));
  let q = Workload.Random_query.generate db (seed + 3) in
  let expected = Naive_eval.run db q in
  List.for_all
    (fun (sname, strategy) ->
      Relation.equal_set expected (exec_q ~opts:(Exec_opts.make ~strategy ()) db q)
      ||
      QCheck.Test.fail_reportf "torture: %s differs on seed %d:@.%a" sname seed
        Calculus.pp_query q)
    Strategy.all_presets

let test_torture =
  QCheck.Test.make
    ~name:"torture: random db config (empty/indexes/paged) x strategies"
    ~count:120
    QCheck.(make Gen.(int_range 0 100_000))
    torture

(* The two combination engines are interchangeable: for every strategy
   preset, the streaming cost-ordered pipeline and the declaration-order
   baseline return the same result set, and both match naive. *)
let engines_agree_on seed =
  let db = Workload.Random_query.tiny_db ((seed * 15485863) + 5) in
  let q = Workload.Random_query.generate db (seed + 57) in
  let expected = Naive_eval.run db q in
  List.for_all
    (fun (sname, strategy) ->
      let ordered =
        exec_q ~opts:(Exec_opts.make ~strategy ~join_order:Combination.Cost_ordered ()) db q
      in
      let decl =
        exec_q ~opts:(Exec_opts.make ~strategy ~join_order:Combination.Declaration ()) db q
      in
      (Relation.equal_set expected ordered && Relation.equal_set expected decl)
      ||
      QCheck.Test.fail_reportf
        "combination engines disagree under %s on seed %d:@.%a" sname seed
        Calculus.pp_query q)
    Strategy.all_presets

let test_engines_agree =
  QCheck.Test.make
    ~name:"random queries: streaming and declaration engines = naive"
    ~count:120
    QCheck.(make Gen.(int_range 0 100_000))
    engines_agree_on

let suite =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest test_random_equivalence;
        QCheck_alcotest.to_alcotest test_roundtrip;
        QCheck_alcotest.to_alcotest test_adaptation;
        QCheck_alcotest.to_alcotest test_empty_ranges;
        QCheck_alcotest.to_alcotest test_torture;
        QCheck_alcotest.to_alcotest test_engines_agree;
      ] );
  ]
