(* The transactional Session surface: snapshot visibility, own-write
   reads, abort semantics, first-committer-wins conflicts, and the
   frozen committed states of a durable database. *)

open Pascalr
open Relalg

let mk_db () = Workload.Suppliers.generate Workload.Suppliers.default_params

(* All supplier numbers — snr is the key, so the result cardinality
   counts suppliers exactly. *)
let all_snrs =
  {
    Calculus.free = [ ("s", Calculus.base "suppliers") ];
    select = [ ("s", "snr") ];
    body = Calculus.F_true;
  }

let supplier n name db =
  Tuple.of_list [ Value.int n; Value.str name; Workload.Suppliers.london db ]

let count txn = Relation.cardinality (Session.Txn.exec txn all_snrs)

(* ---------------------------------------------------------------- *)

let test_write_then_read () =
  let db = mk_db () in
  let s = Session.create db in
  let before = Session.read s count in
  Session.write s (fun txn ->
      Session.Txn.insert txn "suppliers" (supplier 900 "newcomer" db));
  Alcotest.(check int)
    "committed write visible to a later read" (before + 1)
    (Session.read s count);
  Alcotest.(check int)
    "and to autocommit exec" (before + 1)
    (Relation.cardinality (Session.exec s all_snrs))

let test_own_writes_visible_buffered () =
  let db = mk_db () in
  let s = Session.create db in
  let before = Session.read s count in
  Session.write s (fun txn ->
      Session.Txn.insert txn "suppliers" (supplier 901 "insider" db);
      Alcotest.(check int)
        "own buffered write visible inside the transaction" (before + 1)
        (count txn);
      (* A concurrent reader pins the committed state: the buffered
         insert is invisible until commit. *)
      Alcotest.(check int)
        "uncommitted write invisible to other sessions" before
        (Session.read (Session.create db) count));
  Alcotest.(check int) "visible after commit" (before + 1) (Session.read s count)

exception Changed_my_mind

let test_abort_discards () =
  let db = mk_db () in
  let s = Session.create db in
  let before = Session.read s count in
  (try
     Session.write s (fun txn ->
         Session.Txn.insert txn "suppliers" (supplier 902 "phantom" db);
         raise Changed_my_mind)
   with Changed_my_mind -> ());
  Alcotest.(check int)
    "aborted write left no trace" before (Session.read s count);
  (* delete + clear buffer and abort the same way *)
  (try
     Session.write s (fun txn ->
         Session.Txn.clear txn "suppliers";
         Alcotest.(check int) "buffered clear empties own view" 0 (count txn);
         raise Changed_my_mind)
   with Changed_my_mind -> ());
  Alcotest.(check int) "aborted clear left no trace" before (Session.read s count)

let test_first_committer_wins () =
  let db = mk_db () in
  let s = Session.create db in
  let before = Session.read s count in
  (match
     Session.write s (fun txn ->
         Session.Txn.insert txn "suppliers" (supplier 903 "loser" db);
         (* A second transaction commits the same relation while ours
            is still open: ours must lose at commit. *)
         Database.with_write db (fun other ->
             Database.Txn.insert other "suppliers" (supplier 904 "winner" db)))
   with
  | () -> Alcotest.fail "expected Txn_conflict"
  | exception Errors.Txn_conflict _ -> ());
  let after = Session.read s count in
  Alcotest.(check int) "only the winner committed" (before + 1) after;
  Alcotest.(check bool) "winner's row present" true
    (Relation.find_key (Database.find_relation db "suppliers")
       [ Value.int 904 ]
    <> None);
  Alcotest.(check bool) "loser's row absent" true
    (Relation.find_key (Database.find_relation db "suppliers")
       [ Value.int 903 ]
    = None)

let test_disjoint_writers_both_commit () =
  let db = mk_db () in
  let s = Session.create db in
  (* Writes to different relations do not conflict. *)
  Session.write s (fun txn ->
      Session.Txn.insert txn "suppliers" (supplier 905 "alice" db);
      Database.with_write db (fun other ->
          Database.Txn.delete_key other "shipments"
            (Tuple.key_of
               (Relation.schema (Database.find_relation db "shipments"))
               (List.hd
                  (Relation.to_list (Database.find_relation db "shipments"))))));
  Alcotest.(check bool) "snapshot writer committed" true
    (Relation.find_key (Database.find_relation db "suppliers")
       [ Value.int 905 ]
    <> None)

let test_durable_states_frozen () =
  let path = Filename.temp_file "pascalr_txn" ".pascalrdb" in
  let cleanup () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; path ^ ".tmp"; path ^ ".wal" ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let db = mk_db () in
      Database.attach_wal db ~path;
      let suppliers = Database.find_relation db "suppliers" in
      (match Relation.insert suppliers (supplier 906 "intruder" db) with
      | () -> Alcotest.fail "expected Frozen"
      | exception Errors.Frozen _ -> ());
      (* The transactional path is the only mutation route. *)
      let s = Session.create db in
      Session.write s (fun txn ->
          Session.Txn.insert txn "suppliers" (supplier 907 "legit" db));
      Alcotest.(check bool) "txn write landed" true
        (Relation.find_key (Database.find_relation db "suppliers")
           [ Value.int 907 ]
        <> None);
      Database.close db;
      (* Reopen: the committed transaction survived the WAL round trip. *)
      let db2 = Database.open_durable ~path in
      Alcotest.(check bool) "txn write durable across reopen" true
        (Relation.find_key (Database.find_relation db2 "suppliers")
           [ Value.int 907 ]
        <> None);
      Database.close db2)

(* ---------------------------------------------------------------- *)
(* Secondary indexes across the transaction lifecycle: commits carry
   the incremental maintenance, aborts discard it, WAL crash replay
   rebuilds it. *)

let all_indexes_consistent db =
  List.for_all
    (fun (rel_name, _, _) ->
      let rel = Database.find_relation db rel_name in
      List.for_all
        (fun ix -> Secondary_index.consistent_with ix rel)
        (Database.secondary_indexes db rel_name))
    (Database.secondary_index_list db)

let test_index_survives_commit () =
  let db = mk_db () in
  ignore
    (Database.declare_index db "suppliers" ~on:[ "scity" ] : Secondary_index.t);
  let s = Session.create db in
  Session.write s (fun txn ->
      Session.Txn.insert txn "suppliers" (supplier 910 "alice" db);
      Session.Txn.insert txn "suppliers" (supplier 911 "bob" db);
      Session.Txn.delete_key txn "suppliers" [ Value.int 910 ]);
  (* Commit installs the transaction's copy-on-write clone, so the
     catalog is consulted after the fact — a pre-transaction handle is
     a stale snapshot by design. *)
  let ix =
    match Database.secondary_on db "suppliers" "scity" with
    | ix :: _ -> ix
    | [] -> Alcotest.fail "index vanished from the catalog"
  in
  Alcotest.(check bool) "committed writes maintained the index" true
    (Secondary_index.consistent_with ix
       (Database.find_relation db "suppliers"));
  Alcotest.(check bool) "new tuple probeable by city" true
    (List.exists
       (fun t -> Value.equal (Tuple.get t 0) (Value.int 911))
       (Secondary_index.probe1 ix (Workload.Suppliers.london db)))

let test_index_survives_abort () =
  let db = mk_db () in
  let ix = Database.declare_index db "suppliers" ~on:[ "scity" ] in
  let entries = Secondary_index.entry_count ix in
  let s = Session.create db in
  (try
     Session.write s (fun txn ->
         Session.Txn.insert txn "suppliers" (supplier 912 "ghost" db);
         failwith "abort")
   with Failure _ -> ());
  Alcotest.(check int) "aborted insert left the entry count" entries
    (Secondary_index.entry_count ix);
  Alcotest.(check bool) "aborted txn left the index consistent" true
    (Secondary_index.consistent_with ix
       (Database.find_relation db "suppliers"));
  Alcotest.(check bool) "ghost tuple not probeable" false
    (List.exists
       (fun t -> Value.equal (Tuple.get t 0) (Value.int 912))
       (Secondary_index.probe1 ix (Workload.Suppliers.london db)))

let test_index_survives_wal_replay () =
  let path = Filename.temp_file "pascalr_txn_ix" ".pascalrdb" in
  let cleanup () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; path ^ ".tmp"; path ^ ".wal" ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let db = mk_db () in
      ignore
        (Database.declare_index db "suppliers" ~on:[ "scity" ]
          : Secondary_index.t);
      Database.attach_wal db ~path;
      let s = Session.create db in
      Session.write s (fun txn ->
          Session.Txn.insert txn "suppliers" (supplier 913 "durable" db));
      (* No close, no checkpoint: the reopen is crash recovery — the
         insert lives only in the WAL tail and must be replayed into
         both the heap and the secondary index. *)
      let db2 = Database.open_durable ~path in
      Alcotest.(check bool) "replayed write visible" true
        (Relation.find_key (Database.find_relation db2 "suppliers")
           [ Value.int 913 ]
        <> None);
      Alcotest.(check bool) "every index consistent after replay" true
        (all_indexes_consistent db2);
      Alcotest.(check bool) "replayed tuple probeable" true
        (List.exists
           (fun t -> Value.equal (Tuple.get t 0) (Value.int 913))
           (List.concat_map
              (fun ix -> Secondary_index.probe1 ix (Workload.Suppliers.london db2))
              (Database.secondary_on db2 "suppliers" "scity")));
      Database.close db2;
      Database.close db)

let suite =
  [
    ( "txn",
      [
        Alcotest.test_case "committed write visible to later reads" `Quick
          test_write_then_read;
        Alcotest.test_case "own writes buffered, isolated until commit" `Quick
          test_own_writes_visible_buffered;
        Alcotest.test_case "exception aborts and discards the buffer" `Quick
          test_abort_discards;
        Alcotest.test_case "first committer wins on overlap" `Quick
          test_first_committer_wins;
        Alcotest.test_case "disjoint writers both commit" `Quick
          test_disjoint_writers_both_commit;
        Alcotest.test_case "durable states frozen outside transactions" `Quick
          test_durable_states_frozen;
        Alcotest.test_case "secondary index maintained across commit" `Quick
          test_index_survives_commit;
        Alcotest.test_case "secondary index untouched by abort" `Quick
          test_index_survives_abort;
        Alcotest.test_case "secondary index rebuilt by WAL crash replay" `Quick
          test_index_survives_wal_replay;
      ] );
  ]
