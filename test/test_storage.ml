(* The paged storage layer: tuple codec round trips, heap-file packing,
   buffer-pool accounting, and full engine equivalence over paged
   relations. *)

open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q =
  Pascalr.Session.exec ?opts (Pascalr.Session.create db) q


let status =
  { Value.enum_name = "statustype"; labels = [| "student"; "professor" |] }

let schema =
  Schema.make
    [
      Schema.attr "id" Vtype.int_full;
      Schema.attr "name" Vtype.string_any;
      Schema.attr "st" (Vtype.TEnum status);
      Schema.attr "flag" Vtype.boolean;
    ]
    ~key:[ "id" ]

let sample_tuple n =
  Tuple.of_list
    [
      Value.int n;
      Value.str (Printf.sprintf "name-%d" n);
      Value.enum_ordinal status (n land 1);
      Value.bool (n land 3 = 0);
    ]

let test_codec_roundtrip () =
  List.iter
    (fun n ->
      let t = sample_tuple n in
      let decoded = Codec.decode_tuple schema (Codec.encode_tuple schema t) in
      Alcotest.check Helpers.tuple (Printf.sprintf "round trip %d" n) t decoded)
    [ 0; 1; 2; 42; -7; max_int; min_int ]

let test_codec_roundtrip_random =
  let gen = QCheck.Gen.(pair int (pair small_string bool)) in
  QCheck.Test.make ~name:"codec round trip (random)" ~count:300
    (QCheck.make gen)
    (fun (n, (s, b)) ->
      let t =
        Tuple.of_list
          [ Value.int n; Value.str s; Value.enum_ordinal status 1; Value.bool b ]
      in
      Tuple.equal t (Codec.decode_tuple schema (Codec.encode_tuple schema t)))

let test_codec_reference () =
  let rschema =
    Schema.make [ Schema.attr "r" (Vtype.reference "employees") ] ~key:[]
  in
  let t =
    Tuple.of_list
      [
        Value.VRef
          (Reference.make ~target:"employees"
             ~key:[ Value.int 7; Value.str "k"; Value.enum_ordinal status 1 ]);
      ]
  in
  let decoded = Codec.decode_tuple rschema (Codec.encode_tuple rschema t) in
  Alcotest.(check bool) "reference round trip (equality)" true
    (Tuple.equal t decoded)

let test_heap_file_packing () =
  let hf = Heap_file.create () in
  let pool = Buffer_pool.create ~capacity:4 in
  for i = 1 to 200 do
    Heap_file.append hf (Codec.encode_tuple schema (sample_tuple i))
  done;
  Alcotest.(check int) "200 records" 200 (Heap_file.record_count hf);
  Alcotest.(check bool) "multiple pages" true (Heap_file.page_count hf > 1);
  let seen = ref 0 in
  Heap_file.iter ~pool hf (fun bytes ->
      ignore (Codec.decode_tuple schema bytes);
      incr seen);
  Alcotest.(check int) "all records iterated" 200 !seen;
  Alcotest.(check int) "one fetch per page"
    (Heap_file.page_count hf)
    (Buffer_pool.stats pool).Buffer_pool.fetches

let test_buffer_pool_lru () =
  let pool = Buffer_pool.create ~capacity:2 in
  (* pages 0,1 fit; 2 evicts 0; re-access 0 misses again. *)
  ignore (Buffer_pool.access pool ~file:1 ~page:0);
  ignore (Buffer_pool.access pool ~file:1 ~page:1);
  Alcotest.(check bool) "page 1 hit" true (Buffer_pool.access pool ~file:1 ~page:1);
  ignore (Buffer_pool.access pool ~file:1 ~page:2);
  Alcotest.(check bool) "page 0 evicted" false
    (Buffer_pool.access pool ~file:1 ~page:0);
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "misses" 4 s.Buffer_pool.misses;
  Alcotest.(check bool) "evictions happened" true (s.Buffer_pool.evictions >= 2);
  Alcotest.(check int) "resident bounded" 2 (Buffer_pool.resident_count pool)

let test_paged_relation_scan () =
  let r = Relation.create ~name:"r" schema in
  for i = 1 to 100 do
    Relation.insert r (sample_tuple i)
  done;
  let pool = Buffer_pool.create ~capacity:8 in
  Relation.attach_storage r ~pool;
  Alcotest.(check bool) "pages allocated" true
    (match Relation.backing_pages r with Some n -> n > 1 | None -> false);
  (* Scans decode the same set of tuples. *)
  let seen = ref [] in
  Relation.scan (fun t -> seen := t :: !seen) r;
  Alcotest.(check int) "all tuples scanned" 100 (List.length !seen);
  Alcotest.(check bool) "same set" true
    (List.for_all (Relation.mem_tuple r) !seen);
  (* Insert-through and delete-rebuild. *)
  Relation.insert r (sample_tuple 101);
  Relation.delete_key r [ Value.int 1 ];
  let count = ref 0 in
  Relation.scan (fun _ -> incr count) r;
  Alcotest.(check int) "after update" 100 !count;
  Alcotest.(check bool) "pool counted reads" true
    ((Buffer_pool.stats pool).Buffer_pool.fetches > 0)

(* The whole engine over a fully paged database returns the same
   answers. *)
let test_engine_over_paged_database () =
  let db = Workload.University.generate Workload.University.small_params in
  let reference =
    List.map
      (fun q -> Pascalr.Naive_eval.run db q)
      [
        Workload.Queries.running_query db;
        Workload.Queries.universal_query db;
        Workload.Queries.example_4_7 db;
      ]
  in
  let pool = Database.attach_storage db ~pool_pages:16 in
  List.iteri
    (fun i q ->
      List.iter
        (fun (sname, strategy) ->
          let r = exec_q ~opts:(Pascalr.Exec_opts.make ~strategy ()) db q in
          Alcotest.(check bool)
            (Printf.sprintf "query %d / %s over paged storage" i sname)
            true
            (Relation.equal_set (List.nth reference i) r))
        Pascalr.Strategy.all_presets)
    [
      Workload.Queries.running_query db;
      Workload.Queries.universal_query db;
      Workload.Queries.example_4_7 db;
    ];
  Alcotest.(check bool) "pool saw traffic" true
    ((Buffer_pool.stats pool).Buffer_pool.fetches > 0)

(* Page I/O, the 1982 cost model: on a paged database the naive
   evaluator's repeated scans cost far more page fetches than the
   collected evaluation. *)
let test_page_io_cost_model () =
  (* The database must span more pages than the pool holds, so the
     naive evaluator's repeated scans thrash. *)
  let make () =
    let db = Workload.University.generate Workload.University.default_params in
    let pool = Database.attach_storage db ~pool_pages:4 in
    (db, pool)
  in
  let q db = Workload.Queries.running_query db in
  let db1, pool1 = make () in
  ignore (Pascalr.Naive_eval.run db1 (q db1));
  let naive_io = (Buffer_pool.stats pool1).Buffer_pool.misses in
  let db2, pool2 = make () in
  ignore (exec_q ~opts:(Pascalr.Exec_opts.make ~strategy:Pascalr.Strategy.s1234 ()) db2 (q db2));
  let full_io = (Buffer_pool.stats pool2).Buffer_pool.misses in
  Alcotest.(check bool)
    (Printf.sprintf "page reads: naive %d > full pipeline %d" naive_io full_io)
    true (naive_io > full_io)

let suite =
  [
    ( "storage",
      [
        Alcotest.test_case "codec round trip" `Quick test_codec_roundtrip;
        QCheck_alcotest.to_alcotest test_codec_roundtrip_random;
        Alcotest.test_case "codec references" `Quick test_codec_reference;
        Alcotest.test_case "heap file packing" `Quick test_heap_file_packing;
        Alcotest.test_case "buffer pool LRU" `Quick test_buffer_pool_lru;
        Alcotest.test_case "paged relation scan" `Quick
          test_paged_relation_scan;
        Alcotest.test_case "engine over paged database" `Quick
          test_engine_over_paged_database;
        Alcotest.test_case "page I/O cost model" `Quick
          test_page_io_cost_model;
      ] );
  ]
