(* Unit tests for strategy 4's plan transformation: splitting conditions
   (Lemma 1), quantifier swapping, operator orientation, and the nested
   pushes of Example 4.7. *)

open Pascalr
open Pascalr.Calculus
open Relalg

(* One-shot autocommit through a throwaway session: the migration shim
   for call sites that evaluate a query against a bare database. *)
let exec_q ?opts db q = Session.exec ?opts (Session.create db) q
let exec_q_report ?opts db q = Session.exec_report ?opts (Session.create db) q


let prepare_plan db q strategy = Session.plan_only ~opts:(Exec_opts.make ~strategy:strategy ()) db q

(* SOME with one dyadic term: pushed. *)
let test_some_single_dyadic_pushed () =
  let db = Fixtures.make () in
  let q = Workload.Queries.minmax_some_query db in
  let plan = prepare_plan db q Strategy.s1234 in
  Alcotest.(check int) "prefix emptied" 0 (List.length plan.Plan.prefix);
  let conj = List.hd plan.Plan.conjs in
  Alcotest.(check int) "one derived predicate" 1 (List.length conj.Plan.derived);
  let vm, p = List.hd conj.Plan.derived in
  Alcotest.(check string) "attached to e" "e" vm;
  Alcotest.(check string) "pushed variable" "p" p.Plan.p_var;
  Alcotest.(check string) "outer attr" "enr" p.Plan.p_outer_attr;
  Alcotest.(check string) "inner attr" "penr" p.Plan.p_inner_attr

(* Orientation: the atom p.penr >= e.enr must orient to e.enr <= p.penr. *)
let test_orientation_flips () =
  let db = Fixtures.make () in
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body = f_some "p" (base "papers") (ge (attr "p" "penr") (attr "e" "enr"));
    }
  in
  let plan = prepare_plan db q Strategy.s1234 in
  let _, p = List.hd (List.hd plan.Plan.conjs).Plan.derived in
  Alcotest.(check string) "op flipped to <=" "<="
    (Value.comparison_to_string p.Plan.p_op);
  (* And the answer matches the naive evaluator. *)
  Alcotest.(check bool) "correct" true
    (Relation.equal_set (Naive_eval.run db q)
       (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q))

(* Two dyadic terms over the same quantified variable: not pushable. *)
let test_two_dyadics_not_pushed () =
  let db = Fixtures.make () in
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_some "t" (base "timetable")
          (f_and
             (eq (attr "t" "tenr") (attr "e" "enr"))
             (le (attr "t" "tcnr") (attr "e" "enr")));
    }
  in
  let plan = prepare_plan db q Strategy.s1234 in
  Alcotest.(check int) "t stays in the prefix" 1 (List.length plan.Plan.prefix)

(* An ALL variable occurring in two conjunctions: Lemma 1 forbids the
   split. *)
let test_all_in_two_conjunctions_not_pushed () =
  let db = Fixtures.make () in
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_all "p" (base "papers")
          (f_or
             (f_and (eq (attr "p" "penr") (attr "e" "enr")) (eq (attr "e" "estatus") (const (Workload.Queries.professor db))))
             (f_and (ne (attr "p" "penr") (attr "e" "enr")) (lt (attr "e" "enr") (cint 3))));
    }
  in
  let plan = prepare_plan db q Strategy.s12 in
  (* sanity: p occurs in both conjunctions *)
  let p_conjs =
    List.filter
      (fun c -> Var_set.mem "p" (Plan.conj_vars c))
      plan.Plan.conjs
  in
  Alcotest.(check int) "p in two conjunctions" 2 (List.length p_conjs);
  let pushed = prepare_plan db q Strategy.s1234 in
  Alcotest.(check int) "p stays in the prefix" 1
    (List.length pushed.Plan.prefix);
  (* A SOME variable in two conjunctions IS pushable. *)
  let q_some =
    { q with body = (match q.body with
        | F_all (v, r, f) -> F_some (v, r, f)
        | f -> f) }
  in
  let pushed_some = prepare_plan db q_some Strategy.s1234 in
  Alcotest.(check int) "SOME p leaves the prefix" 0
    (List.length pushed_some.Plan.prefix);
  (* Both agree with naive regardless. *)
  List.iter
    (fun query ->
      Alcotest.(check bool) "correct" true
        (Relation.equal_set (Naive_eval.run db query)
           (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db query)))
    [ q; q_some ]

(* Swapping: SOME/ALL that share a conjunction must not swap; the
   movability check blocks the push of the non-rightmost variable. *)
let test_dependent_quantifiers_not_swapped () =
  let db = Fixtures.make () in
  (* ALL p SOME t with p and t in the same conjunction: t (rightmost) is
     pushable, after which p's conjunction shape decides p. *)
  let q =
    {
      free = [ ("e", base "employees") ];
      select = [ ("e", "enr") ];
      body =
        f_all "p" (base "papers")
          (f_some "t" (base "timetable")
             (f_and
                (eq (attr "t" "tenr") (attr "p" "penr"))
                (eq (attr "p" "penr") (attr "e" "enr"))));
    }
  in
  let plan0 = prepare_plan db q Strategy.s12 in
  (match plan0.Plan.prefix with
  | [ a; b ] ->
    Alcotest.(check bool) "p before t" true
      (String.equal a.Normalize.v "p" && String.equal b.Normalize.v "t");
    (* p cannot move right past t: they share a conjunction and have
       different quantifiers. *)
    Alcotest.(check bool) "p not movable" false
      (Quant_push.movable_to_rightmost plan0 plan0.Plan.prefix a);
    Alcotest.(check bool) "t trivially movable" true
      (Quant_push.movable_to_rightmost plan0 plan0.Plan.prefix b)
  | _ -> Alcotest.fail "expected two prefix entries");
  Alcotest.(check bool) "correct" true
    (Relation.equal_set (Naive_eval.run db q)
       (exec_q ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q))

(* Example 4.7's nesting: pushing c, then t, then p produces a derived
   predicate on t that nests c's. *)
let test_nested_pushes_example_4_7 () =
  let db = Fixtures.make () in
  let q = Workload.Queries.example_4_7 db in
  let plan = prepare_plan db q Strategy.s1234 in
  Alcotest.(check int) "prefix emptied" 0 (List.length plan.Plan.prefix);
  (* One conjunction carries a derived SOME-t predicate whose nested
     list contains the SOME-c predicate (tset built from cset). *)
  let nested_found =
    List.exists
      (fun (c : Plan.conj) ->
        List.exists
          (fun ((_, p) : var * Plan.pushed) ->
            String.equal p.Plan.p_var "t" && p.Plan.p_nested <> [])
          c.Plan.derived)
      plan.Plan.conjs
  in
  Alcotest.(check bool) "t's predicate nests c's (cset within tset)" true
    nested_found

(* The pushed plan's value lists choose the paper's storage policies. *)
let test_storage_policies_via_pipeline () =
  let db = Workload.University.generate Workload.University.small_params in
  let check q expect_max =
    let report = exec_q_report ~opts:(Exec_opts.make ~strategy:Strategy.s1234 ()) db q in
    let vlist_total =
      List.fold_left
        (fun acc (key, size) ->
          if String.length key >= 6 && String.sub key 0 6 = "vlist:" then
            acc + size
          else acc)
        0 report.Exec_result.intermediates
    in
    Alcotest.(check bool)
      (Printf.sprintf "stored %d <= %d" vlist_total expect_max)
      true
      (vlist_total <= expect_max && vlist_total > 0)
  in
  check (Workload.Queries.minmax_some_query db) 2;
  check (Workload.Queries.minmax_all_query db) 2;
  check (Workload.Queries.all_eq_query db) 1;
  check (Workload.Queries.some_ne_query db) 1

let suite =
  [
    ( "quant_push",
      [
        Alcotest.test_case "SOME single dyadic pushed" `Quick
          test_some_single_dyadic_pushed;
        Alcotest.test_case "operator orientation" `Quick test_orientation_flips;
        Alcotest.test_case "two dyadics not pushed" `Quick
          test_two_dyadics_not_pushed;
        Alcotest.test_case "ALL in two conjunctions not pushed (Lemma 1)"
          `Quick test_all_in_two_conjunctions_not_pushed;
        Alcotest.test_case "dependent quantifiers not swapped" `Quick
          test_dependent_quantifiers_not_swapped;
        Alcotest.test_case "nested pushes (Example 4.7)" `Quick
          test_nested_pushes_example_4_7;
        Alcotest.test_case "storage policies" `Quick
          test_storage_policies_via_pipeline;
      ] );
  ]
