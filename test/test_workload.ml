(* The traffic driver: schedule generation (deterministic under seed,
   exponential arrivals matching the offered rate, warmup flagging) and
   the run-level determinism contract — the (scenario class, rows_out)
   result multiset is independent of the client-domain count. *)

module D = Workload.Driver

let small_db () = Workload.University.generate Workload.University.small_params

(* --------------------------------------------------------------- *)
(* Schedule generation *)

let sched_key r = (r.D.rq_index, r.D.rq_class, r.D.rq_at_ms, r.D.rq_warmup)

let test_schedule_deterministic () =
  let db = small_db () in
  let mix = D.university_mix db in
  List.iter
    (fun mode ->
      let s1 = D.schedule mode ~requests:50 ~warmup:10 ~seed:7 mix in
      let s2 = D.schedule mode ~requests:50 ~warmup:10 ~seed:7 mix in
      Alcotest.(check int) "length" 50 (Array.length s1);
      Alcotest.(check bool) "same seed, same schedule" true
        (Array.for_all2 (fun a b -> sched_key a = sched_key b) s1 s2);
      let s3 = D.schedule mode ~requests:50 ~warmup:10 ~seed:8 mix in
      Alcotest.(check bool) "different seed, different draws" false
        (Array.for_all2 (fun a b -> sched_key a = sched_key b) s1 s3))
    [ D.Closed; D.Open 100.0 ]

let test_schedule_arrivals () =
  let db = small_db () in
  let mix = D.university_mix db in
  (* Closed-loop requests carry no arrival offsets. *)
  let closed = D.schedule D.Closed ~requests:30 ~warmup:5 ~seed:3 mix in
  Alcotest.(check bool) "closed: all at_ms zero" true
    (Array.for_all (fun r -> r.D.rq_at_ms = 0.0) closed);
  (* Open loop: offsets are strictly increasing and the empirical mean
     inter-arrival converges on 1000/rate ms.  2000 exponential draws
     put the sample mean within a few percent of the true mean with
     overwhelming probability; 15% absorbs unlucky seeds. *)
  let rate = 100.0 in
  let n = 2000 in
  let s = D.schedule (D.Open rate) ~requests:n ~warmup:0 ~seed:42 mix in
  let increasing = ref true in
  Array.iteri
    (fun i r -> if i > 0 && r.D.rq_at_ms <= s.(i - 1).D.rq_at_ms then increasing := false)
    s;
  Alcotest.(check bool) "open: offsets strictly increasing" true !increasing;
  let mean_gap = s.(n - 1).D.rq_at_ms /. float_of_int (n - 1) in
  let expected = 1000.0 /. rate in
  Alcotest.(check bool)
    (Printf.sprintf "mean inter-arrival %.2fms within 15%% of %.2fms" mean_gap
       expected)
    true
    (Float.abs (mean_gap -. expected) <= 0.15 *. expected)

let test_schedule_warmup_flags () =
  let db = small_db () in
  let mix = D.university_mix db in
  let s = D.schedule D.Closed ~requests:25 ~warmup:10 ~seed:1 mix in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "request %d warmup flag" i)
        (i < 10) r.D.rq_warmup)
    s

let test_schedule_validation () =
  let db = small_db () in
  let mix = D.university_mix db in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "requests <= 0 rejected" true
    (raises (fun () -> D.schedule D.Closed ~requests:0 ~warmup:0 ~seed:1 mix));
  Alcotest.(check bool) "warmup >= requests rejected" true
    (raises (fun () -> D.schedule D.Closed ~requests:5 ~warmup:5 ~seed:1 mix));
  Alcotest.(check bool) "negative warmup rejected" true
    (raises (fun () -> D.schedule D.Closed ~requests:5 ~warmup:(-1) ~seed:1 mix));
  Alcotest.(check bool) "non-positive rate rejected" true
    (raises (fun () -> D.schedule (D.Open 0.0) ~requests:5 ~warmup:0 ~seed:1 mix));
  Alcotest.(check bool) "empty mix rejected" true
    (raises (fun () -> D.schedule D.Closed ~requests:5 ~warmup:0 ~seed:1 []))

(* --------------------------------------------------------------- *)
(* Runs: warmup exclusion and the report's accounting *)

let test_run_warmup_excluded () =
  let db = small_db () in
  let mix = D.university_mix db in
  let requests = 40 and warmup = 15 in
  let cfg = D.config ~clients:2 ~requests ~warmup ~seed:9 () in
  let r = D.run cfg db mix in
  let measured = requests - warmup in
  Alcotest.(check int) "histogram holds only non-warmup requests" measured
    (Obs.Histogram.count r.D.r_latency);
  Alcotest.(check int) "one result entry per non-warmup request" measured
    (List.length r.D.r_results);
  Alcotest.(check int) "class request counts sum to the measured total"
    measured
    (List.fold_left (fun acc c -> acc + c.D.cs_requests) 0 r.D.r_classes);
  let class_histo_total =
    List.fold_left
      (fun acc c -> acc + Obs.Histogram.count c.D.cs_latency)
      0 r.D.r_classes
  in
  Alcotest.(check int) "class histograms partition the overall one"
    measured class_histo_total;
  Alcotest.(check bool) "achieved throughput is positive" true
    (r.D.r_achieved_rps > 0.0)

(* The determinism contract: same seed, any client count, byte-identical
   result multiset.  Random seeds, tiny runs — the cheap end-to-end
   version of the CLI smoke test. *)
let multiset_on seed =
  let db = small_db () in
  let mix = D.university_mix db in
  let run clients =
    (D.run (D.config ~clients ~requests:18 ~warmup:6 ~seed ()) db mix).D.r_results
  in
  let reference = run 1 in
  List.for_all
    (fun clients ->
      run clients = reference
      || QCheck.Test.fail_reportf
           "clients=%d result multiset diverges at seed %d" clients seed)
    [ 2; 4 ]

let test_multiset_clients_independent =
  QCheck.Test.make
    ~name:"driver runs: result multiset independent of client count"
    ~count:15
    QCheck.(make Gen.(int_range 0 100_000))
    multiset_on

let suite =
  [
    ( "workload-driver",
      [
        Alcotest.test_case "schedule is deterministic under its seed" `Quick
          test_schedule_deterministic;
        Alcotest.test_case "open-loop arrivals match the offered rate" `Quick
          test_schedule_arrivals;
        Alcotest.test_case "warmup flags cover exactly the prefix" `Quick
          test_schedule_warmup_flags;
        Alcotest.test_case "schedule rejects invalid configurations" `Quick
          test_schedule_validation;
        Alcotest.test_case "warmup excluded from histograms and results"
          `Quick test_run_warmup_excluded;
        QCheck_alcotest.to_alcotest test_multiset_clients_independent;
      ] );
  ]
