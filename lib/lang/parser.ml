(* Recursive-descent parser for the PASCAL/R subset: Figure-1
   declarations (TYPE sections and RELATION variables) and selection
   expressions ([<v.a> OF EACH v IN rel: wff]).

   Precedence, lowest first: OR, AND, NOT, comparison. *)

exception Parse_error of string * Token.position

type state = { mutable tokens : Token.spanned list }

let make tokens = { tokens }

let current st =
  match st.tokens with
  | [] -> { Token.token = Token.EOF; pos = { Token.line = 0; column = 0 } }
  | sp :: _ -> sp

let errf st fmt =
  let sp = current st in
  Format.kasprintf
    (fun s ->
      raise
        (Parse_error
           ( Printf.sprintf "%s (found %s)" s (Token.to_string sp.Token.token),
             sp.Token.pos )))
    fmt

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let peek st = (current st).Token.token

let expect st tok =
  if peek st = tok then advance st
  else errf st "expected %s" (Token.to_string tok)

let ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | _ -> errf st "expected an identifier"

let integer st =
  match peek st with
  | Token.INT n ->
    advance st;
    n
  | _ -> errf st "expected an integer"

(* ------------------------------------------------------------------ *)
(* Selection expressions *)

let comparison_of_token = function
  | Token.EQ -> Some Relalg.Value.Eq
  | Token.NE -> Some Relalg.Value.Ne
  | Token.LT -> Some Relalg.Value.Lt
  | Token.LE -> Some Relalg.Value.Le
  | Token.GT -> Some Relalg.Value.Gt
  | Token.GE -> Some Relalg.Value.Ge
  | _ -> None

let parse_operand st =
  match peek st with
  | Token.INT n ->
    advance st;
    Surface.S_int n
  | Token.STRING s ->
    advance st;
    Surface.S_str s
  | Token.PARAM p ->
    advance st;
    Surface.S_param p
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.DOT ->
      advance st;
      Surface.S_attr (name, ident st)
    | _ -> Surface.S_ident name)
  | _ -> errf st "expected an operand"

let rec parse_formula st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = Token.OR then begin
    advance st;
    Surface.S_or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek st = Token.AND then begin
    advance st;
    Surface.S_and (lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if peek st = Token.NOT then begin
    advance st;
    Surface.S_not (parse_not st)
  end
  else parse_primary st

and parse_primary st =
  match peek st with
  | Token.TRUE ->
    advance st;
    Surface.S_true
  | Token.FALSE ->
    advance st;
    Surface.S_false
  | Token.SOME | Token.ALL -> parse_quantifier st
  | Token.LPAREN ->
    advance st;
    let inner = parse_formula st in
    (* Either a parenthesized formula, or the left operand of a
       comparison was parenthesized... comparisons never produce a bare
       formula as operand, so ')' must follow. *)
    expect st Token.RPAREN;
    inner
  | Token.INT _ | Token.STRING _ | Token.IDENT _ | Token.PARAM _ -> (
    let lhs = parse_operand st in
    match comparison_of_token (peek st) with
    | Some op ->
      advance st;
      let rhs = parse_operand st in
      Surface.S_cmp (lhs, op, rhs)
    | None -> errf st "expected a comparison operator")
  | _ -> errf st "expected a formula"

and parse_quantifier st =
  let universal =
    match peek st with
    | Token.ALL ->
      advance st;
      true
    | Token.SOME ->
      advance st;
      false
    | _ -> errf st "expected SOME or ALL"
  in
  let v = ident st in
  expect st Token.IN;
  let range = parse_range st in
  (* The quantified body is the next primary formula: parenthesized wff
     or a nested quantifier (SOME c IN courses SOME t IN timetable (...)). *)
  let body = parse_quantified_body st in
  if universal then Surface.S_all (v, range, body)
  else Surface.S_some (v, range, body)

and parse_quantified_body st =
  match peek st with
  | Token.SOME | Token.ALL -> parse_quantifier st
  | _ ->
    expect st Token.LPAREN;
    let f = parse_formula st in
    expect st Token.RPAREN;
    f

and parse_range st =
  match peek st with
  | Token.IDENT _ -> Surface.S_base (ident st)
  | Token.LBRACKET ->
    advance st;
    expect st Token.EACH;
    let v = ident st in
    expect st Token.IN;
    let rel = ident st in
    expect st Token.COLON;
    let f = parse_formula st in
    expect st Token.RBRACKET;
    Surface.S_restricted (v, rel, f)
  | _ -> errf st "expected a range expression"

(* [<v.a, ...> OF EACH v IN range, ... : wff] *)
let parse_query_body st =
  expect st Token.LBRACKET;
  expect st Token.LT;
  let rec sel acc =
    let v = ident st in
    expect st Token.DOT;
    let a = ident st in
    if peek st = Token.COMMA then begin
      advance st;
      sel ((v, a) :: acc)
    end
    else List.rev ((v, a) :: acc)
  in
  let select = sel [] in
  expect st Token.GT;
  expect st Token.OF;
  let rec frees acc =
    expect st Token.EACH;
    let v = ident st in
    expect st Token.IN;
    let range = parse_range st in
    if peek st = Token.COMMA then begin
      advance st;
      frees ((v, range) :: acc)
    end
    else List.rev ((v, range) :: acc)
  in
  let free = frees [] in
  expect st Token.COLON;
  let body = parse_formula st in
  expect st Token.RBRACKET;
  { Surface.q_select = select; q_free = free; q_body = body }

(* ------------------------------------------------------------------ *)
(* Statement-level PASCAL/R (Examples 3.1/4.2/4.3) *)

(* Tuple-literal / selection-item expressions. *)
let rec parse_expr st =
  match peek st with
  | Token.INT n ->
    advance st;
    Surface.E_int n
  | Token.STRING s ->
    advance st;
    Surface.E_str s
  | Token.AT -> (
    advance st;
    let name = ident st in
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let rec keyvals acc =
        let e = parse_expr st in
        if peek st = Token.COMMA then begin
          advance st;
          keyvals (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let keys = keyvals [] in
      expect st Token.RBRACKET;
      Surface.E_ref_key (name, keys)
    | _ -> Surface.E_ref name)
  | Token.IDENT name -> (
    advance st;
    match peek st with
    | Token.DOT ->
      advance st;
      Surface.E_attr (name, ident st)
    | _ -> Surface.E_ident name)
  | _ -> errf st "expected an expression"

let sel_item_of_expr st = function
  | Surface.E_attr (v, a) -> Surface.Sel_attr (v, a)
  | Surface.E_ref v -> Surface.Sel_ref v
  | Surface.E_int _ | Surface.E_str _ | Surface.E_ident _
  | Surface.E_ref_key _ ->
    errf st "component selections may contain only v.component or @v"

(* After '[': either a tuple literal [<e1, ...>] or a selection
   [<items> OF EACH ... : wff].  Both start with '<' and a comma-
   separated entry list; OF vs ']' disambiguates. *)
let parse_bracketed st =
  expect st Token.LBRACKET;
  expect st Token.LT;
  let rec entries acc =
    let e = parse_expr st in
    if peek st = Token.COMMA then begin
      advance st;
      entries (e :: acc)
    end
    else List.rev (e :: acc)
  in
  let es = entries [] in
  expect st Token.GT;
  match peek st with
  | Token.RBRACKET ->
    advance st;
    `Lit es
  | Token.OF ->
    advance st;
    let items = List.map (sel_item_of_expr st) es in
    let rec frees acc =
      expect st Token.EACH;
      let v = ident st in
      expect st Token.IN;
      let range = parse_range st in
      if peek st = Token.COMMA then begin
        advance st;
        frees ((v, range) :: acc)
      end
      else List.rev ((v, range) :: acc)
    in
    let free = frees [] in
    expect st Token.COLON;
    let body = parse_formula st in
    expect st Token.RBRACKET;
    `Sel { Surface.s_items = items; s_free = free; s_body = body }
  | _ -> errf st "expected ] (tuple literal) or OF (selection)"

let parse_selection_only st =
  match parse_bracketed st with
  | `Sel s -> s
  | `Lit _ -> errf st "expected a selection, found a tuple literal"

(* Optional EXECUTE binding list: ($x = expr, $y = expr, ...) *)
let parse_exec_bindings st =
  match peek st with
  | Token.LPAREN ->
    advance st;
    let rec go acc =
      let p =
        match peek st with
        | Token.PARAM p ->
          advance st;
          p
        | _ -> errf st "expected a $parameter name"
      in
      expect st Token.EQ;
      let e = parse_expr st in
      if peek st = Token.COMMA then begin
        advance st;
        go ((p, e) :: acc)
      end
      else List.rev ((p, e) :: acc)
    in
    let bs = go [] in
    expect st Token.RPAREN;
    bs
  | _ -> []

let rec parse_stmt st =
  match peek st with
  | Token.BEGIN ->
    advance st;
    let body = parse_stmt_list st in
    expect st Token.END;
    Surface.S_block body
  | Token.FOR ->
    advance st;
    expect st Token.EACH;
    let v = ident st in
    expect st Token.IN;
    let range = parse_range st in
    expect st Token.COLON;
    let filter = parse_formula st in
    expect st Token.DO;
    let body = parse_stmt st in
    Surface.S_for (v, range, filter, body)
  | Token.IF ->
    advance st;
    let cond = parse_formula st in
    expect st Token.THEN;
    let then_ = parse_stmt st in
    if peek st = Token.ELSE then begin
      advance st;
      Surface.S_if (cond, then_, Some (parse_stmt st))
    end
    else Surface.S_if (cond, then_, None)
  | Token.PRINT ->
    advance st;
    Surface.S_print (ident st)
  | Token.PREPARE ->
    advance st;
    let name = ident st in
    expect st Token.FOR;
    Surface.S_prepare (name, parse_selection_only st)
  | Token.EXECUTE ->
    advance st;
    let name = ident st in
    Surface.S_execute (None, name, parse_exec_bindings st)
  | Token.IDENT _ -> (
    let name = ident st in
    match peek st with
    | Token.ASSIGN -> (
      advance st;
      match peek st with
      | Token.EXECUTE ->
        advance st;
        let pname = ident st in
        Surface.S_execute (Some name, pname, parse_exec_bindings st)
      | _ -> Surface.S_assign (name, parse_selection_only st))
    | Token.INSERT -> (
      advance st;
      match parse_bracketed st with
      | `Lit es -> Surface.S_insert_lit (name, es)
      | `Sel s -> Surface.S_insert_sel (name, s))
    | Token.REMOVE -> (
      advance st;
      match parse_bracketed st with
      | `Lit es -> Surface.S_remove_lit (name, es)
      | `Sel _ -> errf st "deletion takes a tuple literal")
    | _ -> errf st "expected :=, :+ or :- after %s" name)
  | _ -> errf st "expected a statement"

(* Semicolon-separated statements, as in PASCAL (separator, optional
   trailing). *)
and parse_stmt_list st =
  match peek st with
  | Token.BEGIN | Token.FOR | Token.IF | Token.PRINT | Token.PREPARE
  | Token.EXECUTE | Token.IDENT _ ->
    let s = parse_stmt st in
    if peek st = Token.SEMI then begin
      advance st;
      s :: parse_stmt_list st
    end
    else [ s ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Declarations *)

let parse_type_expr st =
  match peek st with
  | Token.LPAREN ->
    advance st;
    let rec labels acc =
      let l = ident st in
      if peek st = Token.COMMA then begin
        advance st;
        labels (l :: acc)
      end
      else List.rev (l :: acc)
    in
    let ls = labels [] in
    expect st Token.RPAREN;
    Surface.T_enum ls
  | Token.INT _ ->
    let lo = integer st in
    expect st Token.DOTDOT;
    let hi = integer st in
    Surface.T_subrange (lo, hi)
  | Token.PACKED ->
    advance st;
    expect st Token.ARRAY;
    expect st Token.LBRACKET;
    let lo = integer st in
    expect st Token.DOTDOT;
    let hi = integer st in
    expect st Token.RBRACKET;
    expect st Token.OF;
    expect st Token.CHAR;
    if lo <> 1 then errf st "packed arrays must start at 1";
    Surface.T_string hi
  | Token.IDENT _ -> Surface.T_named (ident st)
  | Token.AT ->
    advance st;
    Surface.T_ref (ident st)
  | Token.CHAR ->
    advance st;
    Surface.T_named "char"
  | _ -> errf st "expected a type expression"

(* TYPE name = texpr; name = texpr; ... (ends before VAR or EOF) *)
let parse_type_section st =
  expect st Token.TYPE;
  let rec go acc =
    match peek st with
    | Token.IDENT _ ->
      let name = ident st in
      expect st Token.EQ;
      let te = parse_type_expr st in
      expect st Token.SEMI;
      go ((name, te) :: acc)
    | _ -> List.rev acc
  in
  Surface.D_type (go [])

(* name : RELATION <key> OF RECORD field : type; ... END *)
let parse_relation_decl st name =
  expect st Token.RELATION;
  expect st Token.LT;
  let rec keys acc =
    let k = ident st in
    if peek st = Token.COMMA then begin
      advance st;
      keys (k :: acc)
    end
    else List.rev (k :: acc)
  in
  let key = keys [] in
  expect st Token.GT;
  expect st Token.OF;
  expect st Token.RECORD;
  let rec fields acc =
    match peek st with
    | Token.END ->
      advance st;
      List.rev acc
    | Token.IDENT _ ->
      let fname = ident st in
      expect st Token.COLON;
      let te = parse_type_expr st in
      (match peek st with Token.SEMI -> advance st | _ -> ());
      fields ((fname, te) :: acc)
    | _ -> errf st "expected a field declaration or END"
  in
  let fields = fields [] in
  { Surface.r_name = name; r_key = key; r_fields = fields }

(* VAR name : RELATION ... ; name : RELATION ... ; *)
let parse_var_section st =
  expect st Token.VAR;
  let rec go acc =
    match peek st with
    | Token.IDENT _ ->
      let name = ident st in
      expect st Token.COLON;
      let decl = parse_relation_decl st name in
      (match peek st with Token.SEMI -> advance st | _ -> ());
      go (Surface.D_relation decl :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_program_tokens st =
  let rec go acc =
    match peek st with
    | Token.TYPE -> go (parse_type_section st :: acc)
    | Token.VAR -> go (List.rev_append (List.rev (parse_var_section st)) acc)
    | Token.EOF | Token.BEGIN -> List.rev acc
    | _ -> errf st "expected TYPE, VAR, BEGIN or end of input"
  in
  go []

(* ------------------------------------------------------------------ *)
(* Entry points *)

let query_of_string src =
  let st = make (Lexer.tokenize src) in
  let q = parse_query_body st in
  expect st Token.EOF;
  q

let program_of_string src =
  let st = make (Lexer.tokenize src) in
  let p = parse_program_tokens st in
  expect st Token.EOF;
  p

let formula_of_string src =
  let st = make (Lexer.tokenize src) in
  let f = parse_formula st in
  expect st Token.EOF;
  f

let stmt_of_string src =
  let st = make (Lexer.tokenize src) in
  let s = parse_stmt st in
  expect st Token.EOF;
  s

(* A whole compilation unit: TYPE/VAR sections, then an optional
   BEGIN ... END main block, optionally terminated by '.'. *)
let unit_of_string src =
  let st = make (Lexer.tokenize src) in
  let decls = parse_program_tokens st in
  let main =
    match peek st with
    | Token.BEGIN ->
      advance st;
      let body = parse_stmt_list st in
      expect st Token.END;
      if peek st = Token.DOT then advance st;
      body
    | _ -> []
  in
  expect st Token.EOF;
  { Surface.u_decls = decls; u_main = main }
