(* Hand-written lexer for the PASCAL/R subset.  Keywords are
   case-insensitive (the paper typesets them in upper case); comments
   are PASCAL's (* ... *). *)

exception Lex_error of string * Token.position

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable column : int;
}

let make src = { src; offset = 0; line = 1; column = 1 }

let position st = { Token.line = st.line; column = st.column }

let errf st fmt =
  Format.kasprintf (fun s -> raise (Lex_error (s, position st))) fmt

let peek st =
  if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1]
  else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.column <- 1
  | Some _ -> st.column <- st.column + 1
  | None -> ());
  st.offset <- st.offset + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '(' when peek2 st = Some '*' ->
    advance st;
    advance st;
    skip_comment st;
    skip_ws_and_comments st
  | Some _ | None -> ()

and skip_comment st =
  match peek st with
  | None -> errf st "unterminated comment"
  | Some '*' when peek2 st = Some ')' ->
    advance st;
    advance st
  | Some _ ->
    advance st;
    skip_comment st

let lex_ident st =
  let start = st.offset in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.offset - start)

let lex_int st =
  let start = st.offset in
  while (match peek st with Some c -> is_digit c | None -> false) do
    (* Stop before ".." so subranges like 1900..1999 lex correctly. *)
    advance st
  done;
  int_of_string (String.sub st.src start (st.offset - start))

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> errf st "unterminated string literal"
    | Some '\'' -> (
      advance st;
      (* doubled quote escapes a quote, as in PASCAL *)
      match peek st with
      | Some '\'' ->
        Buffer.add_char buf '\'';
        advance st;
        go ()
      | Some _ | None -> ())
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st : Token.spanned =
  skip_ws_and_comments st;
  let pos = position st in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_ident_start c -> (
      let word = lex_ident st in
      match Token.keyword_of_string word with
      | Some kw -> kw
      | None -> Token.IDENT (String.lowercase_ascii word))
    | Some c when is_digit c -> Token.INT (lex_int st)
    | Some '\'' -> Token.STRING (lex_string st)
    | Some '[' ->
      advance st;
      Token.LBRACKET
    | Some ']' ->
      advance st;
      Token.RBRACKET
    | Some '(' ->
      advance st;
      Token.LPAREN
    | Some ')' ->
      advance st;
      Token.RPAREN
    | Some ',' ->
      advance st;
      Token.COMMA
    | Some ':' -> (
      advance st;
      match peek st with
      | Some '=' ->
        advance st;
        Token.ASSIGN
      | Some '+' ->
        advance st;
        Token.INSERT
      | Some '-' ->
        advance st;
        Token.REMOVE
      | Some _ | None -> Token.COLON)
    | Some '@' ->
      advance st;
      Token.AT
    | Some '$' -> (
      advance st;
      match peek st with
      | Some c when is_ident_start c ->
        Token.PARAM (String.lowercase_ascii (lex_ident st))
      | Some _ | None -> errf st "expected a parameter name after $")
    | Some ';' ->
      advance st;
      Token.SEMI
    | Some '.' ->
      advance st;
      if peek st = Some '.' then begin
        advance st;
        Token.DOTDOT
      end
      else Token.DOT
    | Some '=' ->
      advance st;
      Token.EQ
    | Some '<' -> (
      advance st;
      match peek st with
      | Some '>' ->
        advance st;
        Token.NE
      | Some '=' ->
        advance st;
        Token.LE
      | Some _ | None -> Token.LT)
    | Some '>' -> (
      advance st;
      match peek st with
      | Some '=' ->
        advance st;
        Token.GE
      | Some _ | None -> Token.GT)
    | Some c -> errf st "unexpected character %c" c
  in
  { Token.token = tok; pos }

(* Tokenize a whole source string. *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let sp = next_token st in
    match sp.Token.token with
    | Token.EOF -> List.rev (sp :: acc)
    | _ -> go (sp :: acc)
  in
  go []
