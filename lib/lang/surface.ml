(* Surface abstract syntax: what the parser produces before name
   resolution.  Enumeration labels, booleans and attribute references
   are still plain identifiers here; the elaborator resolves them
   against the declared schema. *)

type operand =
  | S_attr of string * string  (* v.component *)
  | S_int of int
  | S_str of string
  | S_ident of string  (* enum label / boolean constant *)
  | S_param of string  (* $name: placeholder bound at EXECUTE time *)

type comparison = Relalg.Value.comparison

type formula =
  | S_true
  | S_false
  | S_cmp of operand * comparison * operand
  | S_not of formula
  | S_and of formula * formula
  | S_or of formula * formula
  | S_some of string * range * formula
  | S_all of string * range * formula

and range =
  | S_base of string  (* relation name *)
  | S_restricted of string * string * formula  (* [EACH v IN rel: wff] *)

type query = {
  q_select : (string * string) list;  (* <v.a, ...> *)
  q_free : (string * range) list;  (* EACH v IN range, ... *)
  q_body : formula;
}

(* Declarations (Figure 1). *)

type type_expr =
  | T_enum of string list  (* (student, technician, ...) *)
  | T_subrange of int * int  (* 1900..1999 *)
  | T_string of int  (* PACKED ARRAY [1..n] OF char *)
  | T_named of string  (* reference to a declared type, or integer/boolean/char *)
  | T_ref of string  (* @relname: reference type (Figure 2) *)

type relation_decl = {
  r_name : string;
  r_key : string list;  (* <enr, ...> *)
  r_fields : (string * type_expr) list;
}

type decl =
  | D_type of (string * type_expr) list
  | D_relation of relation_decl

type program = decl list

(* Statement-level PASCAL/R (Examples 3.1, 4.2, 4.3): element-oriented
   loops, conditionals, selection assignment, and the insertion (:+) /
   deletion (:-) operators over tuple literals that may contain
   reference expressions. *)

type sel_item =
  | Sel_attr of string * string  (* v.component *)
  | Sel_ref of string  (* @v: a reference to the selected element *)

type selection = {
  s_items : sel_item list;
  s_free : (string * range) list;
  s_body : formula;
}

type expr =
  | E_int of int
  | E_str of string
  | E_ident of string  (* enum label / boolean *)
  | E_attr of string * string  (* v.component of a loop variable *)
  | E_ref of string  (* @v *)
  | E_ref_key of string * expr list  (* @rel[key values] *)

type stmt =
  | S_assign of string * selection  (* rel := [...] *)
  | S_insert_sel of string * selection  (* rel :+ [...] *)
  | S_insert_lit of string * expr list  (* rel :+ [<e1, ...>] *)
  | S_remove_lit of string * expr list  (* rel :- [<e1, ...>] *)
  | S_for of string * range * formula * stmt
      (* FOR EACH v IN rel: wff DO stmt *)
  | S_if of formula * stmt * stmt option
  | S_block of stmt list
  | S_print of string
  | S_prepare of string * selection
      (* PREPARE p FOR [...]: plan once, keep under name p *)
  | S_execute of string option * string * (string * expr) list
      (* [rel :=] EXECUTE p ($x = e, ...); without a target, print *)

(* A compilation unit: declarations plus an optional main block. *)
type unit_ = { u_decls : program; u_main : stmt list }
