(* Elaboration: resolve surface syntax against declarations, producing a
   Relalg database (for programs) and Pascalr calculus queries (for
   selections).  Unqualified identifiers in formulas are enumeration
   labels or booleans; they are resolved by the domain of the opposite
   operand where possible, with a unique-label search as fallback. *)

open Relalg

exception Elab_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Elab_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Programs *)

type tenv = (string * Vtype.t) list

let base_tenv =
  [
    ("integer", Vtype.int_full);
    ("boolean", Vtype.boolean);
    ("char", Vtype.string_width 1);
  ]

let resolve_type db (tenv : tenv) name = function
  | Surface.T_enum labels ->
    let info = Database.declare_enum db name (Array.of_list labels) in
    Vtype.TEnum info
  | Surface.T_subrange (lo, hi) -> Vtype.int_range lo hi
  | Surface.T_string n -> Vtype.string_width n
  | Surface.T_named other -> (
    match List.assoc_opt other tenv with
    | Some ty -> ty
    | None -> errf "unknown type name %s" other)
  | Surface.T_ref rel -> Vtype.reference rel

let elaborate_program ?(db = Database.create ()) (prog : Surface.program) =
  let tenv = ref base_tenv in
  List.iter
    (fun decl ->
      match decl with
      | Surface.D_type bindings ->
        List.iter
          (fun (name, te) ->
            let ty = resolve_type db !tenv name te in
            tenv := (name, ty) :: !tenv)
          bindings
      | Surface.D_relation r ->
        let attrs =
          List.map
            (fun (fname, te) ->
              let ty =
                match te with
                | Surface.T_named n -> (
                  match List.assoc_opt n !tenv with
                  | Some ty -> ty
                  | None -> errf "relation %s: unknown type %s" r.Surface.r_name n)
                | _ -> resolve_type db !tenv (fname ^ "_type") te
              in
              Schema.attr fname ty)
            r.Surface.r_fields
        in
        let schema = Schema.make attrs ~key:r.Surface.r_key in
        ignore (Database.declare_relation db ~name:r.Surface.r_name schema))
    prog;
  db

(* ------------------------------------------------------------------ *)
(* Queries *)

(* Domain of an operand under an environment (variable -> schema), if
   determinable. *)
let operand_domain env = function
  | Surface.S_attr (v, a) -> (
    match List.assoc_opt v env with
    | None -> errf "unbound variable %s" v
    | Some schema ->
      if Schema.mem schema a then Some (Schema.type_of schema a)
      else errf "variable %s has no component %s" v a)
  | Surface.S_int _ -> Some Vtype.int_full
  | Surface.S_str _ -> Some Vtype.string_any
  | Surface.S_ident _ -> None
  | Surface.S_param _ -> None

(* Resolve an unqualified identifier given (maybe) the opposite
   operand's domain. *)
let resolve_ident db context name =
  match name with
  | "true" -> Value.bool true
  | "false" -> Value.bool false
  | _ -> (
    match context with
    | Some (Vtype.TEnum info) -> (
      try Value.enum info name
      with Errors.Type_error _ ->
        errf "%s is not a label of enumeration %s" name info.Value.enum_name)
    | Some ty ->
      errf "identifier %s used where a %s is expected" name (Vtype.to_string ty)
    | None -> (
      (* Unique-label search across all declared enumerations. *)
      let hits =
        List.filter
          (fun info -> Array.exists (String.equal name) info.Value.labels)
          (Database.enums db)
      in
      match hits with
      | [ info ] -> Value.enum info name
      | [] -> errf "cannot resolve identifier %s" name
      | _ :: _ :: _ ->
        errf "identifier %s is a label of several enumerations" name))

let elaborate_operand db context = function
  | Surface.S_attr (v, a) -> Pascalr.Calculus.attr v a
  | Surface.S_int n -> Pascalr.Calculus.cint n
  | Surface.S_str s -> Pascalr.Calculus.cstr s
  | Surface.S_ident name ->
    Pascalr.Calculus.const (resolve_ident db context name)
  | Surface.S_param name -> Pascalr.Calculus.param name

let rec elaborate_formula db env (f : Surface.formula) :
    Pascalr.Calculus.formula =
  match f with
  | Surface.S_true -> Pascalr.Calculus.F_true
  | Surface.S_false -> Pascalr.Calculus.F_false
  | Surface.S_cmp (l, op, r) ->
    let dl = operand_domain env l and dr = operand_domain env r in
    let l' = elaborate_operand db dr l in
    let r' = elaborate_operand db dl r in
    Pascalr.Calculus.mk_atom l' op r'
  | Surface.S_not f -> Pascalr.Calculus.F_not (elaborate_formula db env f)
  | Surface.S_and (a, b) ->
    Pascalr.Calculus.F_and (elaborate_formula db env a, elaborate_formula db env b)
  | Surface.S_or (a, b) ->
    Pascalr.Calculus.F_or (elaborate_formula db env a, elaborate_formula db env b)
  | Surface.S_some (v, range, body) ->
    let range', schema = elaborate_range db range in
    Pascalr.Calculus.F_some (v, range', elaborate_formula db ((v, schema) :: env) body)
  | Surface.S_all (v, range, body) ->
    let range', schema = elaborate_range db range in
    Pascalr.Calculus.F_all (v, range', elaborate_formula db ((v, schema) :: env) body)

and elaborate_range db (range : Surface.range) =
  match range with
  | Surface.S_base rel ->
    let r = Database.find_relation db rel in
    (Pascalr.Calculus.base rel, Relation.schema r)
  | Surface.S_restricted (v, rel, f) ->
    let r = Database.find_relation db rel in
    let schema = Relation.schema r in
    let f' = elaborate_formula db [ (v, schema) ] f in
    (Pascalr.Calculus.restricted rel v f', schema)

let elaborate_query db (q : Surface.query) : Pascalr.Calculus.query =
  let free, env =
    List.fold_left
      (fun (free, env) (v, range) ->
        let range', schema = elaborate_range db range in
        ((v, range') :: free, (v, schema) :: env))
      ([], []) q.Surface.q_free
  in
  let free = List.rev free in
  let body = elaborate_formula db env q.Surface.q_body in
  { Pascalr.Calculus.free; select = q.Surface.q_select; body }

(* One-step conveniences. *)
let query_of_string db src = elaborate_query db (Parser.query_of_string src)

let database_of_string src = elaborate_program (Parser.program_of_string src)
