(** Interpreter for statement-level PASCAL/R: FOR EACH loops,
    conditionals, selection assignment and the [:+] / [:-] operators
    with reference expressions — the element-oriented programs of the
    paper's Examples 3.1, 4.2 and 4.3. *)

open Relalg

exception Runtime_error of string

type binding = { b_rel : Relation.t; b_tuple : Tuple.t }

type env = {
  db : Database.t;
  scope : (string * binding) list;
  session : Pascalr.Session.t;
  prepared : (string, Pascalr.Prepared.t) Hashtbl.t;
  tx : Pascalr.Session.Txn.t option;
}

val make_env : Database.t -> env
(** A fresh top-level environment: empty scope, a new plan-cache-backed
    session, and an empty prepared-query table.  Keep the env across
    [exec] calls so PREPARE/EXECUTE statements can see each other.
    Mutations hit relations in place (no transaction). *)

val txn_env :
  ?prepared:(string, Pascalr.Prepared.t) Hashtbl.t ->
  Pascalr.Session.Txn.t ->
  env
(** An environment executing inside a transaction: statements read the
    pinned snapshot and buffer their mutations in the transaction
    (installed atomically at commit).  This is the only way to execute
    mutating statements against a durable database, whose committed
    relation states are frozen.  [prepared] shares a PREPARE/EXECUTE
    table across transactions (the server loop passes its
    per-connection table). *)

val eval_selection : env -> Surface.selection -> Relation.t
(** Evaluate a selection (items may be [v.component] or [@v]) under the
    current scope; outer loop variables may occur freely in the body. *)

val exec : env -> Surface.stmt -> unit

val run_unit : ?db:Database.t -> Surface.unit_ -> Database.t
(** Elaborate the unit's declarations (into [db] if given), then execute
    its main block; returns the database. *)

val run_string : ?db:Database.t -> string -> Database.t

val exec_string : Database.t -> string -> unit
(** Parse and execute one statement against an existing database. *)
