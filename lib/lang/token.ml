(* Tokens of the PASCAL/R subset: Figure-1 style declarations and
   selection expressions. *)

type t =
  | IDENT of string
  | INT of int
  | STRING of string
  | PARAM of string  (* $name query parameter *)
  (* declaration keywords *)
  | TYPE
  | VAR
  | RELATION
  | OF
  | RECORD
  | END
  | PACKED
  | ARRAY
  | CHAR
  (* statement keywords *)
  | BEGIN
  | DO
  | IF
  | THEN
  | ELSE
  | FOR
  | PRINT
  | PREPARE
  | EXECUTE
  (* selection keywords *)
  | EACH
  | IN
  | SOME
  | ALL
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  (* punctuation *)
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | DOT
  | DOTDOT
  | AT      (* @ *)
  | ASSIGN  (* := *)
  | INSERT  (* :+ *)
  | REMOVE  (* :- *)
  (* comparisons; LT/GT double as the angular key brackets *)
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

type position = { line : int; column : int }

type spanned = { token : t; pos : position }

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "type" -> Some TYPE
  | "var" -> Some VAR
  | "relation" -> Some RELATION
  | "of" -> Some OF
  | "record" -> Some RECORD
  | "end" -> Some END
  | "packed" -> Some PACKED
  | "array" -> Some ARRAY
  | "char" -> Some CHAR
  | "begin" -> Some BEGIN
  | "do" -> Some DO
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "for" -> Some FOR
  | "print" -> Some PRINT
  | "prepare" -> Some PREPARE
  | "execute" -> Some EXECUTE
  | "each" -> Some EACH
  | "in" -> Some IN
  | "some" -> Some SOME
  | "all" -> Some ALL
  | "and" -> Some AND
  | "or" -> Some OR
  | "not" -> Some NOT
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | _ -> None

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT n -> Printf.sprintf "integer %d" n
  | STRING s -> Printf.sprintf "string '%s'" s
  | PARAM p -> Printf.sprintf "parameter $%s" p
  | TYPE -> "TYPE"
  | VAR -> "VAR"
  | RELATION -> "RELATION"
  | OF -> "OF"
  | RECORD -> "RECORD"
  | END -> "END"
  | PACKED -> "PACKED"
  | ARRAY -> "ARRAY"
  | CHAR -> "char"
  | BEGIN -> "BEGIN"
  | DO -> "DO"
  | IF -> "IF"
  | THEN -> "THEN"
  | ELSE -> "ELSE"
  | FOR -> "FOR"
  | PRINT -> "PRINT"
  | PREPARE -> "PREPARE"
  | EXECUTE -> "EXECUTE"
  | EACH -> "EACH"
  | IN -> "IN"
  | SOME -> "SOME"
  | ALL -> "ALL"
  | AND -> "AND"
  | OR -> "OR"
  | NOT -> "NOT"
  | TRUE -> "true"
  | FALSE -> "false"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | SEMI -> ";"
  | DOT -> "."
  | DOTDOT -> ".."
  | AT -> "@"
  | ASSIGN -> ":="
  | INSERT -> ":+"
  | REMOVE -> ":-"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "end of input"
