(* Interpreter for statement-level PASCAL/R: the element-oriented
   programs of the paper's Examples 3.1 (reference maintenance), 4.2
   (one-step evaluation) and 4.3 (parallel evaluation of join terms).

   Statements execute against a {!Relalg.Database}; FOR EACH loops bind
   element variables visible to nested formulas, selections and tuple
   literals (including @v reference expressions), exactly as the paper's
   program fragments assume. *)

open Relalg

exception Runtime_error of string

let errf fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* A loop binding: the relation the variable ranges over and the current
   element. *)
type binding = { b_rel : Relation.t; b_tuple : Tuple.t }

type env = {
  db : Database.t;
  scope : (string * binding) list;
  session : Pascalr.Session.t;
      (* the plan-cache-backed front door used by PREPARE/EXECUTE *)
  prepared : (string, Pascalr.Prepared.t) Hashtbl.t;
  tx : Pascalr.Session.Txn.t option;
      (* when set, [db] is the transaction's pinned snapshot and every
         mutation routes through the transaction (buffered, installed
         at commit) instead of hitting relations in place *)
}

let make_env db =
  {
    db;
    scope = [];
    session = Pascalr.Session.create db;
    prepared = Hashtbl.create 8;
    tx = None;
  }

(* An environment executing inside [txn]: statements read the pinned
   snapshot and buffer their mutations in the transaction.  [prepared]
   lets a long-lived caller (the server loop) share one PREPARE /
   EXECUTE table across many transactions. *)
let txn_env ?prepared txn =
  {
    db = Pascalr.Session.Txn.database txn;
    scope = [];
    session = Pascalr.Session.Txn.session txn;
    prepared = (match prepared with Some t -> t | None -> Hashtbl.create 8);
    tx = Some txn;
  }

(* Mutations on database-resident relations: through the transaction
   when there is one (required on a durable database, whose committed
   states are frozen), in place otherwise. *)
let ins env target tuple =
  match env.tx with
  | Some txn -> Pascalr.Session.Txn.insert txn (Relation.name target) tuple
  | None -> Relation.insert target tuple

let del env target key =
  match env.tx with
  | Some txn -> Pascalr.Session.Txn.delete_key txn (Relation.name target) key
  | None -> Relation.delete_key target key

let clr env target =
  match env.tx with
  | Some txn -> Pascalr.Session.Txn.clear txn (Relation.name target)
  | None -> Relation.clear target

let schema_env env =
  List.map (fun (v, b) -> (v, Relation.schema b.b_rel)) env.scope

let benv_of env =
  List.fold_left
    (fun acc (v, b) ->
      Pascalr.Calculus.Var_map.add v
        { Pascalr.Naive_eval.tuple = b.b_tuple; schema = Relation.schema b.b_rel }
        acc)
    Pascalr.Calculus.Var_map.empty env.scope

(* Truth of a surface formula under the current scope (loop variables
   are free variables of the formula). *)
let formula_holds env extra_schemas extra_bindings f =
  let schemas = extra_schemas @ schema_env env in
  let calculus = Elaborate.elaborate_formula env.db schemas f in
  let benv =
    List.fold_left
      (fun acc (v, b) ->
        Pascalr.Calculus.Var_map.add v
          {
            Pascalr.Naive_eval.tuple = b.b_tuple;
            schema = Relation.schema b.b_rel;
          }
          acc)
      (benv_of env) extra_bindings
  in
  Pascalr.Naive_eval.holds env.db benv calculus

let lookup_var env v =
  match List.assoc_opt v env.scope with
  | Some b -> b
  | None -> errf "unbound loop variable %s" v

(* Evaluate a tuple-literal expression.  [context] is the expected
   domain (from the target relation's schema), used to resolve
   enumeration labels. *)
let rec eval_expr env context = function
  | Surface.E_int n -> Value.int n
  | Surface.E_str s -> Value.str s
  | Surface.E_ident name -> Elaborate.resolve_ident env.db context name
  | Surface.E_attr (v, a) ->
    let b = lookup_var env v in
    Tuple.get_by_name (Relation.schema b.b_rel) b.b_tuple a
  | Surface.E_ref v ->
    let b = lookup_var env v in
    Reference.value_of_tuple b.b_rel b.b_tuple
  | Surface.E_ref_key (rel_name, key_exprs) ->
    let rel = Database.find_relation env.db rel_name in
    let schema = Relation.schema rel in
    let key_types =
      List.map (Schema.type_at schema) (Array.to_list (Schema.key_positions schema))
    in
    if List.length key_exprs <> List.length key_types then
      errf "@%s[...]: expected %d key values" rel_name (List.length key_types);
    let key =
      List.map2 (fun e ty -> eval_expr env (Some ty) e) key_exprs key_types
    in
    Value.VRef (Reference.make ~target:rel_name ~key)

let eval_literal env target exprs =
  let schema = Relation.schema target in
  if List.length exprs <> Schema.arity schema then
    errf "relation %s: tuple literal arity %d, expected %d"
      (Relation.name target) (List.length exprs) (Schema.arity schema);
  Tuple.of_list
    (List.mapi
       (fun i e -> eval_expr env (Some (Schema.type_at schema i)) e)
       exprs)

(* ----------------------------------------------------------------- *)
(* Selections with reference items *)

(* Iterate the elements of a surface range, applying its restriction. *)
let iter_range env (range : Surface.range) k =
  match range with
  | Surface.S_base rel_name ->
    let rel = Database.find_relation env.db rel_name in
    Relation.scan (fun tuple -> k { b_rel = rel; b_tuple = tuple }) rel
  | Surface.S_restricted (v, rel_name, f) ->
    let rel = Database.find_relation env.db rel_name in
    let schema = Relation.schema rel in
    Relation.scan
      (fun tuple ->
        let b = { b_rel = rel; b_tuple = tuple } in
        if formula_holds env [ (v, schema) ] [ (v, b) ] f then k b)
      rel

(* Schema of a selection's result, inferred from its items. *)
let selection_schema env (sel : Surface.selection) =
  let range_rel = function
    | Surface.S_base r | Surface.S_restricted (_, r, _) -> r
  in
  let var_rel v =
    match List.assoc_opt v sel.Surface.s_free with
    | Some range -> Database.find_relation env.db (range_rel range)
    | None -> errf "selection item uses non-free variable %s" v
  in
  let name_of = function
    | Surface.Sel_attr (_, a) -> a
    | Surface.Sel_ref v -> v ^ "ref"
  in
  let count n =
    List.length
      (List.filter (fun i -> String.equal (name_of i) n) sel.Surface.s_items)
  in
  let attr_of item =
    match item with
    | Surface.Sel_attr (v, a) ->
      let rel = var_rel v in
      let name = if count a > 1 then v ^ "_" ^ a else a in
      Schema.attr name (Schema.type_of (Relation.schema rel) a)
    | Surface.Sel_ref v ->
      let rel = var_rel v in
      Schema.attr (name_of item) (Vtype.reference (Relation.name rel))
  in
  Schema.make (List.map attr_of sel.Surface.s_items) ~key:[]

(* Evaluate a selection under the current scope; outer loop variables
   may occur freely in the body. *)
let eval_selection env (sel : Surface.selection) =
  let out = Relation.create (selection_schema env sel) in
  let project scope_env =
    Tuple.of_list
      (List.map
         (function
           | Surface.Sel_attr (v, a) ->
             let b = lookup_var scope_env v in
             Tuple.get_by_name (Relation.schema b.b_rel) b.b_tuple a
           | Surface.Sel_ref v ->
             let b = lookup_var scope_env v in
             Reference.value_of_tuple b.b_rel b.b_tuple)
         sel.Surface.s_items)
  in
  let rec loop scope_env = function
    | [] ->
      if formula_holds scope_env [] [] sel.Surface.s_body then
        Relation.insert out (project scope_env)
    | (v, range) :: rest ->
      iter_range scope_env range (fun b ->
          loop { scope_env with scope = (v, b) :: scope_env.scope } rest)
  in
  loop env sel.Surface.s_free;
  out

(* ----------------------------------------------------------------- *)
(* Statements *)

let find_or_create env name schema_hint =
  match Database.find_relation_opt env.db name with
  | Some r -> r
  | None -> (
    match schema_hint with
    | Some schema -> Database.declare_relation env.db ~name schema
    | None -> raise (Errors.Unknown_relation name))

let rec exec env (stmt : Surface.stmt) =
  match stmt with
  | Surface.S_block body -> List.iter (exec env) body
  | Surface.S_print name ->
    Fmt.pr "%a@." Relation.pp (Database.find_relation env.db name)
  | Surface.S_if (cond, then_, else_) ->
    if formula_holds env [] [] cond then exec env then_
    else Option.iter (exec env) else_
  | Surface.S_for (v, range, filter, body) ->
    iter_range env range (fun b ->
        let env' = { env with scope = (v, b) :: env.scope } in
        if formula_holds env' [] [] filter then exec env' body)
  | Surface.S_assign (name, sel) ->
    let result = eval_selection env sel in
    let target =
      find_or_create env name (Some (Relation.schema result))
    in
    clr env target;
    Relation.iter (ins env target) result
  | Surface.S_insert_sel (name, sel) ->
    let result = eval_selection env sel in
    let target = find_or_create env name (Some (Relation.schema result)) in
    Relation.iter (ins env target) result
  | Surface.S_insert_lit (name, exprs) ->
    let target = find_or_create env name None in
    ins env target (eval_literal env target exprs)
  | Surface.S_remove_lit (name, exprs) ->
    let target = find_or_create env name None in
    let tuple = eval_literal env target exprs in
    del env target (Tuple.key_of (Relation.schema target) tuple)
  | Surface.S_prepare (name, sel) ->
    (* PREPARE plans through the session's cache.  The phased pipeline
       works on component selections over the selection's own range
       variables, so @v items are out (use a plain assignment for
       those), and outer loop variables fail elaboration as unbound. *)
    let select =
      List.map
        (function
          | Surface.Sel_attr (v, a) -> (v, a)
          | Surface.Sel_ref v ->
            errf "PREPARE %s: @%s reference items are not preparable" name v)
        sel.Surface.s_items
    in
    let q =
      Elaborate.elaborate_query env.db
        {
          Surface.q_select = select;
          q_free = sel.Surface.s_free;
          q_body = sel.Surface.s_body;
        }
    in
    Hashtbl.replace env.prepared name (Pascalr.Session.prepare env.session q)
  | Surface.S_execute (target, pname, bindings) ->
    let prep =
      match Hashtbl.find_opt env.prepared pname with
      | Some p -> p
      | None -> errf "EXECUTE %s: no such prepared query" pname
    in
    let params = List.map (fun (p, e) -> (p, eval_expr env None e)) bindings in
    let result =
      (* Inside a transaction, execute against its pinned snapshot so
         the prepared query sees the transaction's own writes. *)
      let within = Option.map Pascalr.Session.Txn.database env.tx in
      try Pascalr.Prepared.exec ~params ?within prep with
      | Pascalr.Prepared.Unbound_parameter p ->
        errf "EXECUTE %s: parameter $%s is not bound" pname p
      | Pascalr.Prepared.Unknown_parameter p ->
        errf "EXECUTE %s: no parameter $%s in the prepared query" pname p
    in
    (match target with
    | Some name ->
      let tgt = find_or_create env name (Some (Relation.schema result)) in
      clr env tgt;
      Relation.iter (ins env tgt) result
    | None -> Fmt.pr "%a@." Relation.pp result)

(* Run a whole compilation unit: declarations, then the main block. *)
let run_unit ?(db = Database.create ()) (u : Surface.unit_) =
  let db = Elaborate.elaborate_program ~db u.Surface.u_decls in
  let env = make_env db in
  List.iter (exec env) u.Surface.u_main;
  db

let run_string ?db src = run_unit ?db (Parser.unit_of_string src)

(* Execute statements against an existing database (no declarations).
   Each call gets a fresh environment, so prepared queries do not
   survive across calls — keep an env (make_env) to do that. *)
let exec_string db src =
  let stmt = Parser.stmt_of_string src in
  exec (make_env db) stmt
