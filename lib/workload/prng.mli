(** Deterministic splitmix64 PRNG; all workload generation is seeded so
    tests and benchmarks are reproducible. *)

type t

val create : int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)].
    @raise Invalid_argument on non-positive bounds. *)

val in_range : t -> int -> int -> int
(** Uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
val flip : t -> float -> bool
(** Bernoulli with the given probability. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (inverse CDF) — the
    inter-arrival times of a Poisson arrival process.
    @raise Invalid_argument on non-positive means. *)

val pick : t -> 'a list -> 'a
val pick_array : t -> 'a array -> 'a
val word : t -> int -> string
(** Random lowercase string of the given length. *)

val shuffle : t -> 'a list -> 'a list
