(* Deterministic splitmix64 PRNG.  All workload generation is seeded so
   tests and benchmarks are reproducible run-to-run; the global [Random]
   state is deliberately not used. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound"
  else
    (* Keep 62 bits so the conversion to OCaml's 63-bit int stays
       non-negative. *)
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    r mod bound

(* Uniform int in [lo, hi] inclusive. *)
let in_range t lo hi =
  if lo > hi then invalid_arg "Prng.in_range: empty range"
  else lo + int t (hi - lo + 1)

let bool t = int t 2 = 0

(* Uniform float in [0, 1): 53 random mantissa bits, the full precision
   a double can hold in that interval. *)
let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  Stdlib.float_of_int bits /. 9007199254740992.0 (* 2^53 *)

(* Bernoulli with probability [p]. *)
let flip t p = int t 1_000_000 < int_of_float (p *. 1_000_000.)

(* Exponentially distributed with the given mean: inverse-CDF over a
   uniform draw pinned away from 0 so the log is finite.  The workload
   driver's Poisson-process inter-arrival times come from here. *)
let exponential t ~mean =
  if not (mean > 0.0) then invalid_arg "Prng.exponential: non-positive mean"
  else -.mean *. Float.log (1.0 -. float t)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_array: empty array"
  else a.(int t (Array.length a))

(* Random lowercase string of the given length. *)
let word t len =
  String.init len (fun _ -> Char.chr (Char.code 'a' + int t 26))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
