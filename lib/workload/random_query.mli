(** Random well-typed queries over the Figure-1 schema, for
    property-based testing of the whole pipeline. *)

open Relalg
open Pascalr.Calculus

type attr_kind = K_enr | K_cnr | K_year | K_status | K_level | K_day | K_name

val rel_attrs : string -> (string * attr_kind) list
(** Attributes of a Figure-1 relation with their comparability kind.
    @raise Invalid_argument on unknown relations. *)

val relations : string list

val generate : ?first_rel:string -> Database.t -> int -> query
(** [generate db seed]: one or two free variables, a depth-3 body with
    at most two quantifiers, all six comparison operators, occasional
    user-written extended ranges and occasionally-empty subranges.
    [first_rel] pins the first free variable's range relation, so tests
    that empty a relation can force queries to range over it. *)

val tiny_db : int -> Database.t
(** A database small enough for the unoptimized combination phase. *)
