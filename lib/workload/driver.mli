(** Open-loop traffic driver: many concurrent client domains against
    one shared read-only {!Relalg.Database}.

    The driver turns "serves heavy traffic" from an aspiration into a
    measured number.  A seeded scenario mix (ad-hoc queries through the
    plan cache, prepared executions with per-request parameter sweeps,
    forced replans) is expanded into a deterministic request schedule;
    [clients] domains — each owning a private {!Pascalr.Session}, since
    sessions and their plan caches are single-domain structures — pull
    statically partitioned slices of that schedule, sleep until each
    request's scheduled arrival (open loop) or fire back to back
    (closed loop), and record per-request latency into per-client
    {!Obs.Histogram}s that are merged when the clients join.

    Determinism contract: the schedule — scenario choice, parameter
    draws, arrival times — depends only on (mix, mode, requests,
    warmup, seed), never on [clients] or on timing.  Concurrency moves
    latencies, never answers: the multiset of (scenario class,
    rows_out) results is byte-identical at any [clients] setting.

    Open-loop latency is measured from the request's *scheduled*
    arrival, not from when the client got around to it, so queueing
    delay is included and slow servers cannot hide behind coordinated
    omission.  Warmup requests execute normally but are excluded from
    the reported histograms and the result multiset. *)

open Relalg
open Pascalr

val schema_version : int
(** Stamped into {!report_to_json}; bump when the document reshapes. *)

(** {2 Scenarios} *)

(** What one request does to its client's session. *)
type action =
  | Adhoc of Calculus.query
      (** one-shot execution through the session's plan cache *)
  | Execute of Calculus.query * (string * Value.t) list
      (** PREPARE/EXECUTE shape: the query is prepared once per client
          (first use populates the plan cache), each request grounds
          its own parameter bindings *)
  | Replan of Calculus.query
      (** analyze-style replan: the client's plan cache is cleared
          first, so the full planning pipeline runs again *)
  | Write of Tuple.t
      (** commit this tuple into {!traffic_log_name} through a write
          transaction, retrying first-committer-wins conflicts; counts
          as one result row *)

type scenario = {
  sc_class : string;  (** reporting label, e.g. ["adhoc/running"] *)
  sc_weight : int;  (** relative draw weight in the mix *)
  sc_make : Prng.t -> action;
      (** draw one request's action; must consume the same number of
          PRNG values for a given scenario regardless of timing *)
}

val university_mix : Database.t -> scenario list
(** Ad-hoc running/existential/universal queries, a prepared
    [$minyear] parameter sweep over papers, and a forced replan of the
    universal query. *)

val suppliers_mix : Database.t -> scenario list
(** Ad-hoc division queries, a prepared [$minqty] shipment sweep, and
    a forced replan. *)

val traffic_log_name : string
(** The dedicated write-target relation, ["traffic_log"].  No query of
    either mix reads it, so the (class, rows) determinism witness
    survives any interleaving of writes: unique keys make the inserts
    commutative, and conflicts only cost retries. *)

val ensure_traffic_log : Database.t -> Relation.t
(** Declare {!traffic_log_name} (wid key, wclass, wval) if absent. *)

val mix_for : ?write_pct:int -> Database.t -> kind:string -> scenario list
(** ["university"] or ["suppliers"]; [write_pct] (default 0) adds a
    ["write/traffic-log"] scenario weighted so roughly that percentage
    of requests commit a uniquely-keyed insert through a write
    transaction.  @raise Failure on an unknown kind or a [write_pct]
    outside 0-90. *)

(** {2 Schedule} *)

type mode =
  | Closed  (** each client fires its next request on completion *)
  | Open of float  (** Poisson arrivals at this offered rate, req/s *)

type request = {
  rq_index : int;
  rq_class : string;
  rq_at_ms : float;  (** scheduled arrival offset; 0 under [Closed] *)
  rq_warmup : bool;
  rq_action : action;
}

val schedule :
  mode -> requests:int -> warmup:int -> seed:int -> scenario list ->
  request array
(** The full deterministic request sequence: weighted scenario draws,
    parameter draws, and (open loop) cumulative exponential
    inter-arrival times, all from one splitmix64 stream seeded with
    [seed].  The first [warmup] requests are flagged.
    @raise Invalid_argument on [requests <= 0], [warmup < 0],
    [warmup >= requests], an empty or non-positive-weight mix, or a
    non-positive open-loop rate. *)

(** {2 Running} *)

type config = {
  clients : int;  (** client domains; 1 runs on the calling domain *)
  mode : mode;
  requests : int;  (** total, warmup included *)
  warmup : int;
  seed : int;
  opts : Exec_opts.t;
      (** per-request execution options.  Default [jobs = 1]: the
          driver parallelizes across clients, not inside queries, so
          client domains never contend for the domain pool. *)
}

val config :
  ?clients:int -> ?mode:mode -> ?requests:int -> ?warmup:int ->
  ?seed:int -> ?opts:Exec_opts.t -> unit -> config
(** Defaults: 1 client, [Closed], 100 requests, 10 warmup, seed 42,
    [Exec_opts] with [jobs = 1]. *)

type class_stats = {
  cs_class : string;
  cs_requests : int;  (** non-warmup requests of this class *)
  cs_rows : int;  (** total result rows over those requests *)
  cs_latency : Obs.Histogram.t;
}

type report = {
  r_clients : int;
  r_mode : mode;
  r_requests : int;  (** executed, warmup included *)
  r_warmup : int;
  r_seed : int;
  r_wall_ms : float;  (** client spawn to last client join *)
  r_offered_rps : float option;  (** [None] under [Closed] *)
  r_achieved_rps : float;  (** executed requests / wall seconds *)
  r_latency : Obs.Histogram.t;  (** all non-warmup requests *)
  r_classes : class_stats list;  (** sorted by class label *)
  r_results : (string * int) list;
      (** the determinism witness: one (class, rows_out) entry per
          non-warmup request, sorted — identical at any [clients] *)
}

val run : config -> Database.t -> scenario list -> report
(** Execute the schedule.  Requests are partitioned statically —
    request [i] belongs to client [i mod clients] — so the work each
    client performs is independent of timing.  The database must not
    be mutated outside the driver for the duration of the run; the
    driver's own writes go through snapshot-isolated transactions into
    {!traffic_log_name} only.  Per-relation scan/probe tallies may
    race benignly (they are diagnostics, not answers).
    @raise Invalid_argument on [clients <= 0] or a bad schedule. *)

val report_to_json : report -> Obs.Json.t
val pp_report : report Fmt.t
