(* Random well-typed queries over the Figure-1 university schema, for
   property-based testing: every strategy pipeline must agree with the
   naive evaluator on any generated query and database.

   Queries exercise all six comparison operators, monadic and dyadic
   join terms, NOT/AND/OR, SOME/ALL quantifiers (nested up to a depth
   budget), user-written extended ranges, and constants chosen so that
   empty (sub)ranges occur with realistic probability. *)

open Relalg
open Pascalr.Calculus

type attr_kind = K_enr | K_cnr | K_year | K_status | K_level | K_day | K_name

(* Attributes of each relation with their comparability kind.  Strings
   are deliberately included (names/titles compare lexicographically). *)
let rel_attrs = function
  | "employees" -> [ ("enr", K_enr); ("estatus", K_status); ("ename", K_name) ]
  | "papers" -> [ ("penr", K_enr); ("pyear", K_year); ("ptitle", K_name) ]
  | "courses" -> [ ("cnr", K_cnr); ("clevel", K_level); ("ctitle", K_name) ]
  | "timetable" -> [ ("tenr", K_enr); ("tcnr", K_cnr); ("tday", K_day) ]
  | r -> invalid_arg ("Random_query: unknown relation " ^ r)

let relations = [ "employees"; "papers"; "courses"; "timetable" ]

type ctx = { db : Database.t; rng : Prng.t; mutable fresh : int }

let fresh_var ctx prefixes =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefixes ctx.fresh

let random_const ctx kind =
  let rng = ctx.rng in
  match kind with
  | K_enr -> Value.int (Prng.in_range rng 1 14)
  | K_cnr -> Value.int (Prng.in_range rng 1 9)
  | K_year -> Value.int (Prng.in_range rng 1974 1981)
  | K_status ->
    Value.enum_ordinal (Database.find_enum ctx.db "statustype") (Prng.int rng 4)
  | K_level ->
    Value.enum_ordinal (Database.find_enum ctx.db "leveltype") (Prng.int rng 4)
  | K_day ->
    Value.enum_ordinal (Database.find_enum ctx.db "daytype") (Prng.int rng 5)
  | K_name ->
    (* Lexicographic comparisons against a plausible word. *)
    Value.str (Prng.word rng 3)

let random_op rng = Prng.pick rng Value.all_comparisons

(* In-scope variables: (name, relation). *)
let random_atom ctx scope =
  let rng = ctx.rng in
  let v, rel = Prng.pick rng scope in
  let a, kind = Prng.pick rng (rel_attrs rel) in
  let lhs = attr v a in
  (* Choose a right operand of the same kind: a constant, or another
     in-scope variable's attribute of the same kind (possibly the same
     variable — a monadic self term). *)
  let candidates =
    List.concat_map
      (fun (v', rel') ->
        List.filter_map
          (fun (a', kind') -> if kind' = kind then Some (attr v' a') else None)
          (rel_attrs rel'))
      scope
  in
  let rhs =
    if Prng.flip rng 0.5 || candidates = [] then const (random_const ctx kind)
    else Prng.pick rng candidates
  in
  { lhs; op = random_op rng; rhs }

(* A random monadic restriction over a single variable of [rel] — used
   both for user-written extended ranges and kept simple (conjunction of
   1-2 atoms). *)
let random_restriction ctx rel v =
  let atoms =
    List.init
      (1 + Prng.int ctx.rng 2)
      (fun _ -> F_atom (random_atom ctx [ (v, rel) ]))
  in
  conj atoms

let random_range ctx =
  let rel = Prng.pick ctx.rng relations in
  if Prng.flip ctx.rng 0.25 then
    let v = fresh_var ctx "r" in
    (rel, restricted rel v (random_restriction ctx rel v))
  else (rel, base rel)

(* Random formula over [scope] with a quantifier budget. *)
let rec random_formula ctx scope ~depth ~quants =
  let rng = ctx.rng in
  let leaf () = F_atom (random_atom ctx scope) in
  if depth <= 0 then leaf ()
  else
    match Prng.int rng (if !quants > 0 then 6 else 4) with
    | 0 -> leaf ()
    | 1 ->
      F_and
        ( random_formula ctx scope ~depth:(depth - 1) ~quants,
          random_formula ctx scope ~depth:(depth - 1) ~quants )
    | 2 ->
      F_or
        ( random_formula ctx scope ~depth:(depth - 1) ~quants,
          random_formula ctx scope ~depth:(depth - 1) ~quants )
    | 3 -> F_not (random_formula ctx scope ~depth:(depth - 1) ~quants)
    | _ ->
      decr quants;
      let rel, range = random_range ctx in
      let v = fresh_var ctx "q" in
      let body =
        random_formula ctx ((v, rel) :: scope) ~depth:(depth - 1) ~quants
      in
      if Prng.bool rng then F_some (v, range, body) else F_all (v, range, body)

(* A complete random query: one or two free variables, a depth-3 body
   with at most two quantifiers.  [first_rel] pins the first free
   variable's range to a chosen relation — tests that empty a relation
   use it to guarantee the query actually ranges over the empty one
   (Lemma-1 adaptation, Examples 2.1/2.2). *)
let generate ?first_rel db seed =
  let ctx = { db; rng = Prng.create seed; fresh = 0 } in
  let n_free = 1 + Prng.int ctx.rng 2 in
  let free =
    List.init n_free (fun i ->
        let rel, range =
          match first_rel with
          | Some rel when i = 0 ->
            if Prng.flip ctx.rng 0.25 then
              let v = fresh_var ctx "r" in
              (rel, restricted rel v (random_restriction ctx rel v))
            else (rel, base rel)
          | _ -> random_range ctx
        in
        let v = fresh_var ctx "f" in
        (v, rel, range))
  in
  let scope = List.map (fun (v, rel, _) -> (v, rel)) free in
  let quants = ref 2 in
  let body = random_formula ctx scope ~depth:3 ~quants in
  let select =
    List.map
      (fun (v, rel, _) ->
        let a, _ = Prng.pick ctx.rng (rel_attrs rel) in
        (v, a))
      free
  in
  { free = List.map (fun (v, _, range) -> (v, range)) free; select; body }

(* A tiny database keeping the unoptimized combination phase's full
   products small (a few thousand n-tuples at most). *)
let tiny_db seed =
  University.generate
    {
      University.n_employees = 6;
      n_papers = 8;
      n_courses = 5;
      n_timetable = 10;
      prob_professor = 0.4;
      prob_1977 = 0.3;
      prob_low_level = 0.4;
      seed;
    }
