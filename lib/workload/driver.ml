(* Open-loop traffic driver.  See the .mli for the contract; the short
   version: a seeded schedule of (scenario, action, arrival) triples is
   partitioned statically across N client domains, each owning a
   private Session over one shared read-only Database, and per-client
   latency histograms are merged when the clients join.

   Determinism is the load-bearing property.  Everything random — the
   scenario draw, the parameter sweep, the exponential inter-arrival
   times — is consumed from one splitmix64 stream *before* any client
   starts, so timing and client count can change when a request runs
   but never what it computes.  The multiset of (class, rows_out)
   results is the pinned witness.

   Shared-state inventory for the concurrency story (audited for this
   driver; see DESIGN.md "Traffic driver"):
   - Session / Plan_cache: single-domain (plain hashtable + mutable
     tallies), therefore one per client, never shared.
   - Obs.Metrics: per-domain DLS registries — each client counts into
     its own, no contention.
   - Obs.Query_stats / Obs.Flight_recorder: process-global and
     mutex-protected; clients hammer them concurrently by design
     (test_stress.ml pins exact counts under 4 domains).
   - Relation scan/probe tallies: plain mutable ints, racy across
     clients; they are diagnostics, not answers, and lost updates are
     accepted (documented) rather than paying an atomic on the scan
     fast path. *)

open Relalg
open Pascalr

let schema_version = 1

(* ---- scenarios ----------------------------------------------------- *)

type action =
  | Adhoc of Calculus.query
  | Execute of Calculus.query * (string * Value.t) list
  | Replan of Calculus.query
  | Write of Tuple.t

type scenario = {
  sc_class : string;
  sc_weight : int;
  sc_make : Prng.t -> action;
}

(* Professors with a paper published in or after $minyear: the prepared
   parameter sweep of the university mix.  Years are generated in
   1970-1985, so the sweep below always has selective and permissive
   draws. *)
let param_papers_query =
  let open Calculus in
  {
    free = [ ("e", base "employees") ];
    select = [ ("e", "ename") ];
    body =
      f_some "p" (base "papers")
        (f_and
           (eq (attr "p" "penr") (attr "e" "enr"))
           (mk_atom (attr "p" "pyear") Value.Ge (param "minyear")));
  }

let university_mix db =
  let running = Queries.running_query db in
  let existential = Queries.existential_query db in
  let universal = Queries.universal_query db in
  [
    {
      sc_class = "adhoc/running";
      sc_weight = 3;
      sc_make = (fun _ -> Adhoc running);
    };
    {
      sc_class = "adhoc/existential";
      sc_weight = 3;
      sc_make = (fun _ -> Adhoc existential);
    };
    {
      sc_class = "prepared/papers-since";
      sc_weight = 5;
      sc_make =
        (fun rng ->
          Execute
            ( param_papers_query,
              [ ("minyear", Value.int (Prng.in_range rng 1972 1984)) ] ));
    };
    {
      sc_class = "replan/universal";
      sc_weight = 1;
      sc_make = (fun _ -> Replan universal);
    };
  ]

(* Suppliers shipping some shipment of at least $minqty units — the
   same shape the B-PREP experiment sweeps. *)
let param_shipments_query =
  let open Calculus in
  {
    free = [ ("s", base "suppliers") ];
    select = [ ("s", "sname") ];
    body =
      f_some "h" (base "shipments")
        (f_and
           (eq (attr "h" "hsnr") (attr "s" "snr"))
           (mk_atom (attr "h" "hqty") Value.Ge (param "minqty")));
  }

let suppliers_mix db =
  let all_parts = Suppliers.ships_all_parts db in
  let no_red = Suppliers.ships_no_red_part db in
  let all_red = Suppliers.ships_all_red_parts db in
  [
    {
      sc_class = "adhoc/ships-all-parts";
      sc_weight = 3;
      sc_make = (fun _ -> Adhoc all_parts);
    };
    {
      sc_class = "adhoc/no-red-part";
      sc_weight = 3;
      sc_make = (fun _ -> Adhoc no_red);
    };
    {
      sc_class = "prepared/heavy-shipments";
      sc_weight = 5;
      sc_make =
        (fun rng ->
          Execute
            ( param_shipments_query,
              [ ("minqty", Value.int (Prng.in_range rng 100 900)) ] ));
    };
    {
      sc_class = "replan/ships-all-red";
      sc_weight = 1;
      sc_make = (fun _ -> Replan all_red);
    };
  ]

(* ---- writes -------------------------------------------------------- *)

(* Write requests insert into a dedicated append-only relation that no
   query of either mix reads.  That split is what keeps the determinism
   contract intact under concurrency: reads can never observe a write's
   effect, writes are commutative (every request draws a unique key),
   and a first-committer-wins conflict only costs a retry, never a
   different answer.  The multiset witness stays (class, rows) with
   rows = 1 per committed write. *)
let traffic_log_name = "traffic_log"

let traffic_log_schema =
  Schema.make
    [
      Schema.attr "wid" (Vtype.int_range 0 max_int);
      Schema.attr "wclass" (Vtype.string_width 16);
      Schema.attr "wval" (Vtype.int_range 0 1_000_000);
    ]
    ~key:[ "wid" ]

let ensure_traffic_log db =
  match Database.find_relation_opt db traffic_log_name with
  | Some r -> r
  | None -> Database.declare_relation db ~name:traffic_log_name traffic_log_schema

(* The write scenario's weight, sized so roughly [write_pct] percent of
   requests are writes given the read mix's total weight. *)
let write_scenario base_weight ~write_pct =
  if write_pct < 0 || write_pct > 90 then
    failwith "Driver: --write-pct must be between 0 and 90";
  if write_pct = 0 then []
  else begin
    let weight =
      max 1
        (int_of_float
           (Float.round
              (float_of_int (base_weight * write_pct)
              /. float_of_int (100 - write_pct))))
    in
    (* The key counter makes every scheduled write unique; the schedule
       is generated serially before any client starts, so the counter
       draw order is deterministic. *)
    let next_wid = ref 0 in
    [
      {
        sc_class = "write/traffic-log";
        sc_weight = weight;
        sc_make =
          (fun rng ->
            let wid = !next_wid in
            incr next_wid;
            Write
              (Tuple.of_list
                 [
                   Value.int wid;
                   Value.str "traffic";
                   Value.int (Prng.in_range rng 0 999_999);
                 ]));
      };
    ]
  end

let mix_for ?(write_pct = 0) db ~kind =
  let reads =
    match kind with
    | "university" -> university_mix db
    | "suppliers" -> suppliers_mix db
    | other -> failwith ("Driver.mix_for: unknown database kind " ^ other)
  in
  let base_weight = List.fold_left (fun a s -> a + s.sc_weight) 0 reads in
  if write_pct > 0 then ignore (ensure_traffic_log db : Relation.t);
  reads @ write_scenario base_weight ~write_pct

(* ---- schedule ------------------------------------------------------ *)

type mode = Closed | Open of float

type request = {
  rq_index : int;
  rq_class : string;
  rq_at_ms : float;
  rq_warmup : bool;
  rq_action : action;
}

let schedule mode ~requests ~warmup ~seed mix =
  if requests <= 0 then invalid_arg "Driver.schedule: requests <= 0";
  if warmup < 0 then invalid_arg "Driver.schedule: warmup < 0";
  if warmup >= requests then invalid_arg "Driver.schedule: warmup >= requests";
  let total_weight = List.fold_left (fun a s -> a + s.sc_weight) 0 mix in
  if mix = [] || total_weight <= 0 then
    invalid_arg "Driver.schedule: empty or weightless scenario mix";
  (match mode with
  | Open rate when not (rate > 0.0) ->
    invalid_arg "Driver.schedule: non-positive offered rate"
  | Open _ | Closed -> ());
  let rng = Prng.create seed in
  let pick_scenario () =
    let k = Prng.int rng total_weight in
    let rec walk acc = function
      | [] -> assert false
      | s :: rest -> if k < acc + s.sc_weight then s else walk (acc + s.sc_weight) rest
    in
    walk 0 mix
  in
  let arr = Array.make requests None in
  (* An explicit loop: the PRNG draw order per request — scenario,
     action, then (open loop) inter-arrival — is part of the seed
     contract. *)
  let at_ms = ref 0.0 in
  for i = 0 to requests - 1 do
    let sc = pick_scenario () in
    let action = sc.sc_make rng in
    (match mode with
    | Closed -> ()
    | Open rate -> at_ms := !at_ms +. Prng.exponential rng ~mean:(1000.0 /. rate));
    arr.(i) <-
      Some
        {
          rq_index = i;
          rq_class = sc.sc_class;
          rq_at_ms = (match mode with Closed -> 0.0 | Open _ -> !at_ms);
          rq_warmup = i < warmup;
          rq_action = action;
        }
  done;
  Array.map (function Some r -> r | None -> assert false) arr

(* ---- running ------------------------------------------------------- *)

type config = {
  clients : int;
  mode : mode;
  requests : int;
  warmup : int;
  seed : int;
  opts : Exec_opts.t;
}

let config ?(clients = 1) ?(mode = Closed) ?(requests = 100) ?(warmup = 10)
    ?(seed = 42) ?(opts = Exec_opts.make ~jobs:1 ()) () =
  { clients; mode; requests; warmup; seed; opts }

type class_stats = {
  cs_class : string;
  cs_requests : int;
  cs_rows : int;
  cs_latency : Obs.Histogram.t;
}

type report = {
  r_clients : int;
  r_mode : mode;
  r_requests : int;
  r_warmup : int;
  r_seed : int;
  r_wall_ms : float;
  r_offered_rps : float option;
  r_achieved_rps : float;
  r_latency : Obs.Histogram.t;
  r_classes : class_stats list;
  r_results : (string * int) list;
}

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Per-client accumulator; private until the join. *)
type client_acc = {
  ca_classes : (string, int ref * int ref * Obs.Histogram.t) Hashtbl.t;
  mutable ca_results : (string * int) list;
  ca_latency : Obs.Histogram.t;
}

let exec_action session opts = function
  | Adhoc q -> Relation.cardinality (Session.exec ~opts session q)
  | Execute (q, params) ->
    Relation.cardinality (Session.exec ~opts ~params session q)
  | Replan q ->
    Session.clear_cache session;
    Relation.cardinality (Session.exec ~opts session q)
  | Write tup ->
    (* First-committer-wins: every concurrent write touches the same
       relation, so losers retry.  Keys are unique per request, so the
       retries commute and each request commits exactly one row. *)
    let rec attempt n =
      if n > 10_000 then failwith "Driver: write retry budget exhausted"
      else
        try
          Session.write session (fun txn ->
              Session.Txn.insert txn traffic_log_name tup);
          1
        with Errors.Txn_conflict _ -> attempt (n + 1)
    in
    attempt 0

(* One client: walk the requests whose index maps to this client, in
   schedule order.  Open loop sleeps until the scheduled arrival and
   measures latency from it (queueing delay included); a client running
   behind schedule fires immediately and the backlog shows up as tail
   latency, exactly as it should. *)
let run_client ~cfg ~db ~t0 (reqs : request array) c =
  let session = Session.create db in
  let acc =
    {
      ca_classes = Hashtbl.create 8;
      ca_results = [];
      ca_latency = Obs.Histogram.create ();
    }
  in
  Array.iter
    (fun r ->
      if r.rq_index mod cfg.clients = c then begin
        let arrival =
          match cfg.mode with
          | Closed -> now_ms ()
          | Open _ ->
            let target = t0 +. r.rq_at_ms in
            let now = now_ms () in
            if now < target then Unix.sleepf ((target -. now) /. 1000.0);
            target
        in
        let rows = exec_action session cfg.opts r.rq_action in
        let lat = now_ms () -. arrival in
        if not r.rq_warmup then begin
          let nreq, nrows, h =
            match Hashtbl.find_opt acc.ca_classes r.rq_class with
            | Some cell -> cell
            | None ->
              let cell = (ref 0, ref 0, Obs.Histogram.create ()) in
              Hashtbl.replace acc.ca_classes r.rq_class cell;
              cell
          in
          incr nreq;
          nrows := !nrows + rows;
          Obs.Histogram.observe h lat;
          Obs.Histogram.observe acc.ca_latency lat;
          acc.ca_results <- (r.rq_class, rows) :: acc.ca_results
        end
      end)
    reqs;
  acc

let run cfg db mix =
  if cfg.clients <= 0 then invalid_arg "Driver.run: clients <= 0";
  let reqs =
    schedule cfg.mode ~requests:cfg.requests ~warmup:cfg.warmup ~seed:cfg.seed
      mix
  in
  (* Declare the write target before any client domain starts, so the
     clients only ever mutate through transactions. *)
  if Array.exists (fun r -> match r.rq_action with Write _ -> true | _ -> false) reqs
  then ignore (ensure_traffic_log db : Relation.t);
  let t0 = now_ms () in
  let accs =
    if cfg.clients = 1 then [| run_client ~cfg ~db ~t0 reqs 0 |]
    else
      Array.init cfg.clients (fun c ->
          Domain.spawn (fun () -> run_client ~cfg ~db ~t0 reqs c))
      |> Array.map Domain.join
  in
  let wall_ms = now_ms () -. t0 in
  (* Merge the per-client accumulators: histogram pooling is
     commutative and associative, result lists are sorted, so client
     count and join order leave no trace in the report. *)
  let classes : (string, int ref * int ref * Obs.Histogram.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let latency = Obs.Histogram.create () in
  let results = ref [] in
  Array.iter
    (fun acc ->
      Obs.Histogram.merge ~into:latency acc.ca_latency;
      results := List.rev_append acc.ca_results !results;
      Hashtbl.iter
        (fun cls (nreq, nrows, h) ->
          match Hashtbl.find_opt classes cls with
          | Some (tr, tw, th) ->
            tr := !tr + !nreq;
            tw := !tw + !nrows;
            Obs.Histogram.merge ~into:th h
          | None ->
            let th = Obs.Histogram.create () in
            Obs.Histogram.merge ~into:th h;
            Hashtbl.replace classes cls (ref !nreq, ref !nrows, th))
        acc.ca_classes)
    accs;
  let class_stats =
    Hashtbl.fold
      (fun cls (nreq, nrows, h) acc ->
        {
          cs_class = cls;
          cs_requests = !nreq;
          cs_rows = !nrows;
          cs_latency = h;
        }
        :: acc)
      classes []
    |> List.sort (fun a b -> String.compare a.cs_class b.cs_class)
  in
  {
    r_clients = cfg.clients;
    r_mode = cfg.mode;
    r_requests = cfg.requests;
    r_warmup = cfg.warmup;
    r_seed = cfg.seed;
    r_wall_ms = wall_ms;
    r_offered_rps = (match cfg.mode with Closed -> None | Open r -> Some r);
    r_achieved_rps =
      (if wall_ms > 0.0 then float_of_int cfg.requests /. (wall_ms /. 1000.0)
       else 0.0);
    r_latency = latency;
    r_classes = class_stats;
    r_results = List.sort compare !results;
  }

(* ---- reporting ----------------------------------------------------- *)

let mode_string = function Closed -> "closed" | Open _ -> "open"

let report_to_json r =
  let open Obs.Json in
  Obj
    [
      ("schema_version", Int schema_version);
      ("clients", Int r.r_clients);
      ("mode", Str (mode_string r.r_mode));
      ( "offered_rps",
        match r.r_offered_rps with Some v -> Float v | None -> Null );
      ("achieved_rps", Float r.r_achieved_rps);
      ("requests", Int r.r_requests);
      ("warmup", Int r.r_warmup);
      ("seed", Int r.r_seed);
      ("wall_ms", Float r.r_wall_ms);
      ("latency_ms", Obs.Histogram.to_json r.r_latency);
      ( "classes",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("class", Str c.cs_class);
                   ("requests", Int c.cs_requests);
                   ("rows_out", Int c.cs_rows);
                   ("latency_ms", Obs.Histogram.to_json c.cs_latency);
                 ])
             r.r_classes) );
      ( "results",
        List
          (List.map
             (fun (cls, rows) ->
               Obj [ ("class", Str cls); ("rows_out", Int rows) ])
             r.r_results) );
    ]

let pp_report ppf r =
  let q h p = Obs.Histogram.quantile h p in
  Fmt.pf ppf
    "@[<v>traffic: %d clients, %s loop, %d requests (%d warmup), seed %d@,"
    r.r_clients (mode_string r.r_mode) r.r_requests r.r_warmup r.r_seed;
  (match r.r_offered_rps with
  | Some o ->
    Fmt.pf ppf "offered %.1f req/s, achieved %.1f req/s in %.0f ms@," o
      r.r_achieved_rps r.r_wall_ms
  | None ->
    Fmt.pf ppf "achieved %.1f req/s in %.0f ms@," r.r_achieved_rps r.r_wall_ms);
  Fmt.pf ppf "%-26s %8s %10s | %10s %10s %10s@," "class" "requests" "rows"
    "p50(ms)" "p95(ms)" "p99(ms)";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-26s %8d %10d | %10.3f %10.3f %10.3f@," c.cs_class
        c.cs_requests c.cs_rows (q c.cs_latency 0.5) (q c.cs_latency 0.95)
        (q c.cs_latency 0.99))
    r.r_classes;
  Fmt.pf ppf "%-26s %8d %10s | %10.3f %10.3f %10.3f@]" "(all)"
    (Obs.Histogram.count r.r_latency)
    "" (q r.r_latency 0.5) (q r.r_latency 0.95) (q r.r_latency 0.99)
