(** Relation statistics for the cost model: cardinalities and per
    attribute distinct counts and min/max, gathered in one scan per
    relation. *)

open Relalg

type attr_stats = {
  a_distinct : int;
  a_min : Value.t option;
  a_max : Value.t option;
}

type rel_stats = {
  r_cardinality : int;
  r_attrs : (string * attr_stats) list;
}

type t

val collect : Database.t -> t
val collect_relation : Relation.t -> rel_stats

val relation : t -> string -> rel_stats
(** @raise Errors.Unknown_relation *)

val cardinality : t -> string -> int

val attr : t -> string -> string -> attr_stats
(** @raise Errors.Unknown_attribute *)

val monadic_selectivity :
  t -> string -> string -> Value.comparison -> Value.t -> float
(** Selectivity of [attr op const]: [1/distinct] for [=], interpolation
    against min/max for the order comparisons. *)

val join_selectivity : t -> string -> string -> string -> string -> float
(** System-R style [1 / max(distinct, distinct)] for equality joins. *)

val pp : t Fmt.t

val column_distincts : Relation.t -> (string * int) list
(** Distinct count per column of a materialized relation, in schema
    order; uninstrumented (used on intermediate reference relations). *)
