(** The full PASCAL/R evaluation pipeline: adaptation, standard form,
    strategies 3 and 4, then the collection / combination / construction
    phases (paper Sections 2-4). *)

open Relalg
open Calculus

type report = {
  result : Relation.t;
  plan : Plan.t;  (** the plan after all enabled transformations *)
  scans : int;  (** counted full scans of database relations *)
  probes : int;  (** key lookups against database relations *)
  max_ntuple : int;  (** largest combined n-tuple relation *)
  intermediates : (string * int) list;
      (** sizes of all collection-phase structures, by memo key *)
}

val prepare : Database.t -> Strategy.t -> query -> Plan.t
(** Adaptation + standard form + enabled transformations, without
    evaluating. *)

val run :
  ?name:string ->
  ?strategy:Strategy.t ->
  ?join_order:Combination.join_order ->
  Database.t ->
  query ->
  Relation.t
(** Evaluate; [strategy] defaults to {!Strategy.full}, [join_order] to
    {!Combination.Cost_ordered}. *)

val run_report :
  ?name:string ->
  ?strategy:Strategy.t ->
  ?join_order:Combination.join_order ->
  Database.t ->
  query ->
  report
(** Evaluate with instrumentation; resets the database scan/probe
    counters first. *)

val run_traced :
  ?name:string ->
  ?strategy:Strategy.t ->
  ?join_order:Combination.join_order ->
  Database.t ->
  query ->
  report * Obs.Trace.span
(** {!run_report} under the span tracer: returns the report plus the
    root span ("query") whose children are the pipeline steps — adapt,
    standard_form, (range_extension,) plan, (quant_push,) collection,
    combination, construction — each carrying wall time and the metric
    deltas (scans, probes, tuples, pool traffic) incurred inside it. *)
