(** One-shot evaluation of a selection expression — a thin convenience
    over {!Session}: each call creates a throwaway session, runs the
    full pipeline and returns the result.  Hold a {!Session.t} (and
    {!Session.prepare}) to reuse plans across executions. *)

open Relalg
open Calculus

type report = Prepared.report = {
  result : Relation.t;
  plan : Plan.t;  (** the plan after all enabled transformations *)
  scans : int;  (** counted full scans of database relations *)
  probes : int;  (** key lookups against database relations *)
  max_ntuple : int;  (** largest combined n-tuple relation *)
  intermediates : (string * int) list;
      (** sizes of all collection-phase structures, by memo key *)
}

val run : ?name:string -> ?opts:Exec_opts.t -> Database.t -> query -> Relation.t
(** Evaluate under [opts] (default {!Exec_opts.default}: all four
    strategies, cost-ordered joins). *)

val run_report :
  ?name:string -> ?opts:Exec_opts.t -> Database.t -> query -> report
(** Evaluate with instrumentation; resets the database scan/probe
    counters first. *)

val run_traced :
  ?name:string ->
  ?opts:Exec_opts.t ->
  Database.t ->
  query ->
  report * Obs.Trace.span
(** {!run_report} under the span tracer: returns the report plus the
    root span ("query") whose children are the pipeline steps — adapt,
    standard_form, (range_extension,) plan, (quant_push,) collection,
    combination, construction — each carrying wall time and the metric
    deltas (scans, probes, tuples, pool traffic) incurred inside it. *)
