(* The standard form: a selection expression in prenex normal form with a
   DNF matrix — the "standardized starting point for optimization" of
   paper Section 2.

   Compilation assumes all range relations non-empty; {!adapt_query}
   performs the paper's runtime adaptation by simplifying quantifiers
   over ranges that are actually empty in the live database *before*
   prenexing (Example 2.2: with papers = [], the query collapses to
   the professors test). *)

open Relalg
open Calculus

type t = {
  free : (var * range) list;
  select : (var * string) list;
  prefix : Normalize.prefix_entry list;
  matrix : Normalize.dnf;
}

(* Is a range empty in the live database?  For an extended range the
   restriction is evaluated per element (one scan). *)
let range_is_empty db (range : range) =
  let rel = Database.find_relation db range.range_rel in
  match range.restriction with
  | None -> Relation.is_empty rel
  | Some (_, f)
    when not (Var_set.is_empty (Calculus.formula_params Var_set.empty f)) ->
    (* The restriction mentions $params, so its emptiness is unknowable
       until execution grounds them; keeping the quantifier is always
       correct, adaptation being only a simplification. *)
    false
  | Some (v, f) ->
    let schema = Relation.schema rel in
    not
      (Relation.scan_fold
         (fun acc tuple ->
           acc
           || Naive_eval.holds db
                (Var_map.add v { Naive_eval.tuple; schema } Var_map.empty)
                f)
         false rel)

(* Runtime adaptation: replace quantifiers over empty ranges by their
   truth values (SOME over [] is false, ALL over [] is true), recursively
   and with constant propagation.  After this pass every remaining
   quantifier ranges over a non-empty relation, which legitimizes the
   prenex transformation. *)
let rec adapt_formula db = function
  | (F_true | F_false | F_atom _) as f -> f
  | F_not f -> f_not (adapt_formula db f)
  | F_and (a, b) -> f_and (adapt_formula db a) (adapt_formula db b)
  | F_or (a, b) -> f_or (adapt_formula db a) (adapt_formula db b)
  | F_some (v, r, f) ->
    if range_is_empty db r then F_false
    else (
      match adapt_formula db f with
      | F_false -> F_false
      | F_true -> F_true (* non-empty range: SOME of true is true *)
      | f' -> F_some (v, r, f'))
  | F_all (v, r, f) ->
    if range_is_empty db r then F_true
    else (
      match adapt_formula db f with
      | F_true -> F_true
      | F_false -> F_false (* non-empty range: ALL of false is false *)
      | f' -> F_all (v, r, f'))

let adapt_query db q = { q with body = adapt_formula db q.body }

(* Compile a query to standard form under the non-empty assumption. *)
let of_query (q : query) =
  let reserved =
    List.fold_left
      (fun acc (v, _) -> Var_set.add v acc)
      Var_set.empty q.free
  in
  let body = distinct_bound_vars reserved q.body in
  let body = Normalize.nnf body in
  let prefix, matrix_formula = Normalize.prenex body in
  let matrix = Normalize.dnf_of_matrix matrix_formula in
  (* Quantifiers whose variable no longer occurs in the matrix (their
     atoms were pruned) are vacuous over non-empty ranges. *)
  let used = Normalize.dnf_vars matrix in
  let prefix =
    List.filter (fun e -> Var_set.mem e.Normalize.v used) prefix
  in
  { free = q.free; select = q.select; prefix; matrix }

(* Adapt, then compile: the full runtime pipeline entry point. *)
let compile db q = of_query (adapt_query db q)

(* Rebuild a query from a standard form; used to cross-check every
   transformation against the naive evaluator. *)
let to_query (sf : t) =
  let matrix = Normalize.formula_of_dnf sf.matrix in
  let body =
    List.fold_right
      (fun { Normalize.q; v; range } acc ->
        match q with
        | Normalize.Q_some -> F_some (v, range, acc)
        | Normalize.Q_all -> F_all (v, range, acc))
      sf.prefix matrix
  in
  { free = sf.free; select = sf.select; body }

(* All variables of the form, free first then prefix order — the
   canonical column order of the combination phase's n-tuples. *)
let variable_order (sf : t) =
  List.map fst sf.free @ List.map (fun e -> e.Normalize.v) sf.prefix

let range_of (sf : t) v =
  match List.assoc_opt v sf.free with
  | Some r -> Some r
  | None ->
    List.find_map
      (fun e -> if String.equal e.Normalize.v v then Some e.Normalize.range else None)
      sf.prefix

let conjunction_count (sf : t) = List.length sf.matrix

let pp ppf (sf : t) =
  let pp_sel ppf (v, a) = Fmt.pf ppf "%s.%s" v a in
  let pp_free ppf (v, r) = Fmt.pf ppf "EACH %s IN %a" v pp_range r in
  let pp_prefix ppf e =
    Fmt.pf ppf "%s %s IN %a"
      (Normalize.quant_to_string e.Normalize.q)
      e.Normalize.v pp_range e.Normalize.range
  in
  Fmt.pf ppf "@[<v2>[<%a> OF %a:@ %a@ %a]@]"
    (Fmt.list ~sep:Fmt.comma pp_sel)
    sf.select
    (Fmt.list ~sep:Fmt.comma pp_free)
    sf.free
    (Fmt.list ~sep:Fmt.sp pp_prefix)
    sf.prefix Normalize.pp_dnf sf.matrix

let to_string sf = Fmt.str "%a" pp sf
