(* The knobs of one query execution, gathered into a single record so
   call sites name the fields they set and new knobs do not ripple
   through every signature as extra optional labels. *)

type t = {
  strategy : Strategy.t;
  join_order : Combination.join_order;
  jobs : int;
  par_threshold : int;
  batch_size : int;
  use_index : bool;
  force_join : Cost.join_algo option;
}

let default_par_threshold = 4096

(* Secondary-index access paths are on unless PASCALR_NO_INDEX is set
   to something truthy — the forced-heap-scan CI leg and the
   differential oracle both run under PASCALR_NO_INDEX=1. *)
let default_use_index =
  match Sys.getenv_opt "PASCALR_NO_INDEX" with
  | Some ("" | "0") | None -> true
  | Some _ -> false

(* Default window size of the vectorized stream kernels.  Big enough to
   amortize the per-batch dispatch, small enough that the gather buffers
   of a join stay cache-resident.  [1] disables batching: the scalar
   emit is the differential oracle the batched path is tested against. *)
let default_batch_size =
  match Sys.getenv_opt "PASCALR_BATCH_SIZE" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 2048)
  | None -> 2048

(* Default worker count: the PASCALR_JOBS environment variable (how the
   CI matrix pins both the serial and the 4-domain suite) if set to a
   positive integer, otherwise what the hardware offers. *)
let default_jobs =
  match Sys.getenv_opt "PASCALR_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> max 1 (Domain.recommended_domain_count ()))
  | None -> max 1 (Domain.recommended_domain_count ())

let default =
  {
    strategy = Strategy.full;
    join_order = Combination.Cost_ordered;
    jobs = default_jobs;
    par_threshold = default_par_threshold;
    batch_size = default_batch_size;
    use_index = default_use_index;
    force_join = None;
  }

let make ?(strategy = Strategy.full)
    ?(join_order = Combination.Cost_ordered) ?(jobs = default_jobs)
    ?(par_threshold = default_par_threshold)
    ?(batch_size = default_batch_size) ?(use_index = default_use_index)
    ?force_join () =
  {
    strategy;
    join_order;
    jobs = max 1 jobs;
    par_threshold = max 0 par_threshold;
    batch_size = max 1 batch_size;
    use_index;
    force_join;
  }

let par t =
  if t.jobs <= 1 then None
  else Some { Relalg.Domain_pool.jobs = t.jobs; threshold = t.par_threshold }

let join_order_to_string = function
  | Combination.Cost_ordered -> "ordered"
  | Combination.Declaration -> "declaration"

let join_order_of_string = function
  | "ordered" -> Some Combination.Cost_ordered
  | "declaration" -> Some Combination.Declaration
  | _ -> None

(* Injective over the record: each strategy flag has its own token in
   Strategy.to_string, the join order follows after '/', then the
   parallelism and batching knobs.  jobs, par_threshold and batch_size
   are part of the fingerprint — and hence of every plan-cache key — so
   plans prepared under different execution settings never collide in
   the cache.  The physical-choice overrides append tokens only when
   set off their defaults (no index / forced join algorithm), keeping
   default fingerprints stable across versions while still separating
   overridden plans in the cache. *)
let fingerprint t =
  Fmt.str "%s/%s/j%d/t%d/b%d%s%s"
    (Strategy.to_string t.strategy)
    (join_order_to_string t.join_order)
    t.jobs t.par_threshold t.batch_size
    (if t.use_index then "" else "/ix0")
    (match t.force_join with
    | None -> ""
    | Some a -> "/fj:" ^ Cost.join_algo_to_string a)

let pp ppf t = Fmt.string ppf (fingerprint t)
