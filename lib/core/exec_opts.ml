(* The knobs of one query execution, gathered into a single record so
   call sites name the fields they set and new knobs do not ripple
   through every signature as extra optional labels. *)

type t = {
  strategy : Strategy.t;
  join_order : Combination.join_order;
}

let default =
  { strategy = Strategy.full; join_order = Combination.Cost_ordered }

let make ?(strategy = Strategy.full)
    ?(join_order = Combination.Cost_ordered) () =
  { strategy; join_order }

let join_order_to_string = function
  | Combination.Cost_ordered -> "ordered"
  | Combination.Declaration -> "declaration"

let join_order_of_string = function
  | "ordered" -> Some Combination.Cost_ordered
  | "declaration" -> Some Combination.Declaration
  | _ -> None

(* Injective over the record: each strategy flag has its own token in
   Strategy.to_string, and the join order follows after '/'. *)
let fingerprint t =
  Strategy.to_string t.strategy ^ "/" ^ join_order_to_string t.join_order

let pp ppf t = Fmt.string ppf (fingerprint t)
