(** The one report shape of every instrumented execution:
    {!Session.exec_report}, [Session.Txn.exec_report] and
    {!Prepared.exec_report} all return it, and [analyze --json]
    serializes it. *)

open Relalg

type cache_outcome = Hit | Miss | Invalidated | Reground
(** How the plan cache served this execution's plan.  [Invalidated]:
    the cached plan was compiled under a different stats epoch;
    [Reground]: a $param-dependent range turned out empty under the
    bindings and the substituted query was re-planned from scratch. *)

val cache_outcome_to_string : cache_outcome -> string

type txn_stats = {
  commits : int;
  conflicts : int;
  wal_appends : int;
  wal_fsyncs : int;
}
(** Transaction and WAL activity attributable to this execution (metric
    deltas over its observation window): zero for pure reads. *)

val no_txn_stats : txn_stats

type t = {
  result : Relation.t;
  plan : Plan.t;
  rows : int;  (** cardinality of [result] *)
  scans : int;  (** counted full relation scans of the database *)
  probes : int;  (** key lookups against database relations *)
  max_ntuple : int;  (** largest combined n-tuple relation *)
  intermediates : (string * int) list;
      (** sizes of all collection-phase structures *)
  access_paths : (string * string) list;
      (** access path per collection structure: ["probe"]
          (secondary-index equality), ["range"] (sorted-index range
          scan) or ["scan"] (heap scan) *)
  join_algos : (string * string) list;
      (** join algorithm per streaming combination step: ["nlj"],
          ["hash"] or ["batched-nlj"] *)
  collection_ms : float;
  combination_ms : float;
  construction_ms : float;
  cache : cache_outcome;
  txn : txn_stats;
}
