(* A bounded LRU cache of compiled plans.

   Keys are opaque strings (Session builds them from the structural
   digest of the alpha-canonical query plus the Exec_opts fingerprint).
   Every entry remembers the database stats epoch it was compiled
   under; a lookup under a different epoch drops the entry and reports
   a miss — the cached cost ordering and empty-range adaptation may no
   longer hold, so the caller must re-plan.

   Each cache keeps its own stats record, and every event also bumps
   the process-wide Obs.Metrics counters (plan_cache.hits / .misses /
   .evictions / .invalidations) so traces and EXPLAIN ANALYZE can
   attribute cache behaviour without a handle on the session. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

type entry = {
  e_plan : Plan.t;
  e_epoch : int;
  mutable e_used : int;  (* recency tick of the last hit *)
}

type t = {
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity < 1";
  {
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
  }

(* Guarded against the zero-lookup cache: 0.0, never NaN. *)
let hit_rate (s : stats) =
  let lookups = s.hits + s.misses + s.invalidations in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find t ~epoch key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    Obs.Metrics.incr "plan_cache.misses";
    None
  | Some e when e.e_epoch = epoch ->
    e.e_used <- next_tick t;
    t.hits <- t.hits + 1;
    Obs.Metrics.incr "plan_cache.hits";
    Some e.e_plan
  | Some _ ->
    (* Stale: compiled under different statistics. *)
    Hashtbl.remove t.tbl key;
    t.invalidations <- t.invalidations + 1;
    Obs.Metrics.incr "plan_cache.invalidations";
    None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, used) when used <= e.e_used -> acc
        | _ -> Some (key, e.e_used))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1;
    Obs.Metrics.incr "plan_cache.evictions"

let add t ~epoch key plan =
  if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.cap then
    evict_lru t;
  Hashtbl.replace t.tbl key
    { e_plan = plan; e_epoch = epoch; e_used = next_tick t }

let clear t = Hashtbl.reset t.tbl
