(* Plan explanation in the paper's element-oriented statement style:
   Example 4.3's FOR EACH loops over each relation and Example 4.7's
   cset/tset/pset program.  Purely presentational — renders what the
   collection and combination phases will do. *)

open Relalg
open Calculus

let buf_add = Buffer.add_string

let describe_range (r : range) =
  match r.restriction with
  | None -> r.range_rel
  | Some (v, f) -> Fmt.str "[EACH %s IN %s: %a]" v r.range_rel pp_formula f

let describe_pushed buf indent (vm : var) (p : Plan.pushed) =
  let quant = Normalize.quant_to_string p.Plan.p_quant in
  buf_add buf
    (Fmt.str "%svlist_%s := values of %s.%s over %s%s;\n" indent p.Plan.p_var
       p.Plan.p_var p.Plan.p_inner_attr
       (describe_range p.Plan.p_range)
       (match p.Plan.p_monadic with
       | [] -> ""
       | atoms ->
         Fmt.str " where %a" (Fmt.list ~sep:(Fmt.any " AND ") pp_atom) atoms));
  buf_add buf
    (Fmt.str "%s  (* storage: %s; evaluates %s %s (%s.%s %s %s.%s) *)\n" indent
       (match p.Plan.p_quant, p.Plan.p_op with
       | _, (Value.Lt | Value.Le | Value.Gt | Value.Ge) -> "min/max only"
       | Normalize.Q_all, Value.Eq | Normalize.Q_some, Value.Ne ->
         "at most one value"
       | _ -> "full value list")
       quant p.Plan.p_var vm p.Plan.p_outer_attr
       (Value.comparison_to_string p.Plan.p_op)
       p.Plan.p_var p.Plan.p_inner_attr)

let explain_plan (plan : Plan.t) =
  let buf = Buffer.create 1024 in
  buf_add buf "(* collection phase *)\n";
  (* Value lists of pushed quantifiers, innermost first. *)
  let rec emit_pushed (vm, (p : Plan.pushed)) =
    List.iter (fun n -> emit_pushed (p.Plan.p_var, n)) p.Plan.p_nested;
    describe_pushed buf "" vm p
  in
  List.iter
    (fun (c : Plan.conj) -> List.iter emit_pushed c.Plan.derived)
    plan.Plan.conjs;
  (* Base single lists. *)
  List.iter
    (fun v ->
      match Plan.range_of plan v with
      | Some r ->
        buf_add buf (Fmt.str "sl_%s := [<@%s> OF EACH %s IN %s: true];\n" v v v (describe_range r))
      | None -> ())
    (Plan.variable_order plan);
  (* Indirect joins. *)
  List.iteri
    (fun i (c : Plan.conj) ->
      let dyadics = List.filter is_dyadic c.Plan.atoms in
      List.iter
        (fun a ->
          buf_add buf
            (Fmt.str "ij_%d := indirect join for %a;\n" i pp_atom a))
        dyadics)
    plan.Plan.conjs;
  buf_add buf "(* combination phase *)\n";
  List.iteri
    (fun i (c : Plan.conj) ->
      buf_add buf
        (Fmt.str "refrel_%d := combine [%a]%s;\n" i Plan.pp_conj c
           (let missing =
              List.filter
                (fun v -> not (Var_set.mem v (Plan.conj_vars c)))
                (Plan.variable_order plan)
            in
            match missing with
            | [] -> ""
            | vs -> Fmt.str " x padding (%s)" (String.concat ", " vs))))
    plan.Plan.conjs;
  buf_add buf "refrel := union of all refrel_i;\n";
  List.iter
    (fun (e : Normalize.prefix_entry) ->
      match e.Normalize.q with
      | Normalize.Q_some ->
        buf_add buf (Fmt.str "refrel := project away %s (SOME);\n" e.Normalize.v)
      | Normalize.Q_all ->
        buf_add buf (Fmt.str "refrel := refrel DIVIDED BY sl_%s (ALL);\n" e.Normalize.v))
    (List.rev plan.Plan.prefix);
  buf_add buf "(* construction phase *)\n";
  buf_add buf
    (Fmt.str "result := [<%s> OF dereferenced refrel];\n"
       (String.concat ", "
          (List.map (fun (v, a) -> v ^ "." ^ a) plan.Plan.select)));
  Buffer.contents buf

let explain ?(strategy = Strategy.full) db query =
  let plan = Session.plan_only ~opts:(Exec_opts.make ~strategy ()) db query in
  Fmt.str "strategy: %a\n%s" Strategy.pp strategy (explain_plan plan)
