(* Prepared queries: the compile-once / execute-many half of the
   Session API.

   A prepared query holds no plan of its own — it holds a [replan]
   closure that goes through its session's plan cache, so every
   execution sees the freshest valid plan: a cache hit costs one
   hashtable probe, a stats-epoch change transparently re-runs the
   adapt / standard-form / plan pipeline.

   Every execution runs against a *snapshot*: the replan/reground
   closures and the evaluation phases all take the database to run
   against, and the public entry points pin a read transaction's view
   when the caller is not already inside one (autocommit).  The epoch
   the plan cache validates against is the snapshot's, so a plan
   compiled inside a write transaction is keyed to the transaction's
   own (post-write) epoch, not the store's.

   Plans may contain $name placeholders (Calculus.O_param).  Execution
   grounds the plan first — substituting every placeholder by its bound
   constant across free ranges, prefix ranges, matrix atoms and derived
   predicates — so the collection, combination and construction phases
   only ever see ground plans. *)

open Relalg
open Calculus

exception Unbound_parameter of string
exception Unknown_parameter of string

type t = {
  p_db : Database.t;  (* the session's store; autocommit pins snapshots of it *)
  p_opts : Exec_opts.t;
  p_digest : string;  (* structural digest: the Query_stats key *)
  p_text : string;  (* pretty-printed query, for stats display *)
  p_params : string list;  (* required placeholders, sorted *)
  p_replan : Database.t -> Plan.t;  (* through the session's plan cache *)
  p_reground : Database.t -> Value.t Var_map.t -> Plan.t;
      (* plan the fully substituted query from scratch: the slow path
         when a $param-dependent range turns out empty (below) *)
  p_param_qranges : range list;
      (* quantifier ranges whose restriction mentions a placeholder:
         their emptiness was assumed at plan time and must be
         re-checked once the bindings arrive *)
}

(* Quantifier ranges of the body whose restriction mentions a $param.
   Empty-range adaptation could not decide these at plan time (it
   assumed them non-empty), so execution probes them once ground. *)
let param_qranges body =
  let has_params f = not (Var_set.is_empty (formula_params Var_set.empty f)) in
  let rec go acc = function
    | F_true | F_false | F_atom _ -> acc
    | F_not f -> go acc f
    | F_and (a, b) | F_or (a, b) -> go (go acc a) b
    | F_some (_, r, f) | F_all (_, r, f) ->
      let acc =
        match r.restriction with
        | Some (_, rf) when has_params rf -> r :: go acc rf
        | Some (_, rf) -> go acc rf
        | None -> acc
      in
      go acc f
  in
  go [] body

let make ~db ~opts ~digest ~query ~replan ~reground =
  {
    p_db = db;
    p_opts = opts;
    p_digest = digest;
    p_text = Fmt.str "%a" pp_query query;
    p_params = query_params query;
    p_replan = replan;
    p_reground = reground;
    p_param_qranges = param_qranges query.body;
  }

let params t = t.p_params
let opts t = t.p_opts
let digest t = t.p_digest
let text t = t.p_text
let plan t = t.p_replan t.p_db

(* --- Grounding a plan ---------------------------------------------- *)

let rec subst_pushed b (p : Plan.pushed) =
  {
    p with
    Plan.p_range = subst_range b p.Plan.p_range;
    p_monadic = List.map (subst_atom b) p.Plan.p_monadic;
    p_nested = List.map (subst_pushed b) p.Plan.p_nested;
  }

let subst_conj b (c : Plan.conj) =
  {
    Plan.atoms = List.map (subst_atom b) c.Plan.atoms;
    derived = List.map (fun (v, p) -> (v, subst_pushed b p)) c.Plan.derived;
  }

let subst_prefix_entry b (e : Normalize.prefix_entry) =
  { e with Normalize.range = subst_range b e.Normalize.range }

let subst_plan b (plan : Plan.t) =
  {
    plan with
    Plan.free = List.map (fun (v, r) -> (v, subst_range b r)) plan.Plan.free;
    prefix = List.map (subst_prefix_entry b) plan.Plan.prefix;
    conjs = List.map (subst_conj b) plan.Plan.conjs;
  }

let bindings_of t provided =
  List.iter
    (fun (name, _) ->
      if not (List.mem name t.p_params) then raise (Unknown_parameter name))
    provided;
  let b =
    List.fold_left (fun m (k, v) -> Var_map.add k v m) Var_map.empty provided
  in
  (match List.find_opt (fun p -> not (Var_map.mem p b)) t.p_params with
  | Some p -> raise (Unbound_parameter p)
  | None -> ());
  b

(* The current plan, grounded under [provided] bindings against [db]
   (the execution's snapshot).

   Fast path: substitute the bindings into the cached plan.  Slow path:
   if a quantifier range whose restriction mentions a $param turns out
   EMPTY under these bindings, the plan-time adaptation (which assumed
   it non-empty) no longer holds — re-plan the fully substituted query
   so SOME/ALL over the empty range simplify correctly. *)
let ground t db provided =
  let b = bindings_of t provided in
  let adaptation_stale =
    (not (Var_map.is_empty b))
    && List.exists
         (fun r -> Standard_form.range_is_empty db (subst_range b r))
         t.p_param_qranges
  in
  if adaptation_stale then begin
    Obs.Metrics.incr "plan_cache.regrounds";
    t.p_reground db b
  end
  else
    let plan = t.p_replan db in
    if Var_map.is_empty b then plan else subst_plan b plan

(* --- Execution ----------------------------------------------------- *)

(* The [_with] variants run under a caller-supplied phase clock, so the
   observation window can start before this function — Session's
   one-shot paths open it around prepare + execute, attributing a cold
   one-shot's planning to the same record.  [?within] is the snapshot
   to execute against (a transaction's view); without it, a read
   transaction is pinned around the execution (autocommit). *)

let exec_in ?name ~params (clock : Observe.clock) db t =
  let plan = ground t db params in
  let coll =
    Collection.create
      ?par:(Exec_opts.par t.p_opts)
      ~batch_size:t.p_opts.Exec_opts.batch_size
      ~use_index:t.p_opts.Exec_opts.use_index db t.p_opts.Exec_opts.strategy
      plan
  in
  clock.time Observe.Collection (fun () ->
      Obs.Trace.with_span "collection" (fun () -> Collection.run coll));
  let refs =
    clock.time Observe.Combination (fun () ->
        Obs.Trace.with_span "combination" (fun () ->
            Combination.evaluate ~join_order:t.p_opts.Exec_opts.join_order
              ?force_join:t.p_opts.Exec_opts.force_join coll plan))
  in
  clock.time Observe.Construction (fun () ->
      Obs.Trace.with_span "construction" (fun () ->
          Construction.run ?name db plan refs))

let exec_with ?name ?(params = []) ?within clock t =
  match within with
  | Some db -> exec_in ?name ~params clock db t
  | None ->
    Database.with_read t.p_db (fun txn ->
        exec_in ?name ~params clock (Database.Txn.view txn) t)

(* Execute with instrumentation.  Scan/probe counters of the snapshot's
   relations are reset first, so the report reflects this execution
   alone; [since] is the caller's observation-window start, from which
   the cache outcome and txn/WAL activity are attributed. *)
let exec_report_in ?name ~params ~since (clock : Observe.clock) db t =
  Database.reset_counters db;
  let plan = ground t db params in
  let coll =
    Collection.create
      ?par:(Exec_opts.par t.p_opts)
      ~batch_size:t.p_opts.Exec_opts.batch_size
      ~use_index:t.p_opts.Exec_opts.use_index db t.p_opts.Exec_opts.strategy
      plan
  in
  clock.time Observe.Collection (fun () ->
      Obs.Trace.with_span "collection" (fun () -> Collection.run coll));
  let outcome =
    clock.time Observe.Combination (fun () ->
        Obs.Trace.with_span "combination" (fun () ->
            Combination.evaluate_outcome
              ~join_order:t.p_opts.Exec_opts.join_order
              ?force_join:t.p_opts.Exec_opts.force_join coll plan))
  in
  let refs = outcome.Combination.o_result in
  let result =
    clock.time Observe.Construction (fun () ->
        Obs.Trace.with_span "construction" (fun () ->
            Construction.run ?name db plan refs))
  in
  {
    Exec_result.result;
    plan;
    rows = Relation.cardinality result;
    scans = Database.total_scans db;
    probes = Database.total_probes db;
    max_ntuple = outcome.Combination.o_max_ntuple;
    intermediates = Collection.intermediate_sizes coll;
    access_paths = Collection.access_paths coll;
    join_algos = outcome.Combination.o_join_algos;
    collection_ms = clock.elapsed Observe.Collection;
    combination_ms = clock.elapsed Observe.Combination;
    construction_ms = clock.elapsed Observe.Construction;
    cache = Observe.cache_outcome ~since;
    txn = Observe.txn_stats ~since;
  }

let exec_report_with ?name ?(params = []) ?within ~since clock t =
  match within with
  | Some db -> exec_report_in ?name ~params ~since clock db t
  | None ->
    Database.with_read t.p_db (fun txn ->
        exec_report_in ?name ~params ~since clock (Database.Txn.view txn) t)

let exec ?name ?params ?within t =
  Observe.run ~digest:t.p_digest ~text:t.p_text ~opts:t.p_opts
    ~rows_of:Relation.cardinality (fun clock ->
      exec_with ?name ?params ?within clock t)

let exec_report ?name ?params t =
  let since = Observe.window () in
  Observe.run ~digest:t.p_digest ~text:t.p_text ~opts:t.p_opts
    ~rows_of:(fun r -> r.Exec_result.rows)
    (fun clock -> exec_report_with ?name ?params ~since clock t)

(* Execute under the span tracer.  On a cache hit the root "query" span
   has only collection / combination / construction children — the
   planning spans appear exactly when the cache re-plans. *)
let exec_traced ?name ?params t =
  (* The high-water gauge is cumulative across queries in one process;
     zero it so this trace's combination span reports this execution's
     maximum, not a larger one left over from an earlier run. *)
  Obs.Metrics.set_gauge "combination.max_ntuple" 0.0;
  Obs.Trace.collect "query"
    ~attrs:
      [
        ( "strategy",
          Obs.Json.Str (Strategy.to_string t.p_opts.Exec_opts.strategy) );
      ]
    (fun () -> exec_report ?name ?params t)
