(* Ground-truth evaluator: direct tuple-substitution semantics of the
   calculus.  "Many systems evaluate queries directly as given by the
   user" (paper Section 2) — this is that evaluator: nested scans, one
   per variable occurrence, no intermediate structures.  Every other
   evaluation strategy in this library is tested against it. *)

open Relalg
open Calculus

exception Eval_error of string

let evalf fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(* Name resolution needs the schema of each variable's range; the
   environment carries both the tuple and its schema. *)
type binding = { tuple : Tuple.t; schema : Schema.t }

type benv = binding Var_map.t

let operand db (env : benv) = function
  | O_const c ->
    ignore db;
    c
  | O_attr (v, a) -> (
    match Var_map.find_opt v env with
    | None -> evalf "unbound variable %s" v
    | Some b -> Tuple.get_by_name b.schema b.tuple a)
  | O_param p -> evalf "unbound parameter $%s" p

let atom_holds db env a =
  Value.apply a.op (operand db env a.lhs) (operand db env a.rhs)

(* Iterate the elements of a range (applying its restriction, if any),
   with instrumented scans: the naive evaluator re-reads a relation for
   every enclosing binding — the cost the collection phase avoids. *)
let range_elements db range =
  let rel = Database.find_relation db range.range_rel in
  let schema = Relation.schema rel in
  (rel, schema)

let rec range_satisfies db schema restriction tuple =
  match restriction with
  | None -> true
  | Some (v, f) ->
    holds db (Var_map.add v { tuple; schema } Var_map.empty) f

and iter_range db range f =
  let rel, schema = range_elements db range in
  Relation.scan
    (fun tuple ->
      if range_satisfies db schema range.restriction tuple then
        f { tuple; schema })
    rel

and exists_in_range db range p =
  let rel, schema = range_elements db range in
  Relation.scan_fold
    (fun acc tuple ->
      acc
      || (range_satisfies db schema range.restriction tuple && p { tuple; schema }))
    false rel

and forall_in_range db range p =
  let rel, schema = range_elements db range in
  Relation.scan_fold
    (fun acc tuple ->
      acc
      && ((not (range_satisfies db schema range.restriction tuple))
         || p { tuple; schema }))
    true rel

and holds db (env : benv) = function
  | F_true -> true
  | F_false -> false
  | F_atom a -> atom_holds db env a
  | F_not f -> not (holds db env f)
  | F_and (a, b) -> holds db env a && holds db env b
  | F_or (a, b) -> holds db env a || holds db env b
  | F_some (v, r, f) ->
    exists_in_range db r (fun b -> holds db (Var_map.add v b env) f)
  | F_all (v, r, f) ->
    forall_in_range db r (fun b -> holds db (Var_map.add v b env) f)

(* Evaluate a full selection: enumerate the free variables' (restricted)
   ranges, keep the combinations satisfying the body, project on the
   component selection. *)
let run ?name db (q : query) =
  Obs.Trace.with_span "naive_eval" @@ fun () ->
  let out_schema = Wellformed.result_schema db q in
  let result = Relation.create ?name out_schema in
  let project env =
    Tuple.of_list
      (List.map
         (fun (v, a) ->
           let b = Var_map.find v env in
           Tuple.get_by_name b.schema b.tuple a)
         q.select)
  in
  let rec loop env = function
    | [] -> if holds db env q.body then Relation.insert result (project env)
    | (v, range) :: rest ->
      iter_range db range (fun b -> loop (Var_map.add v b env) rest)
  in
  loop Var_map.empty q.free;
  result

(* Truth of a closed formula (no free variables) — used by tests of the
   logical transformation rules. *)
let closed_holds db f = holds db Var_map.empty f
