(* Strategy selection (the paper's Section 5 "ongoing research":
   integrating the logic-based transformations with cost-based choices).

   The planner analyses a query against database statistics and decides
   which of the four strategies to enable, with a written justification
   per decision:

   - S1 (parallel scans) and S2 (monadic restriction) never increase
     work: enabled whenever they can apply at all;
   - S3 is enabled when an extended range expression exists (some
     monadic atom is extractable) — the extension shrinks ranges
     globally and can only reduce the estimated combination volume;
   - S4 is enabled when a quantifier is actually pushable AND the
     estimated combination saving exceeds the value-list cost. *)

open Calculus

type decision = {
  d_strategy : Strategy.t;
  d_reasons : (string * string) list;  (* strategy tag -> justification *)
  d_before : Cost.estimate;  (* cost of the bare standard form *)
  d_after : Cost.estimate;  (* cost of the transformed plan *)
}

let has_monadic_atoms (sf : Standard_form.t) =
  List.exists (List.exists is_monadic) sf.Standard_form.matrix

let has_dyadic_atoms (sf : Standard_form.t) =
  List.exists (List.exists is_dyadic) sf.Standard_form.matrix

(* Would strategy 3 change the standard form? *)
let s3_applies db sf =
  let sf' = Range_ext.apply db sf in
  not
    (List.length sf'.Standard_form.matrix
     = List.length sf.Standard_form.matrix
    && List.for_all2 Normalize.conj_equal sf'.Standard_form.matrix
         sf.Standard_form.matrix
    && List.for_all2
         (fun (v1, r1) (v2, r2) -> String.equal v1 v2 && equal_range r1 r2)
         sf'.Standard_form.free sf.Standard_form.free
    && List.length sf'.Standard_form.prefix = List.length sf.Standard_form.prefix
    && List.for_all2
         (fun (a : Normalize.prefix_entry) (b : Normalize.prefix_entry) ->
           String.equal a.Normalize.v b.Normalize.v
           && equal_range a.Normalize.range b.Normalize.range)
         sf'.Standard_form.prefix sf.Standard_form.prefix)

(* Would strategy 4 push anything? *)
let s4_applies db plan =
  let plan' = Quant_push.apply db plan in
  List.length plan'.Plan.prefix < List.length plan.Plan.prefix

let choose db query =
  Obs.Trace.with_span "planner" @@ fun () ->
  let stats = Stats.collect db in
  let adapted = Standard_form.adapt_query db query in
  let sf = Standard_form.of_query adapted in
  let base_plan = Plan.of_standard_form sf in
  let before = Cost.estimate stats base_plan in
  let reasons = ref [] in
  let add tag why = reasons := (tag, why) :: !reasons in
  let parallel_scan =
    if has_monadic_atoms sf || has_dyadic_atoms sf then begin
      add "S1" "join terms present: grouped scans read each relation once";
      true
    end
    else begin
      add "S1" "no join terms: nothing to group";
      false
    end
  in
  let monadic_restrict =
    if has_monadic_atoms sf && has_dyadic_atoms sf then begin
      add "S2" "monadic terms can restrict indirect joins in one step";
      true
    end
    else begin
      add "S2" "no monadic/dyadic combination to merge";
      false
    end
  in
  let range_extension =
    if s3_applies db sf then begin
      add "S3" "extractable monadic terms found: ranges can be extended";
      true
    end
    else begin
      add "S3" "no monadic term occurs in every conjunction of its variable";
      false
    end
  in
  let cnf_extension =
    if not range_extension then false
    else begin
      let plain = Range_ext.apply db sf in
      let with_cnf = Range_ext.apply ~cnf:true db sf in
      let differs =
        List.length with_cnf.Standard_form.matrix
        <> List.length plain.Standard_form.matrix
        || not
             (List.for_all2
                (fun (v1, r1) (v2, r2) ->
                  String.equal v1 v2 && equal_range r1 r2)
                with_cnf.Standard_form.free plain.Standard_form.free)
      in
      if differs then begin
        add "S3cnf" "CNF extension shrinks the matrix or the free ranges";
        true
      end
      else begin
        add "S3cnf" "no pure-monadic conjunction or clause to absorb";
        false
      end
    end
  in
  let sf_for_s4 =
    if range_extension then Range_ext.apply ~cnf:cnf_extension db sf else sf
  in
  let plan_for_s4 = Plan.of_standard_form sf_for_s4 in
  let quantifier_push =
    if not (s4_applies db plan_for_s4) then begin
      add "S4" "no splittable quantifier (Lemma 1 conditions unmet)";
      false
    end
    else begin
      let pushed = Quant_push.apply db plan_for_s4 in
      let cost_without = Cost.estimate stats plan_for_s4 in
      let cost_with = Cost.estimate stats pushed in
      if cost_with.Cost.e_combination <= cost_without.Cost.e_combination then begin
        add "S4"
          (Fmt.str
             "pushing shrinks estimated combination volume %.0f -> %.0f n-tuples"
             cost_without.Cost.e_combination cost_with.Cost.e_combination);
        true
      end
      else begin
        add "S4" "pushing would not shrink the combination volume";
        false
      end
    end
  in
  (* Access paths are chosen per structure at collection time (over
     exact matching fractions); the decision just records what is
     available so `pascalr plan` explains why a run probes or scans. *)
  (match Relalg.Database.secondary_index_list db with
  | [] -> add "IX" "no secondary indexes declared: heap scans only"
  | l ->
    add "IX"
      (Fmt.str "%d secondary index(es) available: %s" (List.length l)
         (String.concat ", "
            (List.map
               (fun (rel, on, kind) ->
                 Fmt.str "%s(%s):%s" rel (String.concat "," on)
                   (Relalg.Secondary_index.kind_to_string kind))
               l))));
  let strategy =
    {
      Strategy.parallel_scan;
      monadic_restrict;
      range_extension;
      cnf_extension;
      quantifier_push;
    }
  in
  let final_plan = Session.plan_only ~opts:(Exec_opts.make ~strategy ()) db query in
  Obs.Trace.add_attr "strategy" (Obs.Json.Str (Strategy.to_string strategy));
  {
    d_strategy = strategy;
    d_reasons = List.rev !reasons;
    d_before = before;
    d_after = Cost.estimate stats final_plan;
  }

(* Plan and evaluate with the chosen strategy. *)
let run ?name db query =
  let decision = choose db query in
  ( decision,
    Session.exec ?name
      ~opts:(Exec_opts.make ~strategy:decision.d_strategy ())
      (Session.create db) query )

let pp_decision ppf d =
  Fmt.pf ppf "@[<v>strategy: %a@ before: %a@ after:  %a@ %a@]" Strategy.pp
    d.d_strategy Cost.pp d.d_before Cost.pp d.d_after
    (Fmt.list ~sep:Fmt.cut (fun ppf (tag, why) -> Fmt.pf ppf "%s: %s" tag why))
    d.d_reasons
