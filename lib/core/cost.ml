(* Cardinality and cost estimation over plans.

   The model estimates, per conjunction, the size of the n-tuple
   reference relation the combination phase would build: the product of
   each variable's restricted cardinality, discounted by the join
   selectivities of the conjunction's dyadic terms.  Collection cost is
   the number of elements scanned; combination cost is the sum of the
   estimated n-tuple cardinalities — the "combinatorial growth inherent
   in the combination of intermediate results" that the paper's
   strategies attack. *)

open Relalg
open Calculus

type estimate = {
  e_conj_sizes : float list;  (* estimated n-tuple cardinality per conjunction *)
  e_combination : float;      (* their sum: combination-phase volume *)
  e_collection : float;       (* elements scanned by the collection phase *)
}

(* Estimated cardinality of a variable's range after its restriction. *)
let rec restricted_cardinality stats (range : range) =
  let base = float_of_int (Stats.cardinality stats range.range_rel) in
  match range.restriction with
  | None -> base
  | Some (_, f) -> base *. formula_selectivity stats range.range_rel f

(* Selectivity of a monadic formula over one relation. *)
and formula_selectivity stats rel = function
  | F_true -> 1.0
  | F_false -> 0.0
  | F_not f -> 1.0 -. formula_selectivity stats rel f
  | F_and (a, b) -> formula_selectivity stats rel a *. formula_selectivity stats rel b
  | F_or (a, b) ->
    let sa = formula_selectivity stats rel a
    and sb = formula_selectivity stats rel b in
    sa +. sb -. (sa *. sb)
  | F_atom a -> atom_selectivity stats rel a
  | F_some _ | F_all _ -> 0.5

and atom_selectivity stats rel (a : atom) =
  match a.lhs, a.rhs with
  | O_attr (_, at), O_const c | O_const c, O_attr (_, at) ->
    Stats.monadic_selectivity stats rel at
      (match a.lhs with O_attr _ -> a.op | _ -> Value.flip_comparison a.op)
      c
  | O_attr _, O_attr _ -> 0.3 (* same-variable attribute comparison *)
  | O_const x, O_const y -> if Value.apply a.op x y then 1.0 else 0.0
  (* A parameter is an unknown constant: use the operator's default. *)
  | O_param _, _ | _, O_param _ -> (
    match a.op with Value.Eq -> 0.1 | Value.Ne -> 0.9 | _ -> 0.4)

(* Selectivity of a dyadic atom, given the ranges of its variables. *)
let dyadic_selectivity stats ranges (a : atom) =
  match a.lhs, a.rhs with
  | O_attr (v1, a1), O_attr (v2, a2) when not (String.equal v1 v2) -> (
    let r1 = List.assoc_opt v1 ranges and r2 = List.assoc_opt v2 ranges in
    match r1, r2, a.op with
    | Some r1, Some r2, Value.Eq ->
      Stats.join_selectivity stats r1.range_rel a1 r2.range_rel a2
    | Some _, Some _, Value.Ne -> 0.9
    | Some _, Some _, (Value.Lt | Value.Le | Value.Gt | Value.Ge) -> 0.4
    | (None, _, _ | _, None, _) -> 0.3)
  | (O_attr _ | O_const _ | O_param _), _ -> 0.5

(* Estimated n-tuple cardinality of one conjunction over the full
   variable order (conjunction variables restricted by its monadic
   atoms; missing variables padded with their full restricted range). *)
let conj_cardinality stats (plan : Plan.t) (conj : Plan.conj) =
  let order = Plan.variable_order plan in
  let ranges =
    List.filter_map (fun v -> Option.map (fun r -> (v, r)) (Plan.range_of plan v)) order
  in
  let var_size v =
    let range = List.assoc v ranges in
    let base = restricted_cardinality stats range in
    let monadic = Plan.monadic_over v conj.Plan.atoms in
    let sel =
      List.fold_left
        (fun acc a -> acc *. atom_selectivity stats range.range_rel a)
        1.0 monadic
    in
    (* Derived predicates behave like extra monadic filters; give them a
       neutral selectivity. *)
    let n_derived =
      List.length (List.filter (fun (vm, _) -> String.equal vm v) conj.Plan.derived)
    in
    Float.max 1.0 (base *. sel *. (0.5 ** float_of_int n_derived))
  in
  let product =
    List.fold_left (fun acc v -> acc *. var_size v) 1.0 order
  in
  let dyadics = List.filter is_dyadic conj.Plan.atoms in
  List.fold_left
    (fun acc a -> acc *. dyadic_selectivity stats ranges a)
    product dyadics

let estimate stats (plan : Plan.t) =
  let conj_sizes = List.map (conj_cardinality stats plan) plan.Plan.conjs in
  let order = Plan.variable_order plan in
  let collection =
    List.fold_left
      (fun acc v ->
        match Plan.range_of plan v with
        | Some r -> acc +. float_of_int (Stats.cardinality stats r.range_rel)
        | None -> acc)
      0.0 order
  in
  {
    e_conj_sizes = conj_sizes;
    e_combination = List.fold_left ( +. ) 0.0 conj_sizes;
    e_collection = collection;
  }

let pp ppf e =
  Fmt.pf ppf "collection %.0f elements, combination %.0f n-tuples (%a)"
    e.e_collection e.e_combination
    (Fmt.list ~sep:Fmt.comma (fun ppf f -> Fmt.pf ppf "%.0f" f))
    e.e_conj_sizes

(* --- Access-path and join-algorithm policy -------------------------

   Thresholds of the adaptive physical choices.  Access paths: an
   equality restriction always prefers a secondary-index probe (exact
   bucket, no scan); an order restriction uses a sorted index's range
   scan only while the exact matching fraction stays at or below
   [range_scan_max_fraction] — past that, walking the sorted view plus
   re-checking residual predicates loses to the single heap scan the
   grouped collection round performs anyway.

   Join algorithms (per combination-phase step, over TRUE build-side
   statistics — the inputs are materialized): a build side of at most
   [nlj_max_build] rows is joined by plain nested loops, because
   walking a handful of tuples per probe beats paying the hash-table
   construction; a build side whose join-key distinct fraction reaches
   [hash_min_distinct_fraction] builds a hash table (near-unique keys
   mean small buckets and one probe per row); anything else — large and
   duplicate-heavy — runs batched nested loops, memoizing the inner
   walk per distinct probe key so duplicate probes share one pass. *)

let nlj_max_build = 64
let hash_min_distinct_fraction = 0.5
let range_scan_max_fraction = 0.5

type join_algo = J_nlj | J_hash | J_batched_nlj

let join_algo_to_string = function
  | J_nlj -> "nlj"
  | J_hash -> "hash"
  | J_batched_nlj -> "batched-nlj"

let join_algo_of_string = function
  | "nlj" -> Some J_nlj
  | "hash" -> Some J_hash
  | "batched-nlj" -> Some J_batched_nlj
  | _ -> None

let choose_join_algo ~build_card ~build_distinct =
  if build_card <= nlj_max_build then J_nlj
  else if
    float_of_int build_distinct
    >= hash_min_distinct_fraction *. float_of_int build_card
  then J_hash
  else J_batched_nlj

(* --- Join ordering over materialized inputs ------------------------

   The combination phase joins the reference relations of one
   conjunction.  Unlike the textual estimates above, here the TRUE
   cardinalities and per-column distinct counts are available (the
   inputs are materialized), so a greedy System-R style ordering is
   cheap and accurate: start from the smallest input and repeatedly
   join in the input with the least estimated result size, where

     est(acc ⋈ C) = |acc| · |C| · Π_{shared column s} 1 / max(d_acc(s), d_C(s)).

   Inputs sharing no column with the accumulated prefix are estimated
   as Cartesian products, which the formula naturally penalizes. *)

type join_input = {
  ji_card : int;
  ji_cols : string list;
  ji_distinct : (string * int) list;  (* distinct count per column *)
}

let greedy_join_order (inputs : join_input list) =
  match inputs with
  | [] -> []
  | [ _ ] -> [ 0 ]
  | _ ->
    let arr = Array.of_list inputs in
    let n = Array.length arr in
    let used = Array.make n false in
    (* Distinct-count view of the accumulated intermediate: shared
       columns keep the smaller distinct count, everything is capped by
       the running cardinality estimate. *)
    let acc_distinct : (string, float) Hashtbl.t = Hashtbl.create 16 in
    let absorb est inp =
      List.iter
        (fun (c, d) ->
          let d = float_of_int (max 1 d) in
          let d =
            match Hashtbl.find_opt acc_distinct c with
            | Some prev -> Float.min prev d
            | None -> d
          in
          Hashtbl.replace acc_distinct c (Float.min d est))
        inp.ji_distinct
    in
    let start = ref 0 in
    for i = 1 to n - 1 do
      if arr.(i).ji_card < arr.(!start).ji_card then start := i
    done;
    let acc_card = ref (float_of_int (max 1 arr.(!start).ji_card)) in
    used.(!start) <- true;
    absorb !acc_card arr.(!start);
    let order = ref [ !start ] in
    for _ = 2 to n do
      let best = ref (-1) and best_est = ref infinity in
      for i = 0 to n - 1 do
        if not used.(i) then begin
          let est =
            List.fold_left
              (fun est (c, d) ->
                match Hashtbl.find_opt acc_distinct c with
                | Some da -> est /. Float.max da (float_of_int (max 1 d))
                | None -> est)
              (!acc_card *. float_of_int (max 1 arr.(i).ji_card))
              arr.(i).ji_distinct
          in
          if est < !best_est then begin
            best := i;
            best_est := est
          end
        end
      done;
      let i = !best in
      used.(i) <- true;
      acc_card := Float.max 1.0 !best_est;
      absorb !acc_card arr.(i);
      order := i :: !order
    done;
    List.rev !order
