(** Prepared queries: compile once via {!Session.prepare}, execute many
    times.  Execution re-validates the plan against the database stats
    epoch through the session's plan cache, grounds any [$name]
    placeholders, then runs only the collection / combination /
    construction phases. *)

open Relalg

exception Unbound_parameter of string
(** A placeholder the query requires was not bound at execution. *)

exception Unknown_parameter of string
(** A binding names a placeholder the query does not contain. *)

type report = {
  result : Relation.t;
  plan : Plan.t;  (** the plan after all enabled transformations *)
  scans : int;  (** counted full scans of database relations *)
  probes : int;  (** key lookups against database relations *)
  max_ntuple : int;  (** largest combined n-tuple relation *)
  intermediates : (string * int) list;
      (** sizes of all collection-phase structures, by memo key *)
}

type t

val make :
  db:Database.t ->
  opts:Exec_opts.t ->
  digest:string ->
  query:Calculus.query ->
  replan:(unit -> Plan.t) ->
  reground:(Relalg.Value.t Calculus.Var_map.t -> Plan.t) ->
  t
(** Used by {!Session.prepare}; [replan] must consult the session's
    plan cache under the current stats epoch.  [digest] is the
    structural digest of the alpha-canonical query — the key under
    which executions accumulate in {!Obs.Query_stats}.  [reground]
    must plan the fully substituted query from scratch — the fallback
    taken when a [$param]-dependent quantifier range turns out empty
    under the actual bindings, so the empty-range adaptation assumed
    at plan time no longer holds (counted as
    [plan_cache.regrounds]). *)

val params : t -> string list
(** The [$name] placeholders an execution must bind, sorted. *)

val opts : t -> Exec_opts.t

val digest : t -> string
(** The structural digest executions are accounted under. *)

val text : t -> string
(** The query pretty-printed once at prepare time. *)

val plan : t -> Plan.t
(** The current (possibly re-validated) plan, placeholders intact. *)

val exec :
  ?name:string -> ?params:(string * Relalg.Value.t) list -> t -> Relation.t
(** @raise Unbound_parameter if a required placeholder is missing.
    @raise Unknown_parameter on a binding the query does not use. *)

val exec_report :
  ?name:string -> ?params:(string * Relalg.Value.t) list -> t -> report
(** {!exec} with instrumentation; resets the database scan/probe
    counters first. *)

val exec_with :
  ?name:string ->
  ?params:(string * Relalg.Value.t) list ->
  Observe.clock ->
  t ->
  Relation.t
(** {!exec} under a caller-supplied {!Observe.clock} — no recording of
    its own.  {!Session}'s one-shot paths use this so the observation
    window also covers prepare. *)

val exec_report_with :
  ?name:string ->
  ?params:(string * Relalg.Value.t) list ->
  Observe.clock ->
  t ->
  report
(** {!exec_report}, clocked by the caller like {!exec_with}. *)

val exec_traced :
  ?name:string ->
  ?params:(string * Relalg.Value.t) list ->
  t ->
  report * Obs.Trace.span
(** {!exec_report} under the span tracer.  On a plan-cache hit the root
    span has only collection / combination / construction children; the
    planning spans reappear exactly when the stats epoch forces a
    re-plan. *)
