(** Prepared queries: compile once via {!Session.prepare}, execute many
    times.  Execution re-validates the plan against the stats epoch of
    the snapshot it runs against through the session's plan cache,
    grounds any [$name] placeholders, then runs only the collection /
    combination / construction phases.  Entry points without an
    explicit snapshot pin a read transaction for the duration of the
    execution (autocommit). *)

open Relalg

exception Unbound_parameter of string
(** A placeholder the query requires was not bound at execution. *)

exception Unknown_parameter of string
(** A binding names a placeholder the query does not contain. *)

type t

val make :
  db:Database.t ->
  opts:Exec_opts.t ->
  digest:string ->
  query:Calculus.query ->
  replan:(Database.t -> Plan.t) ->
  reground:(Database.t -> Relalg.Value.t Calculus.Var_map.t -> Plan.t) ->
  t
(** Used by {!Session.prepare}; [replan db] must consult the session's
    plan cache under [db]'s current stats epoch ([db] is the snapshot
    the execution runs against).  [digest] is the structural digest of
    the alpha-canonical query — the key under which executions
    accumulate in {!Obs.Query_stats}.  [reground db] must plan the
    fully substituted query from scratch against [db] — the fallback
    taken when a [$param]-dependent quantifier range turns out empty
    under the actual bindings, so the empty-range adaptation assumed
    at plan time no longer holds (counted as
    [plan_cache.regrounds]). *)

val params : t -> string list
(** The [$name] placeholders an execution must bind, sorted. *)

val opts : t -> Exec_opts.t

val digest : t -> string
(** The structural digest executions are accounted under. *)

val text : t -> string
(** The query pretty-printed once at prepare time. *)

val plan : t -> Plan.t
(** The current (possibly re-validated) plan against the session's
    store, placeholders intact. *)

val exec :
  ?name:string ->
  ?params:(string * Relalg.Value.t) list ->
  ?within:Database.t ->
  t ->
  Relation.t
(** Autocommit: pins a read snapshot around the execution, unless
    [?within] supplies a transaction's view to run against.
    @raise Unbound_parameter if a required placeholder is missing.
    @raise Unknown_parameter on a binding the query does not use. *)

val exec_report :
  ?name:string -> ?params:(string * Relalg.Value.t) list -> t -> Exec_result.t
(** {!exec} with instrumentation; resets the snapshot's scan/probe
    counters first. *)

val exec_with :
  ?name:string ->
  ?params:(string * Relalg.Value.t) list ->
  ?within:Database.t ->
  Observe.clock ->
  t ->
  Relation.t
(** {!exec} under a caller-supplied {!Observe.clock} — no recording of
    its own.  [?within] is the snapshot to run against (a transaction's
    view); when absent a read transaction is pinned around the
    execution.  {!Session}'s paths use this so the observation window
    also covers prepare. *)

val exec_report_with :
  ?name:string ->
  ?params:(string * Relalg.Value.t) list ->
  ?within:Database.t ->
  since:Observe.window ->
  Observe.clock ->
  t ->
  Exec_result.t
(** {!exec_report}, clocked by the caller like {!exec_with}; [since] is
    the observation-window start from which the report's cache outcome
    and txn/WAL stats are attributed. *)

val exec_traced :
  ?name:string ->
  ?params:(string * Relalg.Value.t) list ->
  t ->
  Exec_result.t * Obs.Trace.span
(** {!exec_report} under the span tracer.  On a plan-cache hit the root
    span has only collection / combination / construction children; the
    planning spans reappear exactly when the stats epoch forces a
    re-plan. *)
