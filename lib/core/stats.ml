(* Relation statistics for the cost model: cardinality, and per
   attribute the number of distinct values plus min/max.  Gathered in a
   single scan per relation and cached per database. *)

open Relalg

type attr_stats = {
  a_distinct : int;
  a_min : Value.t option;
  a_max : Value.t option;
}

type rel_stats = {
  r_cardinality : int;
  r_attrs : (string * attr_stats) list;
}

let collect_relation rel =
  let schema = Relation.schema rel in
  let n = Schema.arity schema in
  let seen = Array.init n (fun _ -> Value_key.create 64) in
  let mins = Array.make n None and maxs = Array.make n None in
  Relation.scan
    (fun t ->
      for i = 0 to n - 1 do
        let v = Tuple.get t i in
        Value_key.Table.replace seen.(i) [ v ] ();
        (match mins.(i) with
        | None -> mins.(i) <- Some v
        | Some m -> if Value.compare v m < 0 then mins.(i) <- Some v);
        match maxs.(i) with
        | None -> maxs.(i) <- Some v
        | Some m -> if Value.compare v m > 0 then maxs.(i) <- Some v
      done)
    rel;
  {
    r_cardinality = Relation.cardinality rel;
    r_attrs =
      List.init n (fun i ->
          ( Schema.name_at schema i,
            {
              a_distinct = Value_key.Table.length seen.(i);
              a_min = mins.(i);
              a_max = maxs.(i);
            } ));
  }

type t = { per_rel : (string, rel_stats) Hashtbl.t }

let collect db =
  Obs.Trace.with_span "stats_collect" @@ fun () ->
  let per_rel = Hashtbl.create 8 in
  List.iter
    (fun rel -> Hashtbl.replace per_rel (Relation.name rel) (collect_relation rel))
    (Database.relations db);
  { per_rel }

let relation t name =
  match Hashtbl.find_opt t.per_rel name with
  | Some s -> s
  | None -> raise (Errors.Unknown_relation name)

let cardinality t name = (relation t name).r_cardinality

let attr t name attr_name =
  match List.assoc_opt attr_name (relation t name).r_attrs with
  | Some a -> a
  | None -> raise (Errors.Unknown_attribute attr_name)

(* Fraction of the ordered domain [min, max] below a value — linear
   interpolation for integers and enum ordinals, a neutral guess
   elsewhere. *)
let position_fraction v lo hi =
  match v, lo, hi with
  | Value.VInt x, Value.VInt l, Value.VInt h ->
    if h <= l then 0.5 else float_of_int (x - l) /. float_of_int (h - l)
  | Value.VEnum (_, x), Value.VEnum (_, l), Value.VEnum (_, h) ->
    if h <= l then 0.5 else float_of_int (x - l) /. float_of_int (h - l)
  | (Value.VInt _ | Value.VStr _ | Value.VBool _ | Value.VEnum _ | Value.VRef _), _, _
    ->
    0.5

let clamp01 x = Float.max 0.01 (Float.min 0.99 x)

(* Selectivity of a monadic comparison [attr op const]. *)
let monadic_selectivity t rel_name attr_name op (c : Value.t) =
  let a = attr t rel_name attr_name in
  let d = max 1 a.a_distinct in
  match op with
  | Value.Eq -> 1.0 /. float_of_int d
  | Value.Ne -> 1.0 -. (1.0 /. float_of_int d)
  | Value.Lt | Value.Le | Value.Gt | Value.Ge -> (
    match a.a_min, a.a_max with
    | Some lo, Some hi ->
      let f = position_fraction c lo hi in
      clamp01 (match op with
        | Value.Lt | Value.Le -> f
        | Value.Gt | Value.Ge -> 1.0 -. f
        | Value.Eq | Value.Ne -> 0.5)
    | None, _ | _, None -> 0.33)

(* Selectivity of an equality dyadic term between two attributes
   (System-R style: 1 / max of the distinct counts). *)
let join_selectivity t rel1 attr1 rel2 attr2 =
  let d1 = max 1 (attr t rel1 attr1).a_distinct in
  let d2 = max 1 (attr t rel2 attr2).a_distinct in
  1.0 /. float_of_int (max d1 d2)

let pp ppf t =
  Hashtbl.iter
    (fun name rs ->
      Fmt.pf ppf "%s: %d elements@." name rs.r_cardinality;
      List.iter
        (fun (a, s) -> Fmt.pf ppf "  %s: %d distinct@." a s.a_distinct)
        rs.r_attrs)
    t.per_rel

(* Per-column distinct counts of an already-materialized relation, via
   an uninstrumented walk — the combination phase's join ordering runs
   this over intermediate reference relations, whose reads are not part
   of the reported scan counts. *)
let column_distincts rel =
  let schema = Relation.schema rel in
  let n = Schema.arity schema in
  let seen = Array.init n (fun _ -> Value_key.acreate 64) in
  Relation.iter
    (fun t ->
      for i = 0 to n - 1 do
        Value_key.Atable.replace seen.(i) [| Tuple.get t i |] ()
      done)
    rel;
  List.init n (fun i ->
      (Schema.name_at schema i, Value_key.Atable.length seen.(i)))
