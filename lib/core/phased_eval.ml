(* The full PASCAL/R query evaluation pipeline (paper Sections 2-4):

   1. runtime adaptation of empty ranges (Section 2);
   2. compilation to standard form — prenex + DNF (Section 2);
   3. strategy 3: extended range expressions (Section 4.3);
   4. strategy 4: quantifier evaluation in the collection phase (4.4);
   5. collection phase — single lists, indexes, indirect joins, value
      lists (Section 3.3; strategies 1 and 2 of Sections 4.1/4.2);
   6. combination phase — n-tuple reference relations, union,
      right-to-left quantifier elimination (Section 3.3);
   7. construction phase — dereference and component selection. *)

open Relalg

let src = Logs.Src.create "pascalr.eval" ~doc:"PASCAL/R evaluation pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

type report = {
  result : Relation.t;
  plan : Plan.t;
  scans : int;  (* counted full relation scans of the database *)
  probes : int;  (* key lookups against database relations *)
  max_ntuple : int;  (* largest combined n-tuple relation *)
  intermediates : (string * int) list;
      (* sizes of all collection-phase structures *)
}

let prepare db strategy query =
  let adapted =
    Obs.Trace.with_span "adapt" (fun () -> Standard_form.adapt_query db query)
  in
  if not (Calculus.equal_formula adapted.Calculus.body query.Calculus.body)
  then
    Log.debug (fun m ->
        m "empty-range adaptation rewrote the query to %a" Calculus.pp_query
          adapted);
  let sf =
    Obs.Trace.with_span "standard_form" (fun () ->
        let sf = Standard_form.of_query adapted in
        Obs.Trace.add_attr "conjunctions"
          (Obs.Json.Int (List.length sf.Standard_form.matrix));
        Obs.Trace.add_attr "prefix"
          (Obs.Json.Int (List.length sf.Standard_form.prefix));
        sf)
  in
  Log.debug (fun m ->
      m "standard form: %d conjunctions, prefix %d"
        (List.length sf.Standard_form.matrix)
        (List.length sf.Standard_form.prefix));
  let sf =
    if strategy.Strategy.range_extension || strategy.Strategy.cnf_extension
    then begin
      let sf' =
        Obs.Trace.with_span "range_extension" (fun () ->
            Range_ext.apply ~cnf:strategy.Strategy.cnf_extension db sf)
      in
      Log.debug (fun m ->
          m "range extension: %d -> %d conjunctions"
            (List.length sf.Standard_form.matrix)
            (List.length sf'.Standard_form.matrix));
      sf'
    end
    else sf
  in
  let plan = Obs.Trace.with_span "plan" (fun () -> Plan.of_standard_form sf) in
  if strategy.Strategy.quantifier_push then begin
    let plan' =
      Obs.Trace.with_span "quant_push" (fun () -> Quant_push.apply db plan)
    in
    Log.debug (fun m ->
        m "quantifier pushing: prefix %d -> %d"
          (List.length plan.Plan.prefix)
          (List.length plan'.Plan.prefix));
    plan'
  end
  else plan

let run ?name ?(strategy = Strategy.full) ?join_order db query =
  let plan = prepare db strategy query in
  let coll = Collection.create db strategy plan in
  Obs.Trace.with_span "collection" (fun () -> Collection.run coll);
  let refs =
    Obs.Trace.with_span "combination" (fun () ->
        Combination.evaluate ?join_order coll plan)
  in
  Obs.Trace.with_span "construction" (fun () ->
      Construction.run ?name db plan refs)

(* Run with instrumentation.  Scan/probe counters of the database
   relations are reset first, so the report reflects this query alone. *)
let run_report ?name ?(strategy = Strategy.full) ?join_order db query =
  Database.reset_counters db;
  let plan = prepare db strategy query in
  let coll = Collection.create db strategy plan in
  Obs.Trace.with_span "collection" (fun () -> Collection.run coll);
  let refs, max_ntuple =
    Obs.Trace.with_span "combination" (fun () ->
        Combination.evaluate_with_stats ?join_order coll plan)
  in
  let result =
    Obs.Trace.with_span "construction" (fun () ->
        Construction.run ?name db plan refs)
  in
  {
    result;
    plan;
    scans = Database.total_scans db;
    probes = Database.total_probes db;
    max_ntuple;
    intermediates = Collection.intermediate_sizes coll;
  }

(* Run under the span tracer: the whole pipeline executes below a root
   span, so each phase (and each conjunction, quantifier elimination and
   collection-phase scan below it) carries its own wall time and metric
   deltas.  [Database.reset_counters] runs inside {!run_report}; the
   per-span metric attribution is diff-based and unaffected. *)
let run_traced ?name ?(strategy = Strategy.full) ?join_order db query =
  (* The high-water gauge is cumulative across queries in one process;
     zero it so this trace's combination span reports this query's
     maximum, not a larger one left over from an earlier run. *)
  Obs.Metrics.set_gauge "combination.max_ntuple" 0.0;
  Obs.Trace.collect "query"
    ~attrs:[ ("strategy", Obs.Json.Str (Strategy.to_string strategy)) ]
    (fun () -> run_report ?name ~strategy ?join_order db query)
