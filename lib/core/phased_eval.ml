(* One-shot evaluation: thin wrappers over the Session path.

   The pipeline itself lives in Session.plan_only; execution in
   Prepared.  Each call here creates a throwaway session, so behaviour
   matches the historical API exactly — no plan survives the call.
   Callers that repeat queries should hold a Session instead. *)

let run ?name ?opts db query =
  Session.exec ?opts ?name (Session.create db) query

type report = Prepared.report = {
  result : Relalg.Relation.t;
  plan : Plan.t;
  scans : int;
  probes : int;
  max_ntuple : int;
  intermediates : (string * int) list;
}

let run_report ?name ?opts db query =
  Session.exec_report ?opts ?name (Session.create db) query

let run_traced ?name ?opts db query =
  Session.exec_traced ?opts ?name (Session.create db) query
