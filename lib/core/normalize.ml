(* Logic normalization: negation normal form, prenex form, disjunctive
   normal form (paper Section 2: "the PASCAL/R compiler transforms each
   selection expression into prenex normal form with a matrix in
   disjunctive normal form").

   Prenexing moves quantifiers over AND and OR; by Lemma 1 this is only
   an equivalence when all range relations are non-empty, so callers must
   adapt empty ranges first (see {!Standard_form.adapt_query}). *)

open Relalg
open Calculus

(* Constant folding of ground atoms. *)
let fold_atom a =
  match a.lhs, a.rhs with
  | O_const x, O_const y ->
    if Value.apply a.op x y then F_true else F_false
  | (O_attr _ | O_const _ | O_param _), _ -> F_atom a

(* Negation normal form.  NOT is pushed to the atoms and absorbed into
   the comparison operator (NOT (x < y) = x >= y); NOT SOME becomes ALL
   NOT and vice versa — these De Morgan duals hold unconditionally in the
   many-sorted calculus. *)
let rec nnf = function
  | F_true -> F_true
  | F_false -> F_false
  | F_atom a -> fold_atom a
  | F_and (a, b) -> f_and (nnf a) (nnf b)
  | F_or (a, b) -> f_or (nnf a) (nnf b)
  | F_some (v, r, f) -> (
    match nnf f with
    | F_false -> F_false
    | f' -> F_some (v, r, f'))
  | F_all (v, r, f) -> (
    match nnf f with
    | F_true -> F_true
    | f' -> F_all (v, r, f'))
  | F_not f -> nnf_neg f

and nnf_neg = function
  | F_true -> F_false
  | F_false -> F_true
  | F_atom a -> fold_atom { a with op = Value.negate_comparison a.op }
  | F_not f -> nnf f
  | F_and (a, b) -> f_or (nnf_neg a) (nnf_neg b)
  | F_or (a, b) -> f_and (nnf_neg a) (nnf_neg b)
  | F_some (v, r, f) -> (
    match nnf_neg f with
    | F_true -> F_true
    | f' -> F_all (v, r, f'))
  | F_all (v, r, f) -> (
    match nnf_neg f with
    | F_false -> F_false
    | f' -> F_some (v, r, f'))

type quant = Q_some | Q_all

let quant_to_string = function Q_some -> "SOME" | Q_all -> "ALL"

type prefix_entry = { q : quant; v : var; range : range }

(* Prenex transformation of an NNF formula with pairwise-distinct bound
   variables.  Quantifiers are emitted in textual (left-to-right) order,
   matching the paper's Example 2.2.  Valid for non-empty ranges. *)
let rec prenex = function
  | (F_true | F_false | F_atom _) as f -> ([], f)
  | F_and (a, b) ->
    let pa, ma = prenex a and pb, mb = prenex b in
    (pa @ pb, f_and ma mb)
  | F_or (a, b) ->
    let pa, ma = prenex a and pb, mb = prenex b in
    (pa @ pb, f_or ma mb)
  | F_some (v, r, f) ->
    let p, m = prenex f in
    ({ q = Q_some; v; range = r } :: p, m)
  | F_all (v, r, f) ->
    let p, m = prenex f in
    ({ q = Q_all; v; range = r } :: p, m)
  | F_not _ -> invalid_arg "Normalize.prenex: formula not in NNF"

(* A conjunction of join terms, and a matrix in disjunctive normal form.
   The empty conjunction is TRUE; the empty disjunction is FALSE. *)
type conjunction = atom list
type dnf = conjunction list

let conj_mem atom conj = List.exists (equal_atom_mirrored atom) conj

let conj_add atom conj = if conj_mem atom conj then conj else atom :: conj

(* A conjunction containing an atom and its complement is contradictory. *)
let contradictory conj =
  List.exists
    (fun a ->
      conj_mem { a with op = Value.negate_comparison a.op } conj)
    conj

let conj_equal c1 c2 =
  List.length c1 = List.length c2
  && List.for_all (fun a -> conj_mem a c2) c1

(* A conjunction subsumes another if it is a subset of it: then the
   larger one is redundant in a disjunction. *)
let conj_subsumes smaller larger =
  List.for_all (fun a -> conj_mem a larger) smaller

let add_disjunct dnf conj =
  if List.exists (fun c -> conj_subsumes c conj) dnf then dnf
  else conj :: List.filter (fun c -> not (conj_subsumes conj c)) dnf

(* DNF of a quantifier-free NNF matrix. *)
let dnf_of_matrix matrix =
  let rec go = function
    | F_true -> [ [] ]
    | F_false -> []
    | F_atom a -> [ [ a ] ]
    | F_or (x, y) -> go x @ go y
    | F_and (x, y) ->
      let dx = go x and dy = go y in
      List.concat_map
        (fun cx ->
          List.filter_map
            (fun cy ->
              let merged = List.fold_left (fun acc a -> conj_add a acc) cx cy in
              if contradictory merged then None else Some merged)
            dy)
        dx
    | F_not _ | F_some _ | F_all _ ->
      invalid_arg "Normalize.dnf_of_matrix: not a quantifier-free NNF matrix"
  in
  let raw = go matrix in
  let deduped = List.fold_left add_disjunct [] raw in
  if List.exists (fun c -> c = []) deduped then [ [] ] else List.rev deduped

let conj_vars (conj : conjunction) =
  List.fold_left
    (fun acc a -> Var_set.union acc (atom_vars a))
    Var_set.empty conj

let dnf_vars (d : dnf) =
  List.fold_left (fun acc c -> Var_set.union acc (conj_vars c)) Var_set.empty d

let formula_of_conj (conj : conjunction) =
  Calculus.conj (List.map (fun a -> F_atom a) conj)

let formula_of_dnf (d : dnf) = disj (List.map formula_of_conj d)

(* --- Alpha-canonical renaming --------------------------------------

   Rename every variable to a reserved positional name ('%'-prefixed,
   which the lexer cannot produce): free variables to %f0, %f1, ... in
   declaration order, quantifier-bound variables to %b0, %b1, ... in
   traversal order, range-restriction variables to %r0, %r1, ...
   likewise.  Two queries differing only in variable spelling
   canonicalize identically, so digesting the canonical form
   ({!Calculus.digest_query}) keys a plan cache by query structure. *)

let canonical_query (q : query) =
  let bound = ref 0 and restr = ref 0 in
  let rename_operand env = function
    | O_attr (v, a) as o -> (
      match Var_map.find_opt v env with
      | Some v' -> O_attr (v', a)
      | None -> o)
    | (O_const _ | O_param _) as o -> o
  in
  let rename_atom env a =
    { a with lhs = rename_operand env a.lhs; rhs = rename_operand env a.rhs }
  in
  let rec rename_range r =
    match r.restriction with
    | None -> r
    | Some (rv, f) ->
      (* Restriction formulas mention only their own variable
         (wellformedness), so a fresh one-entry environment suffices. *)
      let rv' = Printf.sprintf "%%r%d" !restr in
      incr restr;
      let env = Var_map.add rv rv' Var_map.empty in
      { r with restriction = Some (rv', rename_formula env f) }
  and rename_formula env = function
    | F_true -> F_true
    | F_false -> F_false
    | F_atom a -> F_atom (rename_atom env a)
    | F_not f -> F_not (rename_formula env f)
    | F_and (a, b) -> F_and (rename_formula env a, rename_formula env b)
    | F_or (a, b) -> F_or (rename_formula env a, rename_formula env b)
    | F_some (v, r, f) ->
      let r' = rename_range r in
      let v' = Printf.sprintf "%%b%d" !bound in
      incr bound;
      F_some (v', r', rename_formula (Var_map.add v v' env) f)
    | F_all (v, r, f) ->
      let r' = rename_range r in
      let v' = Printf.sprintf "%%b%d" !bound in
      incr bound;
      F_all (v', r', rename_formula (Var_map.add v v' env) f)
  in
  let env, free_rev =
    List.fold_left
      (fun (env, acc) (v, r) ->
        let v' = Printf.sprintf "%%f%d" (Var_map.cardinal env) in
        (Var_map.add v v' env, (v', rename_range r) :: acc))
      (Var_map.empty, []) q.free
  in
  let select =
    List.map
      (fun (v, a) ->
        match Var_map.find_opt v env with Some v' -> (v', a) | None -> (v, a))
      q.select
  in
  { free = List.rev free_rev; select; body = rename_formula env q.body }

let pp_conjunction ppf conj =
  match conj with
  | [] -> Fmt.string ppf "true"
  | _ -> Fmt.pf ppf "@[<hov>%a@]" (Fmt.list ~sep:(Fmt.any " AND@ ") pp_atom) conj

let pp_dnf ppf = function
  | [] -> Fmt.string ppf "false"
  | d ->
    Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any "@,OR ") pp_conjunction) d
