(* Well-formedness of queries against a database schema: every range
   names a catalogued relation, every operand resolves to an attribute of
   its variable's range relation, both sides of a join term live in
   comparable domains, quantifiers do not shadow, and the component
   selection projects existing attributes of free variables. *)

open Relalg
open Calculus

type error = { message : string }

let errf fmt = Format.kasprintf (fun message -> Error { message }) fmt

let ( let* ) r f = Result.bind r f

let rec check_list f = function
  | [] -> Ok ()
  | x :: xs ->
    let* () = f x in
    check_list f xs

(* Environment: variable -> schema of its range relation. *)
type env = Schema.t Var_map.t

let operand_type db (env : env) = function
  | O_const c ->
    ignore db;
    Ok
      (match c with
      | Value.VInt _ -> Vtype.int_full
      | Value.VStr _ -> Vtype.string_any
      | Value.VBool _ -> Vtype.boolean
      | Value.VEnum (info, _) -> Vtype.TEnum info
      | Value.VRef r -> Vtype.reference r.Value.target)
  | O_attr (v, a) -> (
    match Var_map.find_opt v env with
    | None -> errf "unbound variable %s" v
    | Some schema ->
      if Schema.mem schema a then Ok (Schema.type_of schema a)
      else errf "variable %s has no component %s" v a)
  | O_param p -> errf "parameter $%s outside a comparison" p

let check_atom db env atom =
  match atom.lhs, atom.rhs with
  (* A placeholder's type is known only once bound; its comparability is
     checked at execution time, when substitution grounds the atom. *)
  | O_param _, _ | _, O_param _ ->
    let check_side o =
      match o with O_param _ -> Ok () | _ -> Result.map ignore (operand_type db env o)
    in
    let* () = check_side atom.lhs in
    check_side atom.rhs
  | _ ->
    let* lt = operand_type db env atom.lhs in
    let* rt = operand_type db env atom.rhs in
    if Vtype.comparable lt rt then Ok ()
    else
      errf "join term %s compares %s with %s"
        (Fmt.str "%a" pp_atom atom)
        (Vtype.to_string lt) (Vtype.to_string rt)

let rec check_range db _env v range =
  match Database.find_relation_opt db range.range_rel with
  | None -> errf "unknown range relation %s" range.range_rel
  | Some rel -> (
    let schema = Relation.schema rel in
    match range.restriction with
    | None -> Ok schema
    | Some (rv, f) ->
      let fv = free_vars f in
      if not (Var_set.subset fv (Var_set.singleton rv)) then
        errf "range restriction of %s mentions foreign variables %s" v
          (String.concat ", "
             (Var_set.elements (Var_set.remove rv fv)))
      else
        let inner_env = Var_map.add rv schema Var_map.empty in
        let* () = check_formula db inner_env f in
        Ok schema)

and check_formula db (env : env) = function
  | F_true | F_false -> Ok ()
  | F_atom a -> check_atom db env a
  | F_not f -> check_formula db env f
  | F_and (a, b) | F_or (a, b) ->
    let* () = check_formula db env a in
    check_formula db env b
  | F_some (v, r, f) | F_all (v, r, f) ->
    if Var_map.mem v env then errf "quantifier shadows variable %s" v
    else
      let* schema = check_range db env v r in
      check_formula db (Var_map.add v schema env) f

let check_query db q =
  let* env =
    List.fold_left
      (fun acc (v, r) ->
        let* env = acc in
        if Var_map.mem v env then errf "duplicate free variable %s" v
        else
          let* schema = check_range db env v r in
          Ok (Var_map.add v schema env))
      (Ok Var_map.empty) q.free
  in
  let* () =
    if q.select = [] then errf "empty component selection" else Ok ()
  in
  let* () =
    check_list
      (fun (v, a) ->
        match Var_map.find_opt v env with
        | None -> errf "component selection uses non-free variable %s" v
        | Some schema ->
          if Schema.mem schema a then Ok ()
          else errf "free variable %s has no component %s" v a)
      q.select
  in
  check_formula db env q.body

(* Schema of a query's result relation.  Output attributes are named
   after the selected component, disambiguated by the variable name when
   two selections share a component name. *)
let result_schema db q =
  let env =
    List.fold_left
      (fun env (v, r) ->
        let rel = Database.find_relation db r.range_rel in
        Var_map.add v (Relation.schema rel) env)
      Var_map.empty q.free
  in
  let count name =
    List.length (List.filter (fun (_, a) -> String.equal a name) q.select)
  in
  let attr_of (v, a) =
    let schema = Var_map.find v env in
    let name = if count a > 1 then v ^ "_" ^ a else a in
    Schema.attr name (Schema.type_of schema a)
  in
  Schema.make (List.map attr_of q.select) ~key:[]
