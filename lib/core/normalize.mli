(** Negation normal form, prenex form and disjunctive normal form (paper
    Section 2).  Prenexing assumes non-empty ranges (Lemma 1); adapt
    empty ranges first via {!Standard_form.adapt_query}. *)

open Calculus

val nnf : formula -> formula
(** Push NOT to the atoms (absorbed into the comparison operator) and
    through quantifiers (De Morgan duals); folds ground atoms. *)

type quant = Q_some | Q_all

val quant_to_string : quant -> string

type prefix_entry = { q : quant; v : var; range : range }

val prenex : formula -> prefix_entry list * formula
(** Prenex a NNF formula with pairwise-distinct bound variables.
    Quantifiers keep their textual left-to-right order.
    @raise Invalid_argument if the formula is not in NNF. *)

type conjunction = atom list
(** A conjunction of join terms; [[]] is TRUE. *)

type dnf = conjunction list
(** A disjunction of conjunctions; [[]] is FALSE. *)

val dnf_of_matrix : formula -> dnf
(** DNF of a quantifier-free NNF matrix, with duplicate-atom removal,
    contradictory-conjunction elimination, and subsumption pruning.
    @raise Invalid_argument on quantifiers or NOT. *)

val conj_mem : atom -> conjunction -> bool
val conj_add : atom -> conjunction -> conjunction
val conj_equal : conjunction -> conjunction -> bool
val contradictory : conjunction -> bool
val conj_vars : conjunction -> Var_set.t
val dnf_vars : dnf -> Var_set.t

val formula_of_conj : conjunction -> formula
val formula_of_dnf : dnf -> formula

val canonical_query : query -> query
(** Alpha-canonical form: every variable renamed to a reserved
    positional name ([%f0]/[%b0]/[%r0]-style, unlexable) — free
    variables in declaration order, bound variables in traversal order.
    Queries differing only in variable spelling canonicalize
    identically; digest the result ({!Calculus.digest_query}) to key a
    plan cache. *)

val pp_conjunction : conjunction Fmt.t
val pp_dnf : dnf Fmt.t
