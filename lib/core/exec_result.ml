(* The one report shape of every instrumented execution.

   Session.exec_report, Session.Txn.exec_report and
   Prepared.exec_report all return this record, and `analyze --json`
   serializes it — there is a single vocabulary for "what did this
   execution cost" instead of parallel ad-hoc tuples.  The counter
   fields (scans, probes, max_ntuple, intermediates) keep the names of
   the old Phased_eval report; the phase split, plan-cache outcome and
   transaction/WAL activity are read as metric deltas over the
   execution's observation window. *)

open Relalg

(* How the plan cache served this execution's plan.  [Reground] is the
   slow path where a $param-dependent range turned out empty and the
   substituted query was re-planned from scratch. *)
type cache_outcome = Hit | Miss | Invalidated | Reground

let cache_outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Invalidated -> "invalidated"
  | Reground -> "reground"

(* Transaction and WAL activity attributable to this execution: zero
   for pure reads, the commit/fsync story for writes through
   Session.write. *)
type txn_stats = {
  commits : int;
  conflicts : int;
  wal_appends : int;
  wal_fsyncs : int;
}

let no_txn_stats = { commits = 0; conflicts = 0; wal_appends = 0; wal_fsyncs = 0 }

type t = {
  result : Relation.t;
  plan : Plan.t;
  rows : int;  (* cardinality of [result] *)
  scans : int;  (* counted full relation scans of the database *)
  probes : int;  (* key lookups against database relations *)
  max_ntuple : int;  (* largest combined n-tuple relation *)
  intermediates : (string * int) list;
      (* sizes of all collection-phase structures *)
  access_paths : (string * string) list;
      (* collection structure key -> "probe" | "range" | "scan" *)
  join_algos : (string * string) list;
      (* streaming join step -> "nlj" | "hash" | "batched-nlj" *)
  collection_ms : float;
  combination_ms : float;
  construction_ms : float;
  cache : cache_outcome;
  txn : txn_stats;
}
