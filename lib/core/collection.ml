(* The COLLECTION PHASE (paper Section 3.3, strategies 1, 2 and 4 of
   Section 4).

   This phase "evaluates range expressions and single join terms.  The
   results are single lists and indirect joins for all monadic and
   dyadic join terms in the selection expression.  This phase performs
   data compression (records to references) and data reduction (testing
   join terms)."

   All intermediate results are memoized by a stable textual key so that
   identical work — same join term under the same restrictions — is done
   once.  Two execution modes share the same builders:

   - lazy (Palermo baseline): every requested structure performs its own
     scan of its source relation;
   - strategy 1 ([parallel_scan]): a scheduling pre-pass groups every
     pending structure by source relation and executes all structures of
     a relation in a single scan, honouring build-before-probe
     dependencies (an indirect join can only probe an index that has
     already been materialized — Example 4.3 reads timetable before
     courses and employees).

   Strategy 2 ([monadic_restrict]) changes which structures a
   conjunction requests: monadic join terms and derived predicates
   become filters of the indirect joins (and partial indexes) instead of
   separate single lists.  Strategy 4's derived predicates are evaluated
   here through value lists (module {!Relalg.Value_list}). *)

open Relalg
open Calculus

type entry =
  | E_rel of Relation.t
  | E_index of Index.t
  | E_vlist of Value_list.t * bool  (* value list, monadics-hold-for-all flag *)

type t = {
  db : Database.t;
  strategy : Strategy.t;
  plan : Plan.t;
  schemas : Schema.t Var_map.t;
  cache : (string, entry) Hashtbl.t;
  mutable perm_installed : bool;
  par : Domain_pool.par option;
      (* parallelism budget from Exec_opts; None = the untouched serial
         engine.  Carried here so the combination phase (which receives
         the collection) inherits the same budget. *)
  batch_size : int;
      (* window size of the vectorized stream kernels; 1 = scalar *)
  batch_pool : Batch.pool;
      (* one interning pool per query: every stream chain of the
         combination phase shares it, so a base single list padded into
         several disjuncts is column-encoded exactly once *)
  use_index : bool;
      (* serve structure builds from declared secondary indexes when a
         restriction allows it; false = heap scans everywhere *)
  access : (string, string) Hashtbl.t;
      (* spec key -> "probe" | "range" | "scan", recorded as each
         structure is built — the per-term access-path report *)
}

type component =
  | C_single of var * Relation.t
  | C_pair of var * var * Relation.t

(* ------------------------------------------------------------------ *)
(* Setup *)

let var_schemas db (plan : Plan.t) =
  let bind acc (v, (r : range)) =
    let rel = Database.find_relation db r.range_rel in
    Var_map.add v (Relation.schema rel) acc
  in
  let acc = List.fold_left bind Var_map.empty plan.Plan.free in
  List.fold_left
    (fun acc e -> bind acc (e.Normalize.v, e.Normalize.range))
    acc plan.Plan.prefix

let create ?par ?(batch_size = 1) ?(use_index = true) db strategy plan =
  {
    db;
    strategy;
    plan;
    schemas = var_schemas db plan;
    cache = Hashtbl.create 64;
    perm_installed = false;
    par;
    batch_size = max 1 batch_size;
    batch_pool = Batch.create_pool ();
    use_index;
    access = Hashtbl.create 16;
  }

let par t = t.par
let batch_size t = t.batch_size
let batch_pool t = t.batch_pool

let var_schema t v = Var_map.find v t.schemas

let range_of_exn t v =
  match Plan.range_of t.plan v with
  | Some r -> r
  | None -> invalid_arg ("Collection: variable without a range: " ^ v)

let single_schema t v =
  let r = range_of_exn t v in
  Schema.make [ Schema.attr v (Vtype.reference r.range_rel) ] ~key:[]

let pair_schema t v1 v2 =
  let r1 = range_of_exn t v1 and r2 = range_of_exn t v2 in
  Schema.make
    [
      Schema.attr v1 (Vtype.reference r1.range_rel);
      Schema.attr v2 (Vtype.reference r2.range_rel);
    ]
    ~key:[]

(* ------------------------------------------------------------------ *)
(* Per-tuple predicates *)

(* Truth of a monadic atom on one element of variable [v]. *)
let monadic_holds schema v tuple (a : atom) =
  let value = function
    | O_const c -> c
    | O_attr (v', at) ->
      if String.equal v' v then Tuple.get_by_name schema tuple at
      else invalid_arg "Collection.monadic_holds: foreign variable"
    | O_param p -> invalid_arg ("Collection: unbound parameter $" ^ p)
  in
  Value.apply a.op (value a.lhs) (value a.rhs)

let restriction_holds t (range : range) schema tuple =
  match range.restriction with
  | None -> true
  | Some (rv, f) ->
    Naive_eval.holds t.db
      (Var_map.add rv { Naive_eval.tuple; schema } Var_map.empty)
      f

(* ------------------------------------------------------------------ *)
(* Cache plumbing *)

let find_rel t key =
  match Hashtbl.find_opt t.cache key with
  | Some (E_rel r) -> Some r
  | Some (E_index _ | E_vlist _) | None -> None

let find_index t key =
  match Hashtbl.find_opt t.cache key with
  | Some (E_index i) -> Some i
  | Some (E_rel _ | E_vlist _) | None -> None

let find_vlist t key =
  match Hashtbl.find_opt t.cache key with
  | Some (E_vlist (vl, ok)) -> Some (vl, ok)
  | Some (E_rel _ | E_index _) | None -> None

(* ------------------------------------------------------------------ *)
(* Structure specifications.

   A spec describes one intermediate structure: its cache key, the
   relation whose scan produces it, the keys it depends on, and how to
   start it (returning a per-tuple action and a finisher).  Both the
   lazy mode and the strategy-1 scheduler execute specs; the only
   difference is how scans are shared. *)

(* A structure build may run on a pool worker iff its per-tuple action
   touches no shared mutable state beyond the atomic index-probe
   counters: it inserts into structures private to the spec, reads
   already-built (and from then on read-only) indexes and value lists,
   and the only formula it evaluates is its range restriction.  That
   last one is the discriminator: a quantifier-free restriction is a
   pure predicate over the scanned tuple, but a quantified one makes
   [Naive_eval.holds] scan other relations — shared, counter-bumping,
   not thread-safe — so those specs stay on the caller. *)
let rec quantifier_free = function
  | F_true | F_false | F_atom _ -> true
  | F_not f -> quantifier_free f
  | F_and (a, b) | F_or (a, b) -> quantifier_free a && quantifier_free b
  | F_some _ | F_all _ -> false

let range_safe (range : range) =
  match range.restriction with
  | None -> true
  | Some (_, f) -> quantifier_free f

(* Access paths.

   A structure build is driven either by the heap scan of its source
   relation or — when a declared secondary index can enumerate a
   superset-free candidate set — by an index probe (equality) or range
   scan (order comparison).  Soundness: the build's per-tuple action
   re-checks EVERY predicate (range restriction, monadic atoms, derived
   predicates), so the index may serve any single atom that every
   qualifying tuple must satisfy; the index merely shrinks the driving
   enumeration from the whole heap to the matching tuples. *)

type drive =
  | Drive_scan
  | Drive_index of Secondary_index.t * Value.comparison * Value.t

(* Atoms any qualifying tuple of the build must satisfy: the monadic
   atoms its per-tuple action tests, plus the top-level conjuncts of
   the range restriction.  Each is normalized to (component, op,
   constant) with the component on the left. *)
let served_candidates v (range : range) atoms =
  let rec conjuncts = function
    | F_and (a, b) -> conjuncts a @ conjuncts b
    | (F_atom _ | F_true | F_false | F_not _ | F_or _ | F_some _ | F_all _)
      as f -> [ f ]
  in
  let of_atom over (a : atom) =
    match a.lhs, a.rhs with
    | O_attr (v', at), O_const c when String.equal v' over -> Some (at, a.op, c)
    | O_const c, O_attr (v', at) when String.equal v' over ->
      Some (at, Value.flip_comparison a.op, c)
    | _ -> None
  in
  let restr =
    match range.restriction with
    | Some (rv, f) ->
      List.filter_map
        (function F_atom a -> of_atom rv a | _ -> None)
        (conjuncts f)
    | None -> []
  in
  restr @ List.filter_map (of_atom v) atoms

(* Pick the best index drive for a build over [v]'s range: an equality
   candidate always prefers a probe; an order candidate uses a sorted
   index's range scan only while its exact matching fraction stays at
   or below {!Cost.range_scan_max_fraction}.  Among eligible drives the
   one enumerating the smallest fraction of the heap wins. *)
let choose_drive t v (range : range) atoms =
  if not t.use_index then Drive_scan
  else begin
    let best = ref None in
    List.iter
      (fun (attr, op, c) ->
        List.iter
          (fun idx ->
            let eligible =
              match op, Secondary_index.kind idx with
              | Value.Eq, _ -> true
              | ( (Value.Lt | Value.Le | Value.Gt | Value.Ge),
                  Secondary_index.Sorted ) ->
                Secondary_index.matching_fraction idx op c
                <= Cost.range_scan_max_fraction
              | _ -> false
            in
            if eligible then begin
              let frac = Secondary_index.matching_fraction idx op c in
              match !best with
              | Some (bf, _) when bf <= frac -> ()
              | _ -> best := Some (frac, Drive_index (idx, op, c))
            end)
          (Database.secondary_on t.db range.range_rel attr))
      (served_candidates v range atoms);
    match !best with Some (_, d) -> d | None -> Drive_scan
  end

let access_label = function
  | Drive_scan -> "scan"
  | Drive_index (_, Value.Eq, _) -> "probe"
  | Drive_index _ -> "range"

type spec = {
  sp_key : string;
  sp_rel : string;  (* relation scanned to build this structure *)
  sp_deps : string list;
  sp_safe : bool;  (* per-tuple action may run on a pool worker *)
  sp_drive : drive;  (* heap scan or secondary-index enumeration *)
  sp_start : t -> (Tuple.t -> unit) * (unit -> entry);
}

(* Storage policy of a value list, from the paper's Section 4.4 special
   cases. *)
let storage_for quant op =
  match quant, op with
  | _, (Value.Lt | Value.Le | Value.Gt | Value.Ge) -> Value_list.Bounds
  | Normalize.Q_all, Value.Eq | Normalize.Q_some, Value.Ne ->
    Value_list.At_most_one
  | Normalize.Q_all, Value.Ne | Normalize.Q_some, Value.Eq -> Value_list.Full

let vlist_key (p : Plan.pushed) = "vlist:" ^ Plan.pushed_id p

(* Predicate of an already-built derived structure: decides, for one
   value of the outer variable's component, whether the pushed
   quantifier holds. *)
let pushed_predicate_of_entry (p : Plan.pushed) (vl, m_ok) v =
  match p.Plan.p_quant with
  | Normalize.Q_some ->
    Value_list.quant_holds ~quant:Value_list.Q_some p.Plan.p_op v vl
  | Normalize.Q_all ->
    m_ok && Value_list.quant_holds ~quant:Value_list.Q_all p.Plan.p_op v vl

(* Specs for value lists, recursively including nested ones. *)
let rec vlist_specs t (p : Plan.pushed) : spec list =
  let nested = List.concat_map (vlist_specs t) p.Plan.p_nested in
  let key = vlist_key p in
  let range = p.Plan.p_range in
  let rel = Database.find_relation t.db range.range_rel in
  let schema = Relation.schema rel in
  let start t =
    let vl = Value_list.create ~storage:(storage_for p.Plan.p_quant p.Plan.p_op) () in
    let m_ok = ref true in
    let nested_preds =
      List.map
        (fun (n : Plan.pushed) ->
          match find_vlist t (vlist_key n) with
          | Some e ->
            let pred = pushed_predicate_of_entry n e in
            fun tuple -> pred (Tuple.get_by_name schema tuple n.Plan.p_outer_attr)
          | None -> invalid_arg "Collection: nested value list not built")
        p.Plan.p_nested
    in
    let qualifies tuple =
      List.for_all (monadic_holds schema p.Plan.p_var tuple) p.Plan.p_monadic
      && List.for_all (fun pred -> pred tuple) nested_preds
    in
    let per_tuple tuple =
      if restriction_holds t range schema tuple then
        match p.Plan.p_quant with
        | Normalize.Q_some ->
          (* Only qualifying elements enter the list. *)
          if qualifies tuple then
            Value_list.add vl (Tuple.get_by_name schema tuple p.Plan.p_inner_attr)
        | Normalize.Q_all ->
          (* Every range element enters the list; monadic/nested terms
             must hold for all of them. *)
          Value_list.add vl (Tuple.get_by_name schema tuple p.Plan.p_inner_attr);
          if not (qualifies tuple) then m_ok := false
    in
    (per_tuple, fun () -> E_vlist (vl, !m_ok))
  in
  nested
  @ [
      {
        sp_key = key;
        sp_rel = range.range_rel;
        sp_deps = List.map (fun n -> vlist_key n) p.Plan.p_nested;
        sp_safe = range_safe range;
        (* Value lists must see every range element (a Q_all list's
           monadics-hold-for-all flag inspects even non-qualifying
           tuples), so they always build from the heap scan. *)
        sp_drive = Drive_scan;
        sp_start = start;
      };
    ]

(* Base single list of a variable: its (restricted) range expression
   evaluated to a reference relation [<@v>]. *)
let base_key v = "base:" ^ v

let base_spec t v : spec =
  let range = range_of_exn t v in
  let rel = Database.find_relation t.db range.range_rel in
  let schema = Relation.schema rel in
  let start t =
    let out = Relation.create ~name:("sl_" ^ v) (single_schema t v) in
    let per_tuple tuple =
      if restriction_holds t range schema tuple then
        Relation.insert out (Tuple.of_list [ Reference.value_of_tuple rel tuple ])
    in
    (per_tuple, fun () -> E_rel out)
  in
  {
    sp_key = base_key v;
    sp_rel = range.range_rel;
    sp_deps = [];
    sp_safe = range_safe range;
    sp_drive = choose_drive t v range [];
    sp_start = start;
  }

(* Filtered single list: references of v's range elements satisfying a
   set of monadic atoms and derived predicates. *)
let single_key v atoms derived =
  Fmt.str "single:%s:%s:[%s]" v (Plan.atoms_id atoms)
    (String.concat ";" (List.map Plan.derived_id derived))

let single_spec t v atoms (derived : (var * Plan.pushed) list) : spec list =
  let range = range_of_exn t v in
  let rel = Database.find_relation t.db range.range_rel in
  let schema = Relation.schema rel in
  let vspecs = List.concat_map (fun (_, p) -> vlist_specs t p) derived in
  let key = single_key v atoms derived in
  let start t =
    let out = Relation.create ~name:("sl_" ^ v) (single_schema t v) in
    let dpreds =
      List.map
        (fun ((_, p) : var * Plan.pushed) ->
          match find_vlist t (vlist_key p) with
          | Some e ->
            let pred = pushed_predicate_of_entry p e in
            fun tuple -> pred (Tuple.get_by_name schema tuple p.Plan.p_outer_attr)
          | None -> invalid_arg "Collection: derived value list not built")
        derived
    in
    let per_tuple tuple =
      if
        restriction_holds t range schema tuple
        && List.for_all (monadic_holds schema v tuple) atoms
        && List.for_all (fun pred -> pred tuple) dpreds
      then
        Relation.insert out (Tuple.of_list [ Reference.value_of_tuple rel tuple ])
    in
    (per_tuple, fun () -> E_rel out)
  in
  vspecs
  @ [
      {
        sp_key = key;
        sp_rel = range.range_rel;
        sp_deps = List.map (fun (_, p) -> vlist_key p) derived;
        sp_safe = range_safe range;
        sp_drive = choose_drive t v range atoms;
        sp_start = start;
      };
    ]

(* (Partial) index over the component of a variable's range relation,
   filtered by the variable's range restriction, monadic atoms and
   derived predicates. *)
let index_key v attr atoms derived =
  Fmt.str "index:%s.%s:%s:[%s]" v attr (Plan.atoms_id atoms)
    (String.concat ";" (List.map Plan.derived_id derived))

(* Seed the cache with the database's permanent indexes (paper Section
   3.2: "The first step can be omitted, if permanent indexes exist").
   A permanent index stands in only for an unfiltered index over an
   unrestricted range. *)
let install_permanent_indexes t =
  if not t.perm_installed then begin
    t.perm_installed <- true;
    List.iter
      (fun v ->
        match Plan.range_of t.plan v with
        | Some r when r.restriction = None ->
          List.iter
            (fun (rel, attr) ->
              if String.equal rel r.range_rel then
                match Database.permanent_index t.db rel ~on:attr with
                | Some idx ->
                  Hashtbl.replace t.cache (index_key v attr [] []) (E_index idx)
                | None -> ())
            (Database.permanent_index_list t.db)
        | Some _ | None -> ())
      (Plan.variable_order t.plan)
  end

let index_spec t v attr atoms derived : spec list =
  let range = range_of_exn t v in
  let rel = Database.find_relation t.db range.range_rel in
  let schema = Relation.schema rel in
  let vspecs = List.concat_map (fun (_, p) -> vlist_specs t p) derived in
  let key = index_key v attr atoms derived in
  let start t =
    let idx = Index.create rel ~on:[ attr ] in
    let dpreds =
      List.map
        (fun ((_, p) : var * Plan.pushed) ->
          match find_vlist t (vlist_key p) with
          | Some e ->
            let pred = pushed_predicate_of_entry p e in
            fun tuple -> pred (Tuple.get_by_name schema tuple p.Plan.p_outer_attr)
          | None -> invalid_arg "Collection: derived value list not built")
        derived
    in
    let per_tuple tuple =
      if
        restriction_holds t range schema tuple
        && List.for_all (monadic_holds schema v tuple) atoms
        && List.for_all (fun pred -> pred tuple) dpreds
      then Index.add idx rel tuple
    in
    (per_tuple, fun () -> E_index idx)
  in
  vspecs
  @ [
      {
        sp_key = key;
        sp_rel = range.range_rel;
        sp_deps = List.map (fun (_, p) -> vlist_key p) derived;
        sp_safe = range_safe range;
        sp_drive = choose_drive t v range atoms;
        sp_start = start;
      };
    ]

(* Indirect join for one dyadic join term: a reference relation of
   element pairs satisfying it (Section 3.2).  The later variable in the
   canonical order is indexed, the earlier one probes — the direction
   used by Example 4.3 (timetable and papers are indexed; courses and
   employees probe). *)

type pair_shape = {
  ps_atom : atom;
  ps_probe : var;
  ps_probe_attr : string;
  ps_probe_op : Value.comparison;  (* oriented: indexed_value op probe_value *)
  ps_index : var;
  ps_index_attr : string;
}

let pair_shape t (a : atom) =
  let order = Plan.variable_order t.plan in
  let position v =
    let rec go i = function
      | [] -> invalid_arg ("Collection: variable not in order: " ^ v)
      | x :: rest -> if String.equal x v then i else go (i + 1) rest
    in
    go 0 order
  in
  match a.lhs, a.rhs with
  | O_attr (v1, a1), O_attr (v2, a2) when not (String.equal v1 v2) ->
    if position v1 <= position v2 then
      (* v1 probes the index on v2; truth: probe op indexed, i.e.
         indexed (flip op) probe. *)
      {
        ps_atom = a;
        ps_probe = v1;
        ps_probe_attr = a1;
        ps_probe_op = Value.flip_comparison a.op;
        ps_index = v2;
        ps_index_attr = a2;
      }
    else
      (* v2 probes; truth: indexed op probe. *)
      {
        ps_atom = a;
        ps_probe = v2;
        ps_probe_attr = a2;
        ps_probe_op = a.op;
        ps_index = v1;
        ps_index_attr = a1;
      }
  | _ -> invalid_arg "Collection.pair_shape: not a dyadic join term"

let pair_key shape probe_atoms probe_derived index_atoms index_derived mutual =
  Fmt.str "pair:%s:probe[%s|%s]:index[%s|%s]:mutual[%s]"
    (Plan.atom_id shape.ps_atom)
    (Plan.atoms_id probe_atoms)
    (String.concat ";" (List.map Plan.derived_id probe_derived))
    (Plan.atoms_id index_atoms)
    (String.concat ";" (List.map Plan.derived_id index_derived))
    (String.concat ";" (List.map (fun m -> Plan.atom_id m.ps_atom) mutual))

(* [mutual] lists the OTHER dyadic join terms of the same conjunction
   that probe from the same variable — paper Section 4.2: "this
   technique also allows two indirect joins to restrict each other".
   While scanning the probe relation, an element only contributes pairs
   if it also has a match in every mutual atom's index. *)
let pair_spec t shape ~probe_atoms ~probe_derived ~index_atoms ~index_derived
    ~mutual : spec list =
  let v = shape.ps_probe in
  let range = range_of_exn t v in
  let rel = Database.find_relation t.db range.range_rel in
  let schema = Relation.schema rel in
  let idx_specs = index_spec t shape.ps_index shape.ps_index_attr index_atoms index_derived in
  let idx_key = index_key shape.ps_index shape.ps_index_attr index_atoms index_derived in
  (* Mutual atoms contribute their (unfiltered-by-this-conjunction's-
     probe-side) indexes as dependencies. *)
  let mutual_with_keys =
    List.map
      (fun (m, m_index_atoms, m_index_derived) ->
        (m, index_key m.ps_index m.ps_index_attr m_index_atoms m_index_derived,
         index_spec t m.ps_index m.ps_index_attr m_index_atoms m_index_derived))
      mutual
  in
  let vspecs = List.concat_map (fun (_, p) -> vlist_specs t p) probe_derived in
  let key =
    pair_key shape probe_atoms probe_derived index_atoms index_derived
      (List.map (fun (m, _, _) -> m) mutual)
  in
  let start t =
    let idx =
      match find_index t idx_key with
      | Some i -> i
      | None -> invalid_arg "Collection: index not built before probe"
    in
    let mutual_checks =
      List.map
        (fun (m, m_key, _) ->
          match find_index t m_key with
          | Some mi ->
            fun tuple ->
              Index.exists_matching mi m.ps_probe_op
                (Tuple.get_by_name schema tuple m.ps_probe_attr)
          | None -> invalid_arg "Collection: mutual index not built")
        mutual_with_keys
    in
    let out =
      Relation.create
        ~name:("ij_" ^ shape.ps_probe ^ "_" ^ shape.ps_index)
        (pair_schema t shape.ps_probe shape.ps_index)
    in
    let dpreds =
      List.map
        (fun ((_, p) : var * Plan.pushed) ->
          match find_vlist t (vlist_key p) with
          | Some e ->
            let pred = pushed_predicate_of_entry p e in
            fun tuple -> pred (Tuple.get_by_name schema tuple p.Plan.p_outer_attr)
          | None -> invalid_arg "Collection: derived value list not built")
        probe_derived
    in
    (* Vectorized collection: when the combination phase will consume
       this structure columnarly (batch_size > 1) and the build is
       serial (the per-query interning pool is not domain-safe), intern
       each index entry's references ONCE up front and accumulate the
       inserted rows' integer cells alongside the build.  The columnar
       divide then reuses these columns ({!Batch.register_unordered})
       instead of re-interning the whole structure — for a large
       indirect join that re-encode is its single biggest cost. *)
    let vec =
      if t.batch_size > 1 && t.par = None then
        let pool = t.batch_pool in
        let entry_ids =
          Array.of_list
            (List.rev
               (Index.fold_entries
                  (fun acc _ refs ->
                    Array.of_list
                      (List.map
                         (fun r -> Batch.intern pool (Value.VRef r))
                         refs)
                    :: acc)
                  [] idx))
        in
        Some (pool, entry_ids, Batch.acc_create [| Batch.K_obj; Batch.K_obj |])
      else None
    in
    let per_tuple tuple =
      if
        restriction_holds t range schema tuple
        && List.for_all (monadic_holds schema v tuple) probe_atoms
        && List.for_all (fun pred -> pred tuple) dpreds
        && List.for_all (fun check -> check tuple) mutual_checks
      then begin
        let probe_value = Tuple.get_by_name schema tuple shape.ps_probe_attr in
        let probe_ref = Reference.value_of_tuple rel tuple in
        (* The pair structure has a whole-tuple key and both components
           are references built from already-checked relations, so the
           unchecked fast path applies — this is the hottest insert site
           of the collection phase (one insert per qualifying index
           match). *)
        match vec with
        | None ->
          Index.fold_matching idx shape.ps_probe_op probe_value
            (fun () r ->
              Relation.insert_unchecked out
                (Tuple.of_list [ probe_ref; Value.VRef r ]))
            ()
        | Some (pool, entry_ids, acc) ->
          let probe_id = Batch.intern pool probe_ref in
          Index.fold_matching_entries idx shape.ps_probe_op probe_value
            (fun () ord refs ->
              List.iteri
                (fun i r ->
                  let rv = Value.VRef r in
                  let before = Relation.cardinality out in
                  Relation.insert_unchecked out
                    (Tuple.of_list [ probe_ref; rv ]);
                  if Relation.cardinality out <> before then begin
                    Batch.acc_push_cell acc 0 probe_id;
                    Batch.acc_push_cell acc 1
                      (match ord with
                      | Some o -> entry_ids.(o).(i)
                      | None -> Batch.intern pool rv)
                  end)
                refs)
            ()
      end
    in
    ( per_tuple,
      fun () ->
        (match vec with
        | Some (pool, _, acc) ->
          Batch.register_unordered pool out (Batch.acc_finish acc)
        | None -> ());
        E_rel out )
  in
  vspecs @ idx_specs
  @ List.concat_map (fun (_, _, specs) -> specs) mutual_with_keys
  @ [
      {
        sp_key = key;
        sp_rel = range.range_rel;
        sp_deps =
          (idx_key :: List.map (fun (_, k, _) -> k) mutual_with_keys)
          @ List.map (fun (_, p) -> vlist_key p) probe_derived;
        sp_safe = range_safe range;
        sp_drive = choose_drive t v range probe_atoms;
        sp_start = start;
      };
    ]

(* ------------------------------------------------------------------ *)
(* Conjunction components.

   With strategy 2, a conjunction's monadic atoms and derived predicates
   filter its indirect joins directly (and the partial indexes feeding
   them); variables with no dyadic term get one merged single list.
   Without it, each atom and each derived predicate materializes its own
   unrestricted structure. *)

type comp_spec =
  | CS_single of { key : string; v : var; specs : spec list }
  | CS_pair of { key : string; v1 : var; v2 : var; specs : spec list }

let conj_comp_specs t (conj : Plan.conj) : comp_spec list =
  let atoms = conj.Plan.atoms in
  let monadic v = Plan.monadic_over v atoms in
  let derived v =
    List.filter (fun (vm, _) -> String.equal vm v) conj.Plan.derived
  in
  let dyadics = List.filter is_dyadic atoms in
  let vars = Var_set.elements (Plan.conj_vars conj) in
  if t.strategy.Strategy.monadic_restrict then
    let pair_specs =
      List.map
        (fun a ->
          let shape = pair_shape t a in
          let probe_atoms = monadic shape.ps_probe
          and probe_derived = derived shape.ps_probe
          and index_atoms = monadic shape.ps_index
          and index_derived = derived shape.ps_index in
          (* Mutual restriction (Section 4.2): every other dyadic term
             of this conjunction probing from the same variable filters
             this indirect join's probe side through its own index. *)
          let mutual =
            List.filter_map
              (fun a2 ->
                if Calculus.equal_atom a2 a then None
                else
                  let s2 = pair_shape t a2 in
                  if String.equal s2.ps_probe shape.ps_probe then
                    Some (s2, monadic s2.ps_index, derived s2.ps_index)
                  else None)
              dyadics
          in
          CS_pair
            {
              key =
                pair_key shape probe_atoms probe_derived index_atoms
                  index_derived
                  (List.map (fun (m, _, _) -> m) mutual);
              v1 = shape.ps_probe;
              v2 = shape.ps_index;
              specs =
                pair_spec t shape ~probe_atoms ~probe_derived ~index_atoms
                  ~index_derived ~mutual;
            })
        dyadics
    in
    let single_specs =
      List.filter_map
        (fun v ->
          let m = monadic v and d = derived v in
          let has_dyadic =
            List.exists (fun a -> Var_set.mem v (atom_vars a)) dyadics
          in
          if has_dyadic || (m = [] && d = []) then None
          else
            Some
              (CS_single
                 { key = single_key v m d; v; specs = single_spec t v m d }))
        vars
    in
    single_specs @ pair_specs
  else
    (* Baseline: one structure per atom / derived predicate. *)
    let singles =
      List.filter_map
        (fun a ->
          if is_monadic a then
            match Var_set.choose_opt (atom_vars a) with
            | Some v ->
              Some
                (CS_single
                   {
                     key = single_key v [ a ] [];
                     v;
                     specs = single_spec t v [ a ] [];
                   })
            | None -> None
          else None)
        atoms
    in
    let derived_singles =
      List.map
        (fun (vm, p) ->
          CS_single
            {
              key = single_key vm [] [ (vm, p) ];
              v = vm;
              specs = single_spec t vm [] [ (vm, p) ];
            })
        conj.Plan.derived
    in
    let pairs =
      List.map
        (fun a ->
          let shape = pair_shape t a in
          CS_pair
            {
              key = pair_key shape [] [] [] [] [];
              v1 = shape.ps_probe;
              v2 = shape.ps_index;
              specs =
                pair_spec t shape ~probe_atoms:[] ~probe_derived:[]
                  ~index_atoms:[] ~index_derived:[] ~mutual:[];
            })
        dyadics
    in
    singles @ derived_singles @ pairs

(* All specs needed by the plan: base single lists for the variables the
   combination phase will actually ask for — ALL variables (division
   divisors) and variables missing from some conjunction (padding) —
   plus every conjunction's components. *)
let all_specs t =
  let base_needed v =
    List.exists
      (fun (e : Normalize.prefix_entry) ->
        String.equal e.Normalize.v v && e.Normalize.q = Normalize.Q_all)
      t.plan.Plan.prefix
    || List.exists
         (fun c -> not (Var_set.mem v (Plan.conj_vars c)))
         t.plan.Plan.conjs
  in
  let bases =
    List.map (base_spec t)
      (List.filter base_needed (Plan.variable_order t.plan))
  in
  let comps =
    List.concat_map
      (fun conj ->
        List.concat_map
          (function CS_single { specs; _ } | CS_pair { specs; _ } -> specs)
          (conj_comp_specs t conj))
      t.plan.Plan.conjs
  in
  (* Deduplicate by key, keeping first occurrence. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun sp ->
      if Hashtbl.mem seen sp.sp_key then false
      else begin
        Hashtbl.add seen sp.sp_key ();
        true
      end)
    (bases @ comps)

(* ------------------------------------------------------------------ *)
(* Execution *)

(* Record which access path actually built a structure, for the
   per-term report ({!access_paths}) and the run counters. *)
let record_access t (sp : spec) =
  let path = access_label sp.sp_drive in
  Hashtbl.replace t.access sp.sp_key path;
  Obs.Metrics.incr ("collection.access." ^ path)

(* Build one structure alone, driven by its access path: the heap scan
   of its source relation, or the matching enumeration of a secondary
   index (which replaces the counted scan with counted probes — the
   whole point of the index). *)
let build_one t (sp : spec) =
  let span_name, run_build =
    match sp.sp_drive with
    | Drive_scan ->
      ( "scan " ^ sp.sp_rel,
        fun per_tuple ->
          Relation.scan per_tuple (Database.find_relation t.db sp.sp_rel) )
    | Drive_index (idx, op, c) ->
      ( (match op with Value.Eq -> "probe " | _ -> "range ") ^ sp.sp_rel,
        fun per_tuple -> Secondary_index.iter_matching idx op c per_tuple )
  in
  Obs.Trace.with_span
    ~attrs:[ ("structure", Obs.Json.Str sp.sp_key) ]
    span_name
    (fun () ->
      let per_tuple, finish = sp.sp_start t in
      run_build per_tuple;
      Hashtbl.replace t.cache sp.sp_key (finish ()));
  record_access t sp

(* Lazy execution of one spec: recursively ensure dependencies (each
   with its own scan), then build this spec alone. *)
let rec execute_lazy t (specs_by_key : (string, spec) Hashtbl.t) (sp : spec) =
  if not (Hashtbl.mem t.cache sp.sp_key) then begin
    List.iter
      (fun dep ->
        match Hashtbl.find_opt specs_by_key dep with
        | Some dsp -> execute_lazy t specs_by_key dsp
        | None ->
          if not (Hashtbl.mem t.cache dep) then
            invalid_arg ("Collection: unknown dependency " ^ dep))
      sp.sp_deps;
    build_one t sp
  end

(* Strategy-1 execution: repeatedly pick the relation with the most
   currently-executable pending structures and build them all in one
   scan.  Dependencies (index before probe, nested value list before its
   user) hold because a structure only becomes executable once its
   dependencies are in the cache. *)
let execute_grouped t specs =
  let pending = ref (List.filter (fun sp -> not (Hashtbl.mem t.cache sp.sp_key)) specs) in
  let executable sp =
    List.for_all (fun d -> Hashtbl.mem t.cache d) sp.sp_deps
  in
  while !pending <> [] do
    let ready = List.filter executable !pending in
    if ready = [] then invalid_arg "Collection: dependency cycle";
    (* Index-served structures never join a grouped scan — sharing the
       heap pass would forfeit exactly the scan the index avoids — so
       each builds individually from its index enumeration first; their
       completion may unblock dependents for the next round. *)
    let idx_ready, ready =
      List.partition
        (fun sp ->
          match sp.sp_drive with Drive_index _ -> true | Drive_scan -> false)
        ready
    in
    if idx_ready <> [] then begin
      List.iter (build_one t) idx_ready;
      let done_keys = List.map (fun sp -> sp.sp_key) idx_ready in
      pending :=
        List.filter (fun sp -> not (List.mem sp.sp_key done_keys)) !pending
    end
    else begin
    (* Group by relation; pick the relation with the most ready specs. *)
    let by_rel = Hashtbl.create 8 in
    List.iter
      (fun sp ->
        let cur = Option.value (Hashtbl.find_opt by_rel sp.sp_rel) ~default:[] in
        Hashtbl.replace by_rel sp.sp_rel (sp :: cur))
      ready;
    let best_rel, best =
      Hashtbl.fold
        (fun rel sps (brel, bsps) ->
          if List.length sps > List.length bsps then (rel, sps) else (brel, bsps))
        by_rel ("", [])
    in
    let rel = Database.find_relation t.db best_rel in
    Obs.Trace.with_span
      ~attrs:
        [
          ( "structures",
            Obs.Json.List
              (List.map (fun sp -> Obs.Json.Str sp.sp_key) best) );
        ]
      ("scan " ^ best_rel)
      (fun () ->
        let started = List.map (fun sp -> (sp, sp.sp_start t)) best in
        let safe, unsafe = List.partition (fun (sp, _) -> sp.sp_safe) started in
        (match Domain_pool.active t.par (Relation.cardinality rel) with
        | Some p when List.length safe > 1 ->
          (* Parallel round.  Snapshot the relation once — the same
             counted scan the serial round performs — then fan the
             worker-safe structure builds over the pool, each building
             its private structure from the immutable snapshot.  Specs
             whose restriction would scan other relations run on the
             caller instead.  Round scheduling, and the sequential
             cache installation below, are identical to the serial
             path, which keeps strategy 1's scan accounting exact. *)
          let tuples = Relation.to_array rel in
          let safe_arr = Array.of_list safe in
          Obs.Metrics.incr ~by:(Array.length safe_arr)
            "parallel.collection_builds";
          Domain_pool.run_tasks ~jobs:p.Domain_pool.jobs
            (Array.length safe_arr)
            (fun i ->
              let _, (per_tuple, _) = safe_arr.(i) in
              Array.iter per_tuple tuples);
          List.iter
            (fun (_, (per_tuple, _)) -> Array.iter per_tuple tuples)
            unsafe
        | Some _ | None ->
          Relation.scan
            (fun tuple ->
              List.iter (fun (_, (per_tuple, _)) -> per_tuple tuple) started)
            rel);
        List.iter
          (fun (sp, (_, finish)) ->
            Hashtbl.replace t.cache sp.sp_key (finish ()))
          started);
    List.iter (record_access t) best;
    let done_keys = List.map (fun sp -> sp.sp_key) best in
    pending :=
      List.filter (fun sp -> not (List.mem sp.sp_key done_keys)) !pending
    end
  done

let specs_table specs =
  let tbl = Hashtbl.create 64 in
  List.iter (fun sp -> if not (Hashtbl.mem tbl sp.sp_key) then Hashtbl.add tbl sp.sp_key sp) specs;
  tbl

(* Run the collection phase.  With strategy 1 every structure is built
   up front in grouped scans; otherwise structures are built lazily, one
   scan each, as the combination phase requests them. *)
let run t =
  install_permanent_indexes t;
  if t.strategy.Strategy.parallel_scan then execute_grouped t (all_specs t)

let ensure t sp =
  install_permanent_indexes t;
  if not (Hashtbl.mem t.cache sp.sp_key) then begin
    let tbl = specs_table (all_specs t) in
    execute_lazy t tbl sp
  end

let base_list t v =
  let sp = base_spec t v in
  ensure t sp;
  match find_rel t sp.sp_key with
  | Some r -> r
  | None -> invalid_arg "Collection.base_list: missing"

let components t (conj : Plan.conj) =
  List.map
    (fun cs ->
      match cs with
      | CS_single { key; v; specs } ->
        List.iter (ensure t) specs;
        (match find_rel t key with
        | Some r -> C_single (v, r)
        | None -> invalid_arg "Collection.components: missing single")
      | CS_pair { key; v1; v2; specs } ->
        List.iter (ensure t) specs;
        (match find_rel t key with
        | Some r -> C_pair (v1, v2, r)
        | None -> invalid_arg "Collection.components: missing pair"))
    (conj_comp_specs t conj)

(* Sizes of all materialized intermediate structures, for the
   experiments on intermediate-result growth. *)
let intermediate_sizes t =
  Hashtbl.fold
    (fun key entry acc ->
      let size =
        match entry with
        | E_rel r -> Relation.cardinality r
        | E_index i -> Index.entry_count i
        | E_vlist (vl, _) -> Value_list.stored_size vl
      in
      (key, size) :: acc)
    t.cache []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* The access path that built each structure, by memo key — what
   [analyze --json] reports per term. *)
let access_paths t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.access []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
