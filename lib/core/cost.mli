(** Cardinality/cost estimation over plans: per-conjunction n-tuple
    volume (the combination phase's combinatorial growth) and
    collection-phase scan volume. *)

open Calculus

type estimate = {
  e_conj_sizes : float list;
  e_combination : float;  (** sum of the estimated n-tuple cardinalities *)
  e_collection : float;  (** elements scanned by the collection phase *)
}

val restricted_cardinality : Stats.t -> range -> float
val formula_selectivity : Stats.t -> string -> formula -> float
val atom_selectivity : Stats.t -> string -> atom -> float
val conj_cardinality : Stats.t -> Plan.t -> Plan.conj -> float
val estimate : Stats.t -> Plan.t -> estimate
val pp : estimate Fmt.t

(** {2 Join ordering over materialized inputs} *)

type join_input = {
  ji_card : int;  (** true cardinality of the materialized input *)
  ji_cols : string list;  (** its column (variable) names *)
  ji_distinct : (string * int) list;  (** distinct count per column *)
}

val greedy_join_order : join_input list -> int list
(** Greedy System-R style ordering of the inputs of one conjunction's
    combine: start from the smallest, then repeatedly add the input
    minimizing [|acc|·|C|·Π 1/max(d_acc, d_C)] over shared columns.
    Returns a permutation of the input indices. *)
