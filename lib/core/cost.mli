(** Cardinality/cost estimation over plans: per-conjunction n-tuple
    volume (the combination phase's combinatorial growth) and
    collection-phase scan volume. *)

open Calculus

type estimate = {
  e_conj_sizes : float list;
  e_combination : float;  (** sum of the estimated n-tuple cardinalities *)
  e_collection : float;  (** elements scanned by the collection phase *)
}

val restricted_cardinality : Stats.t -> range -> float
val formula_selectivity : Stats.t -> string -> formula -> float
val atom_selectivity : Stats.t -> string -> atom -> float
val conj_cardinality : Stats.t -> Plan.t -> Plan.conj -> float
val estimate : Stats.t -> Plan.t -> estimate
val pp : estimate Fmt.t

(** {2 Access-path and join-algorithm policy} *)

val nlj_max_build : int
(** Build-side cardinality at or below which a combination-phase join
    runs plain nested loops instead of building a hash table. *)

val hash_min_distinct_fraction : float
(** Minimum join-key distinct fraction of the build side for a hash
    join; below it the build is duplicate-heavy and batched nested
    loops (shared probes per distinct key) win. *)

val range_scan_max_fraction : float
(** Maximum exact matching fraction at which a sorted secondary index
    serves an order restriction as a range scan; above it the heap scan
    is preferred. *)

type join_algo = J_nlj | J_hash | J_batched_nlj

val join_algo_to_string : join_algo -> string
val join_algo_of_string : string -> join_algo option

val choose_join_algo : build_card:int -> build_distinct:int -> join_algo
(** The 3-tier choice over the build side's true cardinality and
    join-key distinct count: nested loops at or below {!nlj_max_build},
    hash at or above {!hash_min_distinct_fraction}, batched nested
    loops otherwise. *)

(** {2 Join ordering over materialized inputs} *)

type join_input = {
  ji_card : int;  (** true cardinality of the materialized input *)
  ji_cols : string list;  (** its column (variable) names *)
  ji_distinct : (string * int) list;  (** distinct count per column *)
}

val greedy_join_order : join_input list -> int list
(** Greedy System-R style ordering of the inputs of one conjunction's
    combine: start from the smallest, then repeatedly add the input
    minimizing [|acc|·|C|·Π 1/max(d_acc, d_C)] over shared columns.
    Returns a permutation of the input indices. *)
