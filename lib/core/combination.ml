(* The COMBINATION PHASE (paper Section 3.3): manipulate only reference
   relations; evaluate logical operators and quantifiers in three steps:

   1. each conjunction is combined from its single lists and indirect
      joins into n-tuples of references (joins and Cartesian products),
      padded with the range's base single list for variables the
      conjunction does not mention;
   2. the full disjunctive form is evaluated by a union of those
      n-tuple relations;
   3. quantifiers are evaluated from right to left — projection for
      existential quantification, division for universal quantification
      (Codd / Palermo). *)

open Relalg
open Calculus

(* Join two reference relations on their shared variable columns
   (natural join); disjoint column sets degrade to a Cartesian
   product. *)
let combine a b = Algebra.natural_join ~name:"refrel" a b

let columns rel = Schema.names (Relation.schema rel)

(* Combine the components of one conjunction, greedily preferring
   components that share a variable with the accumulated result so that
   products are only used when the conjunction is genuinely
   disconnected. *)
let combine_conjunction components =
  let shares acc_cols comp_cols =
    List.exists (fun c -> List.mem c acc_cols) comp_cols
  in
  let rel_of = function
    | Collection.C_single (_, r) -> r
    | Collection.C_pair (_, _, r) -> r
  in
  let rec go acc remaining =
    match remaining with
    | [] -> acc
    | _ ->
      let acc_cols = columns acc in
      let connected, rest =
        List.partition (fun c -> shares acc_cols (columns (rel_of c))) remaining
      in
      (match connected with
      | c :: others -> go (combine acc (rel_of c)) (others @ rest)
      | [] -> (
        match rest with
        | c :: others -> go (combine acc (rel_of c)) others
        | [] -> acc))
  in
  match components with
  | [] -> None
  | c :: rest -> Some (go (rel_of c) rest)

(* Pad a combined relation with the base single lists of the variables
   it does not cover, producing an n-tuple relation over [order]. *)
let pad coll order rel_opt =
  let covered = match rel_opt with None -> [] | Some r -> columns r in
  let missing = List.filter (fun v -> not (List.mem v covered)) order in
  let padded =
    List.fold_left
      (fun acc v ->
        let bl = Collection.base_list coll v in
        match acc with None -> Some bl | Some r -> Some (combine r bl))
      rel_opt missing
  in
  match padded with
  | None -> invalid_arg "Combination.pad: no variables"
  | Some r -> Algebra.project ~name:"refrel" r order

(* Schema of the n-tuple reference relations over [order]. *)
let ntuple_schema (plan : Plan.t) order =
  Schema.make
    (List.map
       (fun v ->
         match Plan.range_of plan v with
         | Some r -> Schema.attr v (Vtype.reference r.range_rel)
         | None -> invalid_arg "Combination: variable without range")
       order)
    ~key:[]

(* Eliminate the quantifier prefix right to left over an n-tuple
   relation: projection for SOME, division by the variable's base single
   list for ALL.  Precondition (established by the adaptation pass): all
   prefix ranges are non-empty. *)
let eliminate_quantifiers coll (plan : Plan.t) rel =
  List.fold_left
    (fun acc (e : Normalize.prefix_entry) ->
      let v = e.Normalize.v in
      let remaining = List.filter (fun c -> not (String.equal c v)) (columns acc) in
      Obs.Trace.with_span
        (Fmt.str "eliminate %s %s" (Normalize.quant_to_string e.Normalize.q) v)
        (fun () ->
          let reduced =
            match e.Normalize.q with
            | Normalize.Q_some -> Algebra.project ~name:"refrel" acc remaining
            | Normalize.Q_all ->
              let divisor = Collection.base_list coll v in
              Algebra.divide ~name:"refrel" ~on:[ (v, v) ] acc divisor
          in
          Obs.Trace.add_attr "ntuples"
            (Obs.Json.Int (Relation.cardinality reduced));
          reduced))
    rel
    (List.rev plan.Plan.prefix)

(* Full combination phase: n-tuples per conjunction, union, quantifier
   elimination.  Returns the reference relation over the free variables
   (declaration order) and the cardinality of the largest n-tuple
   relation built on the way — the combinatorial-growth metric of the
   experiments. *)
let evaluate_with_stats coll (plan : Plan.t) =
  let order = Plan.variable_order plan in
  let free_names = List.map fst plan.Plan.free in
  let max_ntuple = ref 0 in
  let grow n =
    max_ntuple := max !max_ntuple n;
    Obs.Metrics.gauge_max "combination.max_ntuple" (float_of_int !max_ntuple)
  in
  let conj_rels =
    List.mapi
      (fun i conj ->
        Obs.Trace.with_span (Fmt.str "conjunction %d" i) (fun () ->
            let components = Collection.components coll conj in
            let r = pad coll order (combine_conjunction components) in
            grow (Relation.cardinality r);
            Obs.Trace.add_attr "ntuples"
              (Obs.Json.Int (Relation.cardinality r));
            r))
      plan.Plan.conjs
  in
  let unioned =
    match conj_rels with
    | [] -> Relation.create ~name:"refrel" (ntuple_schema plan order)
    | [ r ] -> r
    | r :: rest ->
      Obs.Trace.with_span "union" (fun () ->
          List.fold_left (fun acc x -> Algebra.union ~name:"refrel" acc x) r rest)
  in
  grow (Relation.cardinality unioned);
  let reduced = eliminate_quantifiers coll plan unioned in
  (Algebra.project ~name:"refrel" reduced free_names, !max_ntuple)

let evaluate coll plan = fst (evaluate_with_stats coll plan)
