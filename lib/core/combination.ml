(* The COMBINATION PHASE (paper Section 3.3): manipulate only reference
   relations; evaluate logical operators and quantifiers in three steps:

   1. each conjunction is combined from its single lists and indirect
      joins into n-tuples of references (joins and Cartesian products);
   2. the full disjunctive form is evaluated by a union of those
      n-tuple relations;
   3. quantifiers are evaluated from right to left — projection for
      existential quantification, division for universal quantification
      (Codd / Palermo).

   Two engines implement the phase:

   - [Declaration]: the paper's literal reading — pad every conjunction
     with base single lists up to the full variable order, union, then
     eliminate the prefix over the padded n-tuple relation.  Kept as
     the comparison baseline (B-ORDER) and differential-test oracle.

   - [Cost_ordered] (default): a streaming engine that joins each
     conjunction's components in greedy cost order (true cardinalities
     are available — the inputs are materialized), projects
     existentially quantified variables away eagerly inside the
     combine, and eliminates the prefix DISJUNCT-WISE, never
     materializing the full padded union:

       ∃v:  projection distributes over union, so project [v] out of
            exactly the disjuncts that carry it; a disjunct without [v]
            is untouched (∃v P ≡ P over a non-empty range).
       ∀v:  ∀v (P ∨ Q(v)) ≡ P ∨ ∀v Q(v) for a non-empty range, so only
            the disjuncts carrying [v] are padded to their common
            column set, unioned, and divided; the rest pass through.

     Both identities need non-empty prefix ranges, which
     {!Standard_form.adapt_query} guarantees (empty-range quantifiers
     are rewritten away before planning).  Free-variable padding
     happens last, just before the final union, so a variable that is
     only padded and then projected away is never joined at all.
     max_ntuple is thereby bounded by the live-variable frontier
     rather than the full prefix width. *)

open Relalg
open Calculus

type join_order = Cost_ordered | Declaration

let columns rel = Schema.names (Relation.schema rel)

let rel_of = function
  | Collection.C_single (_, r) -> r
  | Collection.C_pair (_, _, r) -> r

let has_col rel v = Schema.mem (Relation.schema rel) v

(* Schema of the n-tuple reference relations over [order]. *)
let ntuple_schema (plan : Plan.t) order =
  Schema.make
    (List.map
       (fun v ->
         match Plan.range_of plan v with
         | Some r -> Schema.attr v (Vtype.reference r.range_rel)
         | None -> invalid_arg "Combination: variable without range")
       order)
    ~key:[]

(* ------------------------------------------------------------------ *)
(* Declaration-order engine (the paper's baseline).                    *)
(* ------------------------------------------------------------------ *)

(* Join two reference relations on their shared variable columns
   (natural join); disjoint column sets degrade to a Cartesian
   product.  [?par] (inherited from the collection's Exec_opts budget)
   turns the joins partitioned-parallel above the threshold. *)
let combine ?par a b = Algebra.natural_join ?par ~name:"refrel" a b

(* Combine the components of one conjunction, greedily preferring
   components that share a variable with the accumulated result so that
   products are only used when the conjunction is genuinely
   disconnected. *)
let combine_conjunction ?par components =
  let shares acc_cols comp_cols =
    List.exists (fun c -> List.mem c acc_cols) comp_cols
  in
  let rec go acc remaining =
    match remaining with
    | [] -> acc
    | _ ->
      let acc_cols = columns acc in
      let connected, rest =
        List.partition (fun c -> shares acc_cols (columns (rel_of c))) remaining
      in
      (match connected with
      | c :: others -> go (combine ?par acc (rel_of c)) (others @ rest)
      | [] -> (
        match rest with
        | c :: others -> go (combine ?par acc (rel_of c)) others
        | [] -> acc))
  in
  match components with
  | [] -> None
  | c :: rest -> Some (go (rel_of c) rest)

(* Pad a combined relation with the base single lists of the variables
   it does not cover, producing an n-tuple relation over [order]. *)
let pad coll order rel_opt =
  let par = Collection.par coll in
  let covered = match rel_opt with None -> [] | Some r -> columns r in
  let missing = List.filter (fun v -> not (List.mem v covered)) order in
  let padded =
    List.fold_left
      (fun acc v ->
        let bl = Collection.base_list coll v in
        match acc with None -> Some bl | Some r -> Some (combine ?par r bl))
      rel_opt missing
  in
  match padded with
  | None -> invalid_arg "Combination.pad: no variables"
  | Some r -> Algebra.project ?par ~name:"refrel" r order

(* Eliminate the quantifier prefix right to left over an n-tuple
   relation: projection for SOME, division by the variable's base single
   list for ALL.  Precondition (established by the adaptation pass): all
   prefix ranges are non-empty. *)
let eliminate_quantifiers coll (plan : Plan.t) rel =
  let par = Collection.par coll in
  List.fold_left
    (fun acc (e : Normalize.prefix_entry) ->
      let v = e.Normalize.v in
      let remaining = List.filter (fun c -> not (String.equal c v)) (columns acc) in
      Obs.Trace.with_span
        (Fmt.str "eliminate %s %s" (Normalize.quant_to_string e.Normalize.q) v)
        (fun () ->
          let reduced =
            match e.Normalize.q with
            | Normalize.Q_some -> Algebra.project ?par ~name:"refrel" acc remaining
            | Normalize.Q_all ->
              let divisor = Collection.base_list coll v in
              Algebra.divide ~name:"refrel" ~on:[ (v, v) ] acc divisor
          in
          Obs.Trace.add_attr "ntuples"
            (Obs.Json.Int (Relation.cardinality reduced));
          reduced))
    rel
    (List.rev plan.Plan.prefix)

let evaluate_declaration coll (plan : Plan.t) grow =
  let par = Collection.par coll in
  let order = Plan.variable_order plan in
  let free_names = List.map fst plan.Plan.free in
  let conj_rels =
    List.mapi
      (fun i conj ->
        Obs.Trace.with_span (Fmt.str "conjunction %d" i) (fun () ->
            let components = Collection.components coll conj in
            let r = pad coll order (combine_conjunction ?par components) in
            grow (Relation.cardinality r);
            Obs.Trace.add_attr "ntuples"
              (Obs.Json.Int (Relation.cardinality r));
            r))
      plan.Plan.conjs
  in
  let unioned =
    match conj_rels with
    | [] -> Relation.create ~name:"refrel" (ntuple_schema plan order)
    | [ r ] -> r
    | r :: _ ->
      Obs.Trace.with_span "union" (fun () ->
          Algebra.union_all ~name:"refrel" (Relation.schema r) conj_rels)
  in
  grow (Relation.cardinality unioned);
  let reduced = eliminate_quantifiers coll plan unioned in
  Algebra.project ?par ~name:"refrel" reduced free_names

(* ------------------------------------------------------------------ *)
(* Streaming cost-ordered engine (default).                            *)
(* ------------------------------------------------------------------ *)

module Stream = Algebra.Stream

(* Filter [order] down to [cols]: every disjunct keeps its columns in
   the one canonical order (free variables first, then the prefix), so
   unions of disjuncts line up without per-union reshuffling. *)
let canonical order cols = List.filter (fun v -> List.mem v cols) order

(* A disjunct that has been reduced to a constant TRUE (e.g. a
   conjunction whose every variable was existentially projected away,
   over a non-empty witness): represented by the first free variable's
   base list, which the final padding extends to the full free product.
   If that range is empty the whole query answer is empty, so the
   representation stays faithful. *)
let true_disjunct coll (plan : Plan.t) =
  Collection.base_list coll (fst (List.hd plan.Plan.free))

(* The conjunction's SOME variables that may be projected away inside
   its own combine.  Walking the prefix innermost-first: a SOME
   variable of the conjunction is eagerly projectable unless an ALL
   variable of the SAME conjunction sits strictly inside it — the
   division at that inner ALL step merges this disjunct into a cohort
   whose quotient must still carry the outer variable.  ALL variables
   the conjunction does not mention never block: that elimination step
   passes the disjunct through untouched. *)
let eager_vars (plan : Plan.t) cols =
  let in_conj v = List.mem v cols in
  let eager, _ =
    List.fold_left
      (fun (eager, blocked) (e : Normalize.prefix_entry) ->
        match e.Normalize.q with
        | Normalize.Q_all when in_conj e.Normalize.v -> (eager, true)
        | Normalize.Q_some when in_conj e.Normalize.v && not blocked ->
          (e.Normalize.v :: eager, blocked)
        | _ -> (eager, blocked))
      ([], false)
      (List.rev plan.Plan.prefix)
  in
  eager

(* Pad [rel] up to the canonical column set [target] with base single
   lists, as one fused product-project-materialize chain. *)
let pad_to coll target rel =
  let cols = columns rel in
  if List.equal String.equal cols target then rel
  else begin
    let missing = List.filter (fun c -> not (List.mem c cols)) target in
    let s =
      List.fold_left
        (fun s v -> Stream.product s (Collection.base_list coll v))
        (Stream.of_relation ~pool:(Collection.batch_pool coll) rel)
        missing
    in
    Stream.materialize
      ?par:(Collection.par coll)
      ~batch_size:(Collection.batch_size coll)
      ~name:"refrel" (Stream.project s target)
  end

(* Combine one conjunction's components in greedy cost order (true
   cardinalities and distinct counts — the inputs are materialized),
   then project the eagerly eliminable variables away in the same
   streaming pass.  Returns [None] for a component-less conjunction
   (constant TRUE). *)
(* Map the cost model's choice onto the stream kernel's scalar arm. *)
let impl_of_algo = function
  | Cost.J_nlj -> Stream.Jnlj
  | Cost.J_hash -> Stream.Jhash
  | Cost.J_batched_nlj -> Stream.Jshared_nlj

let combine_streaming ?force_join ~label ~record coll (plan : Plan.t) order
    components =
  let par = Collection.par coll in
  match List.map rel_of components with
  | [] -> None
  | rels ->
    let inputs =
      List.map
        (fun r ->
          {
            Cost.ji_card = Relation.cardinality r;
            ji_cols = columns r;
            ji_distinct = Stats.column_distincts r;
          })
        rels
    in
    let arr = Array.of_list rels
    and inputs_arr = Array.of_list inputs in
    let ordered =
      List.map
        (fun i -> (arr.(i), inputs_arr.(i)))
        (Cost.greedy_join_order inputs)
    in
    let first = fst (List.hd ordered) and rest = List.tl ordered in
    let cols =
      List.fold_left
        (fun acc (r, _) ->
          acc @ List.filter (fun c -> not (List.mem c acc)) (columns r))
        (columns first) rest
    in
    let eager = eager_vars plan cols in
    let keep = List.filter (fun c -> not (List.mem c eager)) cols in
    (* Never project down to zero columns; keep one and let the normal
       elimination step reduce it. *)
    let out_cols =
      if keep = [] then [ List.hd (canonical order cols) ]
      else canonical order keep
    in
    if rest = [] && List.equal String.equal (columns first) out_cols then
      Some first (* already in shape: share the collection structure *)
    else begin
      (* Adaptive per-step algorithm over the TRUE build-side
         statistics (the inputs are materialized): build cardinality
         and the distinct count of the join key — approximated from
         below by the largest per-column distinct count over the shared
         columns, which is conservative (it can only under-report
         distinctness, steering borderline builds toward the shared
         probe walk rather than an oversized hash table). *)
      let step = ref 0 in
      let stream =
        List.fold_left
          (fun s (r, (ji : Cost.join_input)) ->
            incr step;
            let shared =
              List.filter
                (fun c -> Schema.mem (Stream.schema s) c)
                ji.Cost.ji_cols
            in
            if shared = [] then Stream.natural_join s r
            else begin
              let build_distinct =
                List.fold_left
                  (fun acc c ->
                    match List.assoc_opt c ji.Cost.ji_distinct with
                    | Some d -> max acc d
                    | None -> acc)
                  1 shared
              in
              let algo =
                match force_join with
                | Some a -> a
                | None ->
                  Cost.choose_join_algo ~build_card:ji.Cost.ji_card
                    ~build_distinct
              in
              Obs.Metrics.incr
                ("combination.join."
                ^ (match algo with
                  | Cost.J_nlj -> "nlj"
                  | Cost.J_hash -> "hash"
                  | Cost.J_batched_nlj -> "batched_nlj"));
              record
                (Fmt.str "%s.j%d:%s" label !step (Relation.name r))
                (Cost.join_algo_to_string algo);
              Stream.natural_join ~impl:(impl_of_algo algo) s r
            end)
          (Stream.of_relation ~pool:(Collection.batch_pool coll) first)
          rest
      in
      let stream =
        if List.equal String.equal (Schema.names (Stream.schema stream)) out_cols
        then stream
        else Stream.project stream out_cols
      in
      Some
        (Stream.materialize ?par
           ~batch_size:(Collection.batch_size coll)
           ~name:"refrel" stream)
    end

(* Batched universal elimination: the pad -> union -> divide pipeline
   of one Q_all quantifier executed entirely over interned integer
   columns.  The scalar pipeline materializes the padded cohort members
   and their union into whole-tuple-keyed relations — one deep
   structural hash per inserted reference tuple, tens of thousands of
   inserts whose only purpose is to feed the division.  Here each
   cohort member is encoded once (cached in the query pool), the padded
   rows are enumerated as integer rows with an odometer over the
   member x base-list cross product, the division groups by
   integer quotient keys, and only the quotient — typically a few
   rows — is decoded back into a relation.

   Set-equivalence with the scalar path: interning is injective, so
   integer-row equality is tuple equality within the pool; the union's
   set semantics fall out of the image sets (duplicate (quotient,
   image) pairs collapse); cover checks compare the same sets of
   values.  Returns [None] — caller falls back to the scalar pipeline —
   if anything fails to encode or the paired column classes disagree.
   Counter caveat: relation scan/insert counters do not move for the
   skipped intermediates (the batch.rows counters do instead);
   max_ntuple accounting is identical, because the distinct-row count
   of the virtual union is grown exactly like the materialized one. *)
let eliminate_all_batched coll (plan : Plan.t) grow ~v ~common cohort =
  let pool = Collection.batch_pool coll in
  try
    let t0 = Unix.gettimeofday () in
    (* Reference type per common column, from the first cohort member
       carrying it; the padded schema of the scalar path derives its
       attribute types from the same sources. *)
    let type_of_col c =
      let rec go = function
        | [] -> raise Batch.Unbatchable
        | d :: rest ->
          let sd = Relation.schema d in
          if Schema.mem sd c then Schema.type_of sd c else go rest
      in
      go cohort
    in
    let ref_types = List.map type_of_col common in
    let ref_cls = Array.of_list (List.map Batch.cls_of_type ref_types) in
    let k = List.length common in
    let vq =
      match List.find_index (String.equal v) common with
      | Some i -> i
      | None -> raise Batch.Unbatchable
    in
    (* Per cohort member: sources = the member plus one base list per
       missing column; map each common column to its source's encoded
       column, refusing on any column-class mismatch. *)
    let members =
      List.map
        (fun d ->
          let sd = Relation.schema d in
          let missing =
            List.filter (fun c -> not (Schema.mem sd c)) common
          in
          let inputs = d :: List.map (Collection.base_list coll) missing in
          let views =
            List.map
              (fun r ->
                (* The whole pipeline here is order-insensitive (groups,
                   image sets, distinct counts), so a member that was
                   materialized by the batched stream engine can reuse
                   the insertion-order columns it registered. *)
                let e = Batch.encode_relation_unordered pool r in
                ( Relation.schema r,
                  Batch.of_encoded pool e ~off:0 ~len:(Batch.encoded_rows e) ))
              inputs
          in
          let locate j c =
            let rec go si = function
              | [] -> raise Batch.Unbatchable
              | (s, view) :: rest ->
                if Schema.mem s c then begin
                  if Batch.cls_of_type (Schema.type_of s c) <> ref_cls.(j)
                  then raise Batch.Unbatchable;
                  (si, view.Batch.cols.(Schema.index_of s c))
                end
                else go (si + 1) rest
            in
            go 0 views
          in
          let mapping = Array.of_list (List.mapi locate common) in
          let dims =
            Array.of_list (List.map (fun (_, b) -> b.Batch.nrows) views)
          in
          (mapping, dims))
        cohort
    in
    let divisor_rel = Collection.base_list coll v in
    let divisor_view =
      let e = Batch.encode_relation pool divisor_rel in
      Batch.of_encoded pool e ~off:0 ~len:(Batch.encoded_rows e)
    in
    let sdv = Relation.schema divisor_rel in
    if Batch.cls_of_type (Schema.type_of sdv v) <> ref_cls.(vq) then
      raise Batch.Unbatchable;
    let divisor_col = divisor_view.Batch.cols.(Schema.index_of sdv v) in
    (* Everything below is pure integer work — no Unbatchable, so no
       counter can double-bump on fallback. *)
    let divisor_set = Hashtbl.create 64 in
    for r = 0 to divisor_view.Batch.nrows - 1 do
      Hashtbl.replace divisor_set (Batch.cell divisor_col r) ()
    done;
    let needed = Hashtbl.length divisor_set in
    (* Group the virtual union by quotient key, collecting the image
       set of v per group; count distinct rows for the max_ntuple
       accounting. *)
    let groups : (int, unit) Hashtbl.t Batch.Ikey.t =
      Batch.Ikey.create 256
    in
    let dividend_card = ref 0 in
    let rows_in = ref 0 in
    List.iter
      (fun (mapping, dims) ->
        let nsrc = Array.length dims in
        let total = Array.fold_left ( * ) 1 dims in
        if total > 0 then begin
          rows_in := !rows_in + total;
          (* Quotient-ordered (source, column) pairs and a reusable key
             buffer: the loop below allocates only when a new quotient
             group first appears (the key is copied on insert), and the
             image-set membership test rides the single [replace]'s
             length delta instead of a separate [mem]. *)
          let qmap =
            Array.init (k - 1) (fun j -> mapping.(if j < vq then j else j + 1))
          in
          let vsi, vcol = mapping.(vq) in
          let qkey = Array.make (k - 1) 0 in
          let idx = Array.make nsrc 0 in
          let live = ref true in
          let rec bump i =
            if i < 0 then live := false
            else begin
              idx.(i) <- idx.(i) + 1;
              if idx.(i) = dims.(i) then begin
                idx.(i) <- 0;
                bump (i - 1)
              end
            end
          in
          while !live do
            for j = 0 to k - 2 do
              let si, col = qmap.(j) in
              qkey.(j) <- Batch.cell col idx.(si)
            done;
            let img = Batch.cell vcol idx.(vsi) in
            let images =
              match Batch.Ikey.find_opt groups qkey with
              | Some set -> set
              | None ->
                let set = Hashtbl.create 8 in
                Batch.Ikey.replace groups (Array.copy qkey) set;
                set
            in
            let before = Hashtbl.length images in
            Hashtbl.replace images img ();
            if Hashtbl.length images <> before then incr dividend_card;
            bump (nsrc - 1)
          done
        end)
      members;
    (match cohort with
    | [ d ] when List.equal String.equal (columns d) common -> ()
    | _ -> Obs.Metrics.incr "algebra.materialized.union");
    grow !dividend_card;
    let result =
      if k = 1 then begin
        (* Boolean degeneration: does the cohort's v set cover the
           whole range?  (Vacuously yes over an empty divisor.) *)
        let images =
          match Batch.Ikey.find_opt groups [||] with
          | Some set -> set
          | None -> Hashtbl.create 1
        in
        let covered =
          Hashtbl.length images >= needed
          && Hashtbl.fold
               (fun d () acc -> acc && Hashtbl.mem images d)
               divisor_set true
        in
        if covered then [ true_disjunct coll plan ] else []
      end
      else begin
        Obs.Metrics.incr "algebra.materialized.divide";
        let quotient_names = List.filter (fun c -> not (String.equal c v)) common in
        let dividend_schema =
          Schema.make
            (List.map2 (fun c ty -> Schema.attr c ty) common ref_types)
            ~key:[]
        in
        let out =
          Relation.create ~name:"refrel"
            (Schema.project dividend_schema quotient_names)
        in
        let q_cls =
          Array.init (k - 1) (fun j -> ref_cls.(if j < vq then j else j + 1))
        in
        let decode_insert qkey =
          Relation.insert out
            (Array.mapi
               (fun j id ->
                 match q_cls.(j) with
                 | Batch.K_int -> Value.VInt id
                 | Batch.K_bool -> Value.VBool (id <> 0)
                 | Batch.K_obj -> Batch.value pool id)
               qkey)
        in
        Batch.Ikey.iter
          (fun qkey images ->
            let covers =
              needed = 0
              || Hashtbl.length images >= needed
                 && Hashtbl.fold
                      (fun d () acc -> acc && Hashtbl.mem images d)
                      divisor_set true
            in
            if covers then decode_insert qkey)
          groups;
        [ out ]
      end
    in
    let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    Obs.Metrics.incr ~by:!rows_in "algebra.batch.rows_in";
    Obs.Metrics.incr
      ~by:(match result with [ r ] -> Relation.cardinality r | _ -> 0)
      "algebra.batch.rows_out";
    Obs.Metrics.incr ~by:ns "algebra.batch.kernel_ns";
    Some result
  with Batch.Unbatchable -> None

(* Disjunct-wise right-to-left quantifier elimination over the LIST of
   conjunction relations (heterogeneous column sets); see the header
   comment for the two distribution identities this rests on. *)
let eliminate_streaming coll (plan : Plan.t) grow disjuncts =
  let par = Collection.par coll in
  let order = Plan.variable_order plan in
  List.fold_left
    (fun djs (e : Normalize.prefix_entry) ->
      let v = e.Normalize.v in
      Obs.Trace.with_span
        (Fmt.str "eliminate %s %s" (Normalize.quant_to_string e.Normalize.q) v)
        (fun () ->
          let reduced =
            match e.Normalize.q with
            | Normalize.Q_some ->
              List.filter_map
                (fun d ->
                  if not (has_col d v) then Some d
                  else
                    let remaining =
                      List.filter
                        (fun c -> not (String.equal c v))
                        (columns d)
                    in
                    if remaining = [] then
                      (* ∃v over a one-column disjunct is a boolean *)
                      if Relation.is_empty d then None
                      else Some (true_disjunct coll plan)
                    else Some (Algebra.project ?par ~name:"refrel" d remaining))
                djs
            | Normalize.Q_all -> (
              let cohort, others = List.partition (fun d -> has_col d v) djs in
              match cohort with
              | [] -> djs (* no disjunct constrains v: ∀v is vacuous *)
              | _ -> (
                let common =
                  canonical order
                    (List.sort_uniq String.compare
                       (List.concat_map columns cohort))
                in
                match
                  if Collection.batch_size coll > 1 then
                    eliminate_all_batched coll plan grow ~v ~common cohort
                  else None
                with
                | Some reduced -> reduced @ others
                | None ->
                let dividend =
                  match cohort with
                  | [ d ] when List.equal String.equal (columns d) common -> d
                  | _ ->
                    Obs.Trace.with_span "union" (fun () ->
                        let padded = List.map (pad_to coll common) cohort in
                        Algebra.union_all ~name:"refrel"
                          (Relation.schema (List.hd padded))
                          padded)
                in
                grow (Relation.cardinality dividend);
                let divisor = Collection.base_list coll v in
                if List.equal String.equal common [ v ] then
                  (* boolean: does the cohort cover the whole range? *)
                  if
                    Relation.for_all
                      (fun t -> Relation.mem_tuple dividend t)
                      divisor
                  then true_disjunct coll plan :: others
                  else others
                else
                  Algebra.divide ~name:"refrel" ~on:[ (v, v) ] dividend
                    divisor
                  :: others))
          in
          let total =
            List.fold_left (fun n d -> n + Relation.cardinality d) 0 reduced
          in
          Obs.Trace.add_attr "ntuples" (Obs.Json.Int total);
          reduced))
    disjuncts
    (List.rev plan.Plan.prefix)

let evaluate_streaming ?force_join ~record coll (plan : Plan.t) grow =
  let order = Plan.variable_order plan in
  let free_names = List.map fst plan.Plan.free in
  let disjuncts =
    List.mapi
      (fun i conj ->
        Obs.Trace.with_span (Fmt.str "conjunction %d" i) (fun () ->
            let components = Collection.components coll conj in
            let r =
              match
                combine_streaming ?force_join
                  ~label:(Fmt.str "conj%d" i)
                  ~record coll plan order components
              with
              | Some r -> r
              | None -> true_disjunct coll plan
            in
            grow (Relation.cardinality r);
            Obs.Trace.add_attr "ntuples"
              (Obs.Json.Int (Relation.cardinality r));
            r))
      plan.Plan.conjs
  in
  let reduced = eliminate_streaming coll plan grow disjuncts in
  match reduced with
  | [] -> Relation.create ~name:"refrel" (ntuple_schema plan free_names)
  | [ d ] when List.equal String.equal (columns d) free_names -> d
  | ds ->
    Obs.Trace.with_span "union" (fun () ->
        match List.map (pad_to coll free_names) ds with
        | [ d ] -> d
        | padded ->
          let u =
            Algebra.union_all ~name:"refrel"
              (Relation.schema (List.hd padded))
              padded
          in
          grow (Relation.cardinality u);
          u)

(* ------------------------------------------------------------------ *)

(* Full combination phase.  Returns the reference relation over the
   free variables (declaration order), the cardinality of the largest
   n-tuple relation built on the way — the combinatorial-growth metric
   of the experiments — and the join algorithm chosen per streaming
   join step (empty under the Declaration engine, whose joins are the
   literal baseline and take no adaptive choice). *)
type outcome = {
  o_result : Relation.t;
  o_max_ntuple : int;
  o_join_algos : (string * string) list;
}

let evaluate_outcome ?(join_order = Cost_ordered) ?force_join coll
    (plan : Plan.t) =
  let max_ntuple = ref 0 in
  let grow n =
    max_ntuple := max !max_ntuple n;
    Obs.Metrics.gauge_max "combination.max_ntuple" (float_of_int !max_ntuple)
  in
  let joins = ref [] in
  let record step algo = joins := (step, algo) :: !joins in
  let result =
    match join_order with
    | Cost_ordered -> evaluate_streaming ?force_join ~record coll plan grow
    | Declaration -> evaluate_declaration coll plan grow
  in
  {
    o_result = result;
    o_max_ntuple = !max_ntuple;
    o_join_algos = List.rev !joins;
  }

let evaluate_with_stats ?join_order ?force_join coll plan =
  let o = evaluate_outcome ?join_order ?force_join coll plan in
  (o.o_result, o.o_max_ntuple)

let evaluate ?join_order ?force_join coll plan =
  fst (evaluate_with_stats ?join_order ?force_join coll plan)
