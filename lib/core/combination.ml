(* The COMBINATION PHASE (paper Section 3.3): manipulate only reference
   relations; evaluate logical operators and quantifiers in three steps:

   1. each conjunction is combined from its single lists and indirect
      joins into n-tuples of references (joins and Cartesian products);
   2. the full disjunctive form is evaluated by a union of those
      n-tuple relations;
   3. quantifiers are evaluated from right to left — projection for
      existential quantification, division for universal quantification
      (Codd / Palermo).

   Two engines implement the phase:

   - [Declaration]: the paper's literal reading — pad every conjunction
     with base single lists up to the full variable order, union, then
     eliminate the prefix over the padded n-tuple relation.  Kept as
     the comparison baseline (B-ORDER) and differential-test oracle.

   - [Cost_ordered] (default): a streaming engine that joins each
     conjunction's components in greedy cost order (true cardinalities
     are available — the inputs are materialized), projects
     existentially quantified variables away eagerly inside the
     combine, and eliminates the prefix DISJUNCT-WISE, never
     materializing the full padded union:

       ∃v:  projection distributes over union, so project [v] out of
            exactly the disjuncts that carry it; a disjunct without [v]
            is untouched (∃v P ≡ P over a non-empty range).
       ∀v:  ∀v (P ∨ Q(v)) ≡ P ∨ ∀v Q(v) for a non-empty range, so only
            the disjuncts carrying [v] are padded to their common
            column set, unioned, and divided; the rest pass through.

     Both identities need non-empty prefix ranges, which
     {!Standard_form.adapt_query} guarantees (empty-range quantifiers
     are rewritten away before planning).  Free-variable padding
     happens last, just before the final union, so a variable that is
     only padded and then projected away is never joined at all.
     max_ntuple is thereby bounded by the live-variable frontier
     rather than the full prefix width. *)

open Relalg
open Calculus

type join_order = Cost_ordered | Declaration

let columns rel = Schema.names (Relation.schema rel)

let rel_of = function
  | Collection.C_single (_, r) -> r
  | Collection.C_pair (_, _, r) -> r

let has_col rel v = Schema.mem (Relation.schema rel) v

(* Schema of the n-tuple reference relations over [order]. *)
let ntuple_schema (plan : Plan.t) order =
  Schema.make
    (List.map
       (fun v ->
         match Plan.range_of plan v with
         | Some r -> Schema.attr v (Vtype.reference r.range_rel)
         | None -> invalid_arg "Combination: variable without range")
       order)
    ~key:[]

(* ------------------------------------------------------------------ *)
(* Declaration-order engine (the paper's baseline).                    *)
(* ------------------------------------------------------------------ *)

(* Join two reference relations on their shared variable columns
   (natural join); disjoint column sets degrade to a Cartesian
   product.  [?par] (inherited from the collection's Exec_opts budget)
   turns the joins partitioned-parallel above the threshold. *)
let combine ?par a b = Algebra.natural_join ?par ~name:"refrel" a b

(* Combine the components of one conjunction, greedily preferring
   components that share a variable with the accumulated result so that
   products are only used when the conjunction is genuinely
   disconnected. *)
let combine_conjunction ?par components =
  let shares acc_cols comp_cols =
    List.exists (fun c -> List.mem c acc_cols) comp_cols
  in
  let rec go acc remaining =
    match remaining with
    | [] -> acc
    | _ ->
      let acc_cols = columns acc in
      let connected, rest =
        List.partition (fun c -> shares acc_cols (columns (rel_of c))) remaining
      in
      (match connected with
      | c :: others -> go (combine ?par acc (rel_of c)) (others @ rest)
      | [] -> (
        match rest with
        | c :: others -> go (combine ?par acc (rel_of c)) others
        | [] -> acc))
  in
  match components with
  | [] -> None
  | c :: rest -> Some (go (rel_of c) rest)

(* Pad a combined relation with the base single lists of the variables
   it does not cover, producing an n-tuple relation over [order]. *)
let pad coll order rel_opt =
  let par = Collection.par coll in
  let covered = match rel_opt with None -> [] | Some r -> columns r in
  let missing = List.filter (fun v -> not (List.mem v covered)) order in
  let padded =
    List.fold_left
      (fun acc v ->
        let bl = Collection.base_list coll v in
        match acc with None -> Some bl | Some r -> Some (combine ?par r bl))
      rel_opt missing
  in
  match padded with
  | None -> invalid_arg "Combination.pad: no variables"
  | Some r -> Algebra.project ?par ~name:"refrel" r order

(* Eliminate the quantifier prefix right to left over an n-tuple
   relation: projection for SOME, division by the variable's base single
   list for ALL.  Precondition (established by the adaptation pass): all
   prefix ranges are non-empty. *)
let eliminate_quantifiers coll (plan : Plan.t) rel =
  let par = Collection.par coll in
  List.fold_left
    (fun acc (e : Normalize.prefix_entry) ->
      let v = e.Normalize.v in
      let remaining = List.filter (fun c -> not (String.equal c v)) (columns acc) in
      Obs.Trace.with_span
        (Fmt.str "eliminate %s %s" (Normalize.quant_to_string e.Normalize.q) v)
        (fun () ->
          let reduced =
            match e.Normalize.q with
            | Normalize.Q_some -> Algebra.project ?par ~name:"refrel" acc remaining
            | Normalize.Q_all ->
              let divisor = Collection.base_list coll v in
              Algebra.divide ~name:"refrel" ~on:[ (v, v) ] acc divisor
          in
          Obs.Trace.add_attr "ntuples"
            (Obs.Json.Int (Relation.cardinality reduced));
          reduced))
    rel
    (List.rev plan.Plan.prefix)

let evaluate_declaration coll (plan : Plan.t) grow =
  let par = Collection.par coll in
  let order = Plan.variable_order plan in
  let free_names = List.map fst plan.Plan.free in
  let conj_rels =
    List.mapi
      (fun i conj ->
        Obs.Trace.with_span (Fmt.str "conjunction %d" i) (fun () ->
            let components = Collection.components coll conj in
            let r = pad coll order (combine_conjunction ?par components) in
            grow (Relation.cardinality r);
            Obs.Trace.add_attr "ntuples"
              (Obs.Json.Int (Relation.cardinality r));
            r))
      plan.Plan.conjs
  in
  let unioned =
    match conj_rels with
    | [] -> Relation.create ~name:"refrel" (ntuple_schema plan order)
    | [ r ] -> r
    | r :: _ ->
      Obs.Trace.with_span "union" (fun () ->
          Algebra.union_all ~name:"refrel" (Relation.schema r) conj_rels)
  in
  grow (Relation.cardinality unioned);
  let reduced = eliminate_quantifiers coll plan unioned in
  Algebra.project ?par ~name:"refrel" reduced free_names

(* ------------------------------------------------------------------ *)
(* Streaming cost-ordered engine (default).                            *)
(* ------------------------------------------------------------------ *)

module Stream = Algebra.Stream

(* Filter [order] down to [cols]: every disjunct keeps its columns in
   the one canonical order (free variables first, then the prefix), so
   unions of disjuncts line up without per-union reshuffling. *)
let canonical order cols = List.filter (fun v -> List.mem v cols) order

(* A disjunct that has been reduced to a constant TRUE (e.g. a
   conjunction whose every variable was existentially projected away,
   over a non-empty witness): represented by the first free variable's
   base list, which the final padding extends to the full free product.
   If that range is empty the whole query answer is empty, so the
   representation stays faithful. *)
let true_disjunct coll (plan : Plan.t) =
  Collection.base_list coll (fst (List.hd plan.Plan.free))

(* The conjunction's SOME variables that may be projected away inside
   its own combine.  Walking the prefix innermost-first: a SOME
   variable of the conjunction is eagerly projectable unless an ALL
   variable of the SAME conjunction sits strictly inside it — the
   division at that inner ALL step merges this disjunct into a cohort
   whose quotient must still carry the outer variable.  ALL variables
   the conjunction does not mention never block: that elimination step
   passes the disjunct through untouched. *)
let eager_vars (plan : Plan.t) cols =
  let in_conj v = List.mem v cols in
  let eager, _ =
    List.fold_left
      (fun (eager, blocked) (e : Normalize.prefix_entry) ->
        match e.Normalize.q with
        | Normalize.Q_all when in_conj e.Normalize.v -> (eager, true)
        | Normalize.Q_some when in_conj e.Normalize.v && not blocked ->
          (e.Normalize.v :: eager, blocked)
        | _ -> (eager, blocked))
      ([], false)
      (List.rev plan.Plan.prefix)
  in
  eager

(* Pad [rel] up to the canonical column set [target] with base single
   lists, as one fused product-project-materialize chain. *)
let pad_to coll target rel =
  let cols = columns rel in
  if List.equal String.equal cols target then rel
  else begin
    let missing = List.filter (fun c -> not (List.mem c cols)) target in
    let s =
      List.fold_left
        (fun s v -> Stream.product s (Collection.base_list coll v))
        (Stream.of_relation rel) missing
    in
    Stream.materialize
      ?par:(Collection.par coll)
      ~name:"refrel" (Stream.project s target)
  end

(* Combine one conjunction's components in greedy cost order (true
   cardinalities and distinct counts — the inputs are materialized),
   then project the eagerly eliminable variables away in the same
   streaming pass.  Returns [None] for a component-less conjunction
   (constant TRUE). *)
let combine_streaming ?par (plan : Plan.t) order components =
  match List.map rel_of components with
  | [] -> None
  | rels ->
    let inputs =
      List.map
        (fun r ->
          {
            Cost.ji_card = Relation.cardinality r;
            ji_cols = columns r;
            ji_distinct = Stats.column_distincts r;
          })
        rels
    in
    let arr = Array.of_list rels in
    let ordered = List.map (fun i -> arr.(i)) (Cost.greedy_join_order inputs) in
    let first = List.hd ordered and rest = List.tl ordered in
    let cols =
      List.fold_left
        (fun acc r ->
          acc @ List.filter (fun c -> not (List.mem c acc)) (columns r))
        (columns first) rest
    in
    let eager = eager_vars plan cols in
    let keep = List.filter (fun c -> not (List.mem c eager)) cols in
    (* Never project down to zero columns; keep one and let the normal
       elimination step reduce it. *)
    let out_cols =
      if keep = [] then [ List.hd (canonical order cols) ]
      else canonical order keep
    in
    if rest = [] && List.equal String.equal (columns first) out_cols then
      Some first (* already in shape: share the collection structure *)
    else begin
      let stream =
        List.fold_left Stream.natural_join (Stream.of_relation first) rest
      in
      let stream =
        if List.equal String.equal (Schema.names (Stream.schema stream)) out_cols
        then stream
        else Stream.project stream out_cols
      in
      Some (Stream.materialize ?par ~name:"refrel" stream)
    end

(* Disjunct-wise right-to-left quantifier elimination over the LIST of
   conjunction relations (heterogeneous column sets); see the header
   comment for the two distribution identities this rests on. *)
let eliminate_streaming coll (plan : Plan.t) grow disjuncts =
  let par = Collection.par coll in
  let order = Plan.variable_order plan in
  List.fold_left
    (fun djs (e : Normalize.prefix_entry) ->
      let v = e.Normalize.v in
      Obs.Trace.with_span
        (Fmt.str "eliminate %s %s" (Normalize.quant_to_string e.Normalize.q) v)
        (fun () ->
          let reduced =
            match e.Normalize.q with
            | Normalize.Q_some ->
              List.filter_map
                (fun d ->
                  if not (has_col d v) then Some d
                  else
                    let remaining =
                      List.filter
                        (fun c -> not (String.equal c v))
                        (columns d)
                    in
                    if remaining = [] then
                      (* ∃v over a one-column disjunct is a boolean *)
                      if Relation.is_empty d then None
                      else Some (true_disjunct coll plan)
                    else Some (Algebra.project ?par ~name:"refrel" d remaining))
                djs
            | Normalize.Q_all -> (
              let cohort, others = List.partition (fun d -> has_col d v) djs in
              match cohort with
              | [] -> djs (* no disjunct constrains v: ∀v is vacuous *)
              | _ ->
                let common =
                  canonical order
                    (List.sort_uniq String.compare
                       (List.concat_map columns cohort))
                in
                let dividend =
                  match cohort with
                  | [ d ] when List.equal String.equal (columns d) common -> d
                  | _ ->
                    Obs.Trace.with_span "union" (fun () ->
                        let padded = List.map (pad_to coll common) cohort in
                        Algebra.union_all ~name:"refrel"
                          (Relation.schema (List.hd padded))
                          padded)
                in
                grow (Relation.cardinality dividend);
                let divisor = Collection.base_list coll v in
                if List.equal String.equal common [ v ] then
                  (* boolean: does the cohort cover the whole range? *)
                  if
                    Relation.for_all
                      (fun t -> Relation.mem_tuple dividend t)
                      divisor
                  then true_disjunct coll plan :: others
                  else others
                else
                  Algebra.divide ~name:"refrel" ~on:[ (v, v) ] dividend
                    divisor
                  :: others)
          in
          let total =
            List.fold_left (fun n d -> n + Relation.cardinality d) 0 reduced
          in
          Obs.Trace.add_attr "ntuples" (Obs.Json.Int total);
          reduced))
    disjuncts
    (List.rev plan.Plan.prefix)

let evaluate_streaming coll (plan : Plan.t) grow =
  let order = Plan.variable_order plan in
  let free_names = List.map fst plan.Plan.free in
  let disjuncts =
    List.mapi
      (fun i conj ->
        Obs.Trace.with_span (Fmt.str "conjunction %d" i) (fun () ->
            let components = Collection.components coll conj in
            let r =
              match
                combine_streaming ?par:(Collection.par coll) plan order
                  components
              with
              | Some r -> r
              | None -> true_disjunct coll plan
            in
            grow (Relation.cardinality r);
            Obs.Trace.add_attr "ntuples"
              (Obs.Json.Int (Relation.cardinality r));
            r))
      plan.Plan.conjs
  in
  let reduced = eliminate_streaming coll plan grow disjuncts in
  match reduced with
  | [] -> Relation.create ~name:"refrel" (ntuple_schema plan free_names)
  | [ d ] when List.equal String.equal (columns d) free_names -> d
  | ds ->
    Obs.Trace.with_span "union" (fun () ->
        match List.map (pad_to coll free_names) ds with
        | [ d ] -> d
        | padded ->
          let u =
            Algebra.union_all ~name:"refrel"
              (Relation.schema (List.hd padded))
              padded
          in
          grow (Relation.cardinality u);
          u)

(* ------------------------------------------------------------------ *)

(* Full combination phase.  Returns the reference relation over the
   free variables (declaration order) and the cardinality of the
   largest n-tuple relation built on the way — the combinatorial-growth
   metric of the experiments. *)
let evaluate_with_stats ?(join_order = Cost_ordered) coll (plan : Plan.t) =
  let max_ntuple = ref 0 in
  let grow n =
    max_ntuple := max !max_ntuple n;
    Obs.Metrics.gauge_max "combination.max_ntuple" (float_of_int !max_ntuple)
  in
  let result =
    match join_order with
    | Cost_ordered -> evaluate_streaming coll plan grow
    | Declaration -> evaluate_declaration coll plan grow
  in
  (result, !max_ntuple)

let evaluate ?join_order coll plan =
  fst (evaluate_with_stats ?join_order coll plan)
