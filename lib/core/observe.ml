(* Observability glue around one query execution.

   [run] opens a counter window and a wall clock, hands the execution
   body a phase clock for the collection / combination / construction
   split, and on completion folds the execution into the cumulative
   {!Obs.Query_stats} registry and the always-on
   {!Obs.Flight_recorder} ring.  Cache hits and replans are read as
   plan_cache.* counter deltas over the window, which is why Session's
   one-shot paths open the window *before* prepare: a cold one-shot's
   miss-then-add-then-hit sequence must read as a replan, not a hit.

   Slow-query capture also lives here: when the digest was armed by a
   previous over-threshold execution (and no trace is already running),
   the whole body runs under {!Obs.Trace.collect} and the finished span
   is stored with the flight recorder, disarming the digest. *)

type phase = Collection | Combination | Construction

type clock = {
  time : 'a. phase -> (unit -> 'a) -> 'a;
  elapsed : phase -> float;
      (* accumulated milliseconds of a phase so far: how the execution
         body reads its own phase split back into an Exec_result *)
}

type window = {
  w_hits : int;
  w_misses : int;
  w_invalidations : int;
  w_regrounds : int;
  w_scans : int;
  w_probes : int;
  w_index_probes : int;
  w_pool_fetches : int;
  w_txn_commits : int;
  w_txn_conflicts : int;
  w_wal_appends : int;
  w_wal_fsyncs : int;
}

let counters () =
  let c = Obs.Metrics.counter_value in
  {
    w_hits = c "plan_cache.hits";
    w_misses = c "plan_cache.misses";
    w_invalidations = c "plan_cache.invalidations";
    w_regrounds = c "plan_cache.regrounds";
    w_scans = c "relation.scans";
    w_probes = c "relation.probes";
    w_index_probes = c "index.probes";
    w_pool_fetches = c "pool.fetches";
    w_txn_commits = c "txn.commits";
    w_txn_conflicts = c "txn.conflicts";
    w_wal_appends = c "wal.appends";
    w_wal_fsyncs = c "wal.fsyncs";
  }

let window = counters

(* The plan-cache outcome of an execution is the most specific event in
   its counter window: a reground implies a miss (of the substituted
   plan), an invalidation implies the subsequent miss, so precedence is
   reground > invalidated > miss > hit. *)
let cache_outcome ~since =
  let now = counters () in
  if now.w_regrounds > since.w_regrounds then Exec_result.Reground
  else if now.w_invalidations > since.w_invalidations then
    Exec_result.Invalidated
  else if now.w_misses > since.w_misses then Exec_result.Miss
  else Exec_result.Hit

let txn_stats ~since =
  let now = counters () in
  {
    Exec_result.commits = now.w_txn_commits - since.w_txn_commits;
    conflicts = now.w_txn_conflicts - since.w_txn_conflicts;
    wal_appends = now.w_wal_appends - since.w_wal_appends;
    wal_fsyncs = now.w_wal_fsyncs - since.w_wal_fsyncs;
  }

let run ~digest ~text ~opts ~rows_of f =
  let go () =
    let before = counters () in
    let t0 = Obs.Trace.now_ms () in
    let coll_ms = ref 0.0 and comb_ms = ref 0.0 and cons_ms = ref 0.0 in
    let time phase g =
      let acc =
        match phase with
        | Collection -> coll_ms
        | Combination -> comb_ms
        | Construction -> cons_ms
      in
      let s = Obs.Trace.now_ms () in
      Fun.protect
        ~finally:(fun () -> acc := !acc +. (Obs.Trace.now_ms () -. s))
        g
    in
    let elapsed = function
      | Collection -> !coll_ms
      | Combination -> !comb_ms
      | Construction -> !cons_ms
    in
    let result = f { time; elapsed } in
    let wall_ms = Obs.Trace.now_ms () -. t0 in
    let after = counters () in
    let d get = get after - get before in
    let replans =
      d (fun w -> w.w_misses)
      + d (fun w -> w.w_invalidations)
      + d (fun w -> w.w_regrounds)
    in
    let fingerprint = Exec_opts.fingerprint opts in
    Obs.Query_stats.record ~digest ~query:text ~opts:fingerprint ~wall_ms
      ~collection_ms:!coll_ms ~combination_ms:!comb_ms
      ~construction_ms:!cons_ms ~rows:(rows_of result)
      ~cache_hit:(d (fun w -> w.w_hits) > 0 && replans = 0)
      ~replans;
    Obs.Flight_recorder.record
      {
        Obs.Flight_recorder.fr_digest = digest;
        fr_opts = fingerprint;
        fr_wall_ms = wall_ms;
        fr_collection_ms = !coll_ms;
        fr_combination_ms = !comb_ms;
        fr_construction_ms = !cons_ms;
        fr_rows = rows_of result;
        fr_jobs = opts.Exec_opts.jobs;
        fr_scans = d (fun w -> w.w_scans);
        fr_probes = d (fun w -> w.w_probes);
        fr_index_probes = d (fun w -> w.w_index_probes);
        fr_pool_fetches = d (fun w -> w.w_pool_fetches);
      };
    Obs.Flight_recorder.note_slow digest wall_ms;
    result
  in
  if Obs.Flight_recorder.armed digest && not (Obs.Trace.enabled ()) then begin
    let result, span =
      Obs.Trace.collect "query"
        ~attrs:[ ("digest", Obs.Json.Str digest) ]
        go
    in
    Obs.Flight_recorder.capture digest span;
    result
  end
  else go ()
