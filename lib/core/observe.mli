(** Observability glue around one query execution.

    {!run} is the single choke point through which every
    {!Session} / {!Prepared} execution reports itself: it times the
    whole execution and the three evaluation phases, reads plan-cache
    and storage counter deltas over the window, then feeds the
    cumulative {!Obs.Query_stats} registry and the always-on
    {!Obs.Flight_recorder} ring.  It also honours slow-query arming:
    an execution of an armed digest runs under a full
    {!Obs.Trace.collect} and the span is handed to
    {!Obs.Flight_recorder.capture}. *)

type phase = Collection | Combination | Construction

type clock = {
  time : 'a. phase -> (unit -> 'a) -> 'a;
  elapsed : phase -> float;
}
(** The execution body wraps each evaluation phase in [clock.time], so
    the recorded phase split reflects where the wall time actually
    went; [elapsed] reads a phase's accumulated milliseconds back, so
    the body can embed its own split in an {!Exec_result.t}. *)

type window
(** An opaque snapshot of the counters {!run} attributes over its
    observation window. *)

val window : unit -> window

val cache_outcome : since:window -> Exec_result.cache_outcome
(** The most specific plan-cache event since the snapshot:
    reground > invalidated > miss > hit. *)

val txn_stats : since:window -> Exec_result.txn_stats
(** Transaction commit/conflict and WAL append/fsync deltas since the
    snapshot. *)

val run :
  digest:string ->
  text:string ->
  opts:Exec_opts.t ->
  rows_of:('r -> int) ->
  (clock -> 'r) ->
  'r
(** [run ~digest ~text ~opts ~rows_of f] executes [f], records the
    execution under [digest], and returns [f]'s result.  Cache-hit /
    replan attribution reads [plan_cache.*] counter deltas over the
    window, so callers must open the window around {e all} planning
    work for the execution (Session's one-shot paths call this around
    prepare + execute).  Exceptions propagate unrecorded. *)
