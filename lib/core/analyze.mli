(** EXPLAIN ANALYZE report assembly: runs a query under the span tracer
    and shapes the per-phase cost rows and the JSON document printed by
    [pascalr analyze].  Library-level so the report schema is pinned by
    a golden-file test. *)

open Relalg

val phase_names : string list
(** Pipeline steps in order; the three evaluation phases are always
    present in the report. *)

type phase_row = {
  ph_name : string;
  ph_ms : float;
  ph_scans : int;
  ph_probes : int;
  ph_max_ntuple : int;
  ph_tuples : int;
  ph_index_probes : int;
  ph_pool_fetches : int;
  ph_pool_misses : int;
}

type t = {
  a_report : Exec_result.t;
  a_root : Obs.Trace.span;
  a_rows : phase_row list;
  a_strategy : Strategy.t;
  a_opts : Exec_opts.t;  (** the options the analysis ran under *)
  a_cache : Plan_cache.stats;  (** the session's plan-cache activity *)
  a_repeat : int;
}

val run :
  ?pool_pages:int ->
  ?repeat:int ->
  ?opts:Exec_opts.t ->
  ?params:(string * Value.t) list ->
  Database.t ->
  Calculus.query ->
  t
(** Evaluate under the tracer; [pool_pages] first attaches paged storage
    with a shared buffer pool.  [repeat] (default 1) executes the query
    that many times through one session — the report and trace describe
    the last execution, so with [repeat > 1] the trace has no planning
    spans and the plan-cache stats show the hits.
    @raise Invalid_argument on non-positive [pool_pages] or [repeat]. *)

val schema_version : int
(** Version stamp of the analyze / stats JSON documents, bumped
    whenever sections are added or reshaped.  2 added [schema_version]
    itself, the cumulative per-digest [stats] section, the
    [flight_recorder] section, and made [plan_cache.hit_rate] a number
    (0.0 instead of null on zero lookups).  4 added the [exec] section
    (the unified {!Exec_result.t}) and the WAL/txn fault counters. *)

val to_json : database:string -> scale:int -> Database.t -> Calculus.query -> t -> Obs.Json.t
(** The full analyze document: query, strategy, totals, per-phase rows,
    intermediates, parallel-execution activity (jobs, tasks, chunks,
    par vs seq operator tallies), fault/recovery counters, plan-cache
    activity, cumulative per-digest stats, flight-recorder contents,
    plan and span trace. *)

val faults_json : unit -> Obs.Json.t
(** Fault-injection and recovery counters from the metrics registry,
    plus the currently armed failpoint sites. *)
