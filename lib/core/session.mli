(** The engine's front door: a database, an LRU plan cache, and the
    transactional execution surface.

    {!prepare} runs the planning pipeline — empty-range adaptation,
    standard form, strategies 3 and 4 — at most once per (query
    structure, {!Exec_opts}, stats epoch); {!Prepared.exec} then runs
    only the collection / combination / construction phases.  Cache
    keys digest the alpha-canonical query, so variable spelling does
    not matter; entries are invalidated when
    {!Relalg.Database.stats_epoch} moves.

    Every execution runs inside a transaction.  {!read} and {!write}
    pin a snapshot and hand the body a {!Txn.t}; the body sees a stable
    view of the database for its whole duration regardless of
    concurrent committers, and a write transaction's buffered mutations
    become visible atomically at commit (or not at all).  The plain
    {!exec} family are single-statement autocommit conveniences.

    A session — including its plan cache and statistics — is a
    single-domain structure: share the database across domains, never
    the session.  Concurrent clients each create their own (what
    {!Workload.Driver} and [pascalr serve] do, one session per client
    domain); snapshot pinning and commit installation synchronize
    inside {!Relalg.Database}, and the process-global stores every
    execution feeds, {!Obs.Query_stats} and {!Obs.Flight_recorder},
    are mutex-protected and safe to reach from any number of sessions
    concurrently. *)

open Relalg
open Calculus

type t

val create : ?cache_capacity:int -> Database.t -> t
(** [cache_capacity] bounds the plan cache (default 64 plans). *)

val db : t -> Database.t
val cache_stats : t -> Plan_cache.stats
val cache_length : t -> int
val clear_cache : t -> unit

val digest : query -> string
(** The structural digest of the alpha-canonical query — the key under
    which executions accumulate in {!Obs.Query_stats} and (with the
    {!Exec_opts.fingerprint} appended) in the plan cache. *)

val prepare : ?opts:Exec_opts.t -> t -> query -> Prepared.t
(** Plan now (through the cache), execute later — possibly many times,
    with different [$name] parameter bindings, inside or outside a
    transaction ({!Prepared.exec_with}'s [?within]). *)

val plan_only : ?opts:Exec_opts.t -> Database.t -> query -> Plan.t
(** The uncached planning pipeline: adaptation + standard form +
    enabled transformations, without evaluating.  EXPLAIN and the
    cost-based planner use this directly. *)

(** {2 Transactions}

    A {!Txn.t} couples a pinned database snapshot
    ({!Relalg.Database.Txn}) with the session whose plan cache its
    executions go through. *)

module Txn : sig
  type session := t

  type t

  val session : t -> session

  val inner : t -> Database.Txn.t
  (** The underlying storage-layer transaction — for commit-state
      inspection or direct use of {!Relalg.Database.Txn}. *)

  val database : t -> Database.t
  (** The pinned snapshot this transaction reads (and, in a write
      transaction, mutates privately until commit). *)

  val insert : t -> string -> Tuple.t -> unit
  (** Buffered insert: visible to this transaction's own queries
      immediately, installed atomically at commit.
      @raise Invalid_argument in a read transaction. *)

  val delete_key : t -> string -> Value.t list -> unit
  val clear : t -> string -> unit

  val exec :
    ?opts:Exec_opts.t ->
    ?name:string ->
    ?params:(string * Value.t) list ->
    t ->
    query ->
    Relation.t
  (** Evaluate against the pinned snapshot, through the session's plan
      cache (plans validate against the {e snapshot's} stats epoch). *)

  val exec_report :
    ?opts:Exec_opts.t ->
    ?name:string ->
    ?params:(string * Value.t) list ->
    t ->
    query ->
    Exec_result.t
end

val read : t -> (Txn.t -> 'a) -> 'a
(** [read t f] pins a snapshot and runs [f] over it.  Always commits
    (trivially — there is nothing to install); the snapshot is stable
    for [f]'s whole duration regardless of concurrent writers. *)

val write : t -> (Txn.t -> 'a) -> 'a
(** [write t f] runs [f] in a write transaction and commits its
    buffered mutations atomically — through the WAL first when the
    database is durable ({!Relalg.Database.attach_wal}).

    @raise Relalg.Errors.Txn_conflict
      under first-committer-wins: another transaction committed to a
      relation this one touched since it pinned its snapshot.  Nothing
      was installed; the caller retries by calling [write] again.
      Any abort also clears the session's plan cache. *)

(** {2 One-shot execution}

    Single-statement autocommit: each call pins a read snapshot around
    prepare + execute, still through the session cache — a repeated
    one-shot query hits the cache and skips planning. *)

val exec :
  ?opts:Exec_opts.t ->
  ?name:string ->
  ?params:(string * Value.t) list ->
  t ->
  query ->
  Relation.t

val exec_report :
  ?opts:Exec_opts.t ->
  ?name:string ->
  ?params:(string * Value.t) list ->
  t ->
  query ->
  Exec_result.t

val exec_traced :
  ?opts:Exec_opts.t ->
  ?name:string ->
  ?params:(string * Value.t) list ->
  t ->
  query ->
  Exec_result.t * Obs.Trace.span
(** Like {!exec_report} under the span tracer: the root span ("query")
    carries the planning spans only when the cache misses, then
    collection, combination and construction. *)
