(** The engine's front door: a database plus an LRU plan cache.

    {!prepare} runs the planning pipeline — empty-range adaptation,
    standard form, strategies 3 and 4 — at most once per (query
    structure, {!Exec_opts}, stats epoch); {!Prepared.exec} then runs
    only the collection / combination / construction phases.  Cache
    keys digest the alpha-canonical query, so variable spelling does
    not matter; entries are invalidated when
    {!Relalg.Database.stats_epoch} moves.

    A session — including its plan cache and statistics — is a
    single-domain structure: share the read-only database across
    domains, never the session.  Concurrent clients each create their
    own (what {!Workload.Driver} does, one session per client domain);
    the process-global stores every execution feeds,
    {!Obs.Query_stats} and {!Obs.Flight_recorder}, are mutex-protected
    and safe to reach from any number of sessions concurrently. *)

open Relalg
open Calculus

type t

val create : ?cache_capacity:int -> Database.t -> t
(** [cache_capacity] bounds the plan cache (default 64 plans). *)

val db : t -> Database.t
val cache_stats : t -> Plan_cache.stats
val cache_length : t -> int
val clear_cache : t -> unit

val digest : query -> string
(** The structural digest of the alpha-canonical query — the key under
    which executions accumulate in {!Obs.Query_stats} and (with the
    {!Exec_opts.fingerprint} appended) in the plan cache. *)

val prepare : ?opts:Exec_opts.t -> t -> query -> Prepared.t
(** Plan now (through the cache), execute later — possibly many times,
    with different [$name] parameter bindings. *)

val plan_only : ?opts:Exec_opts.t -> Database.t -> query -> Plan.t
(** The uncached planning pipeline: adaptation + standard form +
    enabled transformations, without evaluating.  EXPLAIN and the
    cost-based planner use this directly. *)

(** {2 One-shot execution}

    Prepare + a single execution, still through the session cache — a
    repeated one-shot query hits the cache and skips planning. *)

val exec :
  ?opts:Exec_opts.t ->
  ?name:string ->
  ?params:(string * Value.t) list ->
  t ->
  query ->
  Relation.t

val exec_report :
  ?opts:Exec_opts.t ->
  ?name:string ->
  ?params:(string * Value.t) list ->
  t ->
  query ->
  Prepared.report

val exec_traced :
  ?opts:Exec_opts.t ->
  ?name:string ->
  ?params:(string * Value.t) list ->
  t ->
  query ->
  Prepared.report * Obs.Trace.span
(** Like {!exec_report} under the span tracer: the root span ("query")
    carries the planning spans only when the cache misses, then
    collection, combination and construction. *)
