(** A bounded LRU cache of compiled plans, epoch-checked.

    Entries remember the {!Relalg.Database.stats_epoch} they were
    compiled under; a lookup under a different epoch invalidates the
    entry (the cached cost ordering and empty-range adaptation may no
    longer hold).  Every hit/miss/eviction/invalidation bumps both the
    per-cache {!stats} and the global [plan_cache.*] counters in
    {!Obs.Metrics}. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 64 plans; at least 1. *)

val capacity : t -> int
val length : t -> int

val find : t -> epoch:int -> string -> Plan.t option
(** [None] on absence (miss) or epoch mismatch (invalidation — the
    entry is dropped); the caller re-plans and {!add}s. *)

val add : t -> epoch:int -> string -> Plan.t -> unit
(** Insert (or refresh) a plan, evicting the least recently used entry
    when the cache is full. *)

val clear : t -> unit
val stats : t -> stats

val hit_rate : stats -> float
(** Hits over lookups (hits + misses + invalidations); 0.0 — never NaN
    — when the cache has seen no lookups. *)
