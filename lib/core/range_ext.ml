(* Strategy 3: EXTENDED RANGE EXPRESSIONS (paper Section 4.3).

   Monadic join terms are moved out of the matrix into the range
   expressions of their variables, using

     SOME rec IN rel (S(rec) AND WFF) = SOME rec IN [EACH r IN rel: S(r)] (WFF)
     ALL rec IN rel (NOT S(rec) OR WFF) = ALL rec IN [EACH r IN rel: S(r)] (WFF)

   with free variables handled like existentially quantified ones.  On
   the standard form this reads:

   - free/SOME variable v: a monadic atom over v occurring in EVERY
     conjunction that mentions v (for a free variable: in every
     conjunction of the matrix) moves into v's range restriction;
   - ALL variable v: a conjunction consisting of a SINGLE monadic atom A
     over v is absorbed as the restriction NOT A (several such
     conjunctions combine into a conjunction of negated atoms — "the
     current system version supports only conjunctions of join terms as
     range expression extensions").

   Emptiness of the new extended range is checked against the live
   database, because the surrounding prenex form is only valid for
   non-empty ranges (Lemma 1): an empty extended SOME-range deletes the
   variable's conjunctions instead; an empty extended ALL-range makes
   the whole quantified part true. *)

open Relalg
open Calculus

type state = {
  mutable free : (var * range) list;
  mutable prefix : Normalize.prefix_entry list;
  mutable matrix : Normalize.dnf;
  mutable finished : bool;  (* matrix collapsed to TRUE *)
}

(* Extend [range] by the monadic formula [f] over variable name [v]. *)
let extend_range (range : range) v f =
  match range.restriction with
  | None -> restricted range.range_rel v f
  | Some (rv, existing) ->
    let existing = if String.equal rv v then existing else rename_free rv v existing in
    restricted range.range_rel v (f_and existing f)

let conj_mentions v conj = Var_set.mem v (Normalize.conj_vars conj)

(* Does a range's restriction mention a $param?  Extraction for a
   QUANTIFIED variable hinges on knowing whether the extended range is
   empty (Lemma 1: elimination of the quantifier assumes non-empty),
   which is undecidable before the parameters are bound — so such
   extensions are skipped and the monadic terms stay in the matrix,
   where the combination phase evaluates them after grounding.  Free
   variables are extended regardless: their identity
   [<...> OF EACH v IN rel : S AND W] = [<...> OF EACH v IN [rel: S] : W]
   holds for empty ranges too. *)
let range_has_params (range : range) =
  match range.restriction with
  | None -> false
  | Some (_, f) -> not (Var_set.is_empty (formula_params Var_set.empty f))

(* Remove atoms (mirrored-equal) from a conjunction. *)
let remove_atoms atoms conj =
  List.filter (fun a -> not (List.exists (equal_atom_mirrored a) atoms)) conj

(* Prune prefix entries whose variable no longer occurs in the matrix;
   their (non-empty) ranges make them vacuous. *)
let prune_vacuous st =
  let used = Normalize.dnf_vars st.matrix in
  st.prefix <-
    List.filter (fun e -> Var_set.mem e.Normalize.v used) st.prefix

(* One extraction attempt for a free or existential variable.  Returns
   true if the state changed. *)
let extract_existential db st v range ~is_free ~set_range ~drop_var =
  let relevant_conjs =
    if is_free then st.matrix
    else List.filter (conj_mentions v) st.matrix
  in
  if relevant_conjs = [] then false
  else begin
    let monadic_common =
      match relevant_conjs with
      | [] -> []
      | first :: rest ->
        List.filter
          (fun a ->
            is_monadic a
            && Var_set.mem v (atom_vars a)
            && List.for_all (fun conj -> Normalize.conj_mem a conj) rest)
          first
    in
    match monadic_common with
    | [] -> false
    | atoms ->
      let s_formula = conj (List.map (fun a -> F_atom a) atoms) in
      let new_range = extend_range range v s_formula in
      if (not is_free) && range_has_params new_range then false
      else begin
        (if (not is_free) && Standard_form.range_is_empty db new_range
         then begin
           (* SOME v over an empty extended range: the variable's
              conjunctions are unsatisfiable; the rest of the matrix
              survives (Lemma 1, rule 2 applied in reverse). *)
           st.matrix <-
             List.filter (fun c -> not (conj_mentions v c)) st.matrix;
           drop_var ();
           prune_vacuous st
         end
         else begin
           st.matrix <-
             List.map
               (fun conj ->
                 if conj_mentions v conj || is_free then
                   remove_atoms atoms conj
                 else conj)
               st.matrix;
           set_range new_range;
           prune_vacuous st
         end);
        true
      end
  end

(* One extraction attempt for a universally quantified variable.  With
   [cnf] the paper's future-work refinement applies: any conjunction
   consisting solely of monadic terms over v is absorbed (its negation
   is a disjunctive clause; several such conjunctions form a restriction
   in conjunctive normal form).  Without [cnf] only single-atom
   conjunctions qualify — "the current system version supports only
   conjunctions of join terms". *)
let extract_universal ~cnf db st (entry : Normalize.prefix_entry) =
  let v = entry.Normalize.v in
  let pure_monadic_over_v conj =
    conj <> []
    && List.for_all
         (fun a -> is_monadic a && Var_set.mem v (atom_vars a))
         conj
  in
  let singleton_conjs =
    List.filter
      (fun conj ->
        match conj with
        | [ a ] -> is_monadic a && Var_set.mem v (atom_vars a)
        | [] | _ :: _ -> cnf && pure_monadic_over_v conj)
      st.matrix
  in
  if singleton_conjs = [] then false
  else begin
    let negated =
      List.map
        (fun c ->
          disj
            (List.map
               (fun a -> F_atom { a with op = Value.negate_comparison a.op })
               c))
        singleton_conjs
    in
    let s_formula = conj negated in
    let new_range = extend_range entry.Normalize.range v s_formula in
    if range_has_params new_range then false
    else begin
      st.matrix <-
        List.filter
          (fun c -> not (List.exists (Normalize.conj_equal c) singleton_conjs))
          st.matrix;
      (if Standard_form.range_is_empty db new_range then begin
         (* ALL v over an empty extended range: the quantified part is
            identically true; only the free ranges still select. *)
         st.matrix <- [ [] ];
         st.prefix <- [];
         st.finished <- true
       end
       else begin
         st.prefix <-
           List.map
             (fun (e : Normalize.prefix_entry) ->
               if String.equal e.Normalize.v v then
                 { e with Normalize.range = new_range }
               else e)
             st.prefix;
         prune_vacuous st
       end);
      true
    end
  end

(* CNF clause extension for a free/SOME variable (applied once, after
   the main fixpoint): if every relevant conjunction carries at least
   one monadic term over v, the range shrinks by the disjunction of
   those terms' conjunctions.  The matrix keeps its atoms — only the
   collection-phase structures over v get smaller. *)
let extend_clause_existential db st v range ~is_free ~set_range ~drop_var =
  let relevant_conjs =
    if is_free then st.matrix else List.filter (conj_mentions v) st.matrix
  in
  let monadic_of conj =
    List.filter (fun a -> is_monadic a && Var_set.mem v (atom_vars a)) conj
  in
  if
    relevant_conjs = []
    || List.exists (fun c -> monadic_of c = []) relevant_conjs
  then false
  else begin
    let clause =
      disj
        (List.map
           (fun c -> conj (List.map (fun a -> F_atom a) (monadic_of c)))
           relevant_conjs)
    in
    let new_range = extend_range range v clause in
    if (not is_free) && range_has_params new_range then false
    else begin
      (if (not is_free) && Standard_form.range_is_empty db new_range
       then begin
         st.matrix <- List.filter (fun c -> not (conj_mentions v c)) st.matrix;
         drop_var ();
         prune_vacuous st
       end
       else set_range new_range);
      true
    end
  end

let apply ?(cnf = false) db (sf : Standard_form.t) : Standard_form.t =
  let st =
    {
      free = sf.Standard_form.free;
      prefix = sf.Standard_form.prefix;
      matrix = sf.Standard_form.matrix;
      finished = false;
    }
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && (not st.finished) && !rounds < 10 do
    changed := false;
    incr rounds;
    (* Free variables. *)
    List.iter
      (fun (v, range) ->
        if not st.finished then
          let set_range r =
            st.free <-
              List.map
                (fun (v', r') -> if String.equal v' v then (v, r) else (v', r'))
                st.free
          in
          if
            extract_existential db st v range ~is_free:true ~set_range
              ~drop_var:(fun () -> ())
          then changed := true)
      st.free;
    (* Quantified variables. *)
    List.iter
      (fun (entry : Normalize.prefix_entry) ->
        if
          (not st.finished)
          && List.exists
               (fun (e : Normalize.prefix_entry) ->
                 String.equal e.Normalize.v entry.Normalize.v)
               st.prefix
        then
          let v = entry.Normalize.v in
          let current_range =
            match
              List.find_opt
                (fun (e : Normalize.prefix_entry) -> String.equal e.Normalize.v v)
                st.prefix
            with
            | Some e -> e.Normalize.range
            | None -> entry.Normalize.range
          in
          match entry.Normalize.q with
          | Normalize.Q_some ->
            let set_range r =
              st.prefix <-
                List.map
                  (fun (e : Normalize.prefix_entry) ->
                    if String.equal e.Normalize.v v then
                      { e with Normalize.range = r }
                    else e)
                  st.prefix
            in
            let drop_var () =
              st.prefix <-
                List.filter
                  (fun (e : Normalize.prefix_entry) ->
                    not (String.equal e.Normalize.v v))
                  st.prefix
            in
            if
              extract_existential db st v current_range ~is_free:false
                ~set_range ~drop_var
            then changed := true
          | Normalize.Q_all ->
            if
              extract_universal ~cnf db st
                { entry with Normalize.range = current_range }
            then changed := true)
      st.prefix
  done;
  if cnf && not st.finished then begin
    (* One clause-extension pass per free/SOME variable. *)
    List.iter
      (fun (v, range) ->
        let set_range r =
          st.free <-
            List.map
              (fun (v', r') -> if String.equal v' v then (v, r) else (v', r'))
              st.free
        in
        ignore
          (extend_clause_existential db st v range ~is_free:true ~set_range
             ~drop_var:(fun () -> ())))
      st.free;
    List.iter
      (fun (entry : Normalize.prefix_entry) ->
        if entry.Normalize.q = Normalize.Q_some then
          let v = entry.Normalize.v in
          let still_present =
            List.exists
              (fun (e : Normalize.prefix_entry) -> String.equal e.Normalize.v v)
              st.prefix
          in
          if still_present then
            let current_range =
              match
                List.find_opt
                  (fun (e : Normalize.prefix_entry) ->
                    String.equal e.Normalize.v v)
                  st.prefix
              with
              | Some e -> e.Normalize.range
              | None -> entry.Normalize.range
            in
            let set_range r =
              st.prefix <-
                List.map
                  (fun (e : Normalize.prefix_entry) ->
                    if String.equal e.Normalize.v v then
                      { e with Normalize.range = r }
                    else e)
                  st.prefix
            in
            let drop_var () =
              st.prefix <-
                List.filter
                  (fun (e : Normalize.prefix_entry) ->
                    not (String.equal e.Normalize.v v))
                  st.prefix
            in
            ignore
              (extend_clause_existential db st v current_range ~is_free:false
                 ~set_range ~drop_var))
      st.prefix
  end;
  {
    Standard_form.free = st.free;
    select = sf.Standard_form.select;
    prefix = st.prefix;
    matrix = st.matrix;
  }
