(* The many-sorted first-order predicate calculus of PASCAL/R selection
   expressions (paper Section 2).

   Atomic formulae are JOIN TERMS: monadic (one variable, e.g.
   [e.estatus = professor]) or dyadic (two variables, e.g.
   [e.enr = t.tenr]), over the comparison operators = <> < <= > >=.
   Element variables range over relations via RANGE EXPRESSIONS and are
   free (EACH), existentially (SOME) or universally (ALL) quantified.

   Ranges are either database relations or — after strategy 3 — EXTENDED
   RANGE EXPRESSIONS [EACH r IN rel: S(r)] restricting the relation by a
   monadic formula over the range's own variable (Section 4.3). *)

open Relalg

type var = string

module Var_set = Set.Make (String)
module Var_map = Map.Make (String)

type range = {
  range_rel : string;  (* database relation name *)
  restriction : (var * formula) option;
      (* [EACH v IN rel: S(v)]; free vars of S are at most {v} *)
}

and operand =
  | O_attr of var * string  (* v.component *)
  | O_const of Value.t
  | O_param of string
      (* $name placeholder, bound to a constant at execution time — the
         paper's rel[keyval] selected-variable usage, where one embedded
         selection expression serves a family of key values *)

and atom = { lhs : operand; op : Value.comparison; rhs : operand }

and formula =
  | F_true
  | F_false
  | F_atom of atom
  | F_not of formula
  | F_and of formula * formula
  | F_or of formula * formula
  | F_some of var * range * formula
  | F_all of var * range * formula

(* A selection [<v1.a1, ...> OF EACH v1 IN r1, ... : body]. *)
type query = {
  free : (var * range) list;
  select : (var * string) list;
  body : formula;
}

(* Constructors *)

let base rel = { range_rel = rel; restriction = None }

let restricted rel v f =
  match f with
  | F_true -> base rel
  | _ -> { range_rel = rel; restriction = Some (v, f) }

let attr v a = O_attr (v, a)
let const c = O_const c
let cint n = O_const (Value.int n)
let cstr s = O_const (Value.str s)
let param name = O_param name

let compare_atoms_operand a b =
  match a, b with
  | O_attr (v1, a1), O_attr (v2, a2) ->
    let c = String.compare v1 v2 in
    if c <> 0 then c else String.compare a1 a2
  | O_attr _, (O_param _ | O_const _) -> -1
  | O_param _, O_attr _ -> 1
  | O_param p1, O_param p2 -> String.compare p1 p2
  | O_param _, O_const _ -> -1
  | O_const _, (O_attr _ | O_param _) -> 1
  | O_const c1, O_const c2 -> Value.compare c1 c2

let mk_atom lhs op rhs = F_atom { lhs; op; rhs }
let eq l r = mk_atom l Value.Eq r
let ne l r = mk_atom l Value.Ne r
let lt l r = mk_atom l Value.Lt r
let le l r = mk_atom l Value.Le r
let gt l r = mk_atom l Value.Gt r
let ge l r = mk_atom l Value.Ge r

(* Smart connectives performing constant propagation; they keep formulas
   produced by transformations tidy. *)
let f_and a b =
  match a, b with
  | F_true, f | f, F_true -> f
  | F_false, _ | _, F_false -> F_false
  | _ -> F_and (a, b)

let f_or a b =
  match a, b with
  | F_false, f | f, F_false -> f
  | F_true, _ | _, F_true -> F_true
  | _ -> F_or (a, b)

let f_not = function
  | F_true -> F_false
  | F_false -> F_true
  | F_not f -> f
  | f -> F_not f

let f_some v r f = F_some (v, r, f)
let f_all v r f = F_all (v, r, f)

let conj = function [] -> F_true | f :: fs -> List.fold_left f_and f fs
let disj = function [] -> F_false | f :: fs -> List.fold_left f_or f fs

(* Analysis *)

let operand_var = function
  | O_attr (v, _) -> Some v
  | O_const _ | O_param _ -> None

let atom_vars a =
  let add acc = function
    | O_attr (v, _) -> Var_set.add v acc
    | O_const _ | O_param _ -> acc
  in
  add (add Var_set.empty a.lhs) a.rhs

(* A monadic join term mentions exactly one variable; a dyadic one two
   (paper Section 2). *)
let is_monadic a = Var_set.cardinal (atom_vars a) = 1
let is_dyadic a = Var_set.cardinal (atom_vars a) = 2

let rec free_vars = function
  | F_true | F_false -> Var_set.empty
  | F_atom a -> atom_vars a
  | F_not f -> free_vars f
  | F_and (a, b) | F_or (a, b) -> Var_set.union (free_vars a) (free_vars b)
  | F_some (v, _, f) | F_all (v, _, f) -> Var_set.remove v (free_vars f)

let rec bound_vars = function
  | F_true | F_false | F_atom _ -> Var_set.empty
  | F_not f -> bound_vars f
  | F_and (a, b) | F_or (a, b) -> Var_set.union (bound_vars a) (bound_vars b)
  | F_some (v, _, f) | F_all (v, _, f) -> Var_set.add v (bound_vars f)

let rec all_atoms = function
  | F_true | F_false -> []
  | F_atom a -> [ a ]
  | F_not f -> all_atoms f
  | F_and (a, b) | F_or (a, b) -> all_atoms a @ all_atoms b
  | F_some (_, _, f) | F_all (_, _, f) -> all_atoms f

(* Renaming of a (free) variable throughout a formula — the alpha-
   conversion used to make bound variables distinct before prenexing. *)
let rename_operand old fresh = function
  | O_attr (v, a) when String.equal v old -> O_attr (fresh, a)
  | o -> o

let rename_atom old fresh a =
  { a with lhs = rename_operand old fresh a.lhs; rhs = rename_operand old fresh a.rhs }

let rec rename_free old fresh = function
  | (F_true | F_false) as f -> f
  | F_atom a -> F_atom (rename_atom old fresh a)
  | F_not f -> F_not (rename_free old fresh f)
  | F_and (a, b) -> F_and (rename_free old fresh a, rename_free old fresh b)
  | F_or (a, b) -> F_or (rename_free old fresh a, rename_free old fresh b)
  | F_some (v, r, f) ->
    if String.equal v old then F_some (v, r, f)
    else F_some (v, r, rename_free old fresh f)
  | F_all (v, r, f) ->
    if String.equal v old then F_all (v, r, f)
    else F_all (v, r, rename_free old fresh f)

(* Fresh-name generation: v, v', v'', ... avoiding a reserved set. *)
let fresh_var reserved v =
  let rec try_name candidate =
    if Var_set.mem candidate reserved then try_name (candidate ^ "'")
    else candidate
  in
  try_name v

(* Rename bound variables so that every quantifier binds a distinct name,
   also distinct from every name in [reserved] (typically the free
   variables of the query).  Precondition of the prenex transformation. *)
let distinct_bound_vars reserved formula =
  let used = ref (Var_set.union reserved (free_vars formula)) in
  let rec go = function
    | (F_true | F_false | F_atom _) as f -> f
    | F_not f -> F_not (go f)
    | F_and (a, b) ->
      let a' = go a in
      F_and (a', go b)
    | F_or (a, b) ->
      let a' = go a in
      F_or (a', go b)
    | F_some (v, r, f) ->
      let v', f' = freshen v f in
      F_some (v', r, go f')
    | F_all (v, r, f) ->
      let v', f' = freshen v f in
      F_all (v', r, go f')
  and freshen v f =
    if Var_set.mem v !used then begin
      let v' = fresh_var !used v in
      used := Var_set.add v' !used;
      (v', rename_free v v' f)
    end
    else begin
      used := Var_set.add v !used;
      (v, f)
    end
  in
  go formula

(* Parameter placeholders *)

let operand_params acc = function
  | O_param p -> Var_set.add p acc
  | O_attr _ | O_const _ -> acc

let atom_params acc a = operand_params (operand_params acc a.lhs) a.rhs

let rec formula_params acc = function
  | F_true | F_false -> acc
  | F_atom a -> atom_params acc a
  | F_not f -> formula_params acc f
  | F_and (a, b) | F_or (a, b) -> formula_params (formula_params acc a) b
  | F_some (_, r, f) | F_all (_, r, f) ->
    formula_params (range_params acc r) f

and range_params acc r =
  match r.restriction with
  | None -> acc
  | Some (_, f) -> formula_params acc f

let query_params q =
  let acc =
    List.fold_left (fun acc (_, r) -> range_params acc r) Var_set.empty q.free
  in
  Var_set.elements (formula_params acc q.body)

let subst_operand bindings = function
  | O_param p as o -> (
    match Var_map.find_opt p bindings with
    | Some v -> O_const v
    | None -> o)
  | o -> o

let subst_atom bindings a =
  { a with lhs = subst_operand bindings a.lhs; rhs = subst_operand bindings a.rhs }

let rec subst_formula bindings = function
  | (F_true | F_false) as f -> f
  | F_atom a -> F_atom (subst_atom bindings a)
  | F_not f -> F_not (subst_formula bindings f)
  | F_and (a, b) -> F_and (subst_formula bindings a, subst_formula bindings b)
  | F_or (a, b) -> F_or (subst_formula bindings a, subst_formula bindings b)
  | F_some (v, r, f) ->
    F_some (v, subst_range bindings r, subst_formula bindings f)
  | F_all (v, r, f) ->
    F_all (v, subst_range bindings r, subst_formula bindings f)

and subst_range bindings r =
  match r.restriction with
  | None -> r
  | Some (v, f) -> { r with restriction = Some (v, subst_formula bindings f) }

let subst_query bindings q =
  {
    free = List.map (fun (v, r) -> (v, subst_range bindings r)) q.free;
    select = q.select;
    body = subst_formula bindings q.body;
  }

(* Structural digest.

   Serializes a query unambiguously (every string is length-prefixed, so
   no concrete-syntax collision can alias two distinct queries) and
   hashes with MD5.  The digest of the alpha-canonical form — see
   {!Normalize.canonical_query} — is the plan cache's query key. *)

let ser_string buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let ser_operand buf = function
  | O_attr (v, a) ->
    Buffer.add_char buf 'a';
    ser_string buf v;
    ser_string buf a
  | O_const c ->
    Buffer.add_char buf 'c';
    ser_string buf (Value.to_string c)
  | O_param p ->
    Buffer.add_char buf 'p';
    ser_string buf p

let ser_atom buf a =
  ser_operand buf a.lhs;
  ser_string buf (Value.comparison_to_string a.op);
  ser_operand buf a.rhs

let rec ser_formula buf = function
  | F_true -> Buffer.add_char buf 'T'
  | F_false -> Buffer.add_char buf 'F'
  | F_atom a ->
    Buffer.add_char buf 'A';
    ser_atom buf a
  | F_not f ->
    Buffer.add_char buf '!';
    ser_formula buf f
  | F_and (a, b) ->
    Buffer.add_char buf '&';
    ser_formula buf a;
    ser_formula buf b
  | F_or (a, b) ->
    Buffer.add_char buf '|';
    ser_formula buf a;
    ser_formula buf b
  | F_some (v, r, f) ->
    Buffer.add_char buf 'S';
    ser_string buf v;
    ser_range buf r;
    ser_formula buf f
  | F_all (v, r, f) ->
    Buffer.add_char buf 'L';
    ser_string buf v;
    ser_range buf r;
    ser_formula buf f

and ser_range buf r =
  ser_string buf r.range_rel;
  match r.restriction with
  | None -> Buffer.add_char buf '_'
  | Some (v, f) ->
    Buffer.add_char buf 'R';
    ser_string buf v;
    ser_formula buf f

let digest_query q =
  let buf = Buffer.create 256 in
  List.iter
    (fun (v, r) ->
      Buffer.add_char buf 'E';
      ser_string buf v;
      ser_range buf r)
    q.free;
  List.iter
    (fun (v, a) ->
      Buffer.add_char buf '<';
      ser_string buf v;
      ser_string buf a)
    q.select;
  ser_formula buf q.body;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Structural equality *)

let equal_operand a b = compare_atoms_operand a b = 0

let equal_atom a b =
  equal_operand a.lhs b.lhs && a.op = b.op && equal_operand a.rhs b.rhs

(* Atoms equal up to mirroring (x op y ~ y flip-op x). *)
let equal_atom_mirrored a b =
  equal_atom a b
  || equal_atom a { lhs = b.rhs; op = Value.flip_comparison b.op; rhs = b.lhs }

let rec equal_range a b =
  String.equal a.range_rel b.range_rel
  &&
  match a.restriction, b.restriction with
  | None, None -> true
  | Some (v1, f1), Some (v2, f2) ->
    String.equal v1 v2 && equal_formula f1 f2
  | None, Some _ | Some _, None -> false

and equal_formula a b =
  match a, b with
  | F_true, F_true | F_false, F_false -> true
  | F_atom x, F_atom y -> equal_atom x y
  | F_not x, F_not y -> equal_formula x y
  | F_and (x1, x2), F_and (y1, y2) | F_or (x1, x2), F_or (y1, y2) ->
    equal_formula x1 y1 && equal_formula x2 y2
  | F_some (v1, r1, f1), F_some (v2, r2, f2)
  | F_all (v1, r1, f1), F_all (v2, r2, f2) ->
    String.equal v1 v2 && equal_range r1 r2 && equal_formula f1 f2
  | ( ( F_true | F_false | F_atom _ | F_not _ | F_and _ | F_or _ | F_some _
      | F_all _ ),
      _ ) ->
    false

(* Pretty-printing in the paper's concrete syntax. *)

let pp_operand ppf = function
  | O_attr (v, a) -> Fmt.pf ppf "%s.%s" v a
  | O_const c -> Value.pp ppf c
  | O_param p -> Fmt.pf ppf "$%s" p

let pp_atom ppf a =
  Fmt.pf ppf "(%a %s %a)" pp_operand a.lhs
    (Value.comparison_to_string a.op)
    pp_operand a.rhs

let rec pp_range ppf r =
  match r.restriction with
  | None -> Fmt.string ppf r.range_rel
  | Some (v, f) ->
    Fmt.pf ppf "[EACH %s IN %s: %a]" v r.range_rel pp_formula f

and pp_formula ppf = function
  | F_true -> Fmt.string ppf "true"
  | F_false -> Fmt.string ppf "false"
  | F_atom a -> pp_atom ppf a
  | F_not f -> Fmt.pf ppf "NOT %a" pp_paren f
  | F_and (a, b) -> Fmt.pf ppf "%a AND %a" pp_paren a pp_paren b
  | F_or (a, b) -> Fmt.pf ppf "%a OR %a" pp_paren a pp_paren b
  | F_some (v, r, f) ->
    Fmt.pf ppf "SOME %s IN %a %a" v pp_range r pp_paren f
  | F_all (v, r, f) -> Fmt.pf ppf "ALL %s IN %a %a" v pp_range r pp_paren f

and pp_paren ppf f =
  match f with
  | F_true | F_false | F_atom _ | F_not _ -> pp_formula ppf f
  | F_and _ | F_or _ | F_some _ | F_all _ -> Fmt.pf ppf "(%a)" pp_formula f

let pp_query ppf q =
  let pp_sel ppf (v, a) = Fmt.pf ppf "%s.%s" v a in
  let pp_free ppf (v, r) = Fmt.pf ppf "EACH %s IN %a" v pp_range r in
  Fmt.pf ppf "@[<hv2>[<%a> OF@ %a:@ %a]@]"
    (Fmt.list ~sep:Fmt.comma pp_sel)
    q.select
    (Fmt.list ~sep:Fmt.comma pp_free)
    q.free pp_formula q.body

let formula_to_string f = Fmt.str "%a" pp_formula f
let query_to_string q = Fmt.str "%a" pp_query q
