(* Strategy 4: quantifier evaluation in the collection phase (paper
   Section 4.4).

   The rightmost prefix variable vn can leave the combination phase when
   (a) it can be moved to the innermost position by quantifier swapping —
   adjacent quantifiers swap when they are equal, or when their
   variables share no conjunction (the Lemma-1 based swaps); and
   (b) its quantified sub-formula involves only one other variable vm:
   within each conjunction mentioning vn there is exactly one dyadic
   join term (over vn and vm) plus monadic terms over vn.  For a
   universally quantified vn, splitting additionally requires vn to
   occur in no more than one conjunction (Lemma 1, rule 3; the range
   must be non-empty, which the adaptation pass guarantees).

   The push replaces vn's join terms by a DERIVED PREDICATE on vm,
   evaluated in the collection phase against a value list of vn's
   component (module {!Relalg.Value_list}), with the paper's min/max and
   at-most-one-value storage reductions chosen per operator. *)

open Relalg
open Calculus

(* Do two variables co-occur in some conjunction? *)
let share_conjunction (plan : Plan.t) v w =
  List.exists
    (fun c ->
      let vars = Plan.conj_vars c in
      Var_set.mem v vars && Var_set.mem w vars)
    plan.Plan.conjs

(* Can [vn] be moved to the innermost (rightmost) prefix position?
   Every variable to its right must either carry the same quantifier or
   be independent of it. *)
let movable_to_rightmost (plan : Plan.t) prefix vn_entry =
  let rec right_of = function
    | [] -> []
    | (e : Normalize.prefix_entry) :: rest ->
      if String.equal e.Normalize.v vn_entry.Normalize.v then rest
      else right_of rest
  in
  List.for_all
    (fun (w : Normalize.prefix_entry) ->
      w.Normalize.q = vn_entry.Normalize.q
      || not (share_conjunction plan vn_entry.Normalize.v w.Normalize.v))
    (right_of prefix)

(* Orient a dyadic atom as (vm.outer_attr op vn.inner_attr). *)
let orient_dyadic vn (a : atom) =
  match a.lhs, a.rhs with
  | O_attr (v1, a1), O_attr (v2, a2) ->
    if String.equal v2 vn then Some (v1, a1, a.op, a2)
    else if String.equal v1 vn then Some (v2, a2, Value.flip_comparison a.op, a1)
    else None
  | (O_attr _ | O_const _ | O_param _), _ -> None

type push_piece = {
  pc_conj : Plan.conj;  (* the conjunction being rewritten *)
  pc_vm : var;
  pc_pushed : Plan.pushed;
}

(* Try to build the push pieces for [vn]; None if some conjunction
   mentioning it does not have the required shape. *)
let push_pieces (plan : Plan.t) (entry : Normalize.prefix_entry) =
  let vn = entry.Normalize.v in
  let conjs_with_vn =
    List.filter (fun c -> Var_set.mem vn (Plan.conj_vars c)) plan.Plan.conjs
  in
  if conjs_with_vn = [] then None
  else if entry.Normalize.q = Normalize.Q_all && List.length conjs_with_vn > 1
  then None (* Lemma 1: an ALL variable splits only from one conjunction *)
  else
    let piece (c : Plan.conj) =
      let monadic = Plan.monadic_over vn c.Plan.atoms in
      let dyadic = Plan.dyadic_over vn c.Plan.atoms in
      let nested =
        List.filter_map
          (fun (v, p) -> if String.equal v vn then Some p else None)
          c.Plan.derived
      in
      match dyadic with
      | [ d ] -> (
        match orient_dyadic vn d with
        | Some (vm, outer_attr, op, inner_attr) ->
          Some
            {
              pc_conj = c;
              pc_vm = vm;
              pc_pushed =
                {
                  Plan.p_quant = entry.Normalize.q;
                  p_var = vn;
                  p_range = entry.Normalize.range;
                  p_op = op;
                  p_outer_attr = outer_attr;
                  p_inner_attr = inner_attr;
                  p_monadic = monadic;
                  p_nested = nested;
                };
            }
        | None -> None)
      | [] | _ :: _ -> None
    in
    let pieces = List.map piece conjs_with_vn in
    if List.for_all Option.is_some pieces then
      Some (List.filter_map Fun.id pieces)
    else None

let same_conj (a : Plan.conj) (b : Plan.conj) =
  Normalize.conj_equal a.Plan.atoms b.Plan.atoms
  && List.length a.Plan.derived = List.length b.Plan.derived
  && List.for_all2
       (fun x y -> String.equal (Plan.derived_id x) (Plan.derived_id y))
       a.Plan.derived b.Plan.derived

(* Apply one push: rewrite the conjunctions and drop vn from the prefix. *)
let apply_push (plan : Plan.t) (entry : Normalize.prefix_entry) pieces =
  let vn = entry.Normalize.v in
  let rewrite (c : Plan.conj) =
    match List.find_opt (fun pc -> same_conj pc.pc_conj c) pieces with
    | None -> c
    | Some pc ->
      let keep_atom a = not (Var_set.mem vn (atom_vars a)) in
      {
        Plan.atoms = List.filter keep_atom c.Plan.atoms;
        derived =
          List.filter (fun (v, _) -> not (String.equal v vn)) c.Plan.derived
          @ [ (pc.pc_vm, pc.pc_pushed) ];
      }
  in
  {
    plan with
    Plan.conjs = List.map rewrite plan.Plan.conjs;
    prefix =
      List.filter
        (fun (e : Normalize.prefix_entry) -> not (String.equal e.Normalize.v vn))
        plan.Plan.prefix;
  }

(* Push until fixpoint, scanning the prefix right to left so inner
   quantifiers leave first (Example 4.7 pushes c, then t, then p). *)
let apply _db (plan : Plan.t) =
  let rec loop plan =
    let candidates = List.rev plan.Plan.prefix in
    let rec try_candidates = function
      | [] -> plan
      | entry :: rest ->
        if movable_to_rightmost plan plan.Plan.prefix entry then (
          match push_pieces plan entry with
          | Some pieces -> loop (apply_push plan entry pieces)
          | None -> try_candidates rest)
        else try_candidates rest
    in
    try_candidates candidates
  in
  loop plan
