(** The many-sorted first-order predicate calculus of PASCAL/R selection
    expressions (paper Section 2): join terms over six comparison
    operators, connectives, range-coupled quantifiers, and — for
    strategy 3 — extended range expressions. *)

open Relalg

type var = string

module Var_set : Set.S with type elt = var
module Var_map : Map.S with type key = var

type range = {
  range_rel : string;
  restriction : (var * formula) option;
      (** [[EACH v IN rel: S(v)]]; free variables of [S] ⊆ [{v}] *)
}

and operand =
  | O_attr of var * string
  | O_const of Value.t
  | O_param of string
      (** [$name] placeholder, bound to a constant at execution time
          ({!subst_query}); one prepared plan serves a family of
          constants — the paper's [rel[keyval]] selected-variable
          usage. *)

and atom = { lhs : operand; op : Value.comparison; rhs : operand }

and formula =
  | F_true
  | F_false
  | F_atom of atom
  | F_not of formula
  | F_and of formula * formula
  | F_or of formula * formula
  | F_some of var * range * formula
  | F_all of var * range * formula

type query = {
  free : (var * range) list;  (** EACH v IN range, in declared order *)
  select : (var * string) list;  (** the component selection *)
  body : formula;
}

(** {1 Constructors} *)

val base : string -> range
val restricted : string -> var -> formula -> range
(** [restricted rel v s] is [[EACH v IN rel: s]]; collapses to {!base}
    when [s] is [F_true]. *)

val attr : var -> string -> operand
val const : Value.t -> operand
val cint : int -> operand
val cstr : string -> operand
val param : string -> operand

val mk_atom : operand -> Value.comparison -> operand -> formula
val eq : operand -> operand -> formula
val ne : operand -> operand -> formula
val lt : operand -> operand -> formula
val le : operand -> operand -> formula
val gt : operand -> operand -> formula
val ge : operand -> operand -> formula

val f_and : formula -> formula -> formula
(** Connectives with constant propagation. *)

val f_or : formula -> formula -> formula
val f_not : formula -> formula
val f_some : var -> range -> formula -> formula
val f_all : var -> range -> formula -> formula
val conj : formula list -> formula
val disj : formula list -> formula

(** {1 Analysis} *)

val operand_var : operand -> var option
val atom_vars : atom -> Var_set.t
val is_monadic : atom -> bool
val is_dyadic : atom -> bool
val free_vars : formula -> Var_set.t
val bound_vars : formula -> Var_set.t
val all_atoms : formula -> atom list

val rename_free : var -> var -> formula -> formula
(** Capture-respecting renaming of a free variable. *)

val fresh_var : Var_set.t -> var -> var

val distinct_bound_vars : Var_set.t -> formula -> formula
(** Alpha-rename so every quantifier binds a distinct name, disjoint from
    [reserved] — the precondition of prenexing. *)

(** {1 Parameter placeholders} *)

val formula_params : Var_set.t -> formula -> Var_set.t
(** Accumulate the [$name] placeholders of a formula (including range
    restrictions). *)

val query_params : query -> string list
(** The placeholders of a query, sorted. *)

val subst_operand : Value.t Var_map.t -> operand -> operand
val subst_atom : Value.t Var_map.t -> atom -> atom
val subst_formula : Value.t Var_map.t -> formula -> formula
val subst_range : Value.t Var_map.t -> range -> range

val subst_query : Value.t Var_map.t -> query -> query
(** Replace every bound [$name] by its constant; placeholders without a
    binding are left in place. *)

val digest_query : query -> string
(** Unambiguous structural MD5 of a query (every string length-prefixed).
    Digest the alpha-canonical form ({!Normalize.canonical_query}) to key
    a plan cache. *)

(** {1 Equality} *)

val compare_atoms_operand : operand -> operand -> int
(** Total order on operands, used to orient atoms canonically. *)

val equal_operand : operand -> operand -> bool
val equal_atom : atom -> atom -> bool
val equal_atom_mirrored : atom -> atom -> bool
(** Equality up to mirroring ([x op y] ~ [y flip-op x]). *)

val equal_range : range -> range -> bool
val equal_formula : formula -> formula -> bool

(** {1 Printing (paper's concrete syntax)} *)

val pp_operand : operand Fmt.t
val pp_atom : atom Fmt.t
val pp_range : range Fmt.t
val pp_formula : formula Fmt.t
val pp_query : query Fmt.t
val formula_to_string : formula -> string
val query_to_string : query -> string
