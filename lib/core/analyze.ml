(* EXPLAIN ANALYZE report assembly.

   Runs a query under the span tracer and shapes the result into the
   per-phase cost rows and the machine-readable JSON document that
   `pascalr analyze` prints.  Lives in the library (rather than the CLI)
   so the report schema is a tested artifact: the golden-file test pins
   the JSON key paths, and any drift fails the suite instead of silently
   breaking downstream consumers. *)

open Relalg

let phase_names =
  [
    "adapt";
    "standard_form";
    "range_extension";
    "plan";
    "quant_push";
    "collection";
    "combination";
    "construction";
  ]

let eval_phases = [ "collection"; "combination"; "construction" ]

type phase_row = {
  ph_name : string;
  ph_ms : float;
  ph_scans : int;
  ph_probes : int;
  ph_max_ntuple : int;
  ph_tuples : int;
  ph_index_probes : int;
  ph_pool_fetches : int;
  ph_pool_misses : int;
}

let phase_row_of_span (s : Obs.Trace.span) =
  let c = Obs.Trace.counter s in
  {
    ph_name = s.Obs.Trace.sp_name;
    ph_ms = s.Obs.Trace.sp_elapsed_ms;
    ph_scans = c "relation.scans";
    ph_probes = c "relation.probes";
    ph_max_ntuple =
      (match
         Obs.Metrics.get_gauge s.Obs.Trace.sp_metrics "combination.max_ntuple"
       with
      | Some g -> int_of_float g
      | None -> 0);
    ph_tuples = c "relation.inserts";
    ph_index_probes = c "index.probes";
    ph_pool_fetches = c "pool.fetches";
    ph_pool_misses = c "pool.misses";
  }

(* A row for every pipeline step that actually ran, in pipeline order;
   the three evaluation phases are always present (zero row if their
   span is somehow missing) so the report shape is stable. *)
let phase_rows root =
  List.filter_map
    (fun name ->
      match Obs.Trace.find root name with
      | Some s -> Some (phase_row_of_span s)
      | None ->
        if List.mem name eval_phases then
          Some
            {
              ph_name = name;
              ph_ms = 0.0;
              ph_scans = 0;
              ph_probes = 0;
              ph_max_ntuple = 0;
              ph_tuples = 0;
              ph_index_probes = 0;
              ph_pool_fetches = 0;
              ph_pool_misses = 0;
            }
        else None)
    phase_names

type t = {
  a_report : Exec_result.t;
  a_root : Obs.Trace.span;
  a_rows : phase_row list;
  a_strategy : Strategy.t;
  a_opts : Exec_opts.t;
  a_cache : Plan_cache.stats;
  a_repeat : int;
}

(* [repeat] executes the query [repeat] times through one session: the
   first execution plans and fills the cache, later ones hit it.  The
   report and trace describe the LAST execution — with [repeat > 1] the
   trace carries no planning spans, and the plan_cache section shows
   the hits — so `analyze --repeat` demonstrates prepared re-execution
   end to end. *)
let run ?pool_pages ?(repeat = 1) ?(opts = Exec_opts.default) ?params db q =
  if repeat < 1 then invalid_arg "Analyze.run: repeat must be positive";
  (match pool_pages with
  | Some n when n <= 0 -> invalid_arg "Analyze.run: pool_pages must be positive"
  | Some n -> ignore (Database.attach_storage db ~pool_pages:n)
  | None -> ());
  let session = Session.create db in
  let rec go i =
    let outcome = Session.exec_traced ~opts ?params session q in
    if i >= repeat then outcome else go (i + 1)
  in
  let report, root = go 1 in
  {
    a_report = report;
    a_root = root;
    a_rows = phase_rows root;
    a_strategy = opts.Exec_opts.strategy;
    a_opts = opts;
    a_cache = Session.cache_stats session;
    a_repeat = repeat;
  }

let phase_row_json r =
  let open Obs.Json in
  let hit_rate =
    if r.ph_pool_fetches = 0 then Null
    else
      Float
        (float_of_int (r.ph_pool_fetches - r.ph_pool_misses)
        /. float_of_int r.ph_pool_fetches)
  in
  Obj
    [
      ("name", Str r.ph_name);
      ("wall_ms", Float r.ph_ms);
      ("scans", Int r.ph_scans);
      ("probes", Int r.ph_probes);
      ("max_ntuple", Int r.ph_max_ntuple);
      ("tuples_inserted", Int r.ph_tuples);
      ("index_probes", Int r.ph_index_probes);
      ("pool_fetches", Int r.ph_pool_fetches);
      ("pool_misses", Int r.ph_pool_misses);
      ("pool_hit_rate", hit_rate);
    ]

let pool_stats_json db =
  let open Obs.Json in
  match Database.pool_stats db with
  | None -> Null
  | Some s ->
    Obj
      [
        ("fetches", Int s.Buffer_pool.fetches);
        ("misses", Int s.Buffer_pool.misses);
        ("evictions", Int s.Buffer_pool.evictions);
        ("invalidations", Int s.Buffer_pool.invalidations);
        ("hit_rate", Float (Buffer_pool.hit_rate s));
      ]

(* Fault-injection and recovery activity, as counted in the global
   metrics registry, plus the currently armed failpoint sites. *)
let fault_counters =
  [
    "failpoint.fired";
    "heap.torn_writes";
    "storage.corruption_detected";
    "storage.recovery_rebuilds";
    "pool.evict_io_failures";
    "db.save_crashes";
    "wal.append_crashes";
    "wal.fsync_crashes";
    "wal.checkpoint_crashes";
    "wal.replayed_txns";
    "db.recoveries";
    "txn.conflicts";
  ]

let faults_json () =
  let open Obs.Json in
  Obj
    (List.map
       (fun name -> (name, Int (Obs.Metrics.counter_value name)))
       fault_counters
    @ [
        ( "armed",
          List
            (List.map
               (fun (site, trig) ->
                 Str (site ^ "=" ^ Failpoint.trigger_to_string trig))
               (Failpoint.armed_sites ())) );
      ])

(* Combination-engine activity: join traffic through the streaming
   pipeline plus the per-operator fused/materialized tallies.  Fixed
   key lists (absent counters read as 0) keep the report shape stable
   across queries and engines. *)
let fused_ops = [ "select"; "project"; "join"; "product"; "dedup" ]
let materialized_ops =
  [ "select"; "project"; "join"; "product"; "union"; "divide"; "stream" ]

let combination_json () =
  let open Obs.Json in
  let tally prefix ops =
    Obj
      (List.map
         (fun op -> (op, Int (Obs.Metrics.counter_value (prefix ^ op))))
         ops)
  in
  Obj
    [
      ( "join_rows_in",
        Int (Obs.Metrics.counter_value "combination.join_rows_in") );
      ( "join_rows_out",
        Int (Obs.Metrics.counter_value "combination.join_rows_out") );
      ("fused", tally "algebra.fused." fused_ops);
      ("materialized", tally "algebra.materialized." materialized_ops);
      (* Vectorized-kernel traffic: rows entering / surviving the
         batched chains, and the wall time spent inside the kernel
         loops.  All zero when batch_size = 1 (scalar execution). *)
      ( "batch",
        Obj
          [
            ("rows_in", Int (Obs.Metrics.counter_value "algebra.batch.rows_in"));
            ( "rows_out",
              Int (Obs.Metrics.counter_value "algebra.batch.rows_out") );
            ( "kernel_ns",
              Int (Obs.Metrics.counter_value "algebra.batch.kernel_ns") );
          ] );
    ]

(* Multicore activity: the parallelism budget the analysis ran under and
   what the domain pool actually did with it.  Operator calls that ran
   partitioned tally under both algebra.par.* and algebra.materialized.*,
   so the serial count per operator is (materialized - par); under
   jobs = 1 every par counter is 0 and "serial" equals the materialized
   tally. *)
let par_ops = [ "select"; "project"; "join"; "join_build"; "product"; "stream" ]

let parallel_json a =
  let open Obs.Json in
  let c = Obs.Metrics.counter_value in
  let seq_of op =
    match op with
    | "join_build" -> 0 (* build side of a par join; no serial analogue *)
    | _ -> max 0 (c ("algebra.materialized." ^ op) - c ("algebra.par." ^ op))
  in
  Obj
    [
      ("jobs", Int a.a_opts.Exec_opts.jobs);
      ("par_threshold", Int a.a_opts.Exec_opts.par_threshold);
      ("batch_size", Int a.a_opts.Exec_opts.batch_size);
      ("tasks", Int (c "parallel.tasks"));
      ("chunks", Int (c "parallel.chunks"));
      ("collection_builds", Int (c "parallel.collection_builds"));
      ( "operators",
        Obj
          [
            ( "par",
              Obj (List.map (fun op -> (op, Int (c ("algebra.par." ^ op)))) par_ops)
            );
            ("seq", Obj (List.map (fun op -> (op, Int (seq_of op))) par_ops));
          ] );
    ]

(* Plan-cache activity of the session the analysis ran in. *)
let plan_cache_json a =
  let open Obs.Json in
  let s = a.a_cache in
  Obj
    [
      ("repeat", Int a.a_repeat);
      ("hits", Int s.Plan_cache.hits);
      ("misses", Int s.Plan_cache.misses);
      ("evictions", Int s.Plan_cache.evictions);
      ("invalidations", Int s.Plan_cache.invalidations);
      ("hit_rate", Float (Plan_cache.hit_rate s));
    ]

(* Report schema version, bumped whenever sections are added or
   reshaped.  2: schema_version itself, cumulative per-digest "stats",
   the "flight_recorder" section, and plan_cache.hit_rate becoming a
   number (0.0 instead of null on zero lookups).  3: the
   "combination.batch" counters and "parallel.batch_size" of the
   vectorized execution path.  4: the "exec" section (the unified
   {!Exec_result.t}: rows, phase split, plan-cache outcome, txn/WAL
   activity) and the WAL/txn fault counters.  5: exec.access_paths
   (per collection structure: probe/range/scan) and exec.join_algos
   (per streaming join step: nlj/hash/batched-nlj) of the adaptive
   access-path and join-algorithm selection. *)
let schema_version = 5

(* The last execution's unified result, as the executor reported it:
   the phase split from the execution clock, the plan-cache outcome of
   its observation window, and the transactional footprint (commit /
   conflict / WAL append / fsync deltas — all zero for a read-only
   query over a non-durable database). *)
let exec_json (r : Exec_result.t) =
  let open Obs.Json in
  Obj
    [
      ("rows", Int r.Exec_result.rows);
      ( "phase_ms",
        Obj
          [
            ("collection", Float r.Exec_result.collection_ms);
            ("combination", Float r.Exec_result.combination_ms);
            ("construction", Float r.Exec_result.construction_ms);
          ] );
      ( "access_paths",
        Obj
          (List.map (fun (k, p) -> (k, Str p)) r.Exec_result.access_paths) );
      ( "join_algos",
        Obj (List.map (fun (k, a) -> (k, Str a)) r.Exec_result.join_algos) );
      ( "cache",
        Str (Exec_result.cache_outcome_to_string r.Exec_result.cache) );
      ( "txn",
        Obj
          [
            ("commits", Int r.Exec_result.txn.Exec_result.commits);
            ("conflicts", Int r.Exec_result.txn.Exec_result.conflicts);
            ("wal_appends", Int r.Exec_result.txn.Exec_result.wal_appends);
            ("wal_fsyncs", Int r.Exec_result.txn.Exec_result.wal_fsyncs);
          ] );
    ]

let to_json ~database ~scale db q a =
  let open Obs.Json in
  Obj
    [
      ("schema_version", Int schema_version);
      ("database", Str database);
      ("scale", Int scale);
      ("query", Str (Fmt.str "%a" Calculus.pp_query q));
      ("strategy", Str (Strategy.to_string a.a_strategy));
      ( "result_cardinality",
        Int (Relation.cardinality a.a_report.Exec_result.result) );
      ( "totals",
        Obj
          [
            ("wall_ms", Float a.a_root.Obs.Trace.sp_elapsed_ms);
            ("scans", Int a.a_report.Exec_result.scans);
            ("probes", Int a.a_report.Exec_result.probes);
            ("max_ntuple", Int a.a_report.Exec_result.max_ntuple);
            ("pool", pool_stats_json db);
          ] );
      ("exec", exec_json a.a_report);
      ("phases", List (List.map phase_row_json a.a_rows));
      ( "intermediates",
        Obj
          (List.map
             (fun (k, n) -> (k, Int n))
             a.a_report.Exec_result.intermediates) );
      ("combination", combination_json ());
      ("parallel", parallel_json a);
      ("faults", faults_json ());
      ("plan_cache", plan_cache_json a);
      ( "stats",
        Obj
          [
            ("queries", Obs.Query_stats.to_json ());
          ] );
      ("flight_recorder", Obs.Flight_recorder.to_json ~n:16 ());
      ("plan", Str (Explain.explain ~strategy:a.a_strategy db q));
      ("trace", Obs.Trace.to_json a.a_root);
    ]
