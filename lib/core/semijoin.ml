(* Semi-join programs from the predicate-calculus point of view (paper
   Sections 4.4 and 5).

   Strategy 4 is "a general first-order predicate calculus"
   interpretation of the semi-join techniques of Bernstein/Chiu [2] and
   SDD-1 [3].  This module makes the connection explicit for conjunctive
   equality queries:

   - the QUERY GRAPH has the query's variables as nodes and its equality
     dyadic join terms as edges;
   - for TREE queries, a FULL REDUCER — a bottom-up then top-down
     sequence of semijoins — removes every tuple that cannot participate
     in any satisfying assignment (Bernstein/Chiu's theorem);
   - for CYCLIC queries, iterating semijoins to a fixpoint still yields
     a (not necessarily full) reduction;
   - universal quantification extends the repertoire: ALL vn with a
     dyadic <> term is the ANTIJOIN reduction, and ALL vn with = is the
     at-most-one-value test — the paper's Section 4.4 special cases. *)

open Relalg
open Calculus

type edge = { ev1 : var; ea1 : string; ev2 : var; ea2 : string }

type graph = { g_nodes : var list; g_edges : edge list }

let pp_edge ppf e =
  Fmt.pf ppf "%s.%s = %s.%s" e.ev1 e.ea1 e.ev2 e.ea2

let pp_graph ppf g =
  Fmt.pf ppf "nodes {%a} edges {%a}"
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    g.g_nodes
    (Fmt.list ~sep:Fmt.semi pp_edge)
    g.g_edges

(* Build the query graph of a conjunction.  Only equality dyadic terms
   become edges; any other dyadic term makes the conjunction fall
   outside the Bernstein/Chiu class ([None]).  Monadic terms are
   selections, handled separately. *)
let graph_of_conjunction vars (conj : Normalize.conjunction) =
  let edges =
    List.fold_left
      (fun acc a ->
        match acc with
        | None -> None
        | Some edges ->
          if is_monadic a then Some edges
          else (
            match a.lhs, a.op, a.rhs with
            | O_attr (v1, a1), Value.Eq, O_attr (v2, a2) ->
              Some ({ ev1 = v1; ea1 = a1; ev2 = v2; ea2 = a2 } :: edges)
            | _ -> None))
      (Some []) conj
  in
  Option.map (fun g_edges -> { g_nodes = vars; g_edges = List.rev g_edges }) edges

(* Acyclicity of the (multi-)graph via union-find: a repeated edge inside
   one component is a cycle. *)
let is_acyclic g =
  let parent = Hashtbl.create 8 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None -> v
    | Some p ->
      let root = find p in
      Hashtbl.replace parent v root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if String.equal ra rb then false
    else begin
      Hashtbl.replace parent ra rb;
      true
    end
  in
  List.for_all (fun e -> union e.ev1 e.ev2) g.g_edges

let is_connected g =
  match g.g_nodes with
  | [] -> true
  | root :: _ ->
    let adj v =
      List.filter_map
        (fun e ->
          if String.equal e.ev1 v then Some e.ev2
          else if String.equal e.ev2 v then Some e.ev1
          else None)
        g.g_edges
    in
    let visited = Hashtbl.create 8 in
    let rec dfs v =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        List.iter dfs (adj v)
      end
    in
    dfs root;
    List.for_all (Hashtbl.mem visited) g.g_nodes

let is_tree g = is_acyclic g && is_connected g

(* One semijoin program step: reduce [target] to the elements matching
   some element of [source] through [edge]. *)
type step = { st_target : var; st_source : var; st_edge : edge }

let pp_step ppf s =
  Fmt.pf ppf "%s := %s SEMIJOIN %s ON %a" s.st_target s.st_target s.st_source
    pp_edge s.st_edge

(* Full-reducer schedule for an acyclic graph rooted at [root]: a
   bottom-up pass (leaves towards the root) followed by the mirrored
   top-down pass (Bernstein/Chiu). *)
let full_reducer_schedule g ~root =
  let adj v =
    List.filter_map
      (fun e ->
        if String.equal e.ev1 v then Some (e.ev2, e)
        else if String.equal e.ev2 v then Some (e.ev1, e)
        else None)
      g.g_edges
  in
  let visited = Hashtbl.create 8 in
  let bottom_up = ref [] in
  let top_down = ref [] in
  let rec dfs v =
    Hashtbl.replace visited v ();
    List.iter
      (fun (child, edge) ->
        if not (Hashtbl.mem visited child) then begin
          dfs child;
          (* after the subtree: child reduces its parent *)
          bottom_up := { st_target = v; st_source = child; st_edge = edge } :: !bottom_up;
          (* on the way down: parent reduces the child *)
          top_down := { st_target = child; st_source = v; st_edge = edge } :: !top_down
        end)
      (adj v)
  in
  dfs root;
  List.rev !bottom_up @ !top_down

(* Attribute pair of a step, oriented (target attr, source attr). *)
let step_on s =
  if String.equal s.st_edge.ev1 s.st_target then
    (s.st_edge.ea1, s.st_edge.ea2)
  else (s.st_edge.ea2, s.st_edge.ea1)

type reduction = {
  red_vars : (var * Relation.t) list;  (* reduced relation per variable *)
  red_steps : step list;
  red_before : (var * int) list;
  red_after : (var * int) list;
}

(* Initial relation of a variable: its (restricted) range with the
   conjunction's monadic terms applied — the collection phase's data
   reduction. *)
let initial_relation db (range : range) monadic v =
  let rel = Database.find_relation db range.range_rel in
  let schema = Relation.schema rel in
  let keep tuple =
    (match range.restriction with
    | None -> true
    | Some (rv, f) ->
      Naive_eval.holds db
        (Var_map.add rv { Naive_eval.tuple; schema } Var_map.empty)
        f)
    && List.for_all
         (fun a ->
           let value = function
             | O_const c -> c
             | O_attr (_, at) -> Tuple.get_by_name schema tuple at
             | O_param p -> invalid_arg ("Semijoin: unbound parameter $" ^ p)
           in
           Value.apply a.op (value a.lhs) (value a.rhs))
         monadic
  in
  let out = Relation.create ~name:("red_" ^ v) schema in
  Relation.scan (fun t -> if keep t then Relation.insert out t) rel;
  out

let run_steps rels steps =
  List.fold_left
    (fun rels s ->
      let target = List.assoc s.st_target rels in
      let source = List.assoc s.st_source rels in
      let ta, sa = step_on s in
      let reduced =
        Algebra.semijoin ~name:("red_" ^ s.st_target) ~on:[ (ta, sa) ] target
          source
      in
      (s.st_target, reduced) :: List.remove_assoc s.st_target rels)
    rels steps

(* Reduce a conjunctive equality query.  For acyclic graphs this is the
   Bernstein/Chiu full reducer; cyclic graphs fall back to iterating all
   edges' semijoins (both directions) to a fixpoint. *)
let reduce db (ranges : (var * range) list) (conj : Normalize.conjunction) =
  let vars = List.map fst ranges in
  match graph_of_conjunction vars conj with
  | None -> None
  | Some g ->
    Obs.Trace.with_span "semijoin_reduce" @@ fun () ->
    let monadic v = Plan.monadic_over v conj in
    let rels =
      List.map
        (fun (v, range) -> (v, initial_relation db range (monadic v) v))
        ranges
    in
    let before = List.map (fun (v, r) -> (v, Relation.cardinality r)) rels in
    let steps, rels =
      if is_tree g then
        let root = match vars with v :: _ -> v | [] -> invalid_arg "no vars" in
        let schedule = full_reducer_schedule g ~root in
        (schedule, run_steps rels schedule)
      else begin
        (* Fixpoint iteration of all semijoins in both directions. *)
        let all_steps =
          List.concat_map
            (fun e ->
              [
                { st_target = e.ev1; st_source = e.ev2; st_edge = e };
                { st_target = e.ev2; st_source = e.ev1; st_edge = e };
              ])
            g.g_edges
        in
        let rec iterate rels acc n =
          if n > 20 then (acc, rels)
          else
            let sizes = List.map (fun (v, r) -> (v, Relation.cardinality r)) rels in
            let rels' = run_steps rels all_steps in
            let sizes' = List.map (fun (v, r) -> (v, Relation.cardinality r)) rels' in
            if sizes = sizes' then (acc, rels')
            else iterate rels' (acc @ all_steps) (n + 1)
        in
        iterate rels [] 0
      end
    in
    let after = List.map (fun (v, r) -> (v, Relation.cardinality r)) rels in
    let sizes l =
      Obs.Json.Obj (List.map (fun (v, n) -> (v, Obs.Json.Int n)) l)
    in
    Obs.Trace.add_attr "before" (sizes before);
    Obs.Trace.add_attr "after" (sizes after);
    Some { red_vars = rels; red_steps = steps; red_before = before; red_after = after }

(* ----------------------------------------------------------------- *)
(* The universal extension (paper Section 5: semi-joins "extended to the
   case of universal quantifiers").                                    *)

(* Reduce [outer] to the elements x with ALL y IN inner (x.oa <> y.ia):
   exactly the antijoin of outer with inner on equality — the universal
   counterpart of the semijoin. *)
let all_ne_reduce ?(name = "all_ne") ~outer_attr ~inner_attr outer inner =
  Algebra.antijoin ~name ~on:[ (outer_attr, inner_attr) ] outer inner

(* Reduce [outer] to the elements x with ALL y IN inner (x.oa = y.ia):
   non-empty only when inner has exactly one distinct [ia] value (the
   paper's at-most-one-value argument); empty inner keeps everything
   (ALL over the empty relation). *)
let all_eq_reduce ?(name = "all_eq") ~outer_attr ~inner_attr outer inner =
  let vl = Value_list.of_column ~storage:Value_list.At_most_one inner inner_attr in
  Algebra.select ~name
    (fun t ->
      let v = Tuple.get_by_name (Relation.schema outer) t outer_attr in
      Value_list.quant_holds ~quant:Value_list.Q_all Value.Eq v vl)
    outer

(* Reduce [outer] to the elements x with SOME y IN inner (x.oa = y.ia):
   the plain semijoin, stated here for symmetry. *)
let some_eq_reduce ?(name = "some_eq") ~outer_attr ~inner_attr outer inner =
  Algebra.semijoin ~name ~on:[ (outer_attr, inner_attr) ] outer inner
