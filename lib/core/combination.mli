(** The combination phase (paper Section 3.3): combine each
    conjunction's reference structures into n-tuples, union the
    disjuncts, and eliminate quantifiers right to left — projection for
    SOME, division for ALL. *)

open Relalg

type join_order =
  | Cost_ordered
      (** Streaming engine (default): joins each conjunction's
          components in greedy cost order over their true cardinalities,
          projects existentially quantified variables away eagerly
          inside the combine, and eliminates the prefix disjunct-wise —
          a variable that would only be padded and then projected away
          is never joined at all, so max_ntuple is bounded by the
          live-variable frontier. *)
  | Declaration
      (** The paper's literal baseline: pad every conjunction to the
          full variable order, union, then eliminate right to left over
          the padded n-tuple relation. *)

val evaluate :
  ?join_order:join_order ->
  ?force_join:Cost.join_algo ->
  Collection.t ->
  Plan.t ->
  Relation.t
(** Returns the reference relation over the free variables, in
    declaration order.  Precondition: every prefix range is non-empty
    (established by {!Standard_form.adapt_query}). *)

val evaluate_with_stats :
  ?join_order:join_order ->
  ?force_join:Cost.join_algo ->
  Collection.t ->
  Plan.t ->
  Relation.t * int
(** Also returns the cardinality of the largest n-tuple relation built —
    the combinatorial-growth metric. *)

type outcome = {
  o_result : Relation.t;
  o_max_ntuple : int;
  o_join_algos : (string * string) list;
      (** per streaming join step, ["conj<i>.j<n>:<build relation>"] ->
          ["nlj"] | ["hash"] | ["batched-nlj"]; empty under
          {!Declaration} *)
}

val evaluate_outcome :
  ?join_order:join_order ->
  ?force_join:Cost.join_algo ->
  Collection.t ->
  Plan.t ->
  outcome
(** The full result: {!evaluate_with_stats} plus the join algorithm the
    cost model ({!Cost.choose_join_algo} over the build side's true
    cardinality and join-key distinct count) picked per streaming join
    step.  [?force_join] overrides the choice everywhere — the
    differential oracle's forced nested-loop leg. *)
