(* The front door of the query engine: a database plus a plan cache.

   Planning a PASCAL/R selection is the expensive prefix of every
   evaluation — empty-range adaptation, standard form (prenex + DNF),
   strategy 3's range extension and strategy 4's quantifier pushing.
   A session runs that pipeline once per (query structure, options,
   stats epoch) and caches the resulting plan:

   - the query structure is keyed by the MD5 digest of its
     alpha-canonical form, so spelling of variables does not matter;
   - the options fingerprint keys strategies and join order, which
     change the compiled plan;
   - the stats epoch (Database.stats_epoch) guards validity: inserts,
     deletions and snapshot loads move it, invalidating plans whose
     cost ordering or empty-range adaptation assumed the old contents.

   The pipeline itself (formerly Phased_eval.prepare) lives here;
   Phased_eval's run family survives as thin one-shot wrappers. *)

open Relalg

let src = Logs.Src.create "pascalr.eval" ~doc:"PASCAL/R evaluation pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* The full planning pipeline (paper Sections 2-4), uncached:
   adaptation, standard form, then the enabled transformations.  Each
   step runs under its own trace span. *)
let plan_only ?(opts = Exec_opts.default) db query =
  let strategy = opts.Exec_opts.strategy in
  let adapted =
    Obs.Trace.with_span "adapt" (fun () -> Standard_form.adapt_query db query)
  in
  if not (Calculus.equal_formula adapted.Calculus.body query.Calculus.body)
  then
    Log.debug (fun m ->
        m "empty-range adaptation rewrote the query to %a" Calculus.pp_query
          adapted);
  let sf =
    Obs.Trace.with_span "standard_form" (fun () ->
        let sf = Standard_form.of_query adapted in
        Obs.Trace.add_attr "conjunctions"
          (Obs.Json.Int (List.length sf.Standard_form.matrix));
        Obs.Trace.add_attr "prefix"
          (Obs.Json.Int (List.length sf.Standard_form.prefix));
        sf)
  in
  Log.debug (fun m ->
      m "standard form: %d conjunctions, prefix %d"
        (List.length sf.Standard_form.matrix)
        (List.length sf.Standard_form.prefix));
  let sf =
    if strategy.Strategy.range_extension || strategy.Strategy.cnf_extension
    then begin
      let sf' =
        Obs.Trace.with_span "range_extension" (fun () ->
            Range_ext.apply ~cnf:strategy.Strategy.cnf_extension db sf)
      in
      Log.debug (fun m ->
          m "range extension: %d -> %d conjunctions"
            (List.length sf.Standard_form.matrix)
            (List.length sf'.Standard_form.matrix));
      sf'
    end
    else sf
  in
  let plan = Obs.Trace.with_span "plan" (fun () -> Plan.of_standard_form sf) in
  if strategy.Strategy.quantifier_push then begin
    let plan' =
      Obs.Trace.with_span "quant_push" (fun () -> Quant_push.apply db plan)
    in
    Log.debug (fun m ->
        m "quantifier pushing: prefix %d -> %d"
          (List.length plan.Plan.prefix)
          (List.length plan'.Plan.prefix));
    plan'
  end
  else plan

type t = {
  s_db : Database.t;
  s_cache : Plan_cache.t;
}

let create ?cache_capacity db =
  { s_db = db; s_cache = Plan_cache.create ?capacity:cache_capacity () }

let db t = t.s_db
let cache_stats t = Plan_cache.stats t.s_cache
let cache_length t = Plan_cache.length t.s_cache
let clear_cache t = Plan_cache.clear t.s_cache

(* The structural digest ignores variable spelling; it keys the
   cumulative per-query statistics on its own, and — concatenated with
   the options fingerprint, which separates plans the knobs would
   compile differently — the plan cache. *)
let digest query = Calculus.digest_query (Normalize.canonical_query query)

let prepare ?(opts = Exec_opts.default) t query =
  let digest = digest query in
  let key = digest ^ "#" ^ Exec_opts.fingerprint opts in
  let replan () =
    let epoch = Database.stats_epoch t.s_db in
    match Plan_cache.find t.s_cache ~epoch key with
    | Some plan -> plan
    | None ->
      let plan = plan_only ~opts t.s_db query in
      Plan_cache.add t.s_cache ~epoch key plan;
      plan
  in
  (* Plan eagerly: prepare pays for planning, executions need not. *)
  ignore (replan () : Plan.t);
  Prepared.make ~db:t.s_db ~opts ~digest ~query ~replan
    ~reground:(fun b -> plan_only ~opts t.s_db (Calculus.subst_query b query))

(* One-shot conveniences: prepare + single execution, through the
   session cache (so a repeated one-shot query still hits).  The
   observation window opens around prepare + execute, so a cold
   one-shot records as a replan while a repeat records as a cache
   hit — Prepared.exec alone would misread the cold case, because
   prepare's eager plan is re-found (hit) at execution time. *)

let exec ?(opts = Exec_opts.default) ?name ?params t query =
  Observe.run ~digest:(digest query)
    ~text:(Fmt.str "%a" Calculus.pp_query query)
    ~opts ~rows_of:Relation.cardinality
    (fun clock ->
      Prepared.exec_with ?name ?params clock (prepare ~opts t query))

let exec_report ?(opts = Exec_opts.default) ?name ?params t query =
  Observe.run ~digest:(digest query)
    ~text:(Fmt.str "%a" Calculus.pp_query query)
    ~opts
    ~rows_of:(fun r -> Relation.cardinality r.Prepared.result)
    (fun clock ->
      Prepared.exec_report_with ?name ?params clock (prepare ~opts t query))

let exec_traced ?(opts = Exec_opts.default) ?name ?params t query =
  Obs.Metrics.set_gauge "combination.max_ntuple" 0.0;
  Obs.Trace.collect "query"
    ~attrs:
      [
        ( "strategy",
          Obs.Json.Str (Strategy.to_string opts.Exec_opts.strategy) );
      ]
    (fun () ->
      (* Prepare inside the root span so planning spans (on a cache
         miss) are attributed to this query's trace; the observation
         window sits inside the span for the same reason. *)
      Observe.run ~digest:(digest query)
        ~text:(Fmt.str "%a" Calculus.pp_query query)
        ~opts
        ~rows_of:(fun r -> Relation.cardinality r.Prepared.result)
        (fun clock ->
          let p = prepare ~opts t query in
          Prepared.exec_report_with ?name ?params clock p))
