(* The front door of the query engine: a database plus a plan cache,
   with an explicit transaction surface.

   Planning a PASCAL/R selection is the expensive prefix of every
   evaluation — empty-range adaptation, standard form (prenex + DNF),
   strategy 3's range extension and strategy 4's quantifier pushing.
   A session runs that pipeline once per (query structure, options,
   stats epoch) and caches the resulting plan:

   - the query structure is keyed by the MD5 digest of its
     alpha-canonical form, so spelling of variables does not matter;
   - the options fingerprint keys strategies and join order, which
     change the compiled plan;
   - the stats epoch (Database.stats_epoch) guards validity: inserts,
     deletions and snapshot loads move it, invalidating plans whose
     cost ordering or empty-range adaptation assumed the old contents.

   Every execution runs inside a transaction.  [read] and [write] pin a
   snapshot (Database.Txn) and hand the body a [Txn.t] whose executors
   evaluate against the pinned view through the session's plan cache —
   the epoch validated is the snapshot's, which continues the store's
   version lineage, so monotonicity holds across installs.  The plain
   [exec] family are single-statement autocommit wrappers over [read].

   A session is shared-database, single-domain: concurrent clients each
   create their own session over one store (what Workload.Driver and
   `pascalr serve` do); pins and installs synchronize inside
   Database. *)

open Relalg

let src = Logs.Src.create "pascalr.eval" ~doc:"PASCAL/R evaluation pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

(* The full planning pipeline (paper Sections 2-4), uncached:
   adaptation, standard form, then the enabled transformations.  Each
   step runs under its own trace span. *)
let plan_only ?(opts = Exec_opts.default) db query =
  let strategy = opts.Exec_opts.strategy in
  let adapted =
    Obs.Trace.with_span "adapt" (fun () -> Standard_form.adapt_query db query)
  in
  if not (Calculus.equal_formula adapted.Calculus.body query.Calculus.body)
  then
    Log.debug (fun m ->
        m "empty-range adaptation rewrote the query to %a" Calculus.pp_query
          adapted);
  let sf =
    Obs.Trace.with_span "standard_form" (fun () ->
        let sf = Standard_form.of_query adapted in
        Obs.Trace.add_attr "conjunctions"
          (Obs.Json.Int (List.length sf.Standard_form.matrix));
        Obs.Trace.add_attr "prefix"
          (Obs.Json.Int (List.length sf.Standard_form.prefix));
        sf)
  in
  Log.debug (fun m ->
      m "standard form: %d conjunctions, prefix %d"
        (List.length sf.Standard_form.matrix)
        (List.length sf.Standard_form.prefix));
  let sf =
    if strategy.Strategy.range_extension || strategy.Strategy.cnf_extension
    then begin
      let sf' =
        Obs.Trace.with_span "range_extension" (fun () ->
            Range_ext.apply ~cnf:strategy.Strategy.cnf_extension db sf)
      in
      Log.debug (fun m ->
          m "range extension: %d -> %d conjunctions"
            (List.length sf.Standard_form.matrix)
            (List.length sf'.Standard_form.matrix));
      sf'
    end
    else sf
  in
  let plan = Obs.Trace.with_span "plan" (fun () -> Plan.of_standard_form sf) in
  if strategy.Strategy.quantifier_push then begin
    let plan' =
      Obs.Trace.with_span "quant_push" (fun () -> Quant_push.apply db plan)
    in
    Log.debug (fun m ->
        m "quantifier pushing: prefix %d -> %d"
          (List.length plan.Plan.prefix)
          (List.length plan'.Plan.prefix));
    plan'
  end
  else plan

type t = {
  s_db : Database.t;
  s_cache : Plan_cache.t;
}

let create ?cache_capacity db =
  { s_db = db; s_cache = Plan_cache.create ?capacity:cache_capacity () }

let db t = t.s_db
let cache_stats t = Plan_cache.stats t.s_cache
let cache_length t = Plan_cache.length t.s_cache
let clear_cache t = Plan_cache.clear t.s_cache

(* The structural digest ignores variable spelling; it keys the
   cumulative per-query statistics on its own, and — concatenated with
   the options fingerprint, which separates plans the knobs would
   compile differently — the plan cache. *)
let digest query = Calculus.digest_query (Normalize.canonical_query query)

(* Build the Prepared without planning anything yet: the replan and
   reground closures take the database to plan against, so the same
   prepared query serves the store (autocommit) and any transaction's
   snapshot, each validated under its own epoch. *)
let prepare_lazy ?(opts = Exec_opts.default) t query =
  let digest = digest query in
  let key = digest ^ "#" ^ Exec_opts.fingerprint opts in
  let replan db =
    let epoch = Database.stats_epoch db in
    match Plan_cache.find t.s_cache ~epoch key with
    | Some plan -> plan
    | None ->
      let plan = plan_only ~opts db query in
      Plan_cache.add t.s_cache ~epoch key plan;
      plan
  in
  Prepared.make ~db:t.s_db ~opts ~digest ~query ~replan
    ~reground:(fun db b -> plan_only ~opts db (Calculus.subst_query b query))

let prepare ?(opts = Exec_opts.default) t query =
  let p = prepare_lazy ~opts t query in
  (* Plan eagerly: prepare pays for planning, executions need not. *)
  ignore (Prepared.plan p : Plan.t);
  p

(* --- The transaction surface --------------------------------------- *)

module Txn = struct
  type session = t

  type t = {
    x_session : session;
    x_inner : Database.Txn.t;
  }

  let session txn = txn.x_session
  let inner txn = txn.x_inner
  let database txn = Database.Txn.view txn.x_inner

  (* Buffered mutations: applied to the transaction's private copy now
     (so its own queries see them), logged and installed at commit. *)
  let insert txn name tup = Database.Txn.insert txn.x_inner name tup
  let delete_key txn name key = Database.Txn.delete_key txn.x_inner name key
  let clear txn name = Database.Txn.clear txn.x_inner name

  (* Executors against the pinned snapshot, through the session's plan
     cache.  The observation window opens around prepare + execute, so
     a cold query records as a replan and a repeat as a cache hit. *)

  let exec ?(opts = Exec_opts.default) ?name ?params txn query =
    let view = database txn in
    Observe.run ~digest:(digest query)
      ~text:(Fmt.str "%a" Calculus.pp_query query)
      ~opts ~rows_of:Relation.cardinality
      (fun clock ->
        Prepared.exec_with ?name ?params ~within:view clock
          (prepare_lazy ~opts txn.x_session query))

  let exec_report ?(opts = Exec_opts.default) ?name ?params txn query =
    let view = database txn in
    let since = Observe.window () in
    Observe.run ~digest:(digest query)
      ~text:(Fmt.str "%a" Calculus.pp_query query)
      ~opts
      ~rows_of:(fun r -> r.Exec_result.rows)
      (fun clock ->
        Prepared.exec_report_with ?name ?params ~within:view ~since clock
          (prepare_lazy ~opts txn.x_session query))
end

let read t f =
  Database.with_read t.s_db (fun inner ->
      f { Txn.x_session = t; x_inner = inner })

(* On any aborted write — conflict or exception — drop the session's
   cached plans: they may have been compiled against the transaction's
   private snapshot, under epochs the store can later reach with
   different contents. *)
let write t f =
  try
    Database.with_write t.s_db (fun inner ->
        f { Txn.x_session = t; x_inner = inner })
  with e ->
    Plan_cache.clear t.s_cache;
    raise e

(* One-shot conveniences: single-statement autocommit — pin a read
   snapshot, prepare + execute through the session cache (so a repeated
   one-shot query still hits). *)

let exec ?opts ?name ?params t query =
  read t (fun txn -> Txn.exec ?opts ?name ?params txn query)

let exec_report ?opts ?name ?params t query =
  read t (fun txn -> Txn.exec_report ?opts ?name ?params txn query)

let exec_traced ?(opts = Exec_opts.default) ?name ?params t query =
  Obs.Metrics.set_gauge "combination.max_ntuple" 0.0;
  Obs.Trace.collect "query"
    ~attrs:
      [
        ( "strategy",
          Obs.Json.Str (Strategy.to_string opts.Exec_opts.strategy) );
      ]
    (fun () ->
      (* Prepare inside the root span so planning spans (on a cache
         miss) are attributed to this query's trace; the observation
         window sits inside the span for the same reason. *)
      read t (fun txn -> Txn.exec_report ~opts ?name ?params txn query))
