(** The collection phase (paper Section 3.3): evaluate range expressions
    and single join terms into single lists, indexes, indirect joins and
    value lists, with memoization so identical work is done once.

    Two execution modes share the same builders: lazy (one scan per
    structure — the Palermo baseline) and strategy 1's grouped scans
    (all structures over a relation in one pass, honouring
    index-before-probe dependencies).  Strategy 2 folds monadic terms
    and derived predicates into the indirect joins; strategy 4's derived
    predicates are evaluated through {!Relalg.Value_list}. *)

open Relalg
open Calculus

type t

type component =
  | C_single of var * Relation.t
      (** single list: reference relation [<@v>] *)
  | C_pair of var * var * Relation.t
      (** indirect join: reference relation [<@v1, @v2>] *)

val create :
  ?par:Domain_pool.par ->
  ?batch_size:int ->
  ?use_index:bool ->
  Database.t ->
  Strategy.t ->
  Plan.t ->
  t
(** [?par] is the parallelism budget from [Exec_opts.par]: omitted (or
    [jobs = 1] upstream) keeps every phase on the untouched serial
    path.  [?batch_size] (clamped to at least 1; default 1) is the
    window size of the combination phase's vectorized stream kernels —
    [1] keeps the scalar per-tuple emit.  [?use_index] (default true)
    lets structure builds be driven by declared secondary indexes:
    an equality restriction becomes an index probe, an order
    restriction a sorted range scan while its exact matching fraction
    stays at or below [Cost.range_scan_max_fraction]; every predicate
    is still re-checked per enumerated tuple, so indexed and scanned
    builds produce the same structures. *)

val par : t -> Domain_pool.par option
(** The budget given to {!create} — the combination phase inherits it
    from the collection it evaluates over. *)

val batch_size : t -> int
(** The batch size given to {!create}. *)

val batch_pool : t -> Relalg.Batch.pool
(** The query-scoped interning pool every combination-phase stream
    chain shares; one column encode per base list per query. *)

val run : t -> unit
(** With strategy 1, build every structure of the plan up front in
    grouped scans; otherwise a no-op (structures build lazily).

    Under a [par] budget with [jobs > 1], a grouped round over a
    relation at least [par.threshold] rows large snapshots the relation
    once ({!Relation.to_array} — still the round's single counted scan)
    and fans the independent structure builds across the domain pool;
    results install into the cache sequentially, in the same order as
    the serial round.  Builds whose range restriction contains a
    quantifier (and would therefore scan other relations) always run on
    the caller. *)

val base_list : t -> var -> Relation.t
(** The variable's (restricted) range expression as a single list —
    used for padding and as the division divisor. *)

val components : t -> Plan.conj -> component list
(** The structures covering one conjunction's atoms and derived
    predicates (shape depends on strategy 2). *)

val var_schema : t -> var -> Schema.t

val intermediate_sizes : t -> (string * int) list
(** Cardinality (or stored size) of every materialized structure, by
    memo key — the intermediate-growth metric of the experiments. *)

val access_paths : t -> (string * string) list
(** The access path that built each structure, by memo key, sorted:
    ["probe"] (secondary-index equality), ["range"] (sorted-index range
    scan) or ["scan"] (heap scan). *)
