(** Execution options: every knob of one query execution in a single
    record, so signatures stay stable as knobs are added. *)

type t = {
  strategy : Strategy.t;  (** which of the paper's strategies to enable *)
  join_order : Combination.join_order;
      (** combination-phase join ordering *)
}

val default : t
(** {!Strategy.full} with {!Combination.Cost_ordered} joins. *)

val make :
  ?strategy:Strategy.t -> ?join_order:Combination.join_order -> unit -> t

val join_order_to_string : Combination.join_order -> string
val join_order_of_string : string -> Combination.join_order option

val fingerprint : t -> string
(** Injective textual form; part of the plan-cache key, because every
    option can change the compiled plan. *)

val pp : t Fmt.t
