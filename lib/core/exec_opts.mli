(** Execution options: every knob of one query execution in a single
    record, so signatures stay stable as knobs are added. *)

type t = {
  strategy : Strategy.t;  (** which of the paper's strategies to enable *)
  join_order : Combination.join_order;
      (** combination-phase join ordering *)
  jobs : int;
      (** domains executing one query, caller included; [1] = the
          byte-identical serial engine, no pool, no snapshots *)
  par_threshold : int;
      (** input cardinality below which partitioned operators stay
          serial — chunking tiny inputs costs more than it saves *)
  batch_size : int;
      (** window size of the vectorized stream kernels; [1] runs the
          scalar per-tuple emit (the differential oracle) *)
  use_index : bool;
      (** let the collection phase serve restrictions from declared
          secondary indexes; [false] forces heap scans everywhere (the
          differential oracle and the [PASCALR_NO_INDEX] CI leg) *)
  force_join : Cost.join_algo option;
      (** override the adaptive per-step join-algorithm choice of the
          combination phase; [None] (the default) lets the cost model
          decide per {!Cost.choose_join_algo} *)
}

val default : t
(** {!Strategy.full} with {!Combination.Cost_ordered} joins; [jobs]
    from the [PASCALR_JOBS] environment variable if set to a positive
    integer, else [Domain.recommended_domain_count ()]; [par_threshold]
    4096; [batch_size] from [PASCALR_BATCH_SIZE] if set to a positive
    integer, else 2048; [use_index] true unless [PASCALR_NO_INDEX] is
    set truthy; [force_join] [None]. *)

val default_jobs : int
(** The resolved [jobs] default described under {!default}. *)

val default_batch_size : int
(** The resolved [batch_size] default described under {!default}. *)

val default_use_index : bool
(** The resolved [use_index] default described under {!default}. *)

val make :
  ?strategy:Strategy.t ->
  ?join_order:Combination.join_order ->
  ?jobs:int ->
  ?par_threshold:int ->
  ?batch_size:int ->
  ?use_index:bool ->
  ?force_join:Cost.join_algo ->
  unit ->
  t
(** [jobs] and [batch_size] are clamped to at least 1, [par_threshold]
    to at least 0. *)

val par : t -> Relalg.Domain_pool.par option
(** The parallelism budget the engine threads to {!Relalg.Algebra} and
    the collection phase — [None] when [jobs = 1], which is what makes
    the serial path bypass the pool entirely. *)

val join_order_to_string : Combination.join_order -> string
val join_order_of_string : string -> Combination.join_order option

val fingerprint : t -> string
(** Injective textual form; part of the plan-cache key, because every
    option can change the compiled plan — and [jobs]/[par_threshold]
    must keep plans cached under different parallelism settings from
    colliding. *)

val pp : t Fmt.t
