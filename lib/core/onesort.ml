(* Reduction of the many-sorted calculus to a one-sorted calculus
   (paper Section 2, after A. Schmidt 1938): range expressions become
   another type of atomic formula, and

     SOME rec IN rel (W)  becomes  SOME rec ((rec IN rel) AND W)
     ALL rec IN rel (W)   becomes  ALL rec (NOT (rec IN rel) OR W)

   The one-sorted quantifiers range over the whole universe — here the
   tagged union of all database relation elements.  This module exists
   to validate Lemma 1 and the transformation rules against an
   independent semantics. *)

open Relalg
open Calculus

type os_formula =
  | OS_true
  | OS_false
  | OS_atom of atom
  | OS_range of var * range  (* the new atomic formula: rec IN rel *)
  | OS_not of os_formula
  | OS_and of os_formula * os_formula
  | OS_or of os_formula * os_formula
  | OS_some of var * os_formula  (* unrestricted, over the universe *)
  | OS_all of var * os_formula

(* The translation. *)
let rec translate = function
  | F_true -> OS_true
  | F_false -> OS_false
  | F_atom a -> OS_atom a
  | F_not f -> OS_not (translate f)
  | F_and (a, b) -> OS_and (translate a, translate b)
  | F_or (a, b) -> OS_or (translate a, translate b)
  | F_some (v, r, f) -> OS_some (v, OS_and (OS_range (v, r), translate f))
  | F_all (v, r, f) -> OS_all (v, OS_or (OS_not (OS_range (v, r)), translate f))

(* A universe element is a tuple tagged with its source relation. *)
type element = { el_rel : string; el_schema : Schema.t; el_tuple : Tuple.t }

let universe db =
  List.concat_map
    (fun rel ->
      let schema = Relation.schema rel in
      Relation.fold
        (fun acc t ->
          { el_rel = Relation.name rel; el_schema = schema; el_tuple = t }
          :: acc)
        [] rel)
    (Database.relations db)

type env = element Var_map.t

let operand_value env = function
  | O_const c -> c
  | O_attr (v, a) -> (
    match Var_map.find_opt v env with
    | None -> invalid_arg ("Onesort: unbound variable " ^ v)
    | Some el -> Tuple.get_by_name el.el_schema el.el_tuple a)
  | O_param p -> invalid_arg ("Onesort: unbound parameter $" ^ p)

(* Truth under an environment and an explicit universe.  Connectives
   short-circuit left to right, which is what makes the guarded
   translation well-defined: an atom over a variable bound to an element
   of the wrong sort is never reached, because its guard (the range
   atom) fails first. *)
let rec eval db universe env = function
  | OS_true -> true
  | OS_false -> false
  | OS_atom a ->
    Value.apply a.op (operand_value env a.lhs) (operand_value env a.rhs)
  | OS_range (v, range) -> (
    match Var_map.find_opt v env with
    | None -> invalid_arg ("Onesort: unbound variable " ^ v)
    | Some el ->
      String.equal el.el_rel range.range_rel
      &&
      (match range.restriction with
      | None -> true
      | Some (rv, f) ->
        Naive_eval.holds db
          (Var_map.add rv
             { Naive_eval.tuple = el.el_tuple; schema = el.el_schema }
             Var_map.empty)
          f))
  | OS_not f -> not (eval db universe env f)
  | OS_and (a, b) -> eval db universe env a && eval db universe env b
  | OS_or (a, b) -> eval db universe env a || eval db universe env b
  | OS_some (v, f) ->
    List.exists (fun el -> eval db universe (Var_map.add v el env) f) universe
  | OS_all (v, f) ->
    List.for_all (fun el -> eval db universe (Var_map.add v el env) f) universe

(* Truth of a closed many-sorted formula under the one-sorted semantics
   of its translation. *)
let closed_holds db f = eval db (universe db) Var_map.empty (translate f)
