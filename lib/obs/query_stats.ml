(* Cumulative per-query statistics, pg_stat_statements-style.

   One entry per plan-cache digest (the MD5 of the alpha-canonical
   query), accumulated across every Session / Prepared execution in the
   process: call and cache-hit counts, rows produced, a bucketed wall-ms
   latency histogram (p50/p95/p99 via Histogram), and the
   collection / combination / construction time split.

   The registry is process-global and mutex-protected: executions run
   on the main domain today, but `pascalr stats`-style consumers must
   not observe a torn entry if that ever changes.  The lock is taken
   once per query execution — noise against even the cheapest query. *)

type entry = {
  qs_digest : string;
  mutable qs_query : string;  (* representative text, first seen *)
  mutable qs_opts : string;  (* exec-options fingerprint, last seen *)
  mutable qs_calls : int;
  mutable qs_cache_hits : int;
  mutable qs_replans : int;  (* planning-pipeline runs: misses,
                                invalidations and param regrounds *)
  mutable qs_rows : int;  (* total result tuples over all calls *)
  qs_latency : Histogram.t;  (* wall ms per execution *)
  mutable qs_collection_ms : float;
  mutable qs_combination_ms : float;
  mutable qs_construction_ms : float;
}

let lock = Mutex.create ()
let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~digest ~query ~opts ~wall_ms ~collection_ms ~combination_ms
    ~construction_ms ~rows ~cache_hit ~replans =
  locked (fun () ->
      let e =
        match Hashtbl.find_opt registry digest with
        | Some e -> e
        | None ->
          let e =
            {
              qs_digest = digest;
              qs_query = query;
              qs_opts = opts;
              qs_calls = 0;
              qs_cache_hits = 0;
              qs_replans = 0;
              qs_rows = 0;
              qs_latency = Histogram.create ();
              qs_collection_ms = 0.0;
              qs_combination_ms = 0.0;
              qs_construction_ms = 0.0;
            }
          in
          Hashtbl.replace registry digest e;
          e
      in
      e.qs_opts <- opts;
      e.qs_calls <- e.qs_calls + 1;
      if cache_hit then e.qs_cache_hits <- e.qs_cache_hits + 1;
      e.qs_replans <- e.qs_replans + replans;
      e.qs_rows <- e.qs_rows + rows;
      Histogram.observe e.qs_latency wall_ms;
      e.qs_collection_ms <- e.qs_collection_ms +. collection_ms;
      e.qs_combination_ms <- e.qs_combination_ms +. combination_ms;
      e.qs_construction_ms <- e.qs_construction_ms +. construction_ms)

let find digest = locked (fun () -> Hashtbl.find_opt registry digest)

(* Busiest first; digest breaks ties so the order is deterministic. *)
let entries () =
  locked (fun () ->
      Hashtbl.fold (fun _ e acc -> e :: acc) registry []
      |> List.sort (fun a b ->
             match compare b.qs_calls a.qs_calls with
             | 0 -> String.compare a.qs_digest b.qs_digest
             | c -> c))

let reset () = locked (fun () -> Hashtbl.reset registry)

let entry_to_json e =
  Json.Obj
    [
      ("digest", Json.Str e.qs_digest);
      ("query", Json.Str e.qs_query);
      ("opts", Json.Str e.qs_opts);
      ("calls", Json.Int e.qs_calls);
      ("cache_hits", Json.Int e.qs_cache_hits);
      ("replans", Json.Int e.qs_replans);
      ("rows_out", Json.Int e.qs_rows);
      ("latency", Histogram.to_json e.qs_latency);
      ( "phases_ms",
        Json.Obj
          [
            ("collection", Json.Float e.qs_collection_ms);
            ("combination", Json.Float e.qs_combination_ms);
            ("construction", Json.Float e.qs_construction_ms);
          ] );
    ]

let to_json () = Json.List (List.map entry_to_json (entries ()))

let pp_entry ppf e =
  Fmt.pf ppf "%-10s %6d %6d %7d %8d | %a"
    (String.sub e.qs_digest 0 (min 10 (String.length e.qs_digest)))
    e.qs_calls e.qs_cache_hits e.qs_replans e.qs_rows Histogram.pp
    e.qs_latency

let pp ppf () =
  Fmt.pf ppf "@[<v>%-10s %6s %6s %7s %8s | latency (ms)@,%a@]" "digest"
    "calls" "hits" "replans" "rows"
    (Fmt.list ~sep:Fmt.cut pp_entry) (entries ())
