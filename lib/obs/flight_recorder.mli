(** Always-on flight recorder for query executions.

    A bounded ring buffer of fixed-shape per-execution records — digest,
    exec-options fingerprint, wall and per-phase milliseconds, result
    rows, worker count, and the top storage counters for that execution.
    Recording is one array store behind a mutex, cheap enough to leave
    on permanently; when the ring fills, the oldest record is
    overwritten and {!dropped} counts what fell off.

    Slow-query capture piggybacks on the ring's digests: set a
    threshold with {!set_slow_ms}, call {!note_slow} after every
    execution, and when an execution crosses the threshold its digest
    becomes {!armed}.  The caller runs the next execution of an armed
    digest under {!Trace.collect} and hands the finished span to
    {!capture}, which stores it (latest wins) and disarms — so the
    expensive full trace is taken exactly once per offending query and
    never on the in-band execution that was already slow. *)

type record = {
  fr_digest : string;
  fr_opts : string;  (** exec-options fingerprint *)
  fr_wall_ms : float;
  fr_collection_ms : float;
  fr_combination_ms : float;
  fr_construction_ms : float;
  fr_rows : int;
  fr_jobs : int;
  fr_scans : int;  (** [relation.scans] delta over the execution *)
  fr_probes : int;  (** [relation.probes] delta *)
  fr_index_probes : int;  (** [index.probes] delta *)
  fr_pool_fetches : int;  (** [pool.fetches] delta *)
}

val capacity : unit -> int
val set_capacity : int -> unit
(** Replace the ring with an empty one of the given size (resets
    counts).  Raises [Invalid_argument] on a non-positive size. *)

val record : record -> unit
val total_recorded : unit -> int
(** Records ever written, including overwritten ones. *)

val dropped : unit -> int
(** Records lost to ring wrap-around. *)

val recent : ?n:int -> unit -> record list
(** Up to [n] (default: all retained) records, newest first. *)

val set_slow_ms : float option -> unit
(** Arm the slow-query machinery at the given wall-ms threshold, or
    disarm it with [None]. *)

val slow_ms : unit -> float option

val note_slow : string -> float -> unit
(** [note_slow digest wall_ms] arms [digest] for capture if a threshold
    is set and [wall_ms] crosses it. *)

val armed : string -> bool
(** Should the next execution of this digest run under a full trace? *)

val capture : string -> Trace.span -> unit
(** Store the captured span for the digest (latest wins) and disarm
    it. *)

val slow_traces : unit -> (string * Trace.span) list
(** Captured slow-query traces, sorted by digest. *)

val reset : unit -> unit
(** Empty the ring and forget armed digests and captured traces; the
    capacity and slow threshold survive. *)

val record_to_json : record -> Json.t
val to_json : ?n:int -> unit -> Json.t
(** [{capacity, recorded, total, dropped, slow_ms, recent}] with
    [recent] newest first (at most [n] records when given). *)

val pp_record : record Fmt.t
