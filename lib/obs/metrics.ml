type datum =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      min : float;
      max : float;
      buckets : int array;  (* Histogram.n_buckets log-spaced buckets *)
    }

type instrument =
  | I_counter of { mutable c : int }
  | I_gauge of { mutable g : float }
  | I_histogram of {
      mutable count : int;
      mutable sum : float;
      mutable min : float;
      mutable max : float;
      buckets : int array;
    }

type snapshot = (string * datum) list

(* One registry per domain.  The engine proper runs on the main domain
   (whose registry this module behaves exactly as the old global one);
   Domain_pool workers get a private registry each, so instrumentation
   sites deep in the stack stay lock-free.  Worker activity reaches the
   main registry as a {!snapshot} delta {!merge}d at the pool's join
   point. *)
let registry_key : (string, instrument) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key

let incr ?(by = 1) name =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (I_counter c) -> c.c <- c.c + by
  | Some (I_gauge _ | I_histogram _) ->
    invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")
  | None -> Hashtbl.replace registry name (I_counter { c = by })

let set_gauge name v =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (I_gauge g) -> g.g <- v
  | Some (I_counter _ | I_histogram _) ->
    invalid_arg ("Metrics.set_gauge: " ^ name ^ " is not a gauge")
  | None -> Hashtbl.replace registry name (I_gauge { g = v })

let gauge_max name v =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (I_gauge g) -> if v > g.g then g.g <- v
  | Some (I_counter _ | I_histogram _) ->
    invalid_arg ("Metrics.gauge_max: " ^ name ^ " is not a gauge")
  | None -> Hashtbl.replace registry name (I_gauge { g = v })

let observe name v =
  let registry = registry () in
  match Hashtbl.find_opt registry name with
  | Some (I_histogram h) ->
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v;
    let i = Histogram.bucket_of v in
    h.buckets.(i) <- h.buckets.(i) + 1
  | Some (I_counter _ | I_gauge _) ->
    invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")
  | None ->
    let buckets = Array.make Histogram.n_buckets 0 in
    buckets.(Histogram.bucket_of v) <- 1;
    Hashtbl.replace registry name
      (I_histogram { count = 1; sum = v; min = v; max = v; buckets })

let counter_value name =
  match Hashtbl.find_opt (registry ()) name with
  | Some (I_counter c) -> c.c
  | Some (I_gauge _ | I_histogram _) | None -> 0

let freeze = function
  | I_counter c -> Counter c.c
  | I_gauge g -> Gauge g.g
  | I_histogram h ->
    Histogram
      {
        count = h.count;
        sum = h.sum;
        min = h.min;
        max = h.max;
        buckets = Array.copy h.buckets;
      }

let snapshot () =
  Hashtbl.fold (fun name i acc -> (name, freeze i) :: acc) (registry ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Activity in the window between two snapshots.  Counters and histogram
   count/sum subtract; a counter absent from [before] counts from zero.
   Gauges are point-in-time: keep the [after] value, but only when it
   differs from [before] (an untouched gauge is not activity). *)
let diff ~before ~after =
  List.filter_map
    (fun (name, d_after) ->
      match d_after, List.assoc_opt name before with
      | Counter a, Some (Counter b) ->
        if a = b then None else Some (name, Counter (a - b))
      | Counter a, _ -> if a = 0 then None else Some (name, Counter a)
      | Gauge a, Some (Gauge b) -> if a = b then None else Some (name, Gauge a)
      | Gauge a, _ -> Some (name, Gauge a)
      | Histogram h, Some (Histogram b) ->
        if h.count = b.count then None
        else
          Some
            ( name,
              Histogram
                {
                  count = h.count - b.count;
                  sum = h.sum -. b.sum;
                  min = h.min;
                  max = h.max;
                  buckets =
                    Array.init (Array.length h.buckets) (fun i ->
                        h.buckets.(i)
                        - if i < Array.length b.buckets then b.buckets.(i)
                          else 0);
                } )
      | Histogram h, _ -> if h.count = 0 then None else Some (name, Histogram h))
    after

(* Fold a delta (typically a worker-domain {!diff}) into this domain's
   registry.  Every combination rule is commutative and associative —
   counters add, gauges keep the high-water mark, histograms pool their
   summaries — so the merge order of a batch of worker deltas cannot be
   observed, which is what keeps parallel runs' totals deterministic. *)
let merge (delta : snapshot) =
  let registry = registry () in
  List.iter
    (fun (name, d) ->
      match d, Hashtbl.find_opt registry name with
      | Counter by, _ -> incr ~by name
      | Gauge v, _ -> gauge_max name v
      | Histogram h, Some (I_histogram cur) ->
        cur.count <- cur.count + h.count;
        cur.sum <- cur.sum +. h.sum;
        if h.min < cur.min then cur.min <- h.min;
        if h.max > cur.max then cur.max <- h.max;
        Array.iteri
          (fun i c -> if i < Array.length cur.buckets then
              cur.buckets.(i) <- cur.buckets.(i) + c)
          h.buckets
      | Histogram h, _ ->
        Hashtbl.replace registry name
          (I_histogram
             {
               count = h.count;
               sum = h.sum;
               min = h.min;
               max = h.max;
               buckets = Array.copy h.buckets;
             }))
    delta

let find snap name = List.assoc_opt name snap

let get_counter snap name =
  match find snap name with
  | Some (Counter c) -> c
  | Some (Gauge _ | Histogram _) | None -> 0

let get_gauge snap name =
  match find snap name with
  | Some (Gauge g) -> Some g
  | Some (Counter _ | Histogram _) | None -> None

let histogram_quantile snap name q =
  match find snap name with
  | Some (Histogram h) when h.count > 0 ->
    Some
      (Histogram.quantile_of ~count:h.count ~min:h.min ~max:h.max
         ~counts:h.buckets q)
  | Some (Histogram _ | Counter _ | Gauge _) | None -> None

let datum_to_json = function
  | Counter c -> Json.Int c
  | Gauge g -> Json.Float g
  | Histogram h ->
    let quantile q =
      if h.count = 0 then 0.0
      else
        Histogram.quantile_of ~count:h.count ~min:h.min ~max:h.max
          ~counts:h.buckets q
    in
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ("min", Json.Float h.min);
        ("max", Json.Float h.max);
        ("p50", Json.Float (quantile 0.5));
        ("p95", Json.Float (quantile 0.95));
        ("p99", Json.Float (quantile 0.99));
      ]

let to_json snap = Json.Obj (List.map (fun (n, d) -> (n, datum_to_json d)) snap)

let reset () = Hashtbl.reset (registry ())

let pp_datum ppf = function
  | Counter c -> Fmt.int ppf c
  | Gauge g -> Fmt.pf ppf "%g" g
  | Histogram h ->
    let p q =
      if h.count = 0 then 0.0
      else
        Histogram.quantile_of ~count:h.count ~min:h.min ~max:h.max
          ~counts:h.buckets q
    in
    Fmt.pf ppf "count %d, sum %g, min %g, p50 %g, p95 %g, max %g" h.count
      h.sum h.min (p 0.5) (p 0.95) h.max

let pp ppf snap =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (n, d) -> Fmt.pf ppf "%s: %a" n pp_datum d))
    snap
