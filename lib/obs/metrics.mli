(** A process-wide registry of named measurement instruments.

    The engine's cost story (paper Sections 3–4) is told through a
    handful of numbers — relation scans, key probes, index work, tuples
    materialized, buffer-pool traffic, n-tuple growth.  Each
    instrumentation site bumps a named instrument here; consumers take
    {!snapshot}s and {!diff} them to attribute activity to a window
    (typically a trace span — see {!Trace}).

    Three instrument kinds:
    - counters: monotonically increasing ints ({!incr});
    - gauges: last-written floats, with a high-water variant
      ({!set_gauge}, {!gauge_max});
    - histograms: count/sum/min/max summaries plus log-spaced
      {!Histogram} buckets, so pooled quantiles survive snapshotting
      and the domain-pool merge ({!observe}).

    The registry is per-domain (domain-local storage) and not
    thread-safe within a domain — the engine proper runs on the main
    domain, and one ambient registry is what lets deep layers (the
    storage substrate) report without plumbing a handle through every
    signature.  {!Relalg.Domain_pool} workers each write to their own
    private registry; their activity reaches the caller's registry as a
    {!diff} delta folded in with {!merge} at the pool's join point. *)

type datum =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      min : float;
      max : float;
      buckets : int array;
          (** per-bucket observation counts in the shared
              {!Histogram} log-spaced layout *)
    }

type snapshot = (string * datum) list
(** Immutable copy of the registry, sorted by instrument name. *)

val incr : ?by:int -> string -> unit
(** Add to a counter, creating it at zero first if needed. *)

val set_gauge : string -> float -> unit
val gauge_max : string -> float -> unit
(** [gauge_max n v] raises gauge [n] to [v] if [v] is larger (or the
    gauge is new) — a high-water mark. *)

val observe : string -> float -> unit
(** Add one observation to a histogram. *)

val counter_value : string -> int
(** Current value; 0 for an absent or non-counter instrument. *)

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Activity between two snapshots: counters and histogram count/sum
    subtract; histogram min/max are taken from [after]; gauges keep
    their [after] value and appear only if they changed (or are new).
    Instruments with no activity in the window are dropped. *)

val merge : snapshot -> unit
(** Fold a delta (a worker domain's {!diff}) into this domain's
    registry: counters add, gauges take the high-water mark, histograms
    pool count/sum/min/max.  All rules are commutative and associative,
    so the order in which a batch of worker deltas is merged cannot be
    observed. *)

val find : snapshot -> string -> datum option
val get_counter : snapshot -> string -> int
(** 0 when absent or not a counter. *)

val get_gauge : snapshot -> string -> float option

val histogram_quantile : snapshot -> string -> float -> float option
(** Estimated quantile of a histogram instrument's bucketed
    observations, clamped to its recorded min/max; [None] when the
    instrument is absent, not a histogram, or empty. *)

val to_json : snapshot -> Json.t
(** Object keyed by instrument name; counters and gauges as numbers,
    histograms as [{count, sum, min, max, p50, p95, p99}] objects. *)

val reset : unit -> unit
(** Drop every instrument.  Tests and one-shot CLI runs use this; the
    {!diff} discipline makes it unnecessary for correctness. *)

val pp : snapshot Fmt.t
val pp_datum : datum Fmt.t
