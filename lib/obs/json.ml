type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity literals. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.string ppf (float_repr f)
  | Str s -> Fmt.pf ppf "\"%s\"" (escape s)
  | List items ->
    Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") pp) items
  | Obj fields ->
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_field) fields

and pp_field ppf (k, v) = Fmt.pf ppf "\"%s\": %a" (escape k) pp v

let to_string t = Fmt.str "%a" pp t

let rec pp_pretty ppf = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> pp ppf v
  | List [] -> Fmt.string ppf "[]"
  | List items ->
    Fmt.pf ppf "@[<v2>[@,%a@;<0 -2>]@]"
      (Fmt.list ~sep:(Fmt.any ",@,") pp_pretty)
      items
  | Obj [] -> Fmt.string ppf "{}"
  | Obj fields ->
    Fmt.pf ppf "@[<v2>{@,%a@;<0 -2>}@]"
      (Fmt.list ~sep:(Fmt.any ",@,") (fun ppf (k, v) ->
           Fmt.pf ppf "\"%s\": %a" (escape k) pp_pretty v))
      fields

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None
