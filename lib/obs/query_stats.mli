(** Cumulative per-query execution statistics.

    One entry per plan-cache digest (the structural MD5 of the
    alpha-canonical query), accumulated across every {!Core.Session} /
    {!Core.Prepared} execution in the process — the pg_stat_statements
    view of the engine.  Each entry tracks call and plan-cache-hit
    counts, replans, total rows produced, a bucketed wall-clock latency
    histogram (so p50/p95/p99 survive accumulation), and the
    collection / combination / construction phase time split.

    The registry is process-global and mutex-protected; entries are
    keyed only by digest, so the same query under different exec
    options shares an entry (the options fingerprint records the most
    recent execution's settings). *)

type entry = {
  qs_digest : string;
  mutable qs_query : string;  (** representative text, first seen *)
  mutable qs_opts : string;  (** exec-options fingerprint, last seen *)
  mutable qs_calls : int;
  mutable qs_cache_hits : int;
  mutable qs_replans : int;
      (** planning-pipeline runs: cache misses, invalidations and
          parameter regrounds *)
  mutable qs_rows : int;  (** total result tuples over all calls *)
  qs_latency : Histogram.t;  (** wall ms per execution *)
  mutable qs_collection_ms : float;
  mutable qs_combination_ms : float;
  mutable qs_construction_ms : float;
}

val record :
  digest:string ->
  query:string ->
  opts:string ->
  wall_ms:float ->
  collection_ms:float ->
  combination_ms:float ->
  construction_ms:float ->
  rows:int ->
  cache_hit:bool ->
  replans:int ->
  unit
(** Fold one execution into the digest's entry, creating it on first
    sight. *)

val find : string -> entry option
val entries : unit -> entry list
(** All entries, busiest (most calls) first; digest breaks ties. *)

val reset : unit -> unit

val entry_to_json : entry -> Json.t
val to_json : unit -> Json.t
(** List of entries in {!entries} order; each entry carries its latency
    histogram as [{count, sum, min, max, mean, p50, p95, p99}] and a
    [phases_ms] object. *)

val pp : unit Fmt.t
(** Text table of all entries. *)
