type span = {
  sp_name : string;
  sp_start_ms : float;  (* absolute wall clock; differences meaningful *)
  sp_elapsed_ms : float;
  sp_attrs : (string * Json.t) list;
  sp_metrics : Metrics.snapshot;
  sp_children : span list;
}

(* An open span under construction; children accumulate in reverse. *)
type open_span = {
  o_name : string;
  o_start : float;
  o_before : Metrics.snapshot;
  mutable o_attrs : (string * Json.t) list;  (* reversed *)
  mutable o_children : span list;  (* reversed *)
}

(* Innermost open span first; tracing is on iff the stack is non-empty
   or [collecting] is set (the root is pushed by [collect] itself). *)
let stack : open_span list ref = ref []
let collecting = ref false

let enabled () = !collecting

let now_ms () = Unix.gettimeofday () *. 1000.0

let open_span ?(attrs = []) name =
  {
    o_name = name;
    o_start = now_ms ();
    o_before = Metrics.snapshot ();
    o_attrs = List.rev attrs;
    o_children = [];
  }

let close_span o =
  {
    sp_name = o.o_name;
    sp_start_ms = o.o_start;
    sp_elapsed_ms = now_ms () -. o.o_start;
    sp_attrs = List.rev o.o_attrs;
    sp_metrics = Metrics.diff ~before:o.o_before ~after:(Metrics.snapshot ());
    sp_children = List.rev o.o_children;
  }

let with_span ?attrs name f =
  if not !collecting then f ()
  else begin
    let o = open_span ?attrs name in
    stack := o :: !stack;
    let finish () =
      match !stack with
      | top :: rest when top == o ->
        stack := rest;
        let closed = close_span o in
        (match rest with
        | parent :: _ -> parent.o_children <- closed :: parent.o_children
        | [] -> ())
      | _ ->
        (* A child span leaked past its parent's close: drop silently
           rather than corrupt the tree (can only happen if a callback
           captured and re-entered the tracer across an exception). *)
        ()
    in
    Fun.protect ~finally:finish f
  end

let add_attr key value =
  match !stack with
  | [] -> ()
  | top :: _ ->
    top.o_attrs <- (key, value) :: List.remove_assoc key top.o_attrs

let collect ?attrs name f =
  if !collecting then invalid_arg "Trace.collect: already collecting";
  collecting := true;
  let root = open_span ?attrs name in
  stack := [ root ];
  let result =
    Fun.protect
      ~finally:(fun () ->
        collecting := false;
        stack := [])
      f
  in
  (result, close_span root)

let rec find span name =
  if String.equal span.sp_name name then Some span
  else
    List.fold_left
      (fun acc child -> match acc with Some _ -> acc | None -> find child name)
      None span.sp_children

let counter span name = Metrics.get_counter span.sp_metrics name

let to_json span =
  let rec go s =
    Json.Obj
      ([ ("name", Json.Str s.sp_name); ("elapsed_ms", Json.Float s.sp_elapsed_ms) ]
      @ (match s.sp_attrs with [] -> [] | attrs -> [ ("attrs", Json.Obj attrs) ])
      @ (match s.sp_metrics with
        | [] -> []
        | m -> [ ("metrics", Metrics.to_json m) ])
      @
      match s.sp_children with
      | [] -> []
      | cs -> [ ("children", Json.List (List.map go cs)) ])
  in
  go span

(* Chrome trace-event JSON: a flat array of complete ("ph": "X") events
   with microsecond timestamps relative to the root span's start, one
   event per span.  The output loads directly in chrome://tracing and
   Perfetto; span attrs and metric deltas travel in "args". *)
let to_chrome span =
  let base = span.sp_start_ms in
  let rec go acc s =
    let args =
      (match s.sp_attrs with [] -> [] | attrs -> [ ("attrs", Json.Obj attrs) ])
      @
      match s.sp_metrics with
      | [] -> []
      | m -> [ ("metrics", Metrics.to_json m) ]
    in
    let event =
      Json.Obj
        ([
           ("name", Json.Str s.sp_name);
           ("cat", Json.Str "pascalr");
           ("ph", Json.Str "X");
           ("ts", Json.Float ((s.sp_start_ms -. base) *. 1000.0));
           ("dur", Json.Float (s.sp_elapsed_ms *. 1000.0));
           ("pid", Json.Int 1);
           ("tid", Json.Int 1);
         ]
        @ match args with [] -> [] | a -> [ ("args", Json.Obj a) ])
    in
    List.fold_left go (event :: acc) s.sp_children
  in
  Json.List (List.rev (go [] span))

let pp ppf span =
  let rec go indent s =
    Fmt.pf ppf "%s%-30s %8.3f ms" indent s.sp_name s.sp_elapsed_ms;
    List.iter
      (fun (k, d) -> Fmt.pf ppf "  %s=%a" k Metrics.pp_datum d)
      s.sp_metrics;
    List.iter (fun (k, v) -> Fmt.pf ppf "  %s=%a" k Json.pp v) s.sp_attrs;
    Fmt.pf ppf "@.";
    List.iter (go (indent ^ "  ")) s.sp_children
  in
  go "" span
