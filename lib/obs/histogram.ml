(* Log-spaced bucketed histograms (HDR-style).

   Every histogram in the process shares one fixed bucket layout, which
   is what keeps merging trivial and order-blind: pooling two histograms
   is element-wise addition of their bucket arrays plus count/sum
   addition and min/max widening — commutative and associative, so the
   domain pool can fold worker deltas in any order.

   Layout: [buckets_per_decade] log-spaced buckets per decade between
   10^lo_exp and 10^hi_exp, plus an underflow bucket (index 0, catching
   zero and sub-range values) and an overflow bucket (last index).  With
   8 buckets per decade the bucket-boundary ratio is 10^(1/8) ~ 1.33, so
   a quantile estimate is off by at most one bucket width (~15% relative
   error) — ample for latency percentiles; exact min/max are tracked
   separately and clamp the estimate. *)

let buckets_per_decade = 8
let lo_exp = -3 (* 1 microsecond, in milliseconds *)
let hi_exp = 7 (* ~2.8 hours, in milliseconds *)
let decades = hi_exp - lo_exp
let n_buckets = (decades * buckets_per_decade) + 2

let lo_bound = 10.0 ** float_of_int lo_exp

(* Bucket index of a value.  Negative and sub-range values land in the
   underflow bucket; NaN is treated as 0 (observing NaN is a caller bug
   but must not corrupt the array). *)
let bucket_of v =
  if not (v > lo_bound) (* catches v <= lo_bound and NaN *) then 0
  else
    let slot =
      int_of_float
        (Float.floor
           ((Float.log10 v -. float_of_int lo_exp)
           *. float_of_int buckets_per_decade))
    in
    (* log10 rounding can land exactly on a boundary; clamp into the
       scaled range, with the last slot reserved for overflow. *)
    if slot < 0 then 0
    else if slot >= decades * buckets_per_decade then n_buckets - 1
    else slot + 1

(* Lower and upper value bounds of bucket [i], used for interpolation.
   The underflow bucket spans [0, lo); the overflow bucket has no upper
   bound — callers clamp with the tracked max. *)
let bucket_bounds i =
  let edge k =
    10.0
    ** (float_of_int lo_exp
       +. (float_of_int k /. float_of_int buckets_per_decade))
  in
  if i <= 0 then (0.0, lo_bound)
  else if i >= n_buckets - 1 then (edge (decades * buckets_per_decade), infinity)
  else (edge (i - 1), edge i)

type t = {
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
  counts : int array;
}

let create () =
  {
    count = 0;
    sum = 0.0;
    min = infinity;
    max = neg_infinity;
    counts = Array.make n_buckets 0;
  }

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min then h.min <- v;
  if v > h.max then h.max <- v;
  let i = bucket_of v in
  h.counts.(i) <- h.counts.(i) + 1

let reset h =
  h.count <- 0;
  h.sum <- 0.0;
  h.min <- infinity;
  h.max <- neg_infinity;
  Array.fill h.counts 0 n_buckets 0

let merge ~into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min < into.min then into.min <- src.min;
  if src.max > into.max then into.max <- src.max;
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts

let count h = h.count
let sum h = h.sum
let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count
let min_value h = if h.count = 0 then 0.0 else h.min
let max_value h = if h.count = 0 then 0.0 else h.max

(* Quantile estimation over any bucket array with its pooled summary —
   the same code serves live histograms and Metrics snapshot data.
   The target rank q*(count-1) is located by a cumulative walk; the
   estimate interpolates linearly inside the holding bucket and is
   clamped into [min, max], so every quantile of a non-empty histogram
   is bounded by its recorded extremes and q -> quantile q is monotone.
   An empty histogram answers 0.0 — never NaN. *)
let quantile_of ~count ~min:mn ~max:mx ~counts q =
  if count <= 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int (count - 1) in
    let rec locate i cum =
      if i >= Array.length counts then Array.length counts - 1
      else
        let cum' = cum + counts.(i) in
        if float_of_int cum' > rank then i else locate (i + 1) cum'
    in
    let rec cum_before i acc k =
      if k >= i then acc else cum_before i (acc + counts.(k)) (k + 1)
    in
    let i = locate 0 0 in
    let lob, hib = bucket_bounds i in
    let lob = Float.max lob mn and hib = Float.min hib mx in
    let inside = counts.(i) in
    let before = cum_before i 0 0 in
    let frac =
      if inside <= 1 then 0.5
      else (rank -. float_of_int before) /. float_of_int (inside - 1)
    in
    let v = lob +. (frac *. (hib -. lob)) in
    Float.max mn (Float.min mx v)
  end

let quantile h q =
  quantile_of ~count:h.count ~min:(min_value h) ~max:(max_value h)
    ~counts:h.counts q

let to_json h =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("min", Json.Float (min_value h));
      ("max", Json.Float (max_value h));
      ("mean", Json.Float (mean h));
      ("p50", Json.Float (quantile h 0.5));
      ("p95", Json.Float (quantile h 0.95));
      ("p99", Json.Float (quantile h 0.99));
    ]

let pp ppf h =
  Fmt.pf ppf "count %d, mean %.3f, p50 %.3f, p95 %.3f, p99 %.3f, max %.3f"
    h.count (mean h) (quantile h 0.5) (quantile h 0.95) (quantile h 0.99)
    (max_value h)
