(** Log-spaced bucketed histograms (HDR-style).

    One fixed process-wide bucket layout — [buckets_per_decade]
    log-spaced buckets per decade over [10^lo, 10^hi) plus underflow
    and overflow buckets — so pooling two histograms is element-wise
    bucket addition: commutative and associative, the property the
    domain-pool metric merge relies on.

    Quantiles are estimated by a cumulative walk with linear
    interpolation inside the holding bucket, clamped to the recorded
    [min, max]; estimates are monotone in [q] and an empty histogram
    answers 0.0 (never NaN). *)

val n_buckets : int
(** Length of every bucket array. *)

val bucket_of : float -> int
(** Bucket index of a value; negatives and NaN land in bucket 0. *)

val bucket_bounds : int -> float * float
(** [(lower, upper)] value bounds of a bucket; bucket 0 spans
    [[0, 10^lo)], the last bucket has upper bound [infinity]. *)

type t

val create : unit -> t
val observe : t -> float -> unit
val reset : t -> unit

val merge : into:t -> t -> unit
(** Pool [src] into [into]: counts and buckets add, min/max widen. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0.0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** 0.0 when empty (never infinities). *)

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0, 1] (clamped); 0.0 when empty. *)

val quantile_of :
  count:int -> min:float -> max:float -> counts:int array -> float -> float
(** Quantile over raw bucket data — serves {!Metrics} snapshot
    histograms without copying them into a {!t}. *)

val to_json : t -> Json.t
(** [{count, sum, min, max, mean, p50, p95, p99}]. *)

val pp : t Fmt.t
