(** A minimal JSON document type and serializer.

    The observability layer renders metric snapshots, trace trees and
    benchmark results as JSON; nothing in the container provides a JSON
    library, so this is the (small) machine-readable surface.  Only
    construction and printing are supported — the engine never needs to
    parse JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val pp : t Fmt.t
(** Compact rendering (no insignificant whitespace beyond single spaces
    after [:] and [,]). *)

val to_string : t -> string

val pp_pretty : t Fmt.t
(** Indented, human-skimmable rendering; still valid JSON. *)

val member : string -> t -> t option
(** [member k (Obj _)] looks up field [k]; [None] on other variants. *)
