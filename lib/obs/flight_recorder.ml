(* Always-on flight recorder: a bounded ring of per-execution records.

   Every Session / Prepared execution appends one fixed-shape record —
   digest, options fingerprint, wall and per-phase times, rows, jobs,
   and the top storage counters for that execution — at the cost of one
   array store.  When the ring is full the oldest record is overwritten;
   [total] / [dropped] keep the bookkeeping honest.

   The slow-query machinery piggybacks on the same digests: when a
   threshold is set ([set_slow_ms]) and an execution's wall time
   crosses it, [note_slow] arms that digest.  The *next* execution of
   an armed digest runs under a full [Trace.collect] (the caller checks
   [armed] and hands the finished span to [capture]), so the expensive
   capture happens exactly once per offender and never on the fast
   path. *)

type record = {
  fr_digest : string;
  fr_opts : string;  (* exec-options fingerprint *)
  fr_wall_ms : float;
  fr_collection_ms : float;
  fr_combination_ms : float;
  fr_construction_ms : float;
  fr_rows : int;
  fr_jobs : int;
  fr_scans : int;  (* relation.scans delta *)
  fr_probes : int;  (* relation.probes delta *)
  fr_index_probes : int;  (* index.probes delta *)
  fr_pool_fetches : int;  (* pool.fetches delta *)
}

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let default_capacity = 256
let ring : record option array ref = ref (Array.make default_capacity None)
let head = ref 0  (* next write slot *)
let total = ref 0  (* records ever written *)

let capacity () = locked (fun () -> Array.length !ring)

let set_capacity n =
  if n <= 0 then invalid_arg "Flight_recorder.set_capacity";
  locked (fun () ->
      ring := Array.make n None;
      head := 0;
      total := 0)

let record r =
  locked (fun () ->
      let cap = Array.length !ring in
      !ring.(!head) <- Some r;
      head := (!head + 1) mod cap;
      incr total)

let total_recorded () = locked (fun () -> !total)

let dropped () =
  locked (fun () -> Stdlib.max 0 (!total - Array.length !ring))

(* Newest first. *)
let recent ?n () =
  locked (fun () ->
      let cap = Array.length !ring in
      let kept = Stdlib.min !total cap in
      let want = match n with None -> kept | Some n -> Stdlib.min n kept in
      List.init want (fun i ->
          !ring.(((!head - 1 - i) mod cap + cap) mod cap))
      |> List.filter_map Fun.id)

(* Slow-query threshold and per-digest arming. *)

let slow_threshold : float option ref = ref None
let armed_digests : (string, unit) Hashtbl.t = Hashtbl.create 8
let slow_spans : (string, Trace.span) Hashtbl.t = Hashtbl.create 8

let set_slow_ms ms =
  (match ms with
  | Some ms when not (ms >= 0.0) ->
    invalid_arg "Flight_recorder.set_slow_ms"
  | _ -> ());
  locked (fun () -> slow_threshold := ms)

let slow_ms () = locked (fun () -> !slow_threshold)

let note_slow digest wall_ms =
  locked (fun () ->
      match !slow_threshold with
      | Some t when wall_ms >= t -> Hashtbl.replace armed_digests digest ()
      | Some _ | None -> ())

let armed digest = locked (fun () -> Hashtbl.mem armed_digests digest)

let capture digest span =
  locked (fun () ->
      Hashtbl.remove armed_digests digest;
      Hashtbl.replace slow_spans digest span)

(* Digest-sorted for deterministic output; latest capture per digest. *)
let slow_traces () =
  locked (fun () ->
      Hashtbl.fold (fun d s acc -> (d, s) :: acc) slow_spans []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let reset () =
  locked (fun () ->
      ring := Array.make (Array.length !ring) None;
      head := 0;
      total := 0;
      Hashtbl.reset armed_digests;
      Hashtbl.reset slow_spans)

let record_to_json r =
  Json.Obj
    [
      ("digest", Json.Str r.fr_digest);
      ("opts", Json.Str r.fr_opts);
      ("wall_ms", Json.Float r.fr_wall_ms);
      ( "phases_ms",
        Json.Obj
          [
            ("collection", Json.Float r.fr_collection_ms);
            ("combination", Json.Float r.fr_combination_ms);
            ("construction", Json.Float r.fr_construction_ms);
          ] );
      ("rows", Json.Int r.fr_rows);
      ("jobs", Json.Int r.fr_jobs);
      ( "counters",
        Json.Obj
          [
            ("relation_scans", Json.Int r.fr_scans);
            ("relation_probes", Json.Int r.fr_probes);
            ("index_probes", Json.Int r.fr_index_probes);
            ("pool_fetches", Json.Int r.fr_pool_fetches);
          ] );
    ]

let to_json ?n () =
  Json.Obj
    [
      ("capacity", Json.Int (capacity ()));
      ("recorded", Json.Int (Stdlib.min (total_recorded ()) (capacity ())));
      ("total", Json.Int (total_recorded ()));
      ("dropped", Json.Int (dropped ()));
      ( "slow_ms",
        match slow_ms () with None -> Json.Null | Some ms -> Json.Float ms );
      ("recent", Json.List (List.map record_to_json (recent ?n ())));
    ]

let pp_record ppf r =
  Fmt.pf ppf "%-10s %8.3f ms  (coll %.3f / comb %.3f / cons %.3f)  %6d rows  j%d"
    (String.sub r.fr_digest 0 (Stdlib.min 10 (String.length r.fr_digest)))
    r.fr_wall_ms r.fr_collection_ms r.fr_combination_ms r.fr_construction_ms
    r.fr_rows r.fr_jobs
