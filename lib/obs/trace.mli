(** Hierarchical span tracing for the query pipeline.

    A span is one timed step (adapt, standard-form, plan, collection,
    combination, construction, one conjunction, one quantifier
    elimination, ...).  Spans nest; each closed span carries the
    {!Metrics} activity that happened inside it ({!Metrics.diff} of the
    registry around the span), so a trace answers both "where did the
    time go" and "where did the scans/probes/tuples go".

    Tracing is off by default and costs one flag test per
    {!with_span} when off; the instrumentation sites stay in place
    permanently.  {!collect} turns it on for the duration of one
    callback and returns the finished tree.  The tracer is global and
    single-threaded, like the metrics registry. *)

type span = {
  sp_name : string;
  sp_start_ms : float;
      (** absolute wall-clock start; only differences are meaningful *)
  sp_elapsed_ms : float;
  sp_attrs : (string * Json.t) list;  (** explicit attachments, in order *)
  sp_metrics : Metrics.snapshot;  (** metric activity inside the span *)
  sp_children : span list;  (** in execution order *)
}

val enabled : unit -> bool

val now_ms : unit -> float
(** The tracer's wall clock, in milliseconds — exposed so callers that
    time phases outside spans (the flight recorder) agree with span
    timings. *)

val with_span : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run the callback under a child span of the current span.  When
    tracing is off, just runs the callback.  The span is closed (timed,
    metric delta attached) even if the callback raises. *)

val add_attr : string -> Json.t -> unit
(** Attach an attribute to the innermost open span; no-op when tracing
    is off or no span is open.  A repeated key overwrites. *)

val collect :
  ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a * span
(** [collect name f] enables tracing, runs [f] under a root span called
    [name], disables tracing, and returns [f]'s result with the tree.
    Nested calls raise [Invalid_argument]. *)

val find : span -> string -> span option
(** First descendant (preorder, the span itself included) with the given
    name. *)

val counter : span -> string -> int
(** Counter delta recorded on the span; 0 when absent. *)

val to_json : span -> Json.t
(** [{name, elapsed_ms, attrs..., metrics, children}]. *)

val to_chrome : span -> Json.t
(** Chrome trace-event JSON: a flat array of complete ([ph = "X"])
    events with microsecond [ts]/[dur] relative to the root span,
    loadable in chrome://tracing and Perfetto.  Span attrs and metric
    deltas are attached under [args]. *)

val pp : span Fmt.t
(** Indented tree with timings and non-zero metric deltas. *)
