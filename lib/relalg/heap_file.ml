(* Paged heap files: relations stored as length-prefixed records packed
   into fixed-size pages.  The page array stands in for the disk; every
   page access during iteration goes through a {!Buffer_pool}, whose
   miss count is the simulated I/O.

   Page layout:
     bytes 0-1   u16  used bytes in this page (header included)
     bytes 2-5   u32  Adler-32 of the payload region [6, used)
     bytes 6..   length-prefixed records

   The checksum word is updated on every append and validated whenever
   a page is fetched into the pool — a miss, i.e. the simulated disk
   read; resident frames were validated when they came in — so torn
   writes and short reads surface as a typed {!Errors.Corruption}
   instead of garbage tuples or a crash. *)

let page_size = 1024
let header_size = 6 (* u16 used + u32 checksum *)

type t = {
  file_id : int;
  mutable pages : Bytes.t list;  (* newest first *)
  mutable npages : int;
  mutable record_count : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  { file_id = !next_id; pages = []; npages = 0; record_count = 0 }

let file_id t = t.file_id
let page_count t = t.npages
let record_count t = t.record_count

let page_used page = Char.code (Bytes.get page 0) lor (Char.code (Bytes.get page 1) lsl 8)

let set_page_used page n =
  Bytes.set page 0 (Char.chr (n land 0xFF));
  Bytes.set page 1 (Char.chr ((n lsr 8) land 0xFF))

let page_checksum page =
  Char.code (Bytes.get page 2)
  lor (Char.code (Bytes.get page 3) lsl 8)
  lor (Char.code (Bytes.get page 4) lsl 16)
  lor (Char.code (Bytes.get page 5) lsl 24)

let set_page_checksum page v =
  Bytes.set page 2 (Char.chr (v land 0xFF));
  Bytes.set page 3 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set page 4 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set page 5 (Char.chr ((v lsr 24) land 0xFF))

let compute_checksum page used =
  Codec.adler32 page ~pos:header_size ~len:(used - header_size)

let fresh_page () =
  let page = Bytes.create page_size in
  set_page_used page header_size;
  set_page_checksum page (compute_checksum page header_size);
  page

(* Append one encoded record; starts a new page when it does not fit.
   Consults the [heap.write.partial] failpoint: a fired site leaves the
   page torn — the used count covers the new record but only part of its
   bytes landed and the checksum was never updated — and raises
   {!Errors.Io_error}.  The next validated read of the page detects the
   stale checksum. *)
let append t (record : Bytes.t) =
  let len = Bytes.length record in
  if len + 2 > page_size - header_size then
    Errors.type_error "Heap_file.append: record of %d bytes exceeds the page size"
      len;
  let page =
    match t.pages with
    | page :: _ when page_used page + 2 + len <= page_size -> page
    | _ ->
      let page = fresh_page () in
      t.pages <- page :: t.pages;
      t.npages <- t.npages + 1;
      page
  in
  let used = page_used page in
  Bytes.set page used (Char.chr (len land 0xFF));
  Bytes.set page (used + 1) (Char.chr ((len lsr 8) land 0xFF));
  if Failpoint.should_fire "heap.write.partial" then begin
    (* Torn write: half the record reaches the page, the used count is
       advanced, the checksum stays stale. *)
    Bytes.blit record 0 page (used + 2) (len / 2);
    set_page_used page (used + 2 + len);
    Obs.Metrics.incr "heap.torn_writes";
    Errors.io_error
      "heap.write.partial: torn write of a %d-byte record on file %d" len
      t.file_id
  end;
  Bytes.blit record 0 page (used + 2) len;
  set_page_used page (used + 2 + len);
  set_page_checksum page (compute_checksum page (used + 2 + len));
  t.record_count <- t.record_count + 1

let clear t =
  t.pages <- [];
  t.npages <- 0;
  t.record_count <- 0

(* Iterate all records, accessing each page through the pool.  A pool
   miss is the simulated disk read: it validates the checksum word and
   consults the [heap.read.short] failpoint; damage raises
   {!Errors.Corruption} so the caller can invalidate the pool and
   rebuild.  Pool hits skip validation — the frame was checked when it
   was fetched, and recovery paths invalidate frames before retrying. *)
let iter ~pool t f =
  let pages = Array.of_list (List.rev t.pages) in
  Array.iteri
    (fun pageno page ->
      Obs.Metrics.incr "heap.page_reads";
      let hit = Buffer_pool.access pool ~file:t.file_id ~page:pageno in
      let used = page_used page in
      if (not hit) && Failpoint.should_fire "heap.read.short" then begin
        Obs.Metrics.incr "storage.corruption_detected";
        Errors.corruption
          "heap.read.short: short read of page %d of file %d (%d of %d bytes)"
          pageno t.file_id (used / 2) used
      end;
      if (not hit) && page_checksum page <> compute_checksum page used then begin
        Obs.Metrics.incr "storage.corruption_detected";
        Errors.corruption "heap: checksum mismatch on page %d of file %d"
          pageno t.file_id
      end;
      let pos = ref header_size in
      while !pos < used do
        let len =
          Char.code (Bytes.get page !pos)
          lor (Char.code (Bytes.get page (!pos + 1)) lsl 8)
        in
        f (Bytes.sub page (!pos + 2) len);
        pos := !pos + 2 + len
      done)
    pages
