(* Paged heap files: relations stored as length-prefixed records packed
   into fixed-size pages.  The page array stands in for the disk; every
   page access during iteration goes through a {!Buffer_pool}, whose
   miss count is the simulated I/O. *)

let page_size = 1024
let header_size = 2 (* u16: used bytes in this page *)

type t = {
  file_id : int;
  mutable pages : Bytes.t list;  (* newest first *)
  mutable npages : int;
  mutable record_count : int;
}

let next_id = ref 0

let create () =
  incr next_id;
  { file_id = !next_id; pages = []; npages = 0; record_count = 0 }

let file_id t = t.file_id
let page_count t = t.npages
let record_count t = t.record_count

let page_used page = Char.code (Bytes.get page 0) lor (Char.code (Bytes.get page 1) lsl 8)

let set_page_used page n =
  Bytes.set page 0 (Char.chr (n land 0xFF));
  Bytes.set page 1 (Char.chr ((n lsr 8) land 0xFF))

let fresh_page () =
  let page = Bytes.create page_size in
  set_page_used page header_size;
  page

(* Append one encoded record; starts a new page when it does not fit. *)
let append t (record : Bytes.t) =
  let len = Bytes.length record in
  if len + 2 > page_size - header_size then
    Errors.type_error "Heap_file.append: record of %d bytes exceeds the page size"
      len;
  let page =
    match t.pages with
    | page :: _ when page_used page + 2 + len <= page_size -> page
    | _ ->
      let page = fresh_page () in
      t.pages <- page :: t.pages;
      t.npages <- t.npages + 1;
      page
  in
  let used = page_used page in
  Bytes.set page used (Char.chr (len land 0xFF));
  Bytes.set page (used + 1) (Char.chr ((len lsr 8) land 0xFF));
  Bytes.blit record 0 page (used + 2) len;
  set_page_used page (used + 2 + len);
  t.record_count <- t.record_count + 1

let clear t =
  t.pages <- [];
  t.npages <- 0;
  t.record_count <- 0

(* Iterate all records, accessing each page through the pool. *)
let iter ~pool t f =
  let pages = Array.of_list (List.rev t.pages) in
  Array.iteri
    (fun pageno page ->
      Obs.Metrics.incr "heap.page_reads";
      ignore (Buffer_pool.access pool ~file:t.file_id ~page:pageno);
      let used = page_used page in
      let pos = ref header_size in
      while !pos < used do
        let len =
          Char.code (Bytes.get page !pos)
          lor (Char.code (Bytes.get page (!pos + 1)) lsl 8)
        in
        f (Bytes.sub page (!pos + 2) len);
        pos := !pos + 2 + len
      done)
    pages
