(** Relational algebra over keyed relations — the operator repertoire of
    the paper's combination phase: join / Cartesian product to combine
    conjunctions, union for the disjunctive form, projection for SOME and
    division for ALL, plus the semijoin/antijoin pair of Section 4.4.

    Operators taking [?par] have a partitioned parallel form: when the
    input cardinality clears [par.threshold] and [par.jobs > 1], the
    input is snapshotted once ({!Relation.to_array}, the same counted
    read the serial scan performs), split into contiguous per-domain
    chunks, evaluated chunk-wise on the {!Domain_pool}, and the chunk
    results replayed on the caller in chunk order — so the output
    relation (contents *and* iteration order) is identical for every
    [jobs] value.  Without [?par] (or below the threshold) the code
    path is the untouched serial one. *)

val select :
  ?par:Domain_pool.par ->
  ?name:string ->
  (Tuple.t -> bool) ->
  Relation.t ->
  Relation.t

val project :
  ?par:Domain_pool.par -> ?name:string -> Relation.t -> string list -> Relation.t
(** Duplicate-eliminating projection onto the named attributes. *)

val rename : ?name:string -> Relation.t -> (string * string) list -> Relation.t

val product :
  ?par:Domain_pool.par -> ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Cartesian product; attribute names must stay distinct. *)

val theta_join :
  ?name:string ->
  (Tuple.t -> Tuple.t -> bool) ->
  Relation.t ->
  Relation.t ->
  Relation.t

val equi_join :
  ?name:string ->
  on:(string * string) list ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Hash join on equated attribute pairs (left name, right name). *)

val merge_join :
  ?name:string ->
  on:(string * string) list ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Sort-merge join; same contract as {!equi_join} (the paper's [6,9]
    operations for the combination phase). *)

val nested_loop_join :
  ?name:string ->
  on:(string * string) list ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** Reference nested-loop implementation of the same contract. *)

val natural_join :
  ?par:Domain_pool.par -> ?name:string -> Relation.t -> Relation.t -> Relation.t
(** Equi-join on shared names with duplicated columns merged.  The
    partitioned form chunks both the build side (workers compute join
    keys, the caller fills the hash table in chunk order) and the probe
    side (workers probe the then read-only table). *)

val union : ?name:string -> Relation.t -> Relation.t -> Relation.t
val union_all : ?name:string -> Schema.t -> Relation.t list -> Relation.t
val inter : ?name:string -> Relation.t -> Relation.t -> Relation.t
val diff : ?name:string -> Relation.t -> Relation.t -> Relation.t

val semijoin :
  ?name:string ->
  on:(string * string) list ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** [semijoin ~on a b]: elements of [a] joining at least one of [b]. *)

val antijoin :
  ?name:string ->
  on:(string * string) list ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** [antijoin ~on a b]: elements of [a] joining none of [b] — the
    universal counterpart of the semijoin. *)

val divide :
  ?name:string ->
  on:(string * string) list ->
  Relation.t ->
  Relation.t ->
  Relation.t
(** [divide ~on r s]: quotient tuples of [r] (over its attributes not in
    [on]) whose group covers every distinct [on]-image of [s].  An empty
    divisor yields all quotient projections.
    @raise Errors.Schema_error if no quotient attributes remain. *)

val cardinality : Relation.t -> int

(** Fused streaming operators: push producers whose per-tuple callbacks
    compose directly, so a whole operator chain allocates one output
    relation (at {!Stream.materialize}) instead of one per operator.
    Joins build their hash table on the materialized side once and probe
    it with the streamed tuples; counters
    [combination.join_rows_in]/[combination.join_rows_out] and the
    [algebra.fused.*] tallies record the traffic. *)
module Stream : sig
  type t

  val schema : t -> Schema.t

  val of_relation : ?pool:Batch.pool -> Relation.t -> t
  (** [?pool] shares one interning pool (and its per-relation encode
      cache) across the chains of a query, so a base relation padded
      into several disjuncts is encoded once.  Defaults to a fresh
      pool per chain. *)

  val select : (Tuple.t -> bool) -> t -> t

  val project : t -> string list -> t
  (** Streaming projection; duplicates pass through — follow with
      {!dedup} when fan-out matters. *)

  val dedup : t -> t
  (** Streaming duplicate elimination (hash set over whole tuples). *)

  type join_impl =
    | Jhash  (** build a key table, probe per stream tuple *)
    | Jnlj  (** walk the build side per probe — no build cost *)
    | Jshared_nlj
        (** memoize the inner walk per distinct probe key: duplicate
            probes share one pass *)

  val natural_join : ?impl:join_impl -> t -> Relation.t -> t
  (** Natural join: the stream probes, the relation is the build side.
      [?impl] (default {!Jhash}) selects the scalar algorithm; all
      three emit the identical tuple sequence, so the partitioned and
      batched arms always run the hash machinery.  Degenerates to a
      semijoin when the build side adds no columns, and to {!product}
      when no attribute names are shared. *)

  val product : t -> Relation.t -> t

  val materialize :
    ?par:Domain_pool.par -> ?batch_size:int -> ?name:string -> t -> Relation.t
  (** Run the chain once, collecting into a whole-tuple-keyed relation.

      With [batch_size > 1] and a source-rooted chain, the source is
      encoded into column arrays and driven through vectorized kernels
      in [batch_size]-row windows; the output is tuple-for-tuple
      identical to the scalar emit (which remains the [batch_size = 1]
      differential oracle).  A chain that cannot encode (exotic values,
      mismatched join column classes) silently runs the scalar path.

      With [?par] active and a source clearing the threshold, the chain
      runs chunk-wise on the {!Domain_pool} — over tuple chunks in
      scalar mode, over whole batches in batched mode: shared join
      tables and encodes are built before the fork, each chunk gets a
      private instance of the consumer chain, and chunk outputs are
      replayed in order — the output relation is identical to the
      serial run's for every [jobs].  (Only caveat: a {!dedup} mid-chain
      deduplicates per chunk, so join row counters downstream of it can
      read higher than serial; the materialized set is unchanged.) *)
end
